#!/usr/bin/env python
"""Does master placement matter for a master/worker grid application?

Reproduces the paper's §4.4 (Tables 6 and 7): run ray2mesh over four
clusters, moving the master between sites, and observe (a) rays go to the
fastest CPUs, (b) total time barely moves with placement.

    python examples/ray2mesh_placement.py              # 100k rays, fast
    python examples/ray2mesh_placement.py --full       # the paper's 1M rays
"""

import argparse

from repro.apps import run_ray2mesh
from repro.experiments.environments import get_environment
from repro.report import Table

SITES = ("nancy", "rennes", "sophia", "toulouse")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--full", action="store_true", help="1M rays (minutes)")
    args = parser.parse_args()
    total_rays = 1_000_000 if args.full else 100_000

    env = get_environment("fully_tuned")
    results = {}
    for master in SITES:
        results[master] = run_ray2mesh(
            env.impl("mpich2"),
            master_site=master,
            total_rays=total_rays,
            sysctls=env.sysctls,
        )

    rays = Table(
        ["cluster"] + [f"master={m}" for m in SITES],
        title=f"rays per node of each cluster ({total_rays:,} rays total)",
    )
    for cluster in SITES:
        rays.add_row(
            [cluster] + [results[m].rays_per_cluster[cluster] / 8 for m in SITES]
        )
    print(rays.render())
    print()

    times = Table(
        ["master", "computing (s)", "merging (s)", "total (s)"],
        title="phase times vs master placement",
    )
    for master in SITES:
        r = results[master]
        times.add_row([master, r.comp_time, r.merge_time, r.total_time])
    print(times.render())

    totals = [r.total_time for r in results.values()]
    print()
    print(
        f"Placement spread: {max(totals) / min(totals):.3f}x — the paper's "
        "conclusion holds: for this workload, task placement does not "
        "provide significantly better results; CPU speed decides who "
        "computes (Sophia leads everywhere)."
    )


if __name__ == "__main__":
    main()
