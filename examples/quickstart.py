#!/usr/bin/env python
"""Quickstart: the paper's core finding in one minute.

Runs an MPI pingpong between Rennes and Nancy (11.6 ms RTT, 1 Gbps) with
each implementation, before and after the paper's tuning, and prints the
bandwidth collapse and recovery.

    python examples/quickstart.py
"""

from repro.apps import mpi_pingpong
from repro.experiments.environments import get_environment, pingpong_pair
from repro.impls import IMPLEMENTATION_ORDER
from repro.report import Table
from repro.units import MB, fmt_bytes

SIZE = 16 * MB


def main() -> None:
    table = Table(
        ["implementation", "default (Mbps)", "tuned (Mbps)"],
        title=f"Grid pingpong at {fmt_bytes(SIZE)} (Rennes <-> Nancy, 11.6 ms RTT)",
    )
    for name in IMPLEMENTATION_ORDER:
        bandwidths = {}
        for env_name in ("default", "fully_tuned"):
            env = get_environment(env_name)
            net, a, b = pingpong_pair("grid")
            curve = mpi_pingpong(
                net, env.impl(name), a, b, sizes=[SIZE], repeats=30,
                sysctls=env.sysctls,
            )
            bandwidths[env_name] = curve.max_bandwidth_mbps
        table.add_row(
            [env.impl(name).display_name, bandwidths["default"], bandwidths["fully_tuned"]]
        )
    print(table.render())
    print()
    print(
        "Default kernels cap the TCP window near 128-170 kB: on an 11.6 ms\n"
        "path that is ~100 Mbps no matter the implementation. Raising the\n"
        "socket buffers to 4 MB (and each implementation's own knobs)\n"
        "recovers ~900 Mbps — the paper's §4.2 in action."
    )


if __name__ == "__main__":
    main()
