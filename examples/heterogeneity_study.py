#!/usr/bin/env python
"""The paper's §5 future work, run: high-speed fabrics for local traffic.

Builds a Myrinet-equipped cluster, runs the latency/bandwidth pingpong
and a bandwidth-heavy NAS kernel with each implementation, and shows who
can exploit the fabric (MPICH-Madeleine, OpenMPI) and who is stuck on TCP
(GridMPI, MPICH2) — including the paper's caveat that the management
overhead must stay below the TCP cost.

    python examples/heterogeneity_study.py
"""

from repro.impls import get_implementation
from repro.mpi import MpiJob
from repro.net import Network
from repro.npb import run_npb
from repro.report import Table
from repro.tcp import TUNED_SYSCTLS
from repro.units import Gbps, MB, to_usec, usec


def build_myrinet_cluster(nodes: int = 16) -> Network:
    net = Network("myrinet-site")
    cluster = net.add_cluster(
        "rennes", intra_rtt=usec(58),
        fabric="myrinet", fabric_bps=Gbps(2), fabric_rtt=usec(16),
    )
    cluster.add_nodes(nodes, gflops=1.1)
    return net


def pingpong(net, impl, nbytes):
    placement = net.clusters["rennes"].nodes[:2]
    job = MpiJob(net, impl, placement, sysctls=TUNED_SYSCTLS)
    samples = []

    def program(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            for _ in range(30):
                t0 = ctx.wtime()
                yield from comm.send(1, nbytes=nbytes)
                yield from comm.recv(1)
                samples.append(ctx.wtime() - t0)
        else:
            for _ in range(30):
                yield from comm.recv(0)
                yield from comm.send(0, nbytes=nbytes)

    job.run(program)
    return min(samples)


def main() -> None:
    net = build_myrinet_cluster()
    table = Table(
        ["implementation", "fabric used", "1 B latency (us)", "16 MB bandwidth (Mbps)",
         "BT class A (s)"],
        title="A Myrinet cluster, per implementation",
    )
    for name in ("mpich2", "gridmpi", "madeleine", "openmpi"):
        impl = get_implementation(name).with_eager_threshold(65 * MB)
        latency = to_usec(pingpong(net, impl, 1) / 2)
        rtt = pingpong(net, impl, 16 * MB)
        bandwidth = 16 * MB * 8 / (rtt / 2) / 1e6
        bt = run_npb(
            "bt", "A", net, impl, net.clusters["rennes"].nodes,
            sysctls=TUNED_SYSCTLS, sample_iters=10, honor_known_failures=False,
        ).time
        uses_fabric = "myrinet" in impl.native_fabrics
        table.add_row(
            [impl.display_name, "yes" if uses_fabric else "no (TCP)",
             latency, bandwidth, bt]
        )
    print(table.render())
    print()
    print(
        "MPICH-Madeleine and OpenMPI drive the Myrinet natively: ~2x the\n"
        "bandwidth and a fraction of the latency — although Madeleine's\n"
        "software overhead eats part of the latency win, exactly the\n"
        "trade-off the paper's conclusion warns about."
    )


if __name__ == "__main__":
    main()
