#!/usr/bin/env python
"""Anatomy of Fig. 9: watch the congestion window shape MPI throughput.

Streams 1 MB messages across the 11.6 ms path with a paced (GridMPI-like)
and an unpaced (MPICH2-like) sender and charts per-message bandwidth over
time, plus the loss/round statistics of the underlying connection.

    python examples/slowstart_anatomy.py
"""

from repro.impls import get_implementation
from repro.mpi import MpiJob
from repro.net import build_pair_testbed
from repro.report import Table, line_chart
from repro.tcp import TUNED_SYSCTLS
from repro.units import MB


def stream(impl, count=250):
    net = build_pair_testbed(nodes_per_site=1)
    a = net.clusters["rennes"].nodes[0]
    b = net.clusters["nancy"].nodes[0]
    job = MpiJob(net, impl, [a, b], sysctls=TUNED_SYSCTLS, trace=False)
    samples = []

    def program(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            for _ in range(count):
                t0 = ctx.wtime()
                yield from comm.send(1, nbytes=MB)
                yield from comm.recv(1)
                samples.append((ctx.wtime(), MB * 8 / ((ctx.wtime() - t0) / 2) / 1e6))
        else:
            for _ in range(count):
                yield from comm.recv(0)
                yield from comm.send(0, nbytes=MB)

    job.run(program)
    connection = next(iter(job.transport._connections.values()))
    return samples, connection.forward


def main() -> None:
    paced = get_implementation("gridmpi")
    unpaced = get_implementation("mpich2").with_eager_threshold(65 * MB)

    series = {}
    stats_table = Table(
        ["sender", "losses", "window rounds", "final cwnd (kB)"],
        title="connection statistics after 250 x 1 MB messages",
    )
    for label, impl in (("paced (GridMPI)", paced), ("unpaced (MPICH2)", unpaced)):
        samples, direction = stream(impl)
        series[label] = samples[:: max(1, len(samples) // 70)]
        stats_table.add_row(
            [label, direction.stats.losses, direction.stats.window_rounds,
             direction.cc.cwnd / 1024]
        )

    print(line_chart(series, title="per-message bandwidth vs time (grid, 1 MB)",
                     y_label="Mbps"))
    print()
    print(stats_table.render())
    print()
    print(
        "The unpaced sender overshoots during slow start at half the window\n"
        "of the paced one and suffers probing losses three times as often,\n"
        "so its sawtooth climbs to the path's bandwidth-delay product much\n"
        "more slowly — the paper's Fig. 9 in mechanism form."
    )


if __name__ == "__main__":
    main()
