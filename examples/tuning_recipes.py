#!/usr/bin/env python
"""Print the paper's §4.2 tuning recipe for your grid.

The advisor computes the bandwidth-delay product of the worst inter-site
path, derives the buffer size (the paper's 4 MB), and renders the exact
sysctl commands, mpirun arguments, environment variables and source edits
each implementation needs.

    python examples/tuning_recipes.py
"""

from repro.impls import ALL_IMPLEMENTATIONS, IMPLEMENTATION_ORDER
from repro.net import build_ray2mesh_testbed
from repro.tcp.sysctl import SysctlConfig
from repro.tuning import advise_buffer_bytes, bdp_bytes, render_recipe
from repro.units import Gbps, fmt_bytes, msec


def main() -> None:
    net = build_ray2mesh_testbed()
    print("Paths of the testbed (Fig. 8):")
    sites = sorted(net.clusters)
    worst = 0.0
    for i, a in enumerate(sites):
        for b in sites[i + 1 :]:
            rtt = net.rtt(a, b)
            bdp = bdp_bytes(rtt, Gbps(1))
            worst = max(worst, rtt)
            print(f"  {a:9s} <-> {b:9s}  RTT {rtt * 1e3:5.1f} ms  BDP {fmt_bytes(bdp)}")
    buffer_bytes = advise_buffer_bytes(net)
    print(f"\nAdvised socket buffer: {fmt_bytes(buffer_bytes)} "
          f"(the paper rounds the worst-path BDP up to 4M)\n")

    sysctls = (
        SysctlConfig().with_buffer_max(buffer_bytes).with_buffer_default(buffer_bytes)
    )
    print("Kernel tuning (all hosts):")
    for command in sysctls.render_commands():
        print(f"  {command}")

    for name in IMPLEMENTATION_ORDER:
        impl = ALL_IMPLEMENTATIONS[name]
        recipe = render_recipe(impl, sysctls, buffer_bytes=buffer_bytes)
        print(f"\n{impl.display_name} {impl.version}:")
        for step in recipe.steps:
            print(f"  - {step}")


if __name__ == "__main__":
    main()
