#!/usr/bin/env python
"""Which MPI implementation should you use on a grid?

Reproduces the decision the paper's §4.3 supports with Figs. 10 and 12:
run the NAS kernels on 8+8 nodes across the WAN with every
implementation, compare against MPICH2 and against a single-cluster run.

    python examples/nas_grid_study.py            # class A (minutes)
    python examples/nas_grid_study.py --class B  # the paper's class (slower)
"""

import argparse

from repro.experiments.npb_runs import NPB_ORDER, npb_time
from repro.impls import ALL_IMPLEMENTATIONS, IMPLEMENTATION_ORDER
from repro.report import Table, bar_chart


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--class", dest="cls", default="A", choices=["S", "W", "A", "B"])
    args = parser.parse_args()

    table = Table(
        ["NAS"]
        + [ALL_IMPLEMENTATIONS[n].display_name for n in IMPLEMENTATION_ORDER]
        + ["grid/cluster (GridMPI)"],
        title=f"NPB class {args.cls}, 8+8 grid nodes: execution times (s)",
    )
    for bench in NPB_ORDER:
        cells = [bench.upper()]
        for name in IMPLEMENTATION_ORDER:
            cells.append(npb_time(bench, name, "grid16", cls=args.cls))
        t_cluster = npb_time(bench, "gridmpi", "cluster16", cls=args.cls)
        t_grid = npb_time(bench, "gridmpi", "grid16", cls=args.cls)
        cells.append(t_cluster / t_grid if t_grid != float("inf") else 0.0)
        table.add_row(cells)
    print(table.render())
    print()

    wins = {
        ALL_IMPLEMENTATIONS[name].display_name: sum(
            1
            for bench in NPB_ORDER
            if npb_time(bench, name, "grid16", cls=args.cls)
            <= min(
                npb_time(bench, other, "grid16", cls=args.cls)
                for other in IMPLEMENTATION_ORDER
            )
            + 1e-9
        )
        for name in IMPLEMENTATION_ORDER
    }
    print(bar_chart(wins, title="benchmarks won (of 8)"))
    print()
    print(
        "GridMPI's Van de Geijn broadcast and Rabenseifner allreduce win the\n"
        "collective benchmarks outright; the point-to-point kernels are a\n"
        "near tie, with MPICH-Madeleine unable to finish BT and SP (as on\n"
        "the real testbed)."
    )


if __name__ == "__main__":
    main()
