#!/usr/bin/env bash
# Full local CI gate: ruff + mypy (when installed) + repro lint + pytest.
#
# ruff and mypy are optional dev tools — the container image does not bake
# them in, and the repo must not pip-install at check time — so each is
# skipped with a notice when absent.  `repro lint` and pytest are always
# run; pytest itself re-runs the lint pass via the conftest session gate.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

status=0

if python -m ruff --version >/dev/null 2>&1; then
    echo "== ruff =="
    python -m ruff check src/repro tests || status=1
else
    echo "== ruff == (not installed; skipped)"
fi

if python -m mypy --version >/dev/null 2>&1; then
    echo "== mypy (repro.analysis, warnings-as-errors) =="
    python -m mypy --warn-unused-ignores --warn-redundant-casts \
        -p repro.analysis || status=1
else
    echo "== mypy == (not installed; skipped)"
fi

echo "== repro lint =="
python -m repro lint || status=1

echo "== pytest =="
python -m pytest -x -q || status=1

exit $status
