#!/usr/bin/env bash
# Full local CI gate: ruff + mypy (when installed) + repro lint + pytest.
#
# Locally, ruff and mypy are optional dev tools — the container image does
# not bake them in, and the repo must not pip-install at check time — so
# each is skipped with a notice when absent.  Under CI (CI=1) a missing
# tool is a configuration error and fails the gate instead of silently
# thinning it.  `repro lint` and pytest are always run; pytest itself
# re-runs the lint pass via the conftest session gate.
#
# The exit code is the FIRST failing step's code, not the last one's.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

status=0

# run_step NAME CMD...: run a step, remember the first non-zero exit code.
run_step() {
    local name="$1"
    shift
    echo "== $name =="
    local rc=0
    "$@" || rc=$?
    if [ "$rc" -ne 0 ]; then
        echo "-- $name failed (exit $rc)"
        if [ "$status" -eq 0 ]; then
            status=$rc
        fi
    fi
}

# missing_tool NAME: under CI a missing linter/typechecker fails the gate.
missing_tool() {
    if [ -n "${CI:-}" ]; then
        echo "== $1 == MISSING (CI=1 requires it installed)"
        if [ "$status" -eq 0 ]; then
            status=3
        fi
    else
        echo "== $1 == (not installed; skipped)"
    fi
}

# Hand every tool an explicitly sorted file list (LC_ALL=C for a stable
# collation) instead of directories: directory walks surface files in
# filesystem-discovery order, which differs across machines and would make
# violation output byte-unstable.  `repro lint` sorts its own worklist the
# same way internally.
mapfile -t PY_FILES < <(find src/repro tests scripts -name '*.py' | LC_ALL=C sort)

if python -m ruff --version >/dev/null 2>&1; then
    run_step "ruff" python -m ruff check "${PY_FILES[@]}"
else
    missing_tool "ruff"
fi

if python -m mypy --version >/dev/null 2>&1; then
    run_step "mypy (repro.analysis, warnings-as-errors)" \
        python -m mypy --warn-unused-ignores --warn-redundant-casts \
        -p repro.analysis
else
    missing_tool "mypy"
fi

run_step "repro lint" python -m repro lint
run_step "pytest" python -m pytest -x -q

exit $status
