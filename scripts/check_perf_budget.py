#!/usr/bin/env python3
"""CI perf-regression gate: fresh campaign walls vs committed budgets.

Compares each experiment's ``wall_s`` in the most recent
``BENCH_experiments.json`` entry against the committed per-experiment
budget file (``benchmarks/budgets.json``), prints a before/after table,
and exits non-zero when any experiment regresses past its budget.

The budget check is deliberately generous — runner noise on shared CI
hardware is real — but bounded: a fresh wall fails when

    wall_s > budget * (1 + slack) + grace_s

where ``slack`` (default 0.5, i.e. +-50%) and ``grace_s`` (default 2 s,
absorbing interpreter startup jitter on near-zero entries like table1)
come from the budget file.  Experiments present in the manifest but
missing from the budget file fail too, so new experiments must be
budgeted the same way they must have goldens.

Budgets were seeded from the post-rewrite fast campaign; the point of
the gate is that the incremental-allocator speedup (table6: 5x) can
never silently erode.  Re-seed ``benchmarks/budgets.json`` deliberately
when a slowdown is intentional, and say why in the commit.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DEFAULT_MANIFEST = REPO / "BENCH_experiments.json"
DEFAULT_BUDGETS = REPO / "benchmarks" / "budgets.json"


def load_latest_entry(manifest_path: Path) -> dict:
    """The most recent campaign entry (CI runs this right after `repro run`)."""
    document = json.loads(manifest_path.read_text(encoding="utf-8"))
    runs = document.get("runs") or []
    if not runs:
        raise SystemExit(f"perf gate: no campaign entries in {manifest_path}")
    return runs[-1]


def evaluate(entry: dict, budgets: dict, slack: float, grace_s: float) -> list[dict]:
    """One row per experiment: budget, fresh wall, limit, verdict."""
    experiments = entry.get("experiments", {})
    rows = []
    for experiment_id in sorted(set(budgets) | set(experiments)):
        budget = budgets.get(experiment_id)
        record = experiments.get(experiment_id)
        row = {
            "experiment": experiment_id,
            "budget_s": budget,
            "wall_s": record.get("wall_s") if record else None,
            "limit_s": None,
            "status": "ok",
        }
        if budget is None:
            # Unbudgeted experiments fail: budgets stay in sync with the
            # registry the same way committed goldens do.
            row["status"] = "FAIL (no budget: add to benchmarks/budgets.json)"
        elif record is None:
            row["status"] = "FAIL (missing from campaign manifest)"
        else:
            limit = budget * (1.0 + slack) + grace_s
            row["limit_s"] = limit
            if row["wall_s"] > limit:
                row["status"] = (
                    f"FAIL (regressed {row['wall_s'] / budget:.2f}x over budget)"
                )
        rows.append(row)
    return rows


def render(rows: list[dict], entry: dict, slack: float, grace_s: float) -> str:
    def fmt(value: "float | None") -> str:
        return f"{'-':>9}" if value is None else f"{value:9.3f}"

    lines = [
        f"perf gate: campaign label={entry.get('label', '')!r} "
        f"jobs={entry.get('jobs')} telemetry={entry.get('telemetry')} "
        f"(limit = budget * {1 + slack:.2f} + {grace_s:.1f}s)",
        f"{'experiment':<16} {'budget_s':>9} {'wall_s':>9} {'limit_s':>9}  status",
    ]
    for row in rows:
        lines.append(
            f"{row['experiment']:<16} {fmt(row['budget_s'])} "
            f"{fmt(row['wall_s'])} {fmt(row['limit_s'])}  {row['status']}"
        )
    failures = [row for row in rows if row["status"] != "ok"]
    lines.append(
        "PERF OK: every experiment within budget"
        if not failures
        else "PERF REGRESSION: "
        + ", ".join(row["experiment"] for row in failures)
    )
    return "\n".join(lines)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--manifest", type=Path, default=DEFAULT_MANIFEST)
    parser.add_argument("--budgets", type=Path, default=DEFAULT_BUDGETS)
    parser.add_argument(
        "--slack", type=float, default=None,
        help="relative slack override (default: budget file's, 0.5)",
    )
    parser.add_argument(
        "--grace-s", type=float, default=None,
        help="absolute grace override in seconds (default: budget file's, 2.0)",
    )
    args = parser.parse_args(argv)

    budget_doc = json.loads(args.budgets.read_text(encoding="utf-8"))
    slack = args.slack if args.slack is not None else float(budget_doc.get("slack", 0.5))
    grace_s = (
        args.grace_s if args.grace_s is not None else float(budget_doc.get("grace_s", 2.0))
    )
    entry = load_latest_entry(args.manifest)
    rows = evaluate(entry, budget_doc.get("budgets", {}), slack, grace_s)
    print(render(rows, entry, slack, grace_s))
    return 1 if any(row["status"] != "ok" for row in rows) else 0


if __name__ == "__main__":
    sys.exit(main())
