#!/usr/bin/env python
"""Assemble EXPERIMENTS.md from the reports under results/.

    python scripts/run_all_experiments.py        # produces results/*.txt
    python scripts/generate_experiments_md.py    # rewrites EXPERIMENTS.md
"""

import pathlib
import sys

HEADER_MARK = "<!-- RESULTS -->"

ORDER = [
    "table1", "table2", "table3", "table4", "fig3", "fig5", "fig6", "fig7",
    "table5", "fig9", "fig10", "fig11", "fig12", "fig13", "table6", "table7",
    "faults_pingpong", "faults_cg", "coll_hier",
]

PAPER_SUMMARY = {
    "table1": "Feature matrix of the four implementations (§2.1.7).",
    "table2": "NPB communication features from an instrumented MPI (§3.1).",
    "table3": "Host specifications of the Rennes/Nancy clusters (§3.2).",
    "table4": "One-byte latency: TCP 41/5812 us, MPI adds 5-21 us (§4.1).",
    "fig3": "Grid bandwidth collapse with default parameters: <= 120 Mbps (§4.1).",
    "fig5": "Cluster reference: every implementation reaches 940 Mbps (§4.1).",
    "fig6": "After TCP tuning: ~900 Mbps, threshold dip persists except GridMPI (§4.2.1).",
    "fig7": "After TCP+MPI tuning: all match TCP; OpenMPI lower on big messages (§4.2.2).",
    "table5": "Ideal eager/rendezvous threshold: 65 MB (32 MB for OpenMPI) (§4.2.2).",
    "fig9": "Slow-start ramp of 1 MB stream: TCP/GridMPI ~2 s to 500 Mbps, others ~4 s (§4.2.3).",
    "fig10": "NPB 8+8: GridMPI wins FT/IS big; MPICH2 best on LU; Madeleine DNF on BT/SP (§4.3).",
    "fig11": "Same at 2+2 nodes (§4.3).",
    "fig12": "Grid vs cluster at 16 ranks: EP ~1, LU/BT good, CG/MG/IS poor (§4.3).",
    "fig13": "16 grid nodes vs 4 cluster nodes: everything gains; LU/BT near 4x (§4.3).",
    "table6": "ray2mesh rays track CPU speed; Sophia computes the most (§4.4).",
    "table7": "ray2mesh times are insensitive to master placement (§4.4).",
    "faults_pingpong": (
        "Beyond the paper: goodput of the tuned grid pingpong under seeded "
        "WAN packet loss (0-10%), per implementation."
    ),
    "faults_cg": (
        "Beyond the paper: NPB CG (8+8 grid) wall time under seeded WAN "
        "latency jitter (0-50% of the base RTT)."
    ),
    "coll_hier": (
        "Beyond the paper: §2.1 credits MPICH-G2's topology-aware "
        "collectives; this experiment generalises the model's bcast "
        "hierarchy to reduce/allreduce/gather and compares each against "
        "MPICH2's flat default on the cyclically-placed 8+8 grid, timing "
        "one call per size and counting WAN crossings."
    ),
}

# Extra per-experiment pointers rendered after the paper summary.
DIAGNOSIS = {
    "fig7": (
        "`repro explain fig7` measures the mechanism behind this figure: "
        "it counts the rendezvous handshakes per message around each "
        "implementation's eager threshold and prices them at the grid RTT, "
        "showing why Fig. 6 dips at 128 kB and why the Table 5 thresholds "
        "(this figure) remove the dip."
    ),
    "fig9": (
        "`repro explain fig9` replays the stream with the telemetry "
        "recorder on and lines up each stack's congestion-window samples, "
        "slow-start exit time and loss count next to its time-to-500-Mbps, "
        "with an ASCII cwnd-ramp chart per stack."
    ),
    "fig10": (
        "`repro explain fig10` replays the NPB campaign with the span "
        "recorder on and breaks each kernel's rank time into its "
        "`npb.phase.*` spans (tick-exact, grid vs cluster side by side), "
        "then aggregates the site-tagged `tcp.transmit`/`rndv.handshake` "
        "spans into a WAN-time matrix per site pair — naming the phase "
        "and the inter-site link that the grid slowdown lives in.  "
        "`repro flame fig10` renders the same payload as a flamegraph."
    ),
    "coll_hier": (
        "`repro explain coll_hier` counts what actually crosses the WAN: "
        "per-call inter-site messages and bytes for the flat and "
        "hierarchical variants, showing the O(P) -> O(sites) crossing "
        "reduction, the byte savings of combining partials before the "
        "WAN (reduce/allreduce), and why gather's irreducible volume "
        "limits its win."
    ),
}


def main() -> int:
    root = pathlib.Path(__file__).resolve().parents[1]
    results = root / "results"
    md = root / "EXPERIMENTS.md"
    head = md.read_text().split(HEADER_MARK)[0] + HEADER_MARK + "\n"

    sections = [head]
    for experiment_id in ORDER:
        path = results / f"{experiment_id}.txt"
        sections.append(f"\n## {experiment_id}\n")
        sections.append(f"*Paper:* {PAPER_SUMMARY[experiment_id]}\n")
        if experiment_id in DIAGNOSIS:
            sections.append(f"\n*Diagnose:* {DIAGNOSIS[experiment_id]}\n")
        if path.exists():
            sections.append("```text\n" + path.read_text().rstrip() + "\n```\n")
        else:
            sections.append("_(no result file; run scripts/run_all_experiments.py)_\n")

    sections.append(
        "\n## Known deviations\n\n"
        "* Absolute NPB times are simulated with calibrated op counts and\n"
        "  per-kernel sustained-efficiency factors; only ratios are compared.\n"
        "* The default-parameter curves (Figs. 3/5) show a short burst hump\n"
        "  where the message size crosses the default socket buffer\n"
        "  (~128-256 kB): a single sub-window burst travels at line rate in\n"
        "  the fluid model. The paper's '<= 120 Mbps' statement holds for\n"
        "  every other size.\n"
        "* Fig. 9's time axis is ~1.8x the paper's because the reproduced\n"
        "  pingpong echoes the full 1 MB payload (both directions ramp);\n"
        "  orderings and the ~570 Mbps ceiling match.\n"
        "* Table 2's FT/IS rows use the paper's own characterisation\n"
        "  (broadcast-dominated FT); the underlying message counts follow\n"
        "  our collective decompositions, not [Faraj & Yuan]'s accounting.\n"
        "* MPICH-Madeleine's BT/SP timeout is recorded as a structured\n"
        "  known failure: the paper observed the hang without a published\n"
        "  root cause, so the result carries a `KnownFailure` locating the\n"
        "  last collective the benchmark enters (its final residual\n"
        "  allreduce, found by a telemetry probe) rather than a bare inf.\n"
        "* Fig. 13's absolute speedups run below the paper's (LU 2.9 vs\n"
        "  ~4, SP 1.6 vs >=3): the model's 4-node cluster reference is\n"
        "  comparatively fast because intra-cluster communication is cheap\n"
        "  here, compressing the ratio. Orderings (EP > LU/BT > FT/SP >\n"
        "  MG > CG > IS) match, as does the headline: the grid gains for\n"
        "  every kernel but the latency-dominated integer sort.\n"
    )
    md.write_text("".join(sections))
    print(f"wrote {md}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
