#!/usr/bin/env python3
"""CI incremental-invalidation gate: a warm re-run must actually be warm.

CI runs the fast campaign cold, appends a trailing comment to a leaf
module (``src/repro/obs/report.py`` — imported by no experiment), re-runs
the campaign with the cache on, and then runs this script against the
most recent ``BENCH_experiments.json`` entry.  Dependency-aware cache
keys mean the edit must invalidate nothing: the gate fails when fewer
than ``min_cached_fraction`` of the experiments replayed from cache, or
when the warm campaign's wall exceeds ``max_wall_s`` (both from the
``warm_rerun`` block of ``benchmarks/budgets.json``).

This is the regression guard for the whole incremental-campaign engine:
if cache keys ever degrade back to whole-tree digests, the leaf edit
chills everything and the cached fraction collapses to zero.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DEFAULT_MANIFEST = REPO / "BENCH_experiments.json"
DEFAULT_BUDGETS = REPO / "benchmarks" / "budgets.json"


def load_latest_entry(manifest_path: Path) -> dict:
    document = json.loads(manifest_path.read_text(encoding="utf-8"))
    runs = document.get("runs") or []
    if not runs:
        raise SystemExit(f"warm-rerun gate: no campaign entries in {manifest_path}")
    return runs[-1]


def evaluate(entry: dict, budget: dict) -> tuple[list[str], str]:
    """(failure reasons, summary line) for the warm campaign entry."""
    experiments = entry.get("experiments", {})
    if not experiments:
        return (["campaign entry has no experiments"], "no experiments")
    cached = [
        experiment_id
        for experiment_id, record in experiments.items()
        if record.get("cached")
    ]
    fraction = len(cached) / len(experiments)
    wall_s = float(entry.get("wall_s", 0.0))
    min_fraction = float(budget.get("min_cached_fraction", 0.8))
    max_wall_s = float(budget.get("max_wall_s", 60.0))

    failures = []
    if fraction < min_fraction:
        cold = sorted(set(experiments) - set(cached))
        failures.append(
            f"only {len(cached)}/{len(experiments)} experiments cached "
            f"({fraction:.0%} < {min_fraction:.0%}); cold: {', '.join(cold)}"
        )
    if wall_s > max_wall_s:
        failures.append(f"warm wall {wall_s:.1f}s > budget {max_wall_s:.1f}s")
    summary = (
        f"warm re-run: {len(cached)}/{len(experiments)} cached "
        f"({fraction:.0%}, floor {min_fraction:.0%}), wall {wall_s:.1f}s "
        f"(budget {max_wall_s:.1f}s)"
    )
    return failures, summary


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--manifest", type=Path, default=DEFAULT_MANIFEST)
    parser.add_argument("--budgets", type=Path, default=DEFAULT_BUDGETS)
    args = parser.parse_args(argv)

    budget_doc = json.loads(args.budgets.read_text(encoding="utf-8"))
    budget = budget_doc.get("warm_rerun", {})
    entry = load_latest_entry(args.manifest)
    failures, summary = evaluate(entry, budget)
    print(summary)
    for failure in failures:
        print(f"WARM-RERUN FAIL: {failure}")
    if not failures:
        print("WARM-RERUN OK: leaf edit invalidated nothing")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
