#!/usr/bin/env python
"""Validate Chrome trace-event exports (CI telemetry smoke).

    python scripts/validate_trace.py traces/*.trace.json
    python scripts/validate_trace.py --require-span rndv.handshake traces/fig7.trace.json
    python scripts/validate_trace.py --schema traces/fig10.trace.json

Checks each file against the trace-event schema (`repro.obs.
validate_chrome_trace`) so a malformed export fails the build loudly
instead of silently refusing to load in Perfetto.  ``--require-span``
additionally asserts that at least one complete ("X") span with the
given name is present — CI uses it to pin the acceptance criterion that
a traced fig7 run contains rendezvous-handshake spans.  ``--schema``
checks every span/instant name against the simulator's span catalog
below and that site-tagged spans actually carry their required args, so
a renamed span or a dropped ``src_site`` tag cannot slip past CI and
silently empty the flamegraph / WAN-matrix aggregations.
"""

import argparse
import json
import re
import sys

_COLL_OPS = (
    "barrier|bcast|reduce|allreduce|gather|gatherv|scatter|scatterv|scan"
    "|allgather|alltoall|alltoallv"
)

#: every complete-span ("X") name the simulator can emit
SPAN_CATALOG = [
    r"mpi\.job",
    r"mpi\.send\.eager",
    r"rndv\.(announce|handshake|data|ack)",
    rf"coll\.({_COLL_OPS})",
    rf"coll\.({_COLL_OPS})\.hier\.(lan|wan)",
    r"bcast\.vdg\.(scatter|allgather)",
    r"allreduce\.rab\.(reduce_scatter|allgather)",
    r"npb\.phase\.[a-z][a-z0-9_]*",
    r"tcp\.transmit",
]

#: every instant ("i") name the simulator can emit
INSTANT_CATALOG = [
    r"mpi\.job\.begin",
    r"tcp\.loss\.[a-z][a-z0-9_]*",
    r"tcp\.slowstart\.exit",
    r"tcp\.idle_restart",
    r"fault\.flap\.(down|up)",
]

#: span-name regex -> args the span must carry (feeds an aggregation)
REQUIRED_ARGS = [
    (r"tcp\.transmit", ("src_site", "dst_site", "bytes")),
    (r"rndv\.(announce|handshake|data|ack)", ("src_site", "dst_site")),
    (rf"coll\.({_COLL_OPS})\.hier\.(lan|wan)", ("bytes", "sites")),
]


def _full_match(patterns, name: str) -> bool:
    return any(re.fullmatch(pattern, name) for pattern in patterns)


def check_span_schema(events: list) -> list:
    """Span-catalog violations in a Chrome trace's event list."""
    errors = []
    seen: set = set()
    for event in events:
        if not isinstance(event, dict):
            continue
        phase, name = event.get("ph"), str(event.get("name", ""))
        if (phase, name) in seen:
            continue  # one report per (phase, name), not per event
        if phase == "X":
            if not _full_match(SPAN_CATALOG, name):
                errors.append(f"unknown span name {name!r}")
                seen.add((phase, name))
            args = event.get("args") or {}
            for pattern, required in REQUIRED_ARGS:
                if re.fullmatch(pattern, name):
                    missing = [key for key in required if key not in args]
                    if missing:
                        errors.append(
                            f"span {name!r} missing required args {missing}"
                        )
                        seen.add((phase, name))
        elif phase == "i":
            if not _full_match(INSTANT_CATALOG, name):
                errors.append(f"unknown instant name {name!r}")
                seen.add((phase, name))
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+", help="*.trace.json files to validate")
    parser.add_argument(
        "--require-span",
        action="append",
        default=[],
        metavar="NAME",
        help="fail unless every file contains an X span with this name "
        "(repeatable)",
    )
    parser.add_argument(
        "--schema",
        action="store_true",
        help="check every span/instant name against the simulator's span "
        "catalog and site-tagged spans for their required args",
    )
    args = parser.parse_args(argv)

    from repro.obs import validate_chrome_trace

    failed = False
    for path in args.paths:
        try:
            with open(path, encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: unreadable ({exc})")
            failed = True
            continue
        errors = validate_chrome_trace(document)
        events = document.get("traceEvents", []) if isinstance(document, dict) else []
        spans = {e.get("name") for e in events if isinstance(e, dict) and e.get("ph") == "X"}
        for name in args.require_span:
            if name not in spans:
                errors.append(f"required span {name!r} not present")
        if args.schema:
            errors.extend(check_span_schema(events))
        if errors:
            print(f"{path}: INVALID")
            for error in errors:
                print(f"  - {error}")
            failed = True
        else:
            print(f"{path}: ok ({len(events)} events, {len(spans)} span names)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
