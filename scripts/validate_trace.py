#!/usr/bin/env python
"""Validate Chrome trace-event exports (CI telemetry smoke).

    python scripts/validate_trace.py traces/*.trace.json
    python scripts/validate_trace.py --require-span rndv.handshake traces/fig7.trace.json

Checks each file against the trace-event schema (`repro.obs.
validate_chrome_trace`) so a malformed export fails the build loudly
instead of silently refusing to load in Perfetto.  ``--require-span``
additionally asserts that at least one complete ("X") span with the
given name is present — CI uses it to pin the acceptance criterion that
a traced fig7 run contains rendezvous-handshake spans.
"""

import argparse
import json
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+", help="*.trace.json files to validate")
    parser.add_argument(
        "--require-span",
        action="append",
        default=[],
        metavar="NAME",
        help="fail unless every file contains an X span with this name "
        "(repeatable)",
    )
    args = parser.parse_args(argv)

    from repro.obs import validate_chrome_trace

    failed = False
    for path in args.paths:
        try:
            with open(path, encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: unreadable ({exc})")
            failed = True
            continue
        errors = validate_chrome_trace(document)
        events = document.get("traceEvents", []) if isinstance(document, dict) else []
        spans = {e.get("name") for e in events if isinstance(e, dict) and e.get("ph") == "X"}
        for name in args.require_span:
            if name not in spans:
                errors.append(f"required span {name!r} not present")
        if errors:
            print(f"{path}: INVALID")
            for error in errors:
                print(f"  - {error}")
            failed = True
        else:
            print(f"{path}: ok ({len(events)} events, {len(spans)} span names)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
