#!/usr/bin/env python
"""Run every experiment and save the rendered reports under results/.

    python scripts/run_all_experiments.py [--fast] [--jobs N] [ids...]

Thin wrapper over the parallel orchestrator (``repro.runner``), producing
byte-identical reports to ``repro run all [--fast]``: with no flags it
regenerates the paper-scale goldens under ``results/``, and
``--fast --out results/fast`` regenerates the fast golden set that CI
diffs against.  Exits non-zero when any experiment fails, after running —
and summarising — everything else.
"""

import argparse
import sys

from repro.experiments import EXPERIMENTS, get_experiment
from repro.runner import ExperimentSpec, record_campaign, run_campaign


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("ids", nargs="*", default=None)
    parser.add_argument("--fast", action="store_true")
    parser.add_argument("--jobs", "-j", type=int, default=1)
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--out", default="results")
    args = parser.parse_args()

    ids = args.ids or sorted(EXPERIMENTS)
    for experiment_id in ids:
        get_experiment(experiment_id)  # fail fast on a typo'd id
    specs = [
        ExperimentSpec(experiment_id, fast=args.fast) for experiment_id in ids
    ]

    campaign = run_campaign(
        specs,
        jobs=max(1, args.jobs),
        use_cache=not args.no_cache,
        out_dir=args.out,
        progress=lambda line: print(line, flush=True),
    )
    record_campaign(campaign, label="run_all_experiments")
    print(campaign.summary(), flush=True)
    for run in campaign.failures:
        print(f"  {run.experiment_id}: {run.error}", file=sys.stderr)
    return 0 if campaign.ok else 1


if __name__ == "__main__":
    sys.exit(main())
