#!/usr/bin/env python
"""Run every experiment and save the rendered reports under results/.

    python scripts/run_all_experiments.py [--fast] [ids...]

Used to regenerate the numbers quoted in EXPERIMENTS.md.
"""

import argparse
import pathlib
import sys
import time

from repro.experiments import EXPERIMENTS, run_experiment

#: cheap experiments always run at paper scale; the NPB/ray2mesh ones are
#: driven by --fast
ALWAYS_FULL = {"table1", "table3", "table4", "fig3", "fig5", "fig6", "fig7", "fig9"}


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("ids", nargs="*", default=None)
    parser.add_argument("--fast", action="store_true")
    parser.add_argument("--out", default="results")
    args = parser.parse_args()

    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(exist_ok=True)
    ids = args.ids or sorted(EXPERIMENTS)
    for experiment_id in ids:
        fast = args.fast and experiment_id not in ALWAYS_FULL
        started = time.monotonic()
        result = run_experiment(experiment_id, fast=fast)
        elapsed = time.monotonic() - started
        path = out_dir / f"{experiment_id}.txt"
        path.write_text(result.text + f"\n\n[{elapsed:.1f}s wall, fast={fast}]\n")
        print(f"{experiment_id}: {elapsed:7.1f}s -> {path}", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
