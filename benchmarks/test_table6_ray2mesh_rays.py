"""Bench: Table 6 — ray2mesh ray distribution vs master placement."""

from repro.experiments import run_experiment


def test_table6(benchmark, fast, report):
    result = benchmark.pedantic(
        run_experiment, args=("table6",), kwargs={"fast": fast},
        rounds=1, iterations=1,
    )
    report(result)
    rows = {r["cluster"]: r for r in result.rows}
    # Sophia's faster Opterons compute the most rays, Nancy's the fewest,
    # whichever cluster hosts the master (the paper's Table 6 pattern).
    for master in ("nancy", "rennes", "sophia", "toulouse"):
        counts = {c: rows[c][f"master_{master}"] for c in rows}
        assert max(counts, key=counts.get) == "sophia"
        assert min(counts, key=counts.get) == "nancy"
