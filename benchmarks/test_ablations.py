"""Ablation benchmarks: isolate each design choice the paper credits.

Beyond the paper's figures, these quantify the individual mechanisms:
GridMPI's collective algorithms, pacing, the threshold tuning, the buffer
tuning, and the 'future work' hierarchical broadcast.
"""

import pytest

from repro.apps.pingpong import mpi_pingpong, mpi_stream
from repro.experiments.environments import get_environment, grid_placement, pingpong_pair
from repro.impls import get_implementation
from repro.npb import run_npb
from repro.tcp import TUNED_MAX_ONLY_SYSCTLS, TUNED_SYSCTLS
from repro.units import KB, MB


def _ft_time(impl, cls="A"):
    env = get_environment("fully_tuned")
    network, placement = grid_placement(16)
    return run_npb(
        "ft", cls, network, impl, placement, sysctls=env.sysctls,
        sample_iters=3,
    ).time


def test_van_de_geijn_bcast_ablation(benchmark, fast, report):
    """GridMPI's FT win disappears with a binomial broadcast."""
    env = get_environment("fully_tuned")
    gridmpi = env.impl("gridmpi")
    ablated = gridmpi.with_collective("bcast", "binomial")

    def run():
        return _ft_time(gridmpi), _ft_time(ablated)

    with_vdg, without = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nFT on the grid: Van de Geijn {with_vdg:.2f}s vs binomial {without:.2f}s")
    assert with_vdg < without


def test_hierarchical_bcast_extension(benchmark, fast, report):
    """The paper's §5 'topology-aware' future work: a hierarchical
    broadcast also beats binomial on the grid."""
    env = get_environment("fully_tuned")
    base = env.impl("mpich2")
    hierarchical = base.with_collective("bcast", "hierarchical")

    def run():
        return _ft_time(base), _ft_time(hierarchical)

    binomial, hier = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nFT on the grid: binomial {binomial:.2f}s vs hierarchical {hier:.2f}s")
    assert hier < binomial


def test_pacing_ablation(benchmark, fast, report):
    """Pacing (ss_cap divisor 1) vs unpaced: time to 500 Mbps on a 1 MB
    stream (Fig. 9's mechanism isolated)."""
    net, a, b = pingpong_pair("grid")
    paced = get_implementation("gridmpi")
    unpaced = get_implementation("mpich2").with_eager_threshold(65 * MB)

    def time_to_500(impl):
        samples = mpi_stream(net, impl, a, b, nbytes=MB, count=250, sysctls=TUNED_SYSCTLS)
        for s in samples:
            if s.bandwidth_mbps >= 500:
                return s.time
        return float("inf")

    def run():
        return time_to_500(paced), time_to_500(unpaced)

    t_paced, t_unpaced = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n1MB stream to 500 Mbps: paced {t_paced:.2f}s vs unpaced {t_unpaced:.2f}s")
    assert t_paced < t_unpaced


def test_buffer_sweep(benchmark, fast, report):
    """Bandwidth vs socket buffer size: the BDP is the knee."""
    from repro.tcp.sysctl import SysctlConfig

    net, a, b = pingpong_pair("grid")
    impl = get_implementation("mpich2").with_eager_threshold(65 * MB)
    sizes_kb = [128, 512, 2048, 4096] if fast else [64, 128, 256, 512, 1024, 2048, 4096, 8192]

    def run():
        results = {}
        for kb in sizes_kb:
            sysctls = SysctlConfig().with_buffer_max(kb * 1024).with_buffer_default(kb * 1024)
            curve = mpi_pingpong(
                net, impl, a, b, sizes=[16 * MB], repeats=12, sysctls=sysctls
            )
            results[kb] = curve.max_bandwidth_mbps
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nbuffer sweep (kB -> Mbps):", {k: round(v) for k, v in results.items()})
    # monotone non-decreasing, saturating above the ~1.45 MB BDP
    values = list(results.values())
    assert values == sorted(values)
    assert results[sizes_kb[-1]] > 2.5 * results[sizes_kb[0]]


def test_middle_value_matters_for_gridmpi(benchmark, fast, report):
    """§4.2.1: raising only the sysctl maxima fixes MPICH2 but not GridMPI."""
    net, a, b = pingpong_pair("grid")
    size = 16 * MB

    def bandwidth(impl_name, sysctls):
        impl = get_implementation(impl_name)
        curve = mpi_pingpong(net, impl, a, b, sizes=[size], repeats=12, sysctls=sysctls)
        return curve.max_bandwidth_mbps

    def run():
        return (
            bandwidth("mpich2", TUNED_MAX_ONLY_SYSCTLS),
            bandwidth("gridmpi", TUNED_MAX_ONLY_SYSCTLS),
            bandwidth("gridmpi", TUNED_SYSCTLS),
        )

    mpich2_max_only, gridmpi_max_only, gridmpi_full = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(
        f"\nmax-only sysctls: MPICH2 {mpich2_max_only:.0f} Mbps, GridMPI "
        f"{gridmpi_max_only:.0f} Mbps; with middle value: GridMPI {gridmpi_full:.0f} Mbps"
    )
    assert mpich2_max_only > 3 * gridmpi_max_only  # GridMPI stuck at 87 kB rwnd
    assert gridmpi_full > 5 * gridmpi_max_only
