"""Bench: Fig. 13 — 8+8 grid nodes vs 4 single-cluster nodes (speedup)."""

from repro.experiments import run_experiment


def test_fig13(benchmark, fast, report):
    result = benchmark.pedantic(
        run_experiment, args=("fig13",), kwargs={"fast": fast},
        rounds=1, iterations=1,
    )
    report(result)
    rows = {r["bench"]: r for r in result.rows}
    # The paper's argument for grids: everything gains from 4 -> 16 nodes
    # across the WAN at class B. The fast (class A) configuration exempts
    # the latency-bound CG/IS, which only break even at class B.
    gainers = result.rows if not fast else [
        r for r in result.rows if r["bench"] in ("ep", "mg", "lu", "sp", "bt", "ft")
    ]
    for row in gainers:
        assert row["gridmpi"] > 1.0, row["bench"]
    assert rows["lu"]["gridmpi"] > 2.0
    assert rows["cg"]["gridmpi"] < rows["lu"]["gridmpi"]
