"""Benchmark harness configuration.

Every module regenerates one table or figure of the paper.  The
pytest-benchmark timings measure the *simulator* (wall time of the
reproduction); the scientific output — the reproduced rows next to the
paper's values — is printed by each benchmark so that

    pytest benchmarks/ --benchmark-only -s

produces the full experiment report.

Set ``REPRO_FULL=1`` to run the paper-scale configurations (class B,
hundreds of pingpong repeats); the default keeps a full sweep under a few
minutes.
"""

import os

import pytest

FULL = os.environ.get("REPRO_FULL", "") == "1"


def fast_mode() -> bool:
    return not FULL


@pytest.fixture(scope="session")
def fast():
    return fast_mode()


def _report(result) -> None:
    print()
    print("=" * 78)
    print(result.text)


@pytest.fixture(scope="session")
def report():
    """Prints an experiment's rendered text (visible with ``-s``)."""
    return _report
