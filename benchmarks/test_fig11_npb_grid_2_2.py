"""Bench: Fig. 11 — NPB on 2+2 grid nodes, relative to MPICH2."""

from repro.experiments import run_experiment


def test_fig11(benchmark, fast, report):
    result = benchmark.pedantic(
        run_experiment, args=("fig11",), kwargs={"fast": fast},
        rounds=1, iterations=1,
    )
    report(result)
    rows = {r["bench"]: r for r in result.rows}
    # Same qualitative ordering as Fig. 10 at the smaller scale.
    assert rows["ft"]["gridmpi"] >= 1.0
    assert rows["bt"]["madeleine"] == 0.0
