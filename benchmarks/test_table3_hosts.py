"""Bench: Table 3 — host specifications (static testbed data)."""

from repro.experiments import run_experiment


def test_table3(benchmark, fast, report):
    result = benchmark(run_experiment, "table3", fast=fast)
    report(result)
    assert "2.6.18" in result.text
