"""Bench: Fig. 5 — cluster bandwidth with default parameters."""

from repro.experiments import run_experiment
from repro.units import MB


def test_fig5(benchmark, fast, report):
    result = benchmark.pedantic(
        run_experiment, args=("fig5",), kwargs={"fast": fast},
        rounds=1, iterations=1,
    )
    report(result)
    big = next(r for r in result.rows if r["nbytes"] == 64 * MB)
    for label, bw in big.items():
        if label != "nbytes":
            assert 800 <= bw <= 945, label  # all reach the 940 Mbps goodput
