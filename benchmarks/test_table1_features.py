"""Bench: Table 1 — implementation feature matrix (static)."""

from repro.experiments import run_experiment


def test_table1(benchmark, fast, report):
    result = benchmark(run_experiment, "table1", fast=fast)
    report(result)
    assert len(result.rows) == 6  # the paper lists all six implementations
