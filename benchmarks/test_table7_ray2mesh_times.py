"""Bench: Table 7 — ray2mesh phase times vs master placement."""

from repro.experiments import run_experiment


def test_table7(benchmark, fast, report):
    result = benchmark.pedantic(
        run_experiment, args=("table7",), kwargs={"fast": fast},
        rounds=1, iterations=1,
    )
    report(result)
    totals = [r["total_s"] for r in result.rows]
    comps = [r["comp_s"] for r in result.rows]
    # The paper's conclusion: master placement does not matter.
    assert max(totals) / min(totals) < 1.05
    assert max(comps) / min(comps) < 1.05
