"""Bench: Fig. 10 — NPB on 8+8 grid nodes, relative to MPICH2."""

from repro.experiments import run_experiment


def test_fig10(benchmark, fast, report):
    result = benchmark.pedantic(
        run_experiment, args=("fig10",), kwargs={"fast": fast},
        rounds=1, iterations=1,
    )
    report(result)
    rows = {r["bench"]: r for r in result.rows}
    # GridMPI's collective optimisations dominate FT and IS.
    assert rows["ft"]["gridmpi"] > 1.3
    assert rows["is"]["gridmpi"] >= 1.0
    # MPICH2 holds its own on LU.
    assert rows["lu"]["gridmpi"] <= 1.1
    # MPICH-Madeleine cannot finish BT/SP on the grid (paper §4.3).
    assert rows["bt"]["madeleine"] == 0.0
    assert rows["sp"]["madeleine"] == 0.0
