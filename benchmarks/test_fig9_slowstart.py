"""Bench: Fig. 9 — the slow-start ramp of a 1 MB message stream."""

from repro.experiments import run_experiment


def test_fig9(benchmark, fast, report):
    result = benchmark.pedantic(
        run_experiment, args=("fig9",), kwargs={"fast": fast},
        rounds=1, iterations=1,
    )
    report(result)
    rows = {r["stack"]: r for r in result.rows}
    assert 500 <= rows["TCP"]["peak_mbps"] <= 640  # the ~570 Mbps ceiling
    # paced (GridMPI ~ TCP) reaches 500 Mbps before the unpaced stacks
    assert rows["GridMPI"]["t500_s"] <= rows["MPICH2"]["t500_s"]
    assert rows["GridMPI"]["t500_s"] <= rows["OpenMPI"]["t500_s"]
