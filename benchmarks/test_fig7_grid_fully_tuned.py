"""Bench: Fig. 7 — grid bandwidth after TCP + MPI tuning."""

from repro.experiments import run_experiment
from repro.units import MB


def test_fig7(benchmark, fast, report):
    result = benchmark.pedantic(
        run_experiment, args=("fig7",), kwargs={"fast": fast},
        rounds=1, iterations=1,
    )
    report(result)
    big = next(r for r in result.rows if r["nbytes"] == 64 * MB)
    impls = {k: v for k, v in big.items() if k not in ("nbytes", "TCP")}
    assert all(bw >= 700 for bw in impls.values())
    assert min(impls, key=impls.get) == "OpenMPI"  # its big-message deficit
