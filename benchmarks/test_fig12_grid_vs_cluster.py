"""Bench: Fig. 12 — 8+8 grid nodes vs 16 single-cluster nodes."""

from repro.experiments import run_experiment


def test_fig12(benchmark, fast, report):
    result = benchmark.pedantic(
        run_experiment, args=("fig12",), kwargs={"fast": fast},
        rounds=1, iterations=1,
    )
    report(result)
    rows = {r["bench"]: r for r in result.rows}
    # EP barely notices the WAN; small-message CG/MG are hit hardest.
    assert rows["ep"]["gridmpi"] > 0.8
    assert rows["cg"]["gridmpi"] < 0.6
    assert rows["mg"]["gridmpi"] < 0.8
    # Big-message LU holds up much better than CG.
    assert rows["lu"]["mpich2"] > rows["cg"]["mpich2"]
