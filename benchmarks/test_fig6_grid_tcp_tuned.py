"""Bench: Fig. 6 — grid bandwidth after the §4.2.1 TCP tuning."""

from repro.experiments import run_experiment
from repro.units import KB, MB


def test_fig6(benchmark, fast, report):
    result = benchmark.pedantic(
        run_experiment, args=("fig6",), kwargs={"fast": fast},
        rounds=1, iterations=1,
    )
    report(result)
    big = next(r for r in result.rows if r["nbytes"] == 64 * MB)
    assert big["TCP"] >= 850
    assert big["GridMPI"] >= 800
    # The eager/rendezvous dip persists for the default-threshold stacks.
    dip = next(r for r in result.rows if r["nbytes"] == 256 * KB)
    assert dip["GridMPI"] > 1.5 * dip["MPICH-Madeleine"]
