"""Bench: Table 4 — one-byte latencies, cluster vs grid, vs the paper."""

import pytest

from repro.experiments import run_experiment


def test_table4(benchmark, fast, report):
    result = benchmark.pedantic(
        run_experiment, args=("table4",), kwargs={"fast": fast},
        rounds=1, iterations=1,
    )
    report(result)
    for row in result.rows:
        assert row["cluster_us"] == pytest.approx(row["paper_cluster_us"], abs=2)
        assert row["grid_us"] == pytest.approx(row["paper_grid_us"], abs=3)
