"""Benches for the beyond-the-paper extensions (§2.1.5-6 models, §5
future work): MPICH-G2's parallel streams, topology-aware broadcast on
four sites, and high-speed local fabrics."""

import dataclasses

import pytest

from repro.impls import get_implementation
from repro.mpi import MpiJob
from repro.net import Network, build_ray2mesh_testbed
from repro.tcp import TUNED_SYSCTLS
from repro.units import Gbps, MB, msec, usec


def test_parallel_streams_cold_path(benchmark, fast, report):
    """MPICH-G2's striping on a cold 11.6 ms path, 32 MB message."""
    from repro.net import build_pair_testbed

    def first_transfer(streams):
        impl = dataclasses.replace(
            get_implementation("mpichg2").with_eager_threshold(65 * MB),
            parallel_streams=streams,
        )
        net = build_pair_testbed(nodes_per_site=1)
        placement = [net.clusters["rennes"].nodes[0], net.clusters["nancy"].nodes[0]]
        job = MpiJob(net, impl, placement, sysctls=TUNED_SYSCTLS)

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(1, nbytes=32 * MB)
            else:
                yield from ctx.comm.recv(0)
                return ctx.wtime()

        return job.run(program).returns[1]

    def run():
        return {k: first_transfer(k) for k in (1, 2, 4, 8)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\ncold 32 MB transfer by stream count (s):",
          {k: round(v, 2) for k, v in results.items()})
    assert results[4] < 0.7 * results[1]
    assert results[2] < results[1]


def test_topology_aware_bcast_four_sites(benchmark, fast, report):
    """Hierarchical vs binomial broadcast latency over the four-site
    ray2mesh testbed (one WAN hop instead of two or more)."""

    def bcast_time(impl_name):
        net = build_ray2mesh_testbed(nodes_per_site=8)
        placement = [n for s in sorted(net.clusters) for n in net.clusters[s].nodes]
        impl = get_implementation(impl_name)
        job = MpiJob(net, impl, placement, sysctls=TUNED_SYSCTLS)

        def program(ctx):
            t0 = ctx.wtime()
            yield from ctx.comm.bcast(None, nbytes=1024, root=0)
            return ctx.wtime() - t0

        return max(job.run(program).returns)

    def run():
        return bcast_time("mpich2"), bcast_time("mpichvmi")

    binomial, hierarchical = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n1 kB bcast over 4 sites: binomial {binomial * 1e3:.1f} ms, "
          f"hierarchical {hierarchical * 1e3:.1f} ms")
    assert hierarchical < 0.7 * binomial


def test_myrinet_local_fabric(benchmark, fast, report):
    """§5: 'using these networks for local communications can be
    efficient' — isolate the fabric: MPICH-Madeleine on a Myrinet
    cluster, with the native driver vs forced onto TCP, for a
    bandwidth-heavy kernel (BT's 146 kB faces; latency-pipelined LU
    would barely notice, which is itself §5's caveat about keeping the
    gateway overhead low)."""
    from repro.npb import run_npb

    def bt_time(impl):
        net = Network("hetero")
        cluster = net.add_cluster(
            "rennes", intra_rtt=usec(58), fabric="myrinet",
            fabric_bps=Gbps(2), fabric_rtt=usec(16),
        )
        cluster.add_nodes(16, gflops=1.1)
        return run_npb(
            "bt", "A" if fast else "B", net, impl, cluster.nodes,
            sysctls=TUNED_SYSCTLS, sample_iters=10,
            honor_known_failures=False,
        ).time

    madeleine = get_implementation("madeleine").with_eager_threshold(65 * MB)
    tcp_only = dataclasses.replace(madeleine, native_fabrics=frozenset())

    def run():
        return bt_time(madeleine), bt_time(tcp_only)

    native, over_tcp = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nBT on a 16-node Myrinet cluster (MPICH-Madeleine): "
          f"native fabric {native:.1f}s vs TCP {over_tcp:.1f}s")
    assert native < over_tcp
