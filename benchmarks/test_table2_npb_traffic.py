"""Bench: Table 2 — NPB communication features from the traced runs."""

from repro.experiments import run_experiment


def test_table2(benchmark, fast, report):
    result = benchmark.pedantic(
        run_experiment, args=("table2",), kwargs={"fast": fast},
        rounds=1, iterations=1,
    )
    report(result)
    by_bench = {r["bench"]: r for r in result.rows}
    assert by_bench["ep"]["type"] == "P. to P."
    assert by_bench["ft"]["type"] == "Collective"
    # LU: ~1 kB point-to-point messages, the paper's signature
    assert any(500 <= s <= 1500 for s, _ in by_bench["lu"]["dominant_sizes"])
