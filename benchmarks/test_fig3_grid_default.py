"""Bench: Fig. 3 — the default-parameter bandwidth collapse on the grid."""

from repro.experiments import run_experiment
from repro.units import MB


def test_fig3(benchmark, fast, report):
    result = benchmark.pedantic(
        run_experiment, args=("fig3",), kwargs={"fast": fast},
        rounds=1, iterations=1,
    )
    report(result)
    big = next(r for r in result.rows if r["nbytes"] >= 8 * MB)
    for label, bw in big.items():
        if label != "nbytes":
            assert bw <= 130, label  # the paper: nothing above 120 Mbps
