"""Bench: Table 5 — ideal eager/rendezvous thresholds."""

from repro.experiments import run_experiment
from repro.units import MB


def test_table5(benchmark, fast, report):
    result = benchmark.pedantic(
        run_experiment, args=("table5",), kwargs={"fast": fast},
        rounds=1, iterations=1,
    )
    report(result)
    by_name = {r["implementation"]: r for r in result.rows}
    assert by_name["mpich2"]["measured_grid"] == 65 * MB
    assert by_name["openmpi"]["measured_grid"] == 32 * MB
    assert by_name["gridmpi"]["measured_grid"] is None  # never rendezvous
