"""Point-to-point semantics: matching, ordering, eager/rendezvous, errors."""

import pytest

from repro.errors import MpiError, MpiTruncationError
from repro.mpi import ANY_SOURCE, ANY_TAG, MpiJob
from repro.impls import get_implementation
from repro.net import build_pair_testbed
from repro.tcp import TUNED_SYSCTLS
from repro.units import KB, MB, msec, to_usec, usec
from tests.conftest import make_cluster_job, make_grid_job


def run2(job, rank0, rank1):
    """Run a two-rank job with distinct per-rank generators."""

    def program(ctx):
        if ctx.rank == 0:
            result = yield from rank0(ctx)
        else:
            result = yield from rank1(ctx)
        return result

    return job.run(program)


def test_send_recv_payload_and_status():
    job = make_cluster_job(nprocs=2)

    def sender(ctx):
        yield from ctx.comm.send(1, nbytes=100, tag=5, payload={"x": 42})

    def receiver(ctx):
        payload, status = yield from ctx.comm.recv(0, 5)
        assert payload == {"x": 42}
        assert status.source == 0
        assert status.tag == 5
        assert status.nbytes == 100
        return "ok"

    result = run2(job, sender, receiver)
    assert result.returns[1] == "ok"


def test_messages_do_not_overtake():
    job = make_cluster_job(nprocs=2)
    got = []

    def sender(ctx):
        for i in range(10):
            yield from ctx.comm.send(1, nbytes=64, tag=3, payload=i)

    def receiver(ctx):
        for _ in range(10):
            payload, _ = yield from ctx.comm.recv(0, 3)
            got.append(payload)

    run2(job, sender, receiver)
    assert got == list(range(10))


def test_mixed_eager_rndv_preserve_order():
    """A rendezvous message followed by eager ones must still match first."""
    job = make_cluster_job("mpich2", nprocs=2)  # threshold 256 kB
    got = []

    def sender(ctx):
        yield from ctx.comm.send(1, nbytes=MB, tag=1, payload="big-rndv")
        yield from ctx.comm.send(1, nbytes=64, tag=1, payload="small-eager")

    def receiver(ctx):
        for _ in range(2):
            payload, _ = yield from ctx.comm.recv(0, 1)
            got.append(payload)

    run2(job, sender, receiver)
    assert got == ["big-rndv", "small-eager"]


def test_any_source_any_tag():
    job = make_cluster_job(nprocs=3)

    def program(ctx):
        if ctx.rank == 0:
            seen = set()
            for _ in range(2):
                payload, status = yield from ctx.comm.recv(ANY_SOURCE, ANY_TAG)
                seen.add((payload, status.source, status.tag))
            return seen
        yield from ctx.comm.send(0, nbytes=10, tag=ctx.rank * 10, payload=f"from{ctx.rank}")

    result = job.run(program)
    assert result.returns[0] == {("from1", 1, 10), ("from2", 2, 20)}


def test_tag_selectivity():
    """A recv on tag B must not consume an earlier message with tag A."""
    job = make_cluster_job(nprocs=2)

    def sender(ctx):
        yield from ctx.comm.send(1, nbytes=10, tag=1, payload="first")
        yield from ctx.comm.send(1, nbytes=10, tag=2, payload="second")

    def receiver(ctx):
        p2, _ = yield from ctx.comm.recv(0, 2)
        p1, _ = yield from ctx.comm.recv(0, 1)
        return (p1, p2)

    result = run2(job, sender, receiver)
    assert result.returns[1] == ("first", "second")


def test_isend_irecv_waitall():
    job = make_cluster_job(nprocs=2)

    def sender(ctx):
        reqs = [ctx.comm.isend(1, nbytes=100, tag=i, payload=i) for i in range(5)]
        yield from ctx.comm.waitall(reqs)

    def receiver(ctx):
        reqs = [ctx.comm.irecv(0, i) for i in range(5)]
        results = yield from ctx.comm.waitall(reqs)
        return [payload for payload, _ in results]

    result = run2(job, sender, receiver)
    assert result.returns[1] == [0, 1, 2, 3, 4]


def test_waitany():
    job = make_cluster_job(nprocs=3)

    # rank2 sends immediately; rank1 after 1 s of compute.
    def program_fixed(ctx):
        if ctx.rank == 0:
            reqs = [ctx.comm.irecv(1, 0), ctx.comm.irecv(2, 0)]
            index, (payload, _) = yield from ctx.comm.waitany(reqs)
            return (index, payload)
        if ctx.rank == 2:
            yield from ctx.comm.send(0, nbytes=10, payload="fast")
        else:
            yield from ctx.compute_time(1.0)
            yield from ctx.comm.send(0, nbytes=10, payload="slow")

    result = job.run(program_fixed)
    assert result.returns[0] == (1, "fast")


def test_sendrecv_exchange():
    job = make_cluster_job(nprocs=2)

    def program(ctx):
        other = 1 - ctx.rank
        payload, _ = yield from ctx.comm.sendrecv(
            other, nbytes=100, payload=f"r{ctx.rank}", src=other
        )
        return payload

    result = job.run(program)
    assert result.returns == ["r1", "r0"]


def test_truncation_error():
    job = make_cluster_job(nprocs=2)

    def sender(ctx):
        yield from ctx.comm.send(1, nbytes=1000, payload="big")

    def receiver(ctx):
        yield from ctx.comm.recv(0, max_bytes=10)

    with pytest.raises(MpiTruncationError):
        run2(job, sender, receiver)


def test_invalid_ranks_and_tags():
    job = make_cluster_job(nprocs=2)

    def bad_dst(ctx):
        yield from ctx.comm.send(99, nbytes=1)

    with pytest.raises(MpiError):
        job.run(bad_dst)

    job2 = make_cluster_job(nprocs=2)

    def bad_tag(ctx):
        yield from ctx.comm.send(0 if ctx.rank else 1, nbytes=1, tag=-5)

    with pytest.raises(MpiError):
        job2.run(bad_tag)


def test_unexpected_eager_pays_copy():
    """A late-posted receive of an eager message costs an extra copy."""
    job = make_cluster_job("gridmpi", nprocs=2)  # always eager
    size = 8 * MB

    def sender(ctx):
        yield from ctx.comm.send(1, nbytes=size, payload=None)

    def receiver(ctx):
        yield from ctx.compute_time(2.0)  # message arrives long before
        t0 = ctx.wtime()
        yield from ctx.comm.recv(0)
        return ctx.wtime() - t0

    result = run2(job, sender, receiver)
    copy_time = size / get_implementation("gridmpi").copy_bandwidth
    assert result.returns[1] == pytest.approx(copy_time, rel=0.05)
    assert result.mailbox_stats[1].unexpected == 1
    assert result.mailbox_stats[1].copies_bytes == size


def test_preposted_recv_has_no_copy():
    job = make_cluster_job("gridmpi", nprocs=2)

    def sender(ctx):
        yield from ctx.compute_time(1.0)  # recv is posted first
        yield from ctx.comm.send(1, nbytes=8 * MB)

    def receiver(ctx):
        yield from ctx.comm.recv(0)

    result = run2(job, sender, receiver)
    assert result.mailbox_stats[1].unexpected == 0
    assert result.mailbox_stats[1].copies_bytes == 0


def test_rndv_blocks_until_recv_posted():
    """Above the threshold, a blocking send synchronises with the recv."""
    job = make_cluster_job("mpich2", nprocs=2)
    delay = 0.5

    def sender(ctx):
        yield from ctx.comm.send(1, nbytes=MB)  # > 256 kB: rendezvous
        return ctx.wtime()

    def receiver(ctx):
        yield from ctx.compute_time(delay)
        yield from ctx.comm.recv(0)

    result = run2(job, sender, receiver)
    assert result.returns[0] >= delay  # sender waited for the handshake


def test_eager_send_does_not_block_on_recv():
    job = make_cluster_job("mpich2", nprocs=2)

    def sender(ctx):
        yield from ctx.comm.send(1, nbytes=1 * KB)  # eager
        return ctx.wtime()

    def receiver(ctx):
        yield from ctx.compute_time(2.0)
        yield from ctx.comm.recv(0)

    result = run2(job, sender, receiver)
    assert result.returns[0] < 0.01  # returned as soon as buffered


def test_grid_rndv_costs_an_extra_round_trip():
    """The rendezvous handshake adds ~1 WAN RTT vs eager (the Fig. 7 dip)."""
    size = 512 * KB

    def one_way(impl_name, threshold):
        impl = get_implementation(impl_name).with_eager_threshold(threshold)
        job = make_grid_job(nprocs=2, impl=impl)

        def sender(ctx):
            yield from ctx.comm.send(1, nbytes=size)

        def receiver(ctx):
            t0 = ctx.wtime()
            yield from ctx.comm.recv(0)
            return ctx.wtime() - t0

        return run2(job, sender, receiver).returns[1]

    eager_time = one_way("mpich2", threshold=MB)
    rndv_time = one_way("mpich2", threshold=KB)
    assert rndv_time - eager_time == pytest.approx(msec(11.6), rel=0.25)


def test_mpi_latency_is_tcp_plus_overhead():
    """Table 4: MPICH2 adds ~5 us in the cluster, ~6 us on the grid."""

    def latency(job):
        def sender(ctx):
            yield from ctx.comm.send(1, nbytes=1)

        def receiver(ctx):
            yield from ctx.comm.recv(0)
            return ctx.wtime()

        return run2(job, sender, receiver).returns[1]

    lat_cluster = latency(make_cluster_job("mpich2", nprocs=2))
    assert to_usec(lat_cluster) == pytest.approx(46, abs=2)
    lat_grid = latency(make_grid_job("mpich2", nprocs=2))
    assert to_usec(lat_grid) == pytest.approx(5818, abs=3)


def test_self_send_rejected():
    job = make_cluster_job(nprocs=2)

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(0, nbytes=1)

    with pytest.raises(MpiError):
        job.run(program)


def test_intranode_ranks_communicate():
    """Two ranks placed on the same node use the local (memcpy) link."""
    net = build_pair_testbed(nodes_per_site=1)
    node = net.clusters["rennes"].nodes[0]
    impl = get_implementation("mpich2")
    job = MpiJob(net, impl, [node, node], sysctls=TUNED_SYSCTLS)

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(1, nbytes=MB, payload="local")
        else:
            payload, _ = yield from ctx.comm.recv(0)
            return (payload, ctx.wtime())

    result = job.run(program)
    payload, latency = result.returns[1]
    assert payload == "local"
    assert latency < usec(1000)  # a memcpy, far below any WAN latency
