"""Fixtures for the SCHED schedule-sensitivity rules.

Known-bad snippets model reliance on the event queue's same-timestamp
tie-breaking (``(time, priority, seq)`` in sim/core.py); known-good
counterparts use the sanctioned escapes — explicit priorities, positive
delays, sorted iteration, a sequence tie-breaker in hand-built heaps.
"""

import textwrap

from repro.analysis.linter import lint_source


def rules_of(source):
    return [v.rule for v in lint_source(textwrap.dedent(source))]


class TestZeroDelayChains:
    def test_two_zero_delay_timeouts_flagged(self):
        assert rules_of(
            """
            def f(env):
                yield env.timeout(0)
                yield env.timeout(0)
            """
        ) == ["SCHED001"]

    def test_single_zero_delay_not_flagged(self):
        assert rules_of(
            """
            def f(env):
                yield env.timeout(0)
            """
        ) == []

    def test_zero_delay_in_loop_flagged(self):
        assert rules_of(
            """
            def f(env, events):
                for event in events:
                    env.schedule(event, 0)
            """
        ) == ["SCHED001"]

    def test_explicit_priority_exempts_schedule(self):
        assert rules_of(
            """
            def f(env, events):
                for event in events:
                    env.schedule(event, 0, priority=0)
            """
        ) == []

    def test_positive_delays_not_flagged(self):
        assert rules_of(
            """
            def f(env):
                yield env.timeout(0.1)
                yield env.timeout(0.1)
            """
        ) == []

    def test_engine_internal_schedule_exempt(self):
        # _schedule's signature carries the priority explicitly
        assert rules_of(
            """
            def trigger(self, env, event):
                env._schedule(event, 0, 0.0)
                env._schedule(event, 1, 0.0)
            """
        ) == []


class TestSetIterationDataflow:
    def test_tracked_set_variable_flagged(self):
        # DET006 only sees literal sets in the for-header; this one is
        # built two statements earlier and found by dataflow
        assert rules_of(
            """
            def f(env, flows):
                pending = set(flows)
                for flow in pending:
                    env.process(flow.run())
            """
        ) == ["SCHED002"]

    def test_set_through_union_flagged(self):
        assert rules_of(
            """
            def f(env, a, b):
                pending = set(a) | set(b)
                for flow in pending:
                    env.timeout(flow.eta)
            """
        ) == ["SCHED002"]

    def test_trace_hash_fed_from_set_flagged(self):
        assert rules_of(
            """
            def f(hasher, flows):
                seen = set(flows)
                for flow in seen:
                    hasher.update_text(flow.name)
            """
        ) == ["SCHED002"]

    def test_sorted_view_not_flagged(self):
        assert rules_of(
            """
            def f(env, flows):
                pending = set(flows)
                for flow in sorted(pending, key=lambda f: f.uid):
                    env.process(flow.run())
            """
        ) == []

    def test_list_iteration_not_flagged(self):
        assert rules_of(
            """
            def f(env, flows):
                pending = list(flows)
                for flow in pending:
                    env.process(flow.run())
            """
        ) == []

    def test_set_iteration_without_side_effects_not_flagged(self):
        assert rules_of(
            """
            def f(flows):
                pending = set(flows)
                total = 0.0
                for flow in pending:
                    total += flow.remaining_bits
                return total
            """
        ) == []

    def test_literal_set_stays_det006(self):
        # literal sets in the header remain DET006's finding, not SCHED002
        assert rules_of(
            """
            def f(env, flows):
                for flow in set(flows):
                    env.timeout(flow.eta)
            """
        ) == ["DET006"]


class TestHeapEntries:
    def test_time_payload_tuple_flagged(self):
        assert rules_of(
            """
            import heapq

            def push(queue, when, event):
                heapq.heappush(queue, (when, event))
            """
        ) == ["SCHED003"]

    def test_seq_tiebreaker_exempts(self):
        assert rules_of(
            """
            import heapq

            def push(queue, when, seq, event):
                heapq.heappush(queue, (when, seq, event))
            """
        ) == []

    def test_counter_tiebreaker_exempts(self):
        assert rules_of(
            """
            import heapq
            import itertools

            counter = itertools.count()

            def push(queue, deadline, event):
                heapq.heappush(queue, (deadline, next(counter), event))
            """
        ) == []

    def test_non_time_first_element_not_flagged(self):
        assert rules_of(
            """
            import heapq

            def push(queue, weight, event):
                heapq.heappush(queue, (weight, event))
            """
        ) == []

    def test_pragma_suppresses_sched(self):
        assert rules_of(
            """
            import heapq

            def push(queue, when, event):
                heapq.heappush(queue, (when, event))  # repro: noqa=SCHED003
            """
        ) == []
