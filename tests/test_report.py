"""Tests for the ASCII table and chart renderers."""

import math

import pytest

from repro.report import Table, bar_chart, line_chart


def test_table_basic():
    t = Table(["a", "b"], title="demo")
    t.add_row(["x", 1])
    t.add_row(["yyyy", 2.5])
    text = t.render()
    assert "demo" in text
    assert "a" in text and "b" in text
    assert "yyyy | 2.5" in text


def test_table_formats():
    t = Table(["v"])
    t.add_row([None])
    t.add_row([float("inf")])
    t.add_row([float("nan")])
    t.add_row([5818.7])
    t.add_row([0.001234])
    text = t.render()
    assert "-" in text
    assert "DNF" in text
    assert "5819" in text
    assert "0.00123" in text


def test_table_wrong_row_width():
    t = Table(["a", "b"])
    with pytest.raises(ValueError):
        t.add_row([1])


def test_table_needs_columns():
    with pytest.raises(ValueError):
        Table([])


def test_line_chart_renders_all_series():
    chart = line_chart(
        {"one": [(1, 10.0), (2, 20.0)], "two": [(1, 5.0), (2, 15.0)]},
        title="t",
        x_labels=["1k", "2k"],
    )
    assert "t" in chart
    assert "* one" in chart
    assert "o two" in chart
    assert "ymax = 20" in chart


def test_line_chart_empty_rejected():
    with pytest.raises(ValueError):
        line_chart({})


def test_bar_chart():
    chart = bar_chart({"a": 1.0, "b": 2.0, "dnf": float("inf")}, title="bars")
    assert "bars" in chart
    assert "DNF" in chart
    assert chart.count("#") > 0


def test_bar_chart_empty_rejected():
    with pytest.raises(ValueError):
        bar_chart({})


def test_bar_chart_reference_mark():
    chart = bar_chart({"a": 2.0}, reference=1.0)
    assert "ref=1" in chart
