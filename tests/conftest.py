"""Shared fixtures for the test suite, plus the repro lint gate.

The lint gate (``repro.analysis.pytest_plugin``) is wired in by hook
delegation rather than ``pytest_plugins`` so it works regardless of which
directory pytest treats as rootdir.
"""

import pytest

from repro.analysis import pytest_plugin as _lint_gate
from repro.impls import get_implementation
from repro.net import build_pair_testbed
from repro.tcp import TUNED_SYSCTLS


def pytest_addoption(parser):
    _lint_gate.pytest_addoption(parser)


def pytest_sessionstart(session):
    _lint_gate.pytest_sessionstart(session)


def make_cluster_job(impl_name="mpich2", nprocs=4, tuned=True, impl=None, **kwargs):
    """An MpiJob with all ranks inside the Rennes cluster."""
    from repro.mpi import MpiJob

    net = build_pair_testbed(nodes_per_site=max(nprocs, 2))
    placement = net.clusters["rennes"].nodes[:nprocs]
    impl = impl or get_implementation(impl_name)
    sysctls = TUNED_SYSCTLS if tuned else None
    return MpiJob(net, impl, placement, sysctls=sysctls, **kwargs)


def make_grid_job(impl_name="mpich2", nprocs=4, tuned=True, impl=None, **kwargs):
    """An MpiJob with ranks split evenly between Rennes and Nancy."""
    from repro.mpi import MpiJob

    half = nprocs // 2
    net = build_pair_testbed(nodes_per_site=max(half, 1) + nprocs % 2)
    placement = (
        net.clusters["rennes"].nodes[: half + nprocs % 2]
        + net.clusters["nancy"].nodes[:half]
    )
    impl = impl or get_implementation(impl_name)
    sysctls = TUNED_SYSCTLS if tuned else None
    return MpiJob(net, impl, placement, sysctls=sysctls, **kwargs)


@pytest.fixture()
def cluster_job():
    return make_cluster_job()


@pytest.fixture()
def grid_job():
    return make_grid_job()
