"""Tests for topology, routing and the Grid'5000 builders."""

import pytest

from repro.errors import NetworkConfigError
from repro.net import (
    GRID5000_RTT_MS,
    HOST_SPECS,
    Network,
    build_grid5000,
    build_pair_testbed,
    build_ray2mesh_testbed,
)
from repro.net.grid5000 import ALL_SITES, INTRA_CLUSTER_RTT, node_names
from repro.units import Gbps, Mbps, msec, usec


def test_add_cluster_and_nodes():
    net = Network()
    c = net.add_cluster("x")
    nodes = c.add_nodes(4, gflops=2.0)
    assert [n.name for n in nodes] == ["x-0", "x-1", "x-2", "x-3"]
    assert all(n.gflops == 2.0 for n in nodes)
    assert len(net.nodes) == 4


def test_duplicate_cluster_rejected():
    net = Network()
    net.add_cluster("x")
    with pytest.raises(NetworkConfigError):
        net.add_cluster("x")


def test_node_lookup():
    net = Network()
    net.add_cluster("x").add_nodes(2)
    assert net.node("x-1").name == "x-1"
    with pytest.raises(NetworkConfigError):
        net.node("nope")


def test_intra_cluster_route():
    net = Network()
    c = net.add_cluster("x", intra_rtt=usec(41))
    a, b = c.add_nodes(2)
    route = net.route(a, b)
    assert not route.inter_site
    assert route.one_way_delay == pytest.approx(usec(20.5))
    assert route.rtt == pytest.approx(usec(41))
    assert route.pipes == (a.nic_tx, b.nic_rx)
    assert route.bottleneck_bps == Gbps(1)


def test_inter_site_route():
    net = Network()
    a = net.add_cluster("a").add_nodes(1)[0]
    b = net.add_cluster("b").add_nodes(1)[0]
    net.set_rtt("a", "b", msec(11.6))
    route = net.route(a, b)
    assert route.inter_site
    assert route.one_way_delay == pytest.approx(msec(5.8))
    assert len(route.pipes) == 4
    assert route.pipes[0] is a.nic_tx
    assert route.pipes[-1] is b.nic_rx


def test_route_to_self_rejected():
    net = Network()
    a = net.add_cluster("a").add_nodes(1)[0]
    with pytest.raises(NetworkConfigError):
        net.route(a, a)


def test_missing_rtt_rejected():
    net = Network()
    a = net.add_cluster("a").add_nodes(1)[0]
    b = net.add_cluster("b").add_nodes(1)[0]
    with pytest.raises(NetworkConfigError):
        net.route(a, b)


def test_route_cache_consistent():
    net = Network()
    a = net.add_cluster("a").add_nodes(1)[0]
    b = net.add_cluster("b").add_nodes(1)[0]
    net.set_rtt("a", "b", msec(10))
    r1 = net.route(a, b)
    assert net.route(a, b) is r1
    net.set_rtt("a", "b", msec(20))  # invalidates cache
    assert net.route(a, b).rtt == pytest.approx(msec(20))


def test_wan_access_bottleneck():
    net = Network()
    a = net.add_cluster("a", wan_access_bps=Mbps(100)).add_nodes(1)[0]
    b = net.add_cluster("b").add_nodes(1)[0]
    net.set_rtt("a", "b", msec(10))
    assert net.route(a, b).bottleneck_bps == Mbps(100)


def test_compute_seconds():
    net = Network()
    node = net.add_cluster("a").add_nodes(1, gflops=2.0)[0]
    assert node.compute_seconds(4e9) == pytest.approx(2.0)


def test_invalid_gflops():
    net = Network()
    c = net.add_cluster("a")
    with pytest.raises(NetworkConfigError):
        c.add_nodes(1, gflops=0)


# --- Grid'5000 builders ---------------------------------------------------------
def test_pair_testbed_defaults():
    net = build_pair_testbed(nodes_per_site=8)
    assert sorted(net.clusters) == ["nancy", "rennes"]
    assert len(net.clusters["rennes"].nodes) == 8
    r, n = net.clusters["rennes"].nodes[0], net.clusters["nancy"].nodes[0]
    assert net.rtt(r, n) == pytest.approx(msec(11.6))
    # 58 us wire RTT inside Rennes (Table 4's 41 us one-way TCP latency
    # minus the 12 us stack crossing, doubled).
    assert net.rtt(r, net.clusters["rennes"].nodes[1]) == pytest.approx(usec(58))


def test_pair_testbed_host_speeds_from_table3():
    net = build_pair_testbed()
    rennes_gflops = net.clusters["rennes"].nodes[0].gflops
    nancy_gflops = net.clusters["nancy"].nodes[0].gflops
    assert rennes_gflops == HOST_SPECS["rennes"].gflops
    assert nancy_gflops == HOST_SPECS["nancy"].gflops
    # Rennes (Opteron 248, 2.2 GHz) is faster than Nancy (246, 2.0 GHz).
    assert rennes_gflops > nancy_gflops


def test_pair_testbed_unknown_pair_rejected():
    with pytest.raises(NetworkConfigError):
        build_pair_testbed(sites=("rennes", "lille"))


def test_ray2mesh_testbed():
    net = build_ray2mesh_testbed()
    assert sorted(net.clusters) == ["nancy", "rennes", "sophia", "toulouse"]
    # Paper ordering: Nancy < Rennes, Toulouse < Sophia.
    speed = {s: net.clusters[s].nodes[0].gflops for s in net.clusters}
    assert speed["nancy"] < speed["toulouse"] <= speed["rennes"] < speed["sophia"]
    # All six RTTs declared.
    for pair in GRID5000_RTT_MS:
        a, b = sorted(pair)
        assert net.rtt(a, b) == pytest.approx(msec(GRID5000_RTT_MS[pair]))


def test_rtt_values_match_paper_quotes():
    # §3.2: "about 19 ms for the link Rennes-Sophia", 11.6 ms Rennes-Nancy.
    assert GRID5000_RTT_MS[frozenset(("rennes", "nancy"))] == 11.6
    assert 19.0 <= GRID5000_RTT_MS[frozenset(("rennes", "sophia"))] <= 19.9


def test_full_grid5000():
    net = build_grid5000(nodes_per_site=1)
    assert sorted(net.clusters) == sorted(ALL_SITES)
    assert net.rtt("toulouse", "lille") == pytest.approx(msec(18.2))
    # Synthesised RTT for an undocumented pair is the mean of the known ones.
    assert msec(10) < net.rtt("bordeaux", "grenoble") < msec(25)


def test_node_names_helper():
    net = build_pair_testbed(nodes_per_site=4)
    nodes = node_names(net, "rennes", 2)
    assert [n.name for n in nodes] == ["rennes-0", "rennes-1"]
    with pytest.raises(NetworkConfigError):
        node_names(net, "rennes", 5)
    with pytest.raises(NetworkConfigError):
        node_names(net, "lille", 1)


def test_intra_rtt_constant_matches_table4():
    # One-way wire latency (29 us) + one-way stack (12 us) = Table 4's 41 us.
    from repro.tcp import TCP_STACK_ONEWAY

    assert INTRA_CLUSTER_RTT / 2 + TCP_STACK_ONEWAY == pytest.approx(usec(41))
