"""Runtime determinism sanitizer: double-run trace-hash comparison."""

import numpy as np
import pytest

from repro.analysis.sanitizer import SanitizeReport, sanitize, trace_experiment
from repro.errors import ExperimentError
from repro.experiments.base import ExperimentResult
from repro.mpi.tracing import EventTraceHasher
from repro.sim.core import Environment, install_trace_sink, remove_trace_sink


def _result(experiment_id, value):
    return ExperimentResult(
        experiment_id=experiment_id,
        title=experiment_id,
        paper_ref="fixture",
        rows=[{"value": value}],
        text=f"{experiment_id}: {value}",
    )


def seeded_experiment(fast=True):
    """A tiny deterministic 'experiment': fixed timeouts, fixed result."""
    env = Environment()
    total = []

    def proc():
        for delay in (0.25, 0.5, 1.0):
            yield env.timeout(delay)
        total.append(env.now)

    env.process(proc(), name="fixture")
    env.run()
    return _result("seeded-fixture", total[0])


def unseeded_experiment(fast=True):
    """A deliberately nondeterministic 'experiment': delays drawn from OS
    entropy (exactly the bug class DET005 exists to prevent)."""
    env = Environment()
    rng = np.random.default_rng()  # unseeded on purpose
    total = []

    def proc():
        for _ in range(5):
            yield env.timeout(float(rng.uniform(0.1, 1.0)))
        total.append(env.now)

    env.process(proc(), name="fixture")
    env.run()
    return _result("unseeded-fixture", total[0])


class TestTraceHasher:
    def test_identical_streams_hash_identically(self):
        a, b = EventTraceHasher(), EventTraceHasher()
        for hasher in (a, b):
            hasher(0.5, 1, 1, object())
            hasher(1.0, 0, 2, object())
        assert a.hexdigest() == b.hexdigest()
        assert a.events == 2

    def test_order_matters(self):
        a, b = EventTraceHasher(), EventTraceHasher()
        a(0.5, 1, 1, object())
        a(1.0, 1, 2, object())
        b(1.0, 1, 2, object())
        b(0.5, 1, 1, object())
        assert a.hexdigest() != b.hexdigest()

    def test_hash_ignores_object_identity(self):
        class Named:
            name = "rank0"

        a, b = EventTraceHasher(), EventTraceHasher()
        a(0.5, 1, 1, Named())
        b(0.5, 1, 1, Named())  # different instance, same kind+name
        assert a.hexdigest() == b.hexdigest()

    def test_sink_installation_is_scoped(self):
        hasher = EventTraceHasher()
        install_trace_sink(hasher)
        try:
            env = Environment()
            env.timeout(1.0)
            env.run()
        finally:
            remove_trace_sink(hasher)
        seen = hasher.events
        assert seen == 1
        env = Environment()
        env.timeout(1.0)
        env.run()
        assert hasher.events == seen  # removed sink sees nothing


class TestSanitize:
    def test_seeded_fixture_passes(self):
        report = sanitize(seeded_experiment)
        assert report.deterministic
        assert len(set(report.hashes)) == 1
        assert report.event_counts[0] == report.event_counts[1] > 0
        assert "PASS" in report.render()

    def test_unseeded_fixture_diverges(self):
        report = sanitize(unseeded_experiment)
        assert not report.deterministic
        assert "FAIL" in report.render()

    def test_value_divergence_caught_even_with_same_schedule(self):
        # same event schedule, different reported numbers: still a failure
        counter = {"n": 0}

        def drifting(fast=True):
            env = Environment()
            env.timeout(1.0)
            env.run()
            counter["n"] += 1
            return _result("drifting", counter["n"])

        report = sanitize(drifting)
        assert not report.deterministic

    def test_needs_two_runs(self):
        with pytest.raises(ExperimentError):
            sanitize(seeded_experiment, runs=1)

    def test_unknown_experiment_id_raises(self):
        with pytest.raises(ExperimentError):
            sanitize("fig99")

    def test_fig3_is_sanitizer_verified(self):
        """The acceptance criterion: fig3 twice with the same seed, hashes equal."""
        report = sanitize("fig3", fast=True)
        assert report.deterministic, report.render()
        assert report.event_counts[0] == report.event_counts[1]

    def test_trace_experiment_returns_result(self):
        digest, events, result = trace_experiment(seeded_experiment)
        assert len(digest) == 32  # blake2b-16 hex
        assert events == 5  # Initialize + three Timeouts + Process completion
        assert result.rows[0]["value"] == pytest.approx(1.75)


class TestMemoClearing:
    """Sanitized runs must start with cold experiment memos: a warm memo
    replays no simulation, so the captured trace/projection would be empty."""

    def test_clear_memos_empties_table6_cache(self):
        from repro.experiments import table6
        from repro.experiments.registry import clear_memos

        table6._cache[("sentinel",)] = object()
        clear_memos()
        assert table6._cache == {}

    def test_trace_experiment_starts_cold(self):
        from repro.experiments import table6

        table6._cache[("sentinel",)] = object()
        trace_experiment(seeded_experiment)
        assert table6._cache == {}

    def test_perturb_runs_start_cold(self):
        from repro.analysis.perturb import perturb
        from repro.experiments import table6

        table6._cache[("sentinel",)] = object()
        report = perturb(seeded_experiment, seeds=(1,))
        assert report.passed
        assert table6._cache == {}
