"""The telemetry subsystem (``repro.obs``).

Contracts under test:

* enabling telemetry never perturbs a simulation (identical event-trace
  hashes with the recorder on and off);
* the message lifecycle is observable (eager/rendezvous spans, collective
  spans, cwnd samples, metrics);
* exports are byte-deterministic, schema-valid, and identical between a
  serial and a ``--jobs 4`` campaign;
* the diagnosis reports render deterministically.
"""

import json
import multiprocessing

import pytest

from repro.obs import (
    TelemetryConfig,
    merge_payloads,
    render_chrome_trace,
    render_metrics_csv,
    render_metrics_json,
    validate_chrome_trace,
)
from repro.obs import runtime as obs_runtime
from repro.obs.runtime import TelemetrySession, session
from repro.runner import ExperimentSpec, ResultCache, run_campaign
from repro.sim.core import trace_capture

from tests.conftest import make_cluster_job, make_grid_job

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="pool tests require the fork start method",
)


def _pingpong(nbytes, repeats=3):
    def program(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            for _ in range(repeats):
                yield from comm.send(1, nbytes=nbytes)
                yield from comm.recv(1)
        else:
            for _ in range(repeats):
                yield from comm.recv(0)
                yield from comm.send(0, nbytes=nbytes)

    return program


def _bcast_program(nbytes):
    def program(ctx):
        payload = "data" if ctx.rank == 0 else None
        yield from ctx.comm.bcast(payload, nbytes=nbytes, root=0)

    return program


# --- zero perturbation -------------------------------------------------------------
def test_telemetry_does_not_perturb_the_event_schedule():
    def run_once(telemetry):
        job = make_grid_job(impl_name="openmpi", nprocs=2)
        with trace_capture() as hasher:
            if telemetry:
                with session(TelemetryConfig()):
                    job.run(_pingpong(1024 * 1024))
            else:
                job.run(_pingpong(1024 * 1024))
        return hasher.hexdigest()

    assert run_once(False) == run_once(True)


def test_session_restored_even_when_the_block_raises():
    assert obs_runtime.ACTIVE is None
    with pytest.raises(RuntimeError):
        with session(TelemetryConfig()):
            assert obs_runtime.ACTIVE is not None
            raise RuntimeError("boom")
    assert obs_runtime.ACTIVE is None


# --- lifecycle instrumentation -----------------------------------------------------
def test_rendezvous_message_records_handshake_spans_and_metrics():
    job = make_grid_job(impl_name="openmpi", nprocs=2)
    with session(TelemetryConfig()) as sess:
        job.run(_pingpong(1024 * 1024))  # far above OpenMPI's 64 kB threshold
    names = sess.span_names()
    for span in ("rndv.announce", "rndv.ack", "rndv.handshake", "rndv.data", "mpi.job"):
        assert names.get(span, 0) > 0, f"missing span {span}: {names}"
    assert sess.counter_total("mpi.rndv_handshakes") > 0
    assert sess.counter_total("mpi.rndv_handshake_seconds") > 0
    assert sess.counter_value("mpi.sends", impl="openmpi", proto="rndv",
                              wan=True, context="p2p") > 0


def test_eager_message_records_eager_span_only():
    job = make_cluster_job(impl_name="mpich2", nprocs=2)
    with session(TelemetryConfig()) as sess:
        job.run(_pingpong(1024))  # well below the eager threshold
    names = sess.span_names()
    assert names.get("mpi.send.eager", 0) > 0
    assert "rndv.handshake" not in names


def test_collective_span_carries_the_selected_algorithm():
    job = make_grid_job(impl_name="gridmpi", nprocs=4)
    with session(TelemetryConfig()) as sess:
        job.run(_bcast_program(256 * 1024))
    names = sess.span_names()
    assert names.get("coll.bcast", 0) == 4  # one span per rank
    assert sess.counter_total("mpi.collective_calls") == 4.0


def test_tcp_layer_records_cwnd_samples_and_window_rounds():
    job = make_grid_job(impl_name="gridmpi", nprocs=2)
    with session(TelemetryConfig()) as sess:
        job.run(_pingpong(8 * 1024 * 1024, repeats=2))
    cwnd = sess.samples("tcp.cwnd")
    assert cwnd, "no congestion-window samples recorded"
    assert all(value > 0 for _, value in cwnd)
    assert sess.counter_total("tcp.window_rounds") > 0
    assert sess.counter_total("tcp.transfers") > 0


def test_metrics_only_config_skips_spans():
    job = make_grid_job(impl_name="openmpi", nprocs=2)
    with session(TelemetryConfig(spans=False, metrics=True)) as sess:
        job.run(_pingpong(1024 * 1024))
    assert sess.span_names() == {}
    assert sess.counter_total("mpi.rndv_handshakes") > 0


# --- session mechanics -------------------------------------------------------------
def test_tracks_partition_records_and_empty_tracks_are_dropped():
    sess = TelemetrySession(TelemetryConfig())
    sess.count("x")
    with sess.track("a"):
        sess.count("x")
        with sess.track("b"):
            sess.count("x", inc=2.0)
        sess.count("x")
    with sess.track("empty"):
        pass
    payload = sess.to_payload()
    assert sorted(payload["tracks"]) == ["a", "b", "main"]
    by_track = {name: data["counters"][0][2] for name, data in payload["tracks"].items()}
    assert by_track == {"main": 1.0, "a": 2.0, "b": 2.0}


def test_histogram_bins_are_powers_of_two():
    sess = TelemetrySession(TelemetryConfig())
    for value in (0, 1, 3, 1024, 1025):
        sess.observe("bytes", value)
    payload = sess.to_payload()
    ((_, _, bins),) = payload["tracks"]["main"]["histograms"]
    assert bins == [[0, 1], [1, 1], [2, 1], [1024, 2]]


def test_merge_payloads_sums_counters_and_merges_histograms():
    def one(value):
        sess = TelemetrySession(TelemetryConfig())
        sess.count("n", inc=value, kind="a")
        sess.gauge("g", value)
        sess.observe("h", 8)
        return sess.to_payload()

    merged = merge_payloads([one(1.0), one(2.0)])
    track = merged["tracks"]["main"]
    assert track["counters"] == [["n", [["kind", "a"]], 3.0]]
    assert track["gauges"] == [["g", [], 2.0]]
    assert track["histograms"] == [["h", [], [[8, 2]]]]


# --- exporters ---------------------------------------------------------------------
def _record_sample_session():
    job = make_grid_job(impl_name="openmpi", nprocs=2)
    with session(TelemetryConfig(), default_track="test/grid") as sess:
        job.run(_pingpong(1024 * 1024))
    return sess.to_payload()


def test_chrome_trace_is_valid_and_byte_deterministic():
    first = render_chrome_trace(_record_sample_session(), label="t")
    second = render_chrome_trace(_record_sample_session(), label="t")
    assert first == second
    document = json.loads(first)
    assert validate_chrome_trace(document) == []
    phases = {event["ph"] for event in document["traceEvents"]}
    assert phases <= {"X", "i", "C", "M"}
    assert any(event["ph"] == "X" for event in document["traceEvents"])


def test_metric_dumps_are_byte_deterministic():
    payload = _record_sample_session()
    assert render_metrics_json(payload) == render_metrics_json(
        _record_sample_session()
    )
    csv = render_metrics_csv(payload)
    lines = csv.splitlines()
    assert lines[0] == "track,kind,name,labels,bin,value"
    assert any("mpi.rndv_handshakes" in line for line in lines)


def test_validator_flags_malformed_documents():
    assert validate_chrome_trace([]) == ["trace document is not a JSON object"]
    assert validate_chrome_trace({}) == ["traceEvents is missing or not a list"]
    errors = validate_chrome_trace(
        {
            "traceEvents": [
                {"ph": "Z", "pid": 1, "tid": 1, "ts": 0, "name": "x"},
                {"ph": "X", "pid": "one", "tid": 1, "ts": 0, "name": "x", "dur": -1},
                {"ph": "C", "pid": 1, "tid": 1, "ts": 0, "name": "x",
                 "args": {"value": "NaNish"}},
            ]
        }
    )
    assert len(errors) == 4  # bad phase, bad pid, bad dur, bad C args


# --- campaign integration ----------------------------------------------------------
def test_campaign_attaches_telemetry_and_bypasses_the_cache(tmp_path):
    campaign = run_campaign(
        [ExperimentSpec("fig6", fast=True)],
        jobs=1,
        cache=ResultCache(root=tmp_path, digest="digest-a"),
        telemetry=TelemetryConfig(),
    )
    assert campaign.ok and campaign.telemetry_enabled
    assert not campaign.cache_enabled
    run = campaign.runs[0]
    assert run.telemetry is not None
    assert any(name.startswith("pingpong/") for name in run.telemetry["tracks"])
    # Telemetry never leaks into the cacheable artifact.
    assert "telemetry" not in run.artifact()
    # The cache was bypassed: nothing was stored under the injected root.
    assert list(tmp_path.rglob("*.json")) == []


def test_campaign_without_telemetry_attaches_none(tmp_path):
    campaign = run_campaign(
        [ExperimentSpec("table1", fast=True)],
        cache=ResultCache(root=tmp_path, digest="digest-a"),
    )
    assert campaign.ok and not campaign.telemetry_enabled
    assert campaign.runs[0].telemetry is None


@needs_fork
@pytest.mark.parametrize(
    "experiment_id",
    [
        "fig6",  # pingpong sweep, sharded per curve
        "fig11",  # NPB figure, sharded per benchmark point (memoised serially)
        "faults_pingpong",  # fault sweep, sharded per curve
    ],
)
def test_parallel_telemetry_exports_are_byte_identical_to_serial(
    tmp_path, experiment_id
):
    def exports(jobs):
        campaign = run_campaign(
            [ExperimentSpec(experiment_id, fast=True)],
            jobs=jobs,
            cache=ResultCache(root=tmp_path / f"jobs{jobs}", digest="digest-a"),
            telemetry=TelemetryConfig(),
        )
        assert campaign.ok
        run = campaign.runs[0]
        return (
            run.text,
            render_chrome_trace(run.telemetry, label=experiment_id),
            render_metrics_json(run.telemetry, label=experiment_id),
            render_metrics_csv(run.telemetry),
        )

    serial = exports(1)
    parallel = exports(4)
    assert serial[0] == parallel[0]  # the report itself
    assert serial[1] == parallel[1]  # the Chrome trace
    assert serial[2] == parallel[2]  # the metrics JSON
    assert serial[3] == parallel[3]  # the metrics CSV


def test_telemetry_leaves_the_report_text_unchanged(tmp_path):
    with_telemetry = run_campaign(
        [ExperimentSpec("fig6", fast=True)],
        cache=ResultCache(root=tmp_path, digest="digest-a"),
        telemetry=TelemetryConfig(),
    )
    without = run_campaign(
        [ExperimentSpec("fig6", fast=True)],
        cache=ResultCache(root=tmp_path, digest="digest-b"),
    )
    assert with_telemetry.runs[0].text == without.runs[0].text
    assert with_telemetry.runs[0].trace_hash == without.runs[0].trace_hash


# --- CLI + reports -----------------------------------------------------------------
def test_cli_trace_and_metrics_flags_write_valid_exports(tmp_path, capsys):
    from repro.cli import main

    trace_dir = tmp_path / "traces"
    metrics_dir = tmp_path / "metrics"
    assert (
        main(
            [
                "run", "fig7", "--fast",
                "--trace", str(trace_dir),
                "--metrics-out", str(metrics_dir),
            ]
        )
        == 0
    )
    err = capsys.readouterr().err
    assert "telemetry on" in err
    document = json.loads((trace_dir / "fig7.trace.json").read_text())
    assert validate_chrome_trace(document) == []
    names = {e["name"] for e in document["traceEvents"] if e["ph"] == "X"}
    assert "rndv.handshake" in names
    metrics = json.loads((metrics_dir / "fig7.metrics.json").read_text())
    assert metrics["totals"]["counters"]
    assert (metrics_dir / "fig7.metrics.csv").read_text().startswith("track,kind")


def test_explain_fig7_is_deterministic_and_tells_the_threshold_story():
    from repro.obs.report import explain

    first = explain("fig7", fast=True)
    assert explain("fig7", fast=True) == first
    assert "rndv" in first and "OpenMPI" in first
    assert "128k" in first


def test_explain_fig9_is_deterministic_and_reports_slow_start():
    from repro.obs.report import explain

    first = explain("fig9", fast=True)
    assert explain("fig9", fast=True) == first
    assert "GridMPI" in first and "cwnd" in first


def test_explain_rejects_unknown_figures():
    from repro.errors import ReproError
    from repro.obs.report import explain

    with pytest.raises(ReproError):
        explain("fig3")


def test_profile_renders_a_hotspot_table():
    from repro.obs.profile import profile_experiment

    text = profile_experiment("table1", fast=True, top=5)
    assert "table1" in text
    assert "cumulative" in text
