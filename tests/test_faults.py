"""Deterministic WAN fault injection: profiles, scenarios, TCP invariants.

Everything here revolves around two properties:

* *determinism* — the same profile/scenario + seed reproduces transfers
  byte-for-byte (same ``TransferStats``, same curves), which is what lets
  faulted experiments live in the result cache and CI;
* *isolation* — a ``None`` profile and the ``none`` scenario leave every
  result bit-identical to a build without the faults subsystem, so the
  committed goldens never move.
"""

import dataclasses

import pytest

from repro import faults
from repro.apps.pingpong import tcp_pingpong
from repro.errors import FaultConfigError
from repro.experiments.environments import get_environment, pingpong_pair
from repro.faults import FaultProfile, FaultScenario, get_scenario
from repro.faults.scenarios import CrossTraffic, LinkFlap
from repro.sim import Environment
from repro.tcp import Fabric, TUNED_SYSCTLS, TcpOptions
from repro.tcp.congestion import INITIAL_WINDOW, MSS, CongestionState
from repro.units import MB

SEED = 1234


# --- profile / scenario configuration ----------------------------------------------
def test_profile_validation():
    with pytest.raises(FaultConfigError):
        FaultProfile(loss_prob=1.0)
    with pytest.raises(FaultConfigError):
        FaultProfile(loss_prob=-0.1)
    with pytest.raises(FaultConfigError):
        FaultProfile(jitter_frac=-1.0)
    with pytest.raises(FaultConfigError):
        FaultProfile(rtt_inflation=0.5)


def test_profile_activity_and_scope():
    clean = FaultProfile()
    assert not clean.active
    assert not clean.applies_to(inter_site=True)
    lossy = FaultProfile(loss_prob=0.1)
    assert lossy.active
    assert lossy.applies_to(inter_site=True)
    assert not lossy.applies_to(inter_site=False)  # wan_only by default
    everywhere = FaultProfile(loss_prob=0.1, wan_only=False)
    assert everywhere.applies_to(inter_site=False)
    assert "loss=0.1" in lossy.describe()


def test_scenario_validation():
    with pytest.raises(FaultConfigError):
        CrossTraffic(rate_bps=-1.0)
    with pytest.raises(FaultConfigError):
        LinkFlap(period_s=0.0, duration_s=1.0)
    with pytest.raises(FaultConfigError):
        LinkFlap(period_s=1.0, duration_s=1.0, capacity_factor=1.5)


def test_scenario_registry():
    with pytest.raises(FaultConfigError):
        get_scenario("wobbly-wan")
    assert not get_scenario("none").active
    for name, scenario in faults.SCENARIOS.items():
        assert scenario.name == name
        assert get_scenario(name.upper()) is scenario
        assert scenario.describe()  # every scenario renders a summary


def test_ambient_activation_stack():
    assert faults.active_scenario() is None
    faults.deactivate()  # no-op on the empty stack
    with faults.activated("lossy-wan") as outer:
        assert faults.active_scenario() is outer
        with faults.activated(get_scenario("slow-wan")) as inner:
            assert faults.active_scenario() is inner  # innermost wins
        assert faults.active_scenario() is outer
    assert faults.active_scenario() is None
    with faults.activated(None) as nothing:  # optional passthrough
        assert nothing is None
        assert faults.active_scenario() is None


# --- TCP-level effects --------------------------------------------------------------
def _grid_curve(profile, scenario=None, nbytes=8 * MB, repeats=6):
    env = get_environment("tcp_tuned")
    net, a, b = pingpong_pair("grid")
    with faults.activated(scenario):
        return tcp_pingpong(
            net,
            a,
            b,
            sizes=(nbytes,),
            repeats=repeats,
            sysctls=env.sysctls,
            options=TcpOptions(fault_profile=profile),
        )


def _faulted_transfer_stats(profile, where="grid", repeats=6, nbytes=4 * MB):
    """Run a one-way transfer loop; returns the sender's TransferStats."""
    env = Environment()
    net, a, b = pingpong_pair(where)
    fabric = Fabric(env, net, TUNED_SYSCTLS)
    conn = fabric.connect(a, b, TcpOptions(fault_profile=profile))

    def runner():
        yield from conn.connect()
        for _ in range(repeats):
            arrival = yield from conn.transmit(a, nbytes)
            yield env.timeout(max(0.0, arrival - env.now))

    env.process(runner())
    env.run()
    return dataclasses.replace(conn.direction(a).stats)


def test_same_seed_runs_are_byte_identical():
    profile = FaultProfile(seed=SEED, loss_prob=0.05, jitter_frac=0.2)
    first = _faulted_transfer_stats(profile)
    second = _faulted_transfer_stats(profile)
    assert first == second
    assert first.injected_losses > 0
    curve_a = _grid_curve(profile)
    curve_b = _grid_curve(profile)
    assert curve_a.points == curve_b.points


def test_different_seeds_diverge():
    losses = {
        seed: _faulted_transfer_stats(FaultProfile(seed=seed, loss_prob=0.3))
        for seed in (1, 2, 3)
    }
    assert len({stats.injected_losses for stats in losses.values()}) > 1 or len(
        {stats.window_rounds for stats in losses.values()}
    ) > 1


def test_clean_profile_and_none_scenario_change_nothing():
    baseline = _grid_curve(profile=None)
    assert baseline.points == _grid_curve(FaultProfile()).points
    assert baseline.points == _grid_curve(None, scenario="none").points
    assert _faulted_transfer_stats(None) == _faulted_transfer_stats(FaultProfile())


def test_injected_loss_degrades_goodput():
    clean = _grid_curve(None).points[0]
    lossy = _grid_curve(FaultProfile(seed=SEED, loss_prob=0.1)).points[0]
    assert lossy.mean_bandwidth_mbps < clean.mean_bandwidth_mbps
    stats = _faulted_transfer_stats(FaultProfile(seed=SEED, loss_prob=0.1))
    assert 0 < stats.injected_losses <= stats.losses


def test_rtt_inflation_scales_latency():
    clean = _grid_curve(None, nbytes=1024, repeats=3).points[0]
    slow = _grid_curve(
        FaultProfile(seed=SEED, rtt_inflation=2.0), nbytes=1024, repeats=3
    ).points[0]
    # Small messages are pure latency: doubling the WAN RTT roughly
    # doubles the round trip (stack overheads keep it just under 2x).
    assert 1.8 < slow.min_rtt / clean.min_rtt <= 2.0


def test_jitter_delays_mean_not_min():
    clean = _grid_curve(None, nbytes=1024, repeats=20).points[0]
    jittery = _grid_curve(
        FaultProfile(seed=SEED, jitter_frac=0.5), nbytes=1024, repeats=20
    ).points[0]
    assert jittery.mean_rtt > clean.mean_rtt
    # min is the best-case draw: it may escape nearly unscathed
    assert jittery.min_rtt < jittery.mean_rtt


def test_wan_only_profile_leaves_cluster_path_clean():
    profile = FaultProfile(seed=SEED, loss_prob=0.2, jitter_frac=0.5)
    assert _faulted_transfer_stats(profile, where="cluster") == _faulted_transfer_stats(
        None, where="cluster"
    )
    # A wan_only profile never even arms the fault hooks intra-cluster...
    env = Environment()
    net, a, b = pingpong_pair("cluster")
    fabric = Fabric(env, net, TUNED_SYSCTLS)
    conn = fabric.connect(a, b, TcpOptions(fault_profile=profile))
    assert conn.direction(a).faults is None
    # ... while wan_only=False arms them on the same route.
    everywhere = dataclasses.replace(profile, wan_only=False)
    armed = fabric.connect(a, b, TcpOptions(fault_profile=everywhere))
    assert armed.direction(a).faults == everywhere


def test_cross_traffic_scenario_slows_the_wan():
    clean = _grid_curve(None).points[0]
    degraded = _grid_curve(None, scenario="cross-traffic").points[0]
    again = _grid_curve(None, scenario="cross-traffic").points[0]
    assert degraded.mean_bandwidth_mbps < clean.mean_bandwidth_mbps
    assert degraded == again  # background bursts are seeded too


def test_flaky_link_scenario_slows_the_wan():
    # Long enough that the run overlaps the first flap (~1-3 s in).
    clean = _grid_curve(None, repeats=14).points[0]
    flaky = _grid_curve(None, scenario="flaky-link", repeats=14).points[0]
    again = _grid_curve(None, scenario="flaky-link", repeats=14).points[0]
    assert flaky.mean_bandwidth_mbps < clean.mean_bandwidth_mbps
    assert flaky == again


def test_fabric_freezes_scenario_at_construction():
    env = Environment()
    net, a, b = pingpong_pair("grid")
    with faults.activated("lossy-wan") as scenario:
        fabric = Fabric(env, net, TUNED_SYSCTLS)
    assert fabric.fault_scenario is scenario
    # deactivated after construction: connections still get the profile
    conn = fabric.connect(a, b, TcpOptions())
    assert conn.direction(a).faults == scenario.profile
    # ... but an explicit profile always wins over the ambient one
    mine = FaultProfile(seed=SEED, jitter_frac=0.1)
    explicit = fabric.connect(a, b, TcpOptions(fault_profile=mine))
    assert explicit.direction(a).faults == mine


# --- congestion-control invariants (under faults and otherwise) ---------------------
def test_window_never_exceeds_buffer_caps_under_faults(monkeypatch):
    from repro.tcp import connection as conn_mod

    observed: list[tuple[float, float]] = []
    original = conn_mod._Direction._on_window_round

    def checked(self):
        original(self)
        observed.append((self.window(), min(self.sndbuf, self.rcvbuf)))

    monkeypatch.setattr(conn_mod._Direction, "_on_window_round", checked)
    _faulted_transfer_stats(FaultProfile(seed=SEED, loss_prob=0.1), repeats=10)
    assert observed  # the loop actually exercised window rounds
    assert all(window <= cap for window, cap in observed)


def test_bic_binary_search_converges_to_last_max():
    cc = CongestionState(algorithm="bic")
    cc.cwnd = 4000 * MSS
    cc.ssthresh = 1.0  # force congestion avoidance
    cc.on_loss()
    target = cc.last_max
    assert target == 4000 * MSS
    previous = cc.cwnd
    for _ in range(200):
        if cc.cwnd >= target:
            break
        cc.on_round()
        step = cc.cwnd - previous
        assert 0 < step <= 32 * MSS  # clamped binary-search step
        # each step closes at least half the remaining gap (up to clamps)
        previous = cc.cwnd
    assert cc.cwnd >= target - MSS  # converged onto the old maximum


def test_slow_start_exits_exactly_at_ssthresh():
    cc = CongestionState(algorithm="bic")
    cc.ssthresh = 40 * MSS
    assert cc.cwnd == INITIAL_WINDOW
    while cc.in_slow_start:
        before = cc.cwnd
        cc.on_round()
        assert cc.cwnd <= cc.ssthresh  # doubling is capped, never overshoots
        assert cc.cwnd >= before
    assert cc.cwnd == cc.ssthresh


def test_injected_loss_cuts_window_like_congestion():
    cc = CongestionState(algorithm="bic")
    cc.cwnd = 100 * MSS
    cc.ssthresh = 1.0
    cc.on_loss()
    assert cc.cwnd == pytest.approx(80 * MSS)  # BIC beta = 0.8
    assert cc.ssthresh == cc.cwnd
    assert cc.last_max == 100 * MSS


# --- the degradation experiments ----------------------------------------------------
def test_faults_pingpong_experiment_degrades_monotonically():
    from repro.experiments.faults import LOSS_RATES
    from repro.experiments.registry import run_experiment

    result = run_experiment("faults_pingpong", fast=True)
    assert [row["loss_prob"] for row in result.rows] == list(LOSS_RATES)
    for label in ("TCP", "MPICH2", "GridMPI", "MPICH-Madeleine", "OpenMPI"):
        goodputs = [row[label] for row in result.rows]
        assert all(a >= b for a, b in zip(goodputs, goodputs[1:]))
        assert goodputs[-1] < 0.8 * goodputs[0]  # 10% loss visibly hurts


def test_faults_cg_experiment_slows_with_jitter():
    from repro.experiments.faults import JITTER_FRACS
    from repro.experiments.registry import run_experiment

    result = run_experiment("faults_cg", fast=True)
    assert [row["jitter_frac"] for row in result.rows] == list(JITTER_FRACS)
    for name in ("mpich2", "gridmpi", "madeleine", "openmpi"):
        times = [row["times"][name] for row in result.rows]
        assert all(a <= b for a, b in zip(times, times[1:]))
        assert times[-1] > times[0]  # +50% jitter is never free
    worst = result.rows[-1]["slowdown"]
    assert all(slowdown > 1.0 for slowdown in worst.values())
