"""Leader election and hierarchical-collective correctness.

Covers the invariants documented in ``repro.mpi.collectives.hierarchy``:
lowest-rank leaders with the root overriding its own site, independence
from rank contiguity, size-1 sites, and single-site degradation to the
flat default — plus differential tests asserting the hierarchical
variants produce byte-for-byte the same reduction results as the flat
algorithms they replace.
"""

import numpy as np
import pytest

from repro.impls import get_implementation
from repro.mpi import MpiJob, SUM
from repro.mpi.collectives.hierarchy import site_layout
from repro.net import build_pair_testbed
from repro.tcp import TUNED_SYSCTLS
from tests.conftest import make_cluster_job, make_grid_job

HIER_OPS = ("reduce", "allreduce", "gather", "barrier", "bcast")


def make_interleaved_job(nprocs=8, impl=None, **kwargs):
    """Ranks alternate rennes/nancy: rank i sits on site i mod 2."""
    half = (nprocs + 1) // 2
    net = build_pair_testbed(nodes_per_site=half)
    rennes = net.clusters["rennes"].nodes
    nancy = net.clusters["nancy"].nodes
    placement = [
        rennes[i // 2] if i % 2 == 0 else nancy[i // 2] for i in range(nprocs)
    ]
    impl = impl or get_implementation("mpich2")
    return MpiJob(net, impl, placement, sysctls=TUNED_SYSCTLS, **kwargs)


def make_lopsided_job(nprocs=5, impl=None, **kwargs):
    """One site holds a single rank (the last one)."""
    net = build_pair_testbed(nodes_per_site=nprocs)
    placement = net.clusters["rennes"].nodes[: nprocs - 1] + [
        net.clusters["nancy"].nodes[0]
    ]
    impl = impl or get_implementation("mpich2")
    return MpiJob(net, impl, placement, sysctls=TUNED_SYSCTLS, **kwargs)


def layouts_of(job, root=0):
    """Every rank's layout, computed from the job's communicators."""
    return [site_layout(comm, root) for comm in job.comms]


# --- leader election ---------------------------------------------------------------
def test_leaders_are_lowest_rank_per_site_contiguous():
    job = make_grid_job(nprocs=8)
    for layout in layouts_of(job):
        assert layout.leaders == (0, 4)
        assert layout.my_leader == (0 if layout.rank < 4 else 4)


def test_leaders_ignore_rank_contiguity():
    # Interleaved placement: sites are {evens} and {odds}; the leaders are
    # the lowest member of each (invariant 3 — contiguity never matters).
    job = make_interleaved_job(nprocs=8)
    for layout in layouts_of(job):
        assert layout.leaders == (0, 1)
        assert layout.my_leader == (0 if layout.rank % 2 == 0 else 1)
        assert layout.local == tuple(
            r for r in range(8) if r % 2 == layout.rank % 2
        )


def test_root_overrides_its_sites_leader():
    # Root 3 is NOT the lowest rank of its site (the odds); it must lead
    # anyway so it never forwards through an intermediary on its own LAN.
    job = make_interleaved_job(nprocs=8)
    for layout in layouts_of(job, root=3):
        assert set(layout.leaders) == {0, 3}
        if layout.rank % 2 == 1:
            assert layout.my_leader == 3


def test_rank0_site_is_first_in_leader_order():
    # Rank 0's site leads the deterministic WAN iteration order even when
    # the root (and thus the first leader entry's override) is elsewhere.
    job = make_interleaved_job(nprocs=8)
    for layout in layouts_of(job, root=5):
        assert layout.leaders[0] == 0
        assert layout.leaders[1] == 5


def test_single_rank_site():
    job = make_lopsided_job(nprocs=5)
    for layout in layouts_of(job):
        assert layout.leaders == (0, 4)
        if layout.rank == 4:
            assert layout.local == (4,)
            assert layout.is_leader


def test_single_site_layout_degrades():
    job = make_cluster_job(nprocs=4)
    for layout in layouts_of(job):
        assert layout.single_site
        assert layout.leaders == (0,)
        assert layout.local == (0, 1, 2, 3)


def test_election_is_communication_free():
    # Pure function of the placement: no messages may be exchanged.
    job = make_interleaved_job(nprocs=8, trace=True)
    layouts_of(job)
    layouts_of(job, root=3)
    assert job.trace.total_messages == 0


# --- single-site degradation: hierarchical == flat default ------------------------
@pytest.mark.parametrize("op", sorted(HIER_OPS))
def test_single_site_degrades_to_flat_default(op):
    """On one site the hierarchical variant must not just be correct — it
    must produce the *identical schedule* to the flat default (same
    messages, same makespan)."""

    def program(ctx):
        data = np.arange(64, dtype=np.int64) * (ctx.rank + 1)
        if op == "reduce":
            yield from ctx.comm.reduce(data, nbytes=data.nbytes, op=SUM)
        elif op == "allreduce":
            yield from ctx.comm.allreduce(data, nbytes=data.nbytes, op=SUM)
        elif op == "gather":
            yield from ctx.comm.gather(data, nbytes_each=data.nbytes)
        elif op == "bcast":
            yield from ctx.comm.bcast(data, nbytes=data.nbytes)
        else:
            yield from ctx.comm.barrier()

    def run(algo_name):
        impl = get_implementation("mpich2")
        if algo_name is not None:
            impl = impl.with_collective(op, algo_name)
        job = make_cluster_job(nprocs=8, impl=impl, trace=True)
        result = job.run(program)
        return result.makespan, job.trace.total_messages

    assert run("hierarchical") == run(None)


# --- differential: hierarchical vs flat, byte-for-byte -----------------------------
@pytest.mark.parametrize("job_maker", [make_grid_job, make_interleaved_job])
@pytest.mark.parametrize("root", [0, 3])
def test_reduce_hierarchical_matches_flat_bytes(job_maker, root):
    """Integer payloads: the hierarchical reduction must equal the flat
    binomial one exactly (integer addition is associative, so any combine
    order yields the same bytes)."""

    def program(ctx):
        data = np.arange(256, dtype=np.int64) * (ctx.rank + 1)
        result = yield from ctx.comm.reduce(
            data, nbytes=data.nbytes, op=SUM, root=root
        )
        return None if result is None else np.asarray(result).tolist()

    def run(algo_name):
        impl = get_implementation("mpich2").with_collective("reduce", algo_name)
        job = job_maker(nprocs=8, impl=impl)
        return job.run(program).returns

    flat = run("binomial")
    hier = run("hierarchical")
    assert hier[root] == flat[root]
    assert hier[root] is not None


@pytest.mark.parametrize("job_maker", [make_grid_job, make_interleaved_job])
def test_allreduce_hierarchical_matches_flat_bytes(job_maker):
    def program(ctx):
        data = np.arange(256, dtype=np.int64) * (ctx.rank + 1)
        result = yield from ctx.comm.allreduce(data, nbytes=data.nbytes, op=SUM)
        return np.asarray(result).tolist()

    def run(algo_name):
        impl = get_implementation("mpich2").with_collective("allreduce", algo_name)
        job = job_maker(nprocs=8, impl=impl)
        return job.run(program).returns

    flat = run("recursive_doubling")
    hier = run("hierarchical")
    assert hier == flat
    # and every rank agrees with every other, bit for bit
    assert all(r == hier[0] for r in hier)


@pytest.mark.parametrize("job_maker", [make_grid_job, make_interleaved_job])
@pytest.mark.parametrize("root", [0, 3])
def test_gather_hierarchical_matches_flat_bytes(job_maker, root):
    def program(ctx):
        data = [ctx.rank, "payload", ctx.rank**2]
        result = yield from ctx.comm.gather(data, nbytes_each=1024, root=root)
        return result

    def run(algo_name):
        impl = get_implementation("mpich2").with_collective("gather", algo_name)
        job = job_maker(nprocs=8, impl=impl)
        return job.run(program).returns

    flat = run("binomial")
    hier = run("hierarchical")
    assert hier[root] == flat[root]
    assert hier[root] == [[r, "payload", r**2] for r in range(8)]


@pytest.mark.parametrize("nprocs", [2, 5, 8])
def test_barrier_hierarchical_releases_everyone(nprocs):
    def program(ctx):
        yield from ctx.comm.barrier()
        return ctx.wtime()

    impl = get_implementation("mpich2").with_collective("barrier", "hierarchical")
    job = make_interleaved_job(nprocs=nprocs, impl=impl) if nprocs % 2 == 0 else (
        make_lopsided_job(nprocs=nprocs, impl=impl)
    )
    result = job.run(program)
    assert result.timed_out is False
    assert len(result.returns) == nprocs


# --- WAN-crossing contract ---------------------------------------------------------
@pytest.mark.parametrize(
    "op,expected_wan",
    [("reduce", 1), ("allreduce", 2), ("gather", 1)],
)
def test_hierarchical_wan_crossings(op, expected_wan):
    """Two sites: reduce/gather cross once (leader -> root), allreduce
    exchanges both ways — compared to O(P) for the flat trees under the
    interleaved placement."""

    def program(ctx):
        data = np.ones(128)
        if op == "reduce":
            yield from ctx.comm.reduce(data, nbytes=data.nbytes, op=SUM)
        elif op == "allreduce":
            yield from ctx.comm.allreduce(data, nbytes=data.nbytes, op=SUM)
        else:
            yield from ctx.comm.gather(data, nbytes_each=data.nbytes)

    impl = get_implementation("mpich2").with_collective(op, "hierarchical")
    job = make_interleaved_job(nprocs=8, impl=impl, trace=True)
    job.run(program)
    assert job.trace.inter_site_messages == expected_wan

    flat = make_interleaved_job(nprocs=8, trace=True)
    flat.run(program)
    assert flat.trace.inter_site_messages > expected_wan
