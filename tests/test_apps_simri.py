"""Simri tests against the paper's §2.2.2 observations."""

import pytest

from repro.apps import run_simri
from repro.errors import WorkloadError
from repro.impls import get_implementation
from repro.net import build_pair_testbed
from repro.tcp import TUNED_SYSCTLS

IMPL = get_implementation("mpich2")


def cluster8():
    net = build_pair_testbed(nodes_per_site=8)
    return net, net.clusters["rennes"].nodes[:8]


def test_comm_fraction_small_for_256_object():
    """Paper: communication+synchronisation ~1.5 % of total for >=256^2."""
    net, placement = cluster8()
    result = run_simri(IMPL, net, placement, object_size=256, sysctls=TUNED_SYSCTLS)
    assert result.comm_fraction < 0.05


def test_efficiency_near_100_percent():
    """Paper: computing phase ~7x faster on 7 slaves than on one."""
    net, placement = cluster8()
    result = run_simri(IMPL, net, placement, object_size=256, sysctls=TUNED_SYSCTLS)
    assert result.nslaves == 7
    assert result.efficiency > 0.9


def test_small_object_worse_comm_fraction():
    """Below 256^2 the communication share grows (the paper's caveat)."""
    net, placement = cluster8()
    small = run_simri(IMPL, net, placement, object_size=16, sysctls=TUNED_SYSCTLS)
    big = run_simri(IMPL, net, placement, object_size=256, sysctls=TUNED_SYSCTLS)
    assert small.comm_fraction > big.comm_fraction


def test_grid_slaves_still_work():
    """Spreading the slaves over the WAN works; the master/slave pattern
    tolerates it (one round trip per slave)."""
    net = build_pair_testbed(nodes_per_site=4)
    placement = net.clusters["rennes"].nodes[:4] + net.clusters["nancy"].nodes[:4]
    result = run_simri(IMPL, net, placement, object_size=256, sysctls=TUNED_SYSCTLS)
    # The per-step synchronisations each cost a WAN round trip, so grid
    # efficiency drops well below the cluster's ~0.99 but stays useful.
    assert 0.5 < result.efficiency < 0.95


def test_validation():
    net, placement = cluster8()
    with pytest.raises(WorkloadError):
        run_simri(IMPL, net, placement[:1])
    with pytest.raises(WorkloadError):
        run_simri(IMPL, net, placement, object_size=4)
