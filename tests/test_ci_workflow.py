"""CI plumbing: the workflow file parses and encodes the gate we expect,
and scripts/check.sh is syntactically valid shell.

This is the "actionlint or equivalent dry parse" gate: it cannot run
GitHub's runner, but it catches broken YAML, dropped jobs, and a check
script that would not even parse — the failure modes that silently turn
CI green.
"""

import pathlib
import shutil
import subprocess

import pytest

yaml = pytest.importorskip("yaml")

REPO = pathlib.Path(__file__).resolve().parent.parent
WORKFLOW = REPO / ".github" / "workflows" / "ci.yml"
CHECK_SH = REPO / "scripts" / "check.sh"


@pytest.fixture(scope="module")
def workflow():
    return yaml.safe_load(WORKFLOW.read_text())


def _run_commands(job: dict) -> str:
    return "\n".join(step.get("run", "") for step in job["steps"])


def test_workflow_parses_with_jobs(workflow):
    assert set(workflow["jobs"]) == {"check", "experiments"}
    # `on:` parses as the YAML boolean True key
    triggers = workflow.get("on", workflow.get(True))
    assert "pull_request" in triggers and "push" in triggers


def test_concurrency_cancels_superseded_runs(workflow):
    concurrency = workflow["concurrency"]
    assert concurrency["cancel-in-progress"] is True
    assert "github.ref" in concurrency["group"]


def test_check_job_matrix_and_gate(workflow):
    check = workflow["jobs"]["check"]
    assert check["strategy"]["matrix"]["python-version"] == ["3.10", "3.11", "3.12"]
    setup = next(
        step for step in check["steps"] if "setup-python" in step.get("uses", "")
    )
    assert setup["with"]["cache"] == "pip"
    commands = _run_commands(check)
    assert "CI=1" in commands and "scripts/check.sh" in commands


def test_experiments_job_runs_parallel_smoke_and_uploads(workflow):
    experiments = workflow["jobs"]["experiments"]
    assert experiments["needs"] == "check"
    commands = _run_commands(experiments)
    assert "repro run all --fast --jobs 4" in commands
    assert "git diff --exit-code" in commands
    # Only *untracked* reports fail the golden gate: the campaign rewrites
    # every tracked golden's wall-time footer, so a tracked-modified check
    # (git status --porcelain) would always fail.
    assert "git ls-files --others --exclude-standard" in commands
    assert "git status --porcelain" not in commands
    uploads = [
        step for step in experiments["steps"] if "upload-artifact" in step.get("uses", "")
    ]
    paths = "\n".join(step["with"]["path"] for step in uploads)
    assert "BENCH_experiments.json" in paths
    assert "results/" in paths


def test_experiments_job_runs_the_telemetry_smoke(workflow):
    experiments = workflow["jobs"]["experiments"]
    commands = _run_commands(experiments)
    # A traced sweep must run, its trace must pass schema validation with
    # the rendezvous-handshake spans present...
    assert "--trace" in commands
    assert "scripts/validate_trace.py" in commands
    assert "--require-span rndv.handshake" in commands
    # ...the traced report must stay byte-identical to the committed
    # golden (telemetry never perturbs the simulation)...
    assert "results/fast/fig7.txt" in commands
    # ...the diagnosis reports must render...
    assert "repro explain fig7" in commands
    assert "repro explain fig9" in commands
    # ...and the trace must be uploaded as a workflow artifact.
    uploads = [
        step for step in experiments["steps"] if "upload-artifact" in step.get("uses", "")
    ]
    assert any("/tmp/traces/" in step["with"]["path"] for step in uploads)


def test_experiments_job_runs_the_fault_smoke(workflow):
    commands = _run_commands(workflow["jobs"]["experiments"])
    # A degraded scenario must actually exercise the sweep on the pool...
    assert "repro run faults_pingpong --fast --jobs 2 --faults degraded-grid" in commands
    # ...and a zero-fault run must reproduce the committed golden without
    # replaying the clean cache (wall-time footer stripped on both sides).
    assert "--faults none --no-cache" in commands
    assert "results/fast/fig6.txt" in commands
    assert "diff -u" in commands


def test_experiments_job_runs_the_perf_gate(workflow):
    experiments = workflow["jobs"]["experiments"]
    steps = [step.get("run", "") for step in experiments["steps"]]
    gate_index = next(
        i for i, run in enumerate(steps) if "scripts/check_perf_budget.py" in run
    )
    campaign_index = next(
        i for i, run in enumerate(steps) if "repro run all --fast" in run
    )
    # The gate reads the campaign entry just appended to the manifest, so
    # it must run after the campaign step.
    assert gate_index > campaign_index


def test_check_sh_is_valid_shell():
    bash = shutil.which("bash")
    if bash is None:
        pytest.skip("bash not available")
    proc = subprocess.run([bash, "-n", str(CHECK_SH)], capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr


def test_fast_goldens_exist_for_the_ci_diff():
    fast_dir = REPO / "results" / "fast"
    committed = sorted(p.name for p in fast_dir.glob("*.txt"))
    from repro.experiments import EXPERIMENTS

    assert committed == sorted(f"{eid}.txt" for eid in EXPERIMENTS)


def test_check_job_exports_and_uploads_sarif(workflow):
    check = workflow["jobs"]["check"]
    commands = _run_commands(check)
    # findings are exported as a SARIF log and structurally validated...
    assert "repro lint --sarif lint-results.sarif" in commands
    assert "validate_sarif" in commands
    # ...and uploaded as a workflow artifact (fail loudly if missing)
    upload = next(
        step for step in check["steps"] if "upload-artifact" in step.get("uses", "")
    )
    assert upload["with"]["path"] == "lint-results.sarif"
    assert upload["with"]["if-no-files-found"] == "error"


def test_experiments_job_runs_the_perturbation_smoke(workflow):
    experiments = workflow["jobs"]["experiments"]
    commands = _run_commands(experiments)
    # all three smoke targets run under permuted same-timestamp ordering
    # (table6 is the sharded/memoised heavyweight: its fast mode is the
    # CI slice of the full-scale run)...
    assert "repro sanitize" in commands and "--perturb" in commands
    assert "fig7" in commands and "faults_pingpong" in commands
    assert "repro sanitize table6 --perturb" in commands
    # table6 gates on result byte-identity only: its merge-phase timing
    # tail legitimately depends on same-timestamp matching order
    assert "--result-only" in commands
    assert "--seeds 3" in commands
    # ...and the unperturbed result is diffed byte-for-byte against the
    # committed golden (wall-time footer stripped on the golden side)
    assert "--write-result" in commands
    assert "head -n -2" in commands
    uploads = [
        step for step in experiments["steps"] if "upload-artifact" in step.get("uses", "")
    ]
    assert any("perturb" in step["with"]["path"] for step in uploads)
