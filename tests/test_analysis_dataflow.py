"""Fixtures for the DIM unit-dimension inference pass.

Each rule gets known-bad snippets (must flag exactly that rule) and
known-good counterparts (must stay silent).  The snippets mirror the
idioms of net/, tcp/ and mpi/ — ``units.py`` constructors, Size/Rate
annotations, ``env.now`` arithmetic — because those are the call sites
the integer-µs event-core migration will rewrite.
"""

import textwrap

from repro.analysis.dataflow import (
    BITS,
    BPS,
    BYTES,
    SECONDS,
    USEC,
    classify_mix,
)
from repro.analysis.linter import lint_source


def rules_of(source):
    return [v.rule for v in lint_source(textwrap.dedent(source))]


class TestDimSeeding:
    def test_constructor_call_seeds(self):
        # usec() returns seconds; adding a byte count is a DIM001 mix
        assert rules_of(
            """
            from repro.units import usec, kb

            def f():
                t = usec(58)
                return t + kb(64)
            """
        ) == ["DIM001"]

    def test_annotation_seeds(self):
        assert rules_of(
            """
            from repro.units import Rate, Size

            def f(rate: Rate, size: Size):
                return rate + size
            """
        ) == ["DIM001"]

    def test_parameter_name_seeds(self):
        assert rules_of(
            """
            def f(nbytes, rtt_seconds):
                return nbytes + rtt_seconds
            """
        ) == ["DIM001"]

    def test_module_constant_seeds_functions(self):
        # a module-level constant's dimension is visible inside functions
        assert rules_of(
            """
            from repro.units import usec, kb

            STACK_DELAY = usec(12)

            def f():
                return STACK_DELAY + kb(4)
            """
        ) == ["DIM001"]

    def test_env_now_is_seconds(self):
        assert rules_of(
            """
            from repro.units import kb

            def f(env):
                return env.now + kb(1)
            """
        ) == ["DIM001"]

    def test_unknown_operands_stay_silent(self):
        assert rules_of(
            """
            def f(a, b):
                return a + b
            """
        ) == []


class TestDimPropagation:
    def test_dimension_flows_through_assignment(self):
        assert rules_of(
            """
            from repro.units import usec, kb

            def f():
                t = usec(58)
                u = t
                v = u
                return v + kb(64)
            """
        ) == ["DIM001"]

    def test_branch_join_conflicting_dims_become_unknown(self):
        # x is seconds on one path, bytes on the other: the join is
        # unknown, so downstream arithmetic must stay silent
        assert rules_of(
            """
            from repro.units import usec, kb

            def f(flag):
                if flag:
                    x = usec(1)
                else:
                    x = kb(1)
                return x + 1
            """
        ) == []

    def test_scaling_by_literal_keeps_dimension(self):
        assert rules_of(
            """
            from repro.units import usec, kb

            def f():
                t = usec(58) * 2
                return t + kb(64)
            """
        ) == ["DIM001"]

    def test_transfer_time_division_is_seconds(self):
        # bits / bits-per-second is a time: adding it to seconds is fine
        assert rules_of(
            """
            from repro.units import Mbps, kb, usec

            def f():
                t = (kb(64) * 8) / Mbps(100)
                return t + usec(58)
            """
        ) == []


class TestTimeScaleMixing:
    def test_seconds_plus_usec_flagged(self):
        assert rules_of(
            """
            from repro.units import usec, to_usec

            def f(x):
                return usec(58) + to_usec(x)
            """
        ) == ["DIM002"]

    def test_usec_delay_slot_flagged(self):
        # passing a µs count where timeout() expects seconds
        assert rules_of(
            """
            from repro.units import to_usec

            def f(env, x):
                yield env.timeout(to_usec(x))
            """
        ) == ["DIM002"]

    def test_converted_delay_not_flagged(self):
        assert rules_of(
            """
            from repro.units import usec

            def f(env):
                yield env.timeout(usec(58))
            """
        ) == []


class TestDataScaleMixing:
    def test_bytes_plus_bits_flagged(self):
        assert rules_of(
            """
            from repro.units import kb

            def f():
                size = kb(64)
                bits = size * 8
                return size + bits
            """
        ) == ["DIM003"]

    def test_bytes_divided_by_bps_flagged(self):
        # the classic missing *8: bytes / (bits/s)
        assert rules_of(
            """
            from repro.units import kb, Mbps

            def f():
                return kb(64) / Mbps(100)
            """
        ) == ["DIM003"]

    def test_bits_divided_by_bps_not_flagged(self):
        assert rules_of(
            """
            from repro.units import kb, Mbps

            def f():
                return (kb(64) * 8) / Mbps(100)
            """
        ) == []

    def test_bits_to_bytes_division_not_flagged(self):
        assert rules_of(
            """
            from repro.units import kb

            def f(nbits):
                nbytes = nbits / 8
                return nbytes + kb(1)
            """
        ) == []


class TestAmbiguousReturn:
    def test_mixed_return_dimensions_flagged(self):
        assert rules_of(
            """
            from repro.units import usec, kb

            def f(flag):
                if flag:
                    return usec(1)
                return kb(1)
            """
        ) == ["DIM004"]

    def test_consistent_returns_not_flagged(self):
        assert rules_of(
            """
            from repro.units import usec, msec

            def f(flag):
                if flag:
                    return usec(1)
                return msec(2)
            """
        ) == []


class TestNegativeDelay:
    def test_literal_negative_delay_flagged(self):
        assert rules_of(
            """
            def f(env):
                yield env.timeout(-1)
            """
        ) == ["DIM005"]

    def test_negative_float_delay_flagged(self):
        assert rules_of(
            """
            def f(env):
                yield env.timeout(-0.5)
            """
        ) == ["DIM005"]

    def test_zero_and_positive_delays_not_flagged(self):
        assert rules_of(
            """
            def f(env):
                yield env.timeout(0.5)
            """
        ) == []

    def test_negative_delay_keyword_flagged(self):
        assert rules_of(
            """
            def f(env):
                yield env.timeout(delay=-2)
            """
        ) == ["DIM005"]


class TestDimFalsePositiveGuards:
    def test_per_byte_factor_absorbs_dimension(self):
        # nbytes * per_byte_overhead is a time, not a byte count — the
        # per_* spelling marks a dimension-changing ratio
        assert rules_of(
            """
            def f(env, impl, nbytes):
                setup = impl.latency_overhead(False) + nbytes * impl.per_byte_overhead
                yield env.timeout(setup)
            """
        ) == []

    def test_comparison_across_dimensions_flagged(self):
        assert rules_of(
            """
            from repro.units import usec, kb

            def f():
                return usec(1) < kb(1)
            """
        ) == ["DIM001"]

    def test_pragma_suppresses_dim(self):
        assert rules_of(
            """
            from repro.units import usec, kb

            def f():
                return usec(58) + kb(64)  # repro: noqa=DIM001
            """
        ) == []


class TestClassifyMix:
    def test_families(self):
        assert classify_mix(SECONDS, USEC) == "time-scale"
        assert classify_mix(BYTES, BITS) == "data-scale"
        assert classify_mix(SECONDS, BYTES) == "mix"
        assert classify_mix(BPS, BYTES) == "mix"
