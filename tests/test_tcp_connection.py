"""Tests for the fluid TCP connection against the paper's TCP-level numbers."""

import pytest

from repro.errors import TcpError
from repro.net import build_pair_testbed
from repro.sim import Environment
from repro.tcp import (
    BufferPolicy,
    DEFAULT_SYSCTLS,
    Fabric,
    TCP_STACK_ONEWAY,
    TUNED_SYSCTLS,
    TcpOptions,
)
from repro.units import KB, MB, Mbps, to_usec, usec


def make_fabric(sysctls=DEFAULT_SYSCTLS, nodes_per_site=2):
    env = Environment()
    net = build_pair_testbed(nodes_per_site=nodes_per_site)
    fabric = Fabric(env, net, sysctls)
    return env, net, fabric


def one_way_latency(env, fabric, src, dst, nbytes, options=TcpOptions(), repeats=1):
    """Min one-way latency over ``repeats`` transmissions (paper §4.1)."""
    conn = fabric.connect(src, dst, options)
    results = []

    def runner():
        yield from conn.connect()
        for _ in range(repeats):
            t0 = env.now
            arrival = yield from conn.transmit(src, nbytes)
            results.append(arrival - t0)
            # wait for the (virtual) pong before the next ping
            yield env.timeout(arrival - env.now)

    env.process(runner())
    env.run()
    return min(results)


def steady_bandwidth_mbps(env, fabric, src, dst, nbytes, options=TcpOptions(), repeats=40):
    """Max per-message goodput over a stream of back-to-back messages."""
    conn = fabric.connect(src, dst, options)
    best = []

    def runner():
        yield from conn.connect()
        for _ in range(repeats):
            t0 = env.now
            arrival = yield from conn.transmit(src, nbytes)
            yield env.timeout(arrival - env.now)
            best.append(nbytes * 8.0 / (env.now - t0) / 1e6)

    env.process(runner())
    env.run()
    return max(best)


# --- latency: Table 4 TCP rows ---------------------------------------------------
def test_grid_one_byte_latency_is_5812_us():
    env, net, fabric = make_fabric()
    src = net.clusters["rennes"].nodes[0]
    dst = net.clusters["nancy"].nodes[0]
    latency = one_way_latency(env, fabric, src, dst, 1)
    assert to_usec(latency) == pytest.approx(5812, abs=2)


def test_cluster_one_byte_latency_is_41_us():
    env, net, fabric = make_fabric()
    a, b = net.clusters["rennes"].nodes[:2]
    latency = one_way_latency(env, fabric, a, b, 1)
    assert to_usec(latency) == pytest.approx(41, abs=1)


# --- bandwidth: Fig 3 / Fig 5 / Fig 6 TCP curves -----------------------------------
def test_cluster_default_reaches_940_mbps():
    env, net, fabric = make_fabric()
    a, b = net.clusters["rennes"].nodes[:2]
    bw = steady_bandwidth_mbps(env, fabric, a, b, 16 * MB, repeats=10)
    assert 900 <= bw <= 945


def test_grid_default_collapses_near_120_mbps():
    env, net, fabric = make_fabric()
    src = net.clusters["rennes"].nodes[0]
    dst = net.clusters["nancy"].nodes[0]
    bw = steady_bandwidth_mbps(env, fabric, src, dst, 16 * MB, repeats=10)
    # Fig. 3: no curve above 120 Mbps with default parameters.
    assert 80 <= bw <= 125


def test_grid_tuned_reaches_900_mbps():
    env, net, fabric = make_fabric(TUNED_SYSCTLS)
    src = net.clusters["rennes"].nodes[0]
    dst = net.clusters["nancy"].nodes[0]
    bw = steady_bandwidth_mbps(env, fabric, src, dst, 64 * MB, repeats=8)
    # Fig. 6: ~900 Mbps after buffer tuning.
    assert 850 <= bw <= 945


def test_grid_tuned_1mb_message_half_bandwidth():
    env, net, fabric = make_fabric(TUNED_SYSCTLS)
    src = net.clusters["rennes"].nodes[0]
    dst = net.clusters["nancy"].nodes[0]
    bw = steady_bandwidth_mbps(env, fabric, src, dst, MB, repeats=40)
    # Fig. 6: half bandwidth is only reached around 1 MB on the grid.
    assert 350 <= bw <= 650


def test_fixed_128k_buffers_limit_grid_bandwidth():
    env, net, fabric = make_fabric(TUNED_SYSCTLS)
    src = net.clusters["rennes"].nodes[0]
    dst = net.clusters["nancy"].nodes[0]
    options = TcpOptions(buffer_policy=BufferPolicy.fixed(128 * KB, 128 * KB))
    bw = steady_bandwidth_mbps(env, fabric, src, dst, 16 * MB, options, repeats=10)
    # OpenMPI without its mca knobs: stuck near 128kB/RTT = 90 Mbps.
    assert 70 <= bw <= 110


def test_slow_start_ramp_is_gradual():
    """Early messages are much slower than steady state (Fig. 9)."""
    env, net, fabric = make_fabric(TUNED_SYSCTLS)
    src = net.clusters["rennes"].nodes[0]
    dst = net.clusters["nancy"].nodes[0]
    conn = fabric.connect(src, dst, TcpOptions())
    samples = []

    def runner():
        yield from conn.connect()
        for _ in range(200):
            t0 = env.now
            arrival = yield from conn.transmit(src, MB)
            yield env.timeout(arrival - env.now)
            samples.append((env.now, MB * 8.0 / (env.now - t0) / 1e6))

    env.process(runner())
    env.run()
    first = samples[0][1]
    peak = max(bw for (t, bw) in samples)
    assert first < 0.5 * peak
    # Fig. 9a: raw TCP reaches 500 Mbps around 2 s and its maximum around
    # 5 s; the y-axis tops out near 600 Mbps for 1 MB messages.
    assert 500 <= peak <= 620
    t_500 = next(t for (t, bw) in samples if bw >= 500)
    assert 1.0 <= t_500 <= 3.5


def test_unpaced_sender_ramps_slower():
    """ss_cap divisor 2 (unpaced MPI) delays the ramp vs divisor 1."""

    def time_to_reach(options, target_mbps):
        env, net, fabric = make_fabric(TUNED_SYSCTLS)
        src = net.clusters["rennes"].nodes[0]
        dst = net.clusters["nancy"].nodes[0]
        conn = fabric.connect(src, dst, options)
        reach = []

        def runner():
            yield from conn.connect()
            for _ in range(300):
                t0 = env.now
                arrival = yield from conn.transmit(src, MB)
                yield env.timeout(arrival - env.now)
                bw = MB * 8.0 / (env.now - t0) / 1e6
                if bw >= target_mbps:
                    reach.append(env.now)
                    return

        env.process(runner())
        env.run()
        return reach[0] if reach else float("inf")

    paced = time_to_reach(TcpOptions(paced=True, ss_cap_divisor=1.0), 500)
    unpaced = time_to_reach(
        TcpOptions(ss_cap_divisor=2.0, probe_loss_rounds=18), 500
    )
    assert paced < unpaced


def test_idle_restart_triggers_after_rto():
    env, net, fabric = make_fabric(TUNED_SYSCTLS)
    src = net.clusters["rennes"].nodes[0]
    dst = net.clusters["nancy"].nodes[0]
    conn = fabric.connect(src, dst, TcpOptions())

    def runner():
        yield from conn.connect()
        yield from conn.transmit(src, 4 * MB)
        yield env.timeout(5.0)  # long idle > RTO
        yield from conn.transmit(src, 4 * MB)

    env.process(runner())
    env.run()
    assert conn.forward.stats.idle_restarts == 1


def test_transmit_directions_independent():
    env, net, fabric = make_fabric()
    src = net.clusters["rennes"].nodes[0]
    dst = net.clusters["nancy"].nodes[0]
    conn = fabric.connect(src, dst, TcpOptions())
    times = {}

    def fwd():
        arrival = yield from conn.transmit(src, MB)
        times["fwd"] = arrival

    def rev():
        arrival = yield from conn.transmit(dst, MB)
        times["rev"] = arrival

    env.process(fwd())
    env.process(rev())
    env.run()
    # Full duplex: both directions proceed concurrently, same duration.
    assert times["fwd"] == pytest.approx(times["rev"], rel=1e-6)


def test_same_direction_transfers_serialise():
    env, net, fabric = make_fabric()
    a, b = net.clusters["rennes"].nodes[:2]
    conn = fabric.connect(a, b, TcpOptions())
    arrivals = []

    def sender():
        arrivals.append((yield from conn.transmit(a, MB)))

    env.process(sender())
    env.process(sender())
    env.run()
    # Head-of-line blocking: the second message arrives ~one serialisation
    # later, not at the same time.
    assert arrivals[1] - arrivals[0] > 0.8 * (MB * 8 / 1e9)


def test_negative_bytes_rejected():
    env, net, fabric = make_fabric()
    a, b = net.clusters["rennes"].nodes[:2]
    conn = fabric.connect(a, b, TcpOptions())

    def runner():
        yield from conn.transmit(a, -1)

    env.process(runner())
    with pytest.raises(TcpError):
        env.run()


def test_direction_unknown_endpoint_rejected():
    env, net, fabric = make_fabric()
    a, b = net.clusters["rennes"].nodes[:2]
    other = net.clusters["nancy"].nodes[0]
    conn = fabric.connect(a, b, TcpOptions())
    with pytest.raises(TcpError):
        conn.direction(other)


def test_fabric_per_cluster_sysctls():
    env, net, fabric = make_fabric()
    fabric.set_sysctls(TUNED_SYSCTLS, cluster="rennes")
    r = net.clusters["rennes"].nodes[0]
    n = net.clusters["nancy"].nodes[0]
    assert fabric.sysctls_for(r) is TUNED_SYSCTLS
    assert fabric.sysctls_for(n) is DEFAULT_SYSCTLS
    with pytest.raises(TcpError):
        fabric.set_sysctls(TUNED_SYSCTLS, cluster="mars")


def test_invalid_options():
    with pytest.raises(TcpError):
        TcpOptions(ss_cap_divisor=0.5)
    with pytest.raises(TcpError):
        TcpOptions(probe_loss_rounds=0)


def test_stack_constant():
    assert TCP_STACK_ONEWAY == pytest.approx(usec(12))
