"""Cross-layer integration tests: the full stack behaving as a system."""

import math

import pytest

from repro.impls import get_implementation
from repro.mpi import MpiJob, SUM
from repro.net import build_pair_testbed, build_ray2mesh_testbed
from repro.tcp import DEFAULT_SYSCTLS, TUNED_SYSCTLS
from repro.units import KB, MB, msec


def test_collective_across_four_sites():
    """A broadcast over the full ray2mesh testbed (4 clusters, 32 nodes)."""
    net = build_ray2mesh_testbed(nodes_per_site=8)
    placement = [n for s in sorted(net.clusters) for n in net.clusters[s].nodes]
    impl = get_implementation("gridmpi")
    job = MpiJob(net, impl, placement, sysctls=TUNED_SYSCTLS)

    def program(ctx):
        value = yield from ctx.comm.bcast(
            "payload" if ctx.rank == 0 else None, nbytes=MB, root=0
        )
        assert value == "payload"
        total = yield from ctx.comm.allreduce(1.0, nbytes=8, op=SUM)
        return total

    result = job.run(program)
    assert all(v == 32.0 for v in result.returns)
    # The broadcast must have taken at least one worst-path one-way delay.
    assert result.makespan > msec(9)


def test_wan_contention_shared_fairly():
    """Eight concurrent WAN flows share the 1 Gbps access link."""
    net = build_pair_testbed(nodes_per_site=8)
    placement = net.clusters["rennes"].nodes[:8] + net.clusters["nancy"].nodes[:8]
    impl = get_implementation("gridmpi")
    job = MpiJob(net, impl, placement, sysctls=TUNED_SYSCTLS)
    size = 8 * MB

    def program(ctx):
        if ctx.rank < 8:  # every Rennes rank sends to its Nancy twin
            yield from ctx.comm.send(ctx.rank + 8, nbytes=size)
        else:
            t0 = ctx.wtime()
            yield from ctx.comm.recv(ctx.rank - 8)
            return ctx.wtime() - t0

    result = job.run(program)
    times = [t for t in result.returns if t is not None]
    # Eight flows through one 1 Gbps uplink: at least ~8x the solo
    # serialisation time (64 MB total over <=940 Mbps goodput).
    total_bytes = 8 * size
    floor = total_bytes * 8 / 1e9
    assert max(times) >= floor * 0.8
    # Fair sharing: no receiver finishes wildly later than another.
    assert max(times) / min(times) < 1.6


def test_mixed_sysctl_grid():
    """Tuning only one site is not enough: the untuned receiver's window
    still caps the transfer (min of both ends)."""
    net = build_pair_testbed(nodes_per_site=1)
    a = net.clusters["rennes"].nodes[0]
    b = net.clusters["nancy"].nodes[0]
    impl = get_implementation("mpich2").with_eager_threshold(65 * MB)

    def bandwidth(sysctls):
        job = MpiJob(net, impl, [a, b], sysctls=sysctls)
        done = {}

        def program(ctx):
            if ctx.rank == 0:
                for _ in range(10):
                    t0 = ctx.wtime()
                    yield from ctx.comm.send(1, nbytes=8 * MB)
                    yield from ctx.comm.recv(1)
                    done.setdefault("best", []).append(
                        8 * MB * 8 / ((ctx.wtime() - t0) / 2) / 1e6
                    )
            else:
                for _ in range(10):
                    yield from ctx.comm.recv(0)
                    yield from ctx.comm.send(0, nbytes=1)

        job.run(program)
        return max(done["best"])

    both = bandwidth(TUNED_SYSCTLS)
    only_sender = bandwidth({"rennes": TUNED_SYSCTLS, "nancy": DEFAULT_SYSCTLS})
    assert both > 3 * only_sender  # receiver window caps at ~174 kB


def test_determinism_full_stack():
    """Two identical NPB runs give bit-identical makespans."""
    from repro.npb import run_npb

    def once():
        net = build_pair_testbed(nodes_per_site=4)
        placement = net.clusters["rennes"].nodes[:4] + net.clusters["nancy"].nodes[:4]
        return run_npb(
            "cg", "W", net, get_implementation("openmpi"), placement,
            sysctls=TUNED_SYSCTLS, sample_iters=3,
        ).time

    assert once() == once()


def test_known_failure_surface_in_results():
    from repro.npb import run_npb

    net = build_pair_testbed(nodes_per_site=8)
    placement = net.clusters["rennes"].nodes[:8] + net.clusters["nancy"].nodes[:8]
    result = run_npb(
        "sp", "B", net, get_implementation("madeleine"), placement,
        sysctls=TUNED_SYSCTLS,
    )
    assert result.timed_out and math.isinf(result.time)
