"""Tests for the fluid flow-level bandwidth model."""

import math
import random

import pytest

from repro.errors import NetworkConfigError
from repro.net import Flow, FluidNetwork, Pipe
from repro.sim import Environment
from repro.units import Gbps, MB, Mbps


@pytest.fixture()
def env():
    return Environment()


@pytest.fixture()
def net(env):
    return FluidNetwork(env)


def run_flow(env, net, pipes, nbytes, cap=math.inf):
    flow = net.start_flow("f", pipes, nbytes, rate_cap_bps=cap)
    env.run(until=flow.done)
    return env.now


def test_single_flow_full_capacity(env, net):
    pipe = Pipe("p", Gbps(1))
    elapsed = run_flow(env, net, [pipe], MB)
    assert elapsed == pytest.approx(MB * 8 / 1e9)


def test_flow_respects_rate_cap(env, net):
    pipe = Pipe("p", Gbps(1))
    elapsed = run_flow(env, net, [pipe], MB, cap=Mbps(100))
    assert elapsed == pytest.approx(MB * 8 / 100e6)


def test_bottleneck_is_slowest_pipe(env, net):
    fast = Pipe("fast", Gbps(10))
    slow = Pipe("slow", Mbps(100))
    elapsed = run_flow(env, net, [fast, slow], MB)
    assert elapsed == pytest.approx(MB * 8 / 100e6)


def test_zero_byte_flow_completes_immediately(env, net):
    pipe = Pipe("p", Gbps(1))
    flow = net.start_flow("f", [pipe], 0)
    assert flow.done.triggered
    assert not pipe.flows


def test_two_flows_share_fairly(env, net):
    pipe = Pipe("p", Gbps(1))
    f1 = net.start_flow("f1", [pipe], MB)
    f2 = net.start_flow("f2", [pipe], MB)
    env.run(until=f1.done)
    t1 = env.now
    env.run(until=f2.done)
    t2 = env.now
    # Both at 500 Mbps: each finishes in ~2x the solo time, together.
    assert t1 == pytest.approx(MB * 8 / 0.5e9)
    assert t2 == pytest.approx(t1)


def test_departure_releases_bandwidth(env, net):
    pipe = Pipe("p", Gbps(1))
    small = net.start_flow("small", [pipe], MB)
    big = net.start_flow("big", [pipe], 3 * MB)
    env.run(until=small.done)
    t_small = env.now
    env.run(until=big.done)
    t_big = env.now
    # Phase 1: both at 500 Mbps until small (1MB) is done at t=16.78ms.
    assert t_small == pytest.approx(MB * 8 / 0.5e9)
    # big sent 1MB in phase 1, the last 2MB at full rate.
    expected = t_small + 2 * MB * 8 / 1e9
    assert t_big == pytest.approx(expected)


def test_capped_flow_leaves_slack_to_others(env, net):
    pipe = Pipe("p", Gbps(1))
    capped = net.start_flow("capped", [pipe], 10 * MB, rate_cap_bps=Mbps(100))
    greedy = net.start_flow("greedy", [pipe], MB)
    env.run(until=greedy.done)
    # greedy gets 900 Mbps (progressive filling redistributes the slack).
    assert env.now == pytest.approx(MB * 8 / 900e6)
    assert capped.rate_bps == pytest.approx(Mbps(100))


def test_rate_cap_update_mid_flight(env, net):
    pipe = Pipe("p", Gbps(1))
    flow = net.start_flow("f", [pipe], 2 * MB, rate_cap_bps=Mbps(100))

    def raiser():
        yield env.timeout(0.08)  # ~1MB sent at 100 Mbps
        net.set_rate_cap(flow, Gbps(1))

    env.process(raiser())
    env.run(until=flow.done)
    sent_phase1 = 100e6 * 0.08 / 8  # bytes
    expected = 0.08 + (2 * MB - sent_phase1) * 8 / 1e9
    assert env.now == pytest.approx(expected, rel=1e-6)


def test_abort_flow_fails_done_event(env, net):
    pipe = Pipe("p", Gbps(1))
    flow = net.start_flow("f", [pipe], 100 * MB)

    def aborter():
        yield env.timeout(0.01)
        net.abort_flow(flow, RuntimeError("link down"))

    def waiter(log):
        try:
            yield flow.done
        except RuntimeError as exc:
            log.append(str(exc))

    log = []
    env.process(aborter())
    env.process(waiter(log))
    env.run()
    assert log == ["link down"]
    assert not pipe.flows


def test_three_flows_two_pipes_maxmin(env, net):
    # a: pipe1 only; b: pipe1+pipe2; c: pipe2 only. pipe1=1G, pipe2=500M.
    p1, p2 = Pipe("p1", Gbps(1)), Pipe("p2", Mbps(500))
    fa = net.start_flow("a", [p1], 100 * MB)
    fb = net.start_flow("b", [p1, p2], 100 * MB)
    fc = net.start_flow("c", [p2], 100 * MB)
    env.run(until=env.timeout(0.001))
    # Max-min: b and c share p2 at 250 Mbps each; a takes the rest of p1.
    assert fb.rate_bps == pytest.approx(Mbps(250))
    assert fc.rate_bps == pytest.approx(Mbps(250))
    assert fa.rate_bps == pytest.approx(Mbps(750))


def test_flow_needs_a_pipe(env, net):
    with pytest.raises(NetworkConfigError):
        net.start_flow("f", [], 10)


def test_negative_size_rejected(env, net):
    with pytest.raises(NetworkConfigError):
        net.start_flow("f", [Pipe("p", Gbps(1))], -1)


def test_invalid_cap_rejected(env, net):
    with pytest.raises(NetworkConfigError):
        net.start_flow("f", [Pipe("p", Gbps(1))], 10, rate_cap_bps=0)


def test_set_pipe_capacity_mid_flight(env, net):
    pipe = Pipe("wan", 1000.0)
    flow = net.start_flow("f", [pipe], nbytes=1000)
    env.run(until=2.0)  # 2000 of 8000 bits done
    net.set_pipe_capacity(pipe, 100.0)  # the link flaps to 10%
    assert flow.rate_bps == pytest.approx(100.0)
    env.run(until=32.0)  # 3000 bits at the degraded rate
    net.set_pipe_capacity(pipe, 1000.0)  # ... and recovers
    env.run(until=flow.done)
    # 2000 + 3000 bits before recovery, 3000 after at full rate
    assert env.now == pytest.approx(35.0)
    assert flow.done.triggered


def test_set_pipe_capacity_rejects_nonpositive(env, net):
    pipe = Pipe("wan", 1000.0)
    net.start_flow("f", [pipe], nbytes=1000)
    with pytest.raises(NetworkConfigError):
        net.set_pipe_capacity(pipe, 0.0)
    with pytest.raises(NetworkConfigError):
        net.set_pipe_capacity(pipe, -10.0)


def test_pipe_invalid_capacity():
    with pytest.raises(NetworkConfigError):
        Pipe("p", 0)


def test_many_sequential_flows_cleanup(env, net):
    pipe = Pipe("p", Gbps(1))

    def sender():
        for _ in range(100):
            flow = net.start_flow("f", [pipe], 1024)
            yield flow.done

    env.process(sender())
    env.run()
    assert not net.flows
    assert not pipe.flows
    assert env.now == pytest.approx(100 * 1024 * 8 / 1e9)


# -- differential oracle: incremental allocator vs the legacy global solve ----
#
# The incremental allocator must agree with the pre-rewrite full-network
# progressive filling (kept behind REPRO_FLUID=legacy) on arbitrary workload
# histories: flow starts and finishes, rate cap moves, capacity changes and
# link flaps.  Rates may differ by float ulps (the two solvers associate the
# fill arithmetic differently); completion times must match exactly, since
# they are what the reports are built from.


def _drive_workload(seed, legacy):
    """Run a randomized flow history; return (rate snapshots, completions)."""
    env = Environment()
    network = FluidNetwork(env)
    network._legacy = legacy
    rng = random.Random(seed)
    pipes = [
        Pipe(f"p{i}", rng.choice([1e8, 2.5e8, 9.37e8, 1e9, 1e10]))
        for i in range(rng.randint(3, 7))
    ]
    started = []
    completions = {}
    snapshots = []

    def script():
        counter = 0
        for _ in range(60):
            yield env.timeout(rng.uniform(1e-4, 5e-3))
            dice = rng.random()
            live = [f for f in started if f in network.flows]
            if dice < 0.5 or not live:
                counter += 1
                route = rng.sample(pipes, rng.randint(1, min(3, len(pipes))))
                cap = math.inf if rng.random() < 0.3 else rng.uniform(1e6, 2e9)
                nbytes = rng.uniform(1e3, 2e7)
                flow = network.start_flow(
                    f"w{counter}", route, nbytes, rate_cap_bps=cap
                )
                flow.done.callbacks.append(
                    lambda _ev, name=flow.name: completions.__setitem__(
                        name, env.now
                    )
                )
                started.append(flow)
            elif dice < 0.75:
                flow = live[rng.randrange(len(live))]
                network.set_rate_cap(flow, rng.uniform(1e6, 2e9))
            elif dice < 0.9:
                pipe = pipes[rng.randrange(len(pipes))]
                network.set_pipe_capacity(
                    pipe, rng.choice([1e8, 2.5e8, 9.37e8, 1e9, 1e10])
                )
            else:
                flow = live[rng.randrange(len(live))]
                flow.done._defused = True  # the abort is the point
                network.abort_flow(flow, RuntimeError("link flap"))
            snapshots.append(
                sorted((f.uid, f.rate_bps) for f in network.flows)
            )

    env.process(script())
    # Generous horizon: a 1 Mbps cap on a 20 MB flow needs ~160 s of
    # virtual time, and virtual seconds are cheap once the churn stops.
    env.run(until=300.0)
    assert not network.flows, "workload must drain within the horizon"
    return snapshots, completions


@pytest.mark.parametrize("seed", range(10))
def test_incremental_allocator_matches_legacy_oracle(seed):
    legacy_snaps, legacy_done = _drive_workload(seed, legacy=True)
    incr_snaps, incr_done = _drive_workload(seed, legacy=False)

    # Same flows complete, at exactly the same virtual times.
    assert incr_done == legacy_done

    # After every operation, the same flows are live with the same rates.
    assert len(incr_snaps) == len(legacy_snaps)
    for step, (legacy_snap, incr_snap) in enumerate(
        zip(legacy_snaps, incr_snaps)
    ):
        assert [uid for uid, _ in incr_snap] == [
            uid for uid, _ in legacy_snap
        ], f"live flow sets diverge at op {step}"
        for (uid, legacy_rate), (_, incr_rate) in zip(legacy_snap, incr_snap):
            assert incr_rate == pytest.approx(
                legacy_rate, rel=1e-12, abs=1e-9
            ), f"rate of flow {uid} diverges at op {step}"


def test_legacy_env_var_routes_to_global_solver(env, monkeypatch):
    monkeypatch.setenv("REPRO_FLUID", "legacy")
    network = FluidNetwork(env)
    assert network._legacy
    pipe = Pipe("p", Gbps(1))
    flow = network.start_flow("f", [pipe], MB)
    env.run(until=flow.done)
    assert network.solve_rounds == network.recomputations


def test_incremental_reuses_component_plan(env, net):
    """Steady churn on one component must not rebuild the plan each time."""
    pipe = Pipe("shared", Gbps(1))
    flows = [net.start_flow(f"f{i}", [pipe], 100 * MB) for i in range(8)]
    plan = net._plan
    assert plan is not None and not plan.stale
    for i, flow in enumerate(flows):
        net.set_rate_cap(flow, Mbps(50 + i))
    assert net._plan is plan, "cap churn inside the component rebuilt the plan"
    assert sorted(f.uid for f in plan.flow_index) == [f.uid for f in flows]
