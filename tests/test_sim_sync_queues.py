"""Tests for event combinators, stores, channels and resources."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Channel, Environment, PriorityStore, Resource, Store


# --- AllOf / AnyOf -------------------------------------------------------------
def test_all_of_waits_for_every_event():
    env = Environment()
    seen = []

    def proc():
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(3.0, value="b")
        result = yield AllOf(env, [t1, t2])
        seen.append((list(result.values()), env.now))

    env.process(proc())
    env.run()
    assert seen == [(["a", "b"], 3.0)]


def test_all_of_empty_triggers_immediately():
    env = Environment()
    seen = []

    def proc():
        result = yield AllOf(env, [])
        seen.append((result, env.now))

    env.process(proc())
    env.run()
    assert seen == [({}, 0.0)]


def test_any_of_first_wins():
    env = Environment()
    seen = []

    def proc():
        slow = env.timeout(9.0, value="slow")
        fast = env.timeout(1.0, value="fast")
        result = yield AnyOf(env, [slow, fast])
        seen.append((list(result.values()), env.now))

    env.process(proc())
    env.run()
    assert seen == [(["fast"], 1.0)]


def test_any_of_empty_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        AnyOf(env, [])


def test_all_of_child_failure_propagates():
    env = Environment()
    caught = []

    def failer():
        yield env.timeout(1.0)
        raise RuntimeError("child died")

    def proc():
        try:
            yield AllOf(env, [env.process(failer()), env.timeout(10.0)])
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(proc())
    env.run()
    assert caught == ["child died"]


def test_all_of_with_processed_events():
    env = Environment()
    seen = []

    def proc():
        early = env.timeout(1.0, value=1)
        yield env.timeout(5.0)
        result = yield AllOf(env, [early, env.timeout(1.0, value=2)])
        seen.append((sorted(result.values()), env.now))

    env.process(proc())
    env.run()
    assert seen == [([1, 2], 6.0)]


# --- Store ----------------------------------------------------------------------
def test_store_put_then_get():
    env = Environment()
    seen = []

    def producer(store):
        yield store.put("item-1")
        yield store.put("item-2")

    def consumer(store):
        a = yield store.get()
        b = yield store.get()
        seen.append([a, b])

    store = Store(env)
    env.process(producer(store))
    env.process(consumer(store))
    env.run()
    assert seen == [["item-1", "item-2"]]


def test_store_get_blocks_until_put():
    env = Environment()
    seen = []

    def consumer(store):
        item = yield store.get()
        seen.append((item, env.now))

    def producer(store):
        yield env.timeout(4.0)
        yield store.put("late")

    store = Store(env)
    env.process(consumer(store))
    env.process(producer(store))
    env.run()
    assert seen == [("late", 4.0)]


def test_store_capacity_blocks_put():
    env = Environment()
    trace = []

    def producer(store):
        yield store.put(1)
        trace.append(("put1", env.now))
        yield store.put(2)
        trace.append(("put2", env.now))

    def consumer(store):
        yield env.timeout(3.0)
        item = yield store.get()
        trace.append(("got", item, env.now))

    store = Store(env, capacity=1)
    env.process(producer(store))
    env.process(consumer(store))
    env.run()
    assert trace == [("put1", 0.0), ("got", 1, 3.0), ("put2", 3.0)]


def test_store_fifo_ordering():
    env = Environment()
    got = []

    def producer(store):
        for i in range(5):
            yield store.put(i)

    def consumer(store):
        for _ in range(5):
            item = yield store.get()
            got.append(item)

    store = Store(env)
    env.process(producer(store))
    env.process(consumer(store))
    env.run()
    assert got == [0, 1, 2, 3, 4]


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Store(env, capacity=0)


# --- PriorityStore ---------------------------------------------------------------
def test_priority_store_orders_items():
    env = Environment()
    got = []

    def producer(store):
        for value in (5, 1, 3):
            yield store.put(value)

    def consumer(store):
        yield env.timeout(1.0)
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    store = PriorityStore(env)
    env.process(producer(store))
    env.process(consumer(store))
    env.run()
    assert got == [1, 3, 5]


# --- Channel -----------------------------------------------------------------------
def test_channel_put_nowait():
    env = Environment()
    got = []

    def consumer(chan):
        item = yield chan.get()
        got.append(item)

    chan = Channel(env)
    chan.put_nowait("signal")
    env.process(consumer(chan))
    env.run()
    assert got == ["signal"]
    assert chan.pending == 0


# --- Resource ------------------------------------------------------------------------
def test_resource_serialises_holders():
    env = Environment()
    trace = []

    def worker(name, res):
        req = res.request()
        yield req
        trace.append((name, "acquired", env.now))
        yield env.timeout(2.0)
        res.release(req)

    res = Resource(env, capacity=1)
    env.process(worker("a", res))
    env.process(worker("b", res))
    env.run()
    assert trace == [("a", "acquired", 0.0), ("b", "acquired", 2.0)]


def test_resource_capacity_two():
    env = Environment()
    trace = []

    def worker(name, res):
        req = res.request()
        yield req
        trace.append((name, env.now))
        yield env.timeout(1.0)
        res.release(req)

    res = Resource(env, capacity=2)
    for name in "abc":
        env.process(worker(name, res))
    env.run()
    assert trace == [("a", 0.0), ("b", 0.0), ("c", 1.0)]


def test_resource_double_release_rejected():
    env = Environment()
    res = Resource(env)

    def worker():
        req = res.request()
        yield req
        res.release(req)
        res.release(req)

    env.process(worker())
    with pytest.raises(SimulationError):
        env.run()


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)
