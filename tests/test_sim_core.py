"""Unit tests for the discrete-event engine core."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Interrupt


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_initial_time():
    env = Environment(initial_time=10.0)
    assert env.now == 10.0


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(1.5)
        yield env.timeout(0.5)

    env.process(proc())
    env.run()
    assert env.now == pytest.approx(2.0)


def test_timeout_value():
    env = Environment()
    seen = []

    def proc():
        value = yield env.timeout(1.0, value="hello")
        seen.append(value)

    env.process(proc())
    env.run()
    assert seen == ["hello"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_two_processes_interleave():
    env = Environment()
    trace = []

    def proc(name, delay):
        yield env.timeout(delay)
        trace.append((name, env.now))
        yield env.timeout(delay)
        trace.append((name, env.now))

    env.process(proc("a", 1.0))
    env.process(proc("b", 1.5))
    env.run()
    assert trace == [("a", 1.0), ("b", 1.5), ("a", 2.0), ("b", 3.0)]


def test_same_time_events_fifo():
    env = Environment()
    trace = []

    def proc(name):
        yield env.timeout(1.0)
        trace.append(name)

    for name in "abcde":
        env.process(proc(name))
    env.run()
    assert trace == list("abcde")


def test_process_return_value():
    env = Environment()

    def child():
        yield env.timeout(2.0)
        return 42

    def parent(results):
        value = yield env.process(child())
        results.append(value)

    results = []
    env.process(parent(results))
    env.run()
    assert results == [42]


def test_yield_from_composition():
    env = Environment()

    def inner():
        yield env.timeout(1.0)
        return "inner-done"

    def outer(results):
        value = yield from inner()
        results.append((value, env.now))

    results = []
    env.process(outer(results))
    env.run()
    assert results == [("inner-done", 1.0)]


def test_wait_on_already_finished_process():
    env = Environment()

    def child():
        yield env.timeout(1.0)
        return "early"

    def parent(results, child_proc):
        yield env.timeout(5.0)
        value = yield child_proc
        results.append((value, env.now))

    results = []
    child_proc = env.process(child())
    env.process(parent(results, child_proc))
    env.run()
    assert results == [("early", 5.0)]


def test_event_succeed_once():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_requires_exception():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        ev.fail("not an exception")


def test_unhandled_process_exception_propagates():
    env = Environment()

    def bad():
        yield env.timeout(1.0)
        raise ValueError("boom")

    env.process(bad())
    with pytest.raises(ValueError, match="boom"):
        env.run()


def test_waiter_receives_child_exception():
    env = Environment()
    caught = []

    def bad():
        yield env.timeout(1.0)
        raise ValueError("boom")

    def parent():
        try:
            yield env.process(bad())
        except ValueError as exc:
            caught.append(str(exc))

    env.process(parent())
    env.run()
    assert caught == ["boom"]


def test_run_until_time():
    env = Environment()
    trace = []

    def proc():
        for _ in range(10):
            yield env.timeout(1.0)
            trace.append(env.now)

    env.process(proc())
    env.run(until=3.5)
    assert trace == [1.0, 2.0, 3.0]
    assert env.now == 3.5


def test_run_until_event():
    env = Environment()

    def proc():
        yield env.timeout(2.0)
        return "done"

    result = env.run(until=env.process(proc()))
    assert result == "done"
    assert env.now == 2.0


def test_run_until_past_time_rejected():
    env = Environment(initial_time=5.0)
    with pytest.raises(SimulationError):
        env.run(until=1.0)


def test_run_until_event_deadlock_detected():
    env = Environment()
    never = env.event()
    with pytest.raises(SimulationError, match="deadlock"):
        env.run(until=never)


def test_step_empty_queue():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_peek():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(3.0)
    assert env.peek() == 3.0


def test_yield_non_event_rejected():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError, match="must yield Events"):
        env.run()


def test_interrupt_delivers_cause():
    env = Environment()
    seen = []

    def sleeper():
        try:
            yield env.timeout(100.0)
        except Interrupt as exc:
            seen.append((exc.cause, env.now))

    def interrupter(target):
        yield env.timeout(2.0)
        target.interrupt(cause="wake-up")

    target = env.process(sleeper())
    env.process(interrupter(target))
    env.run()
    assert seen == [("wake-up", 2.0)]


def test_interrupt_dead_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    proc = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_interrupted_process_can_continue():
    env = Environment()
    trace = []

    def sleeper():
        try:
            yield env.timeout(100.0)
        except Interrupt:
            trace.append(("interrupted", env.now))
        yield env.timeout(1.0)
        trace.append(("resumed", env.now))

    def interrupter(target):
        yield env.timeout(5.0)
        target.interrupt()

    target = env.process(sleeper())
    env.process(interrupter(target))
    env.run()
    assert trace == [("interrupted", 5.0), ("resumed", 6.0)]


def test_process_is_alive():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    proc = env.process(quick())
    assert proc.is_alive
    env.run()
    assert not proc.is_alive


def test_process_requires_generator():
    env = Environment()

    def not_a_generator():
        return 42

    with pytest.raises(SimulationError):
        env.process(not_a_generator())  # type: ignore[arg-type]


def test_event_value_before_trigger_rejected():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_determinism_two_runs_identical():
    def build_and_run():
        env = Environment()
        trace = []

        def worker(name, period):
            for _ in range(5):
                yield env.timeout(period)
                trace.append((name, env.now))

        env.process(worker("x", 0.3))
        env.process(worker("y", 0.7))
        env.process(worker("z", 0.3))
        env.run()
        return trace

    assert build_and_run() == build_and_run()


def test_schedule_negative_delay_raises_value_error():
    # Timeout already rejects negative delays at construction; the engine's
    # own _schedule must too, so no other event type can fire in the past.
    env = Environment()
    event = env.event()
    with pytest.raises(ValueError, match="negative delay"):
        env._schedule(event, 1, -0.5)


def test_tie_ranker_permutes_same_time_events():
    from repro.sim.core import tie_ranker

    def run(ranker):
        env = Environment()
        trace = []

        def proc(name):
            # runs when the process-start event pops: one scheduling layer,
            # so the tie-break order is directly observable
            trace.append(name)
            yield env.timeout(1.0)

        with tie_ranker(ranker):
            for name in "abcde":
                env.process(proc(name))
            env.run()
        return trace

    assert run(None) == list("abcde")
    # reversing the tie-break key reverses same-timestamp start order
    assert run(lambda seq: -seq) == list("edcba")


def test_tie_ranker_restored_after_block():
    from repro.sim import core

    with core.tie_ranker(lambda seq: -seq):
        assert core._TIE_RANKER is not None
    assert core._TIE_RANKER is None


# -- integer-tick time contract ------------------------------------------------
#
# The engine keeps virtual time as an integer count of nanosecond ticks;
# floats exist only at the public seconds-valued boundary.  The contract:
# any tick-representable duration round-trips through the boundary exactly,
# and no positive delay can stall the clock.


def test_tick_representable_delays_round_trip_exactly():
    from repro.units import TICKS_PER_SECOND, delay_to_ticks, ticks_to_seconds

    for ticks in (1, 41_540, 536, 3_500_000_000, 123_456_789_012_345):
        seconds = ticks_to_seconds(ticks)
        assert delay_to_ticks(seconds) == ticks


def test_tick_round_trip_randomized():
    import random

    from repro.units import delay_to_ticks, ticks_to_seconds

    rng = random.Random(20260808)
    for _ in range(20_000):
        ticks = rng.randrange(1, 10 ** rng.randint(1, 15))
        assert delay_to_ticks(ticks_to_seconds(ticks)) == ticks


def test_now_and_peek_round_trip_representable_values():
    env = Environment()
    timer = env.timeout(41.54e-6)
    assert env.peek() == 41540 / 1e9  # exactly 41.54 µs
    env.run(until=timer)
    assert env.now == 41540 / 1e9
    assert env.now_ticks == 41540


def test_run_until_lands_exactly_on_horizon():
    env = Environment()

    def proc():
        yield env.timeout(1.25)

    env.process(proc())
    env.run(until=3.5)
    assert env.now == 3.5
    assert env.now_ticks == 3_500_000_000


def test_tiny_positive_delay_cannot_stall_clock():
    env = Environment()

    def proc():
        for _ in range(5):
            yield env.timeout(1e-15)

    env.process(proc())
    env.run()
    # Each sub-tick delay rounds up to one full tick instead of zero.
    assert env.now_ticks == 5


def test_now_ticks_is_integer():
    env = Environment(initial_time=2.5)
    assert isinstance(env.now_ticks, int)
    assert env.now_ticks == 2_500_000_000
    assert env.now == 2.5
