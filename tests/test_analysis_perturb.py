"""Schedule-perturbation sanitizer: adversarial same-timestamp reordering.

The central claims under test:

* a schedule-*insensitive* fixture (and a real experiment) survives
  permuted tie-breaking with a byte-identical result and a stable
  schedule projection;
* a deliberately schedule-*sensitive* fixture — whose result encodes the
  order in which same-timestamp processes ran — is caught;
* the permutation itself is deterministic per seed (the whole point of a
  *seeded* adversary: failures replay).
"""

import pytest

from repro.analysis.perturb import (
    PerturbReport,
    ScheduleProjection,
    perturb,
    perturbation_ranker,
)
from repro.errors import ExperimentError
from repro.experiments.base import ExperimentResult
from repro.sim.core import Environment


def _result(experiment_id, value):
    return ExperimentResult(
        experiment_id=experiment_id,
        title=experiment_id,
        paper_ref="fixture",
        rows=[{"value": value}],
        text=f"{experiment_id}: {value}",
    )


def insensitive_experiment(fast=True):
    """Same-time processes whose combined result is order-independent."""
    env = Environment()
    acc = []

    def worker(value):
        yield env.timeout(1.0)
        acc.append(value)

    for i in range(6):
        env.process(worker(i), name=f"worker{i}")
    env.run()
    return _result("insensitive", sum(acc))


def sensitive_experiment(fast=True):
    """Same-time processes whose result encodes their execution *order* —
    exactly the tie-break dependence SCHED001 warns about."""
    env = Environment()
    order = []

    def worker(tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in "abcdef":
        env.process(worker(tag), name=f"worker_{tag}")
    env.run()
    return _result("sensitive", "".join(order))


class TestPerturbationRanker:
    def test_deterministic_per_seed(self):
        a = perturbation_ranker(7)
        b = perturbation_ranker(7)
        assert [a(i) for i in range(10)] == [b(i) for i in range(10)]

    def test_seeds_differ(self):
        a = perturbation_ranker(1)
        b = perturbation_ranker(2)
        assert [a(i) for i in range(10)] != [b(i) for i in range(10)]

    def test_original_seq_is_final_tiebreak(self):
        # the low 32 bits carry the original sequence number
        rank = perturbation_ranker(3)
        assert rank(42) & 0xFFFFFFFF == 42


class TestScheduleProjection:
    class _Proc:
        # mimics sim.core.Process for the sink's type-name check
        def __init__(self, name):
            self.name = name

    _Proc.__name__ = "Process"

    def _feed(self, events):
        sink = ScheduleProjection()
        for time, name in events:
            sink(time, 1, 0, self._Proc(name))
        return sink.hexdigest()

    def test_within_timestamp_order_ignored(self):
        a = self._feed([(1.0, "x"), (1.0, "y"), (2.0, "z")])
        b = self._feed([(1.0, "y"), (1.0, "x"), (2.0, "z")])
        assert a == b

    def test_across_timestamp_order_matters(self):
        a = self._feed([(1.0, "x"), (2.0, "y")])
        b = self._feed([(1.0, "y"), (2.0, "x")])
        assert a != b

    def test_private_processes_excluded(self):
        a = self._feed([(1.0, "x")])
        b = self._feed([(1.0, "x"), (1.0, "_deliver")])
        assert a == b

    def test_non_process_events_excluded(self):
        sink = ScheduleProjection()
        sink(1.0, 1, 0, object())
        assert sink.events == 0


class TestPerturb:
    def test_insensitive_fixture_passes(self):
        report = perturb(insensitive_experiment, seeds=(1, 2, 3))
        assert report.passed, report.render()
        assert "PASS" in report.render()
        assert all(run.events == report.baseline_events for run in report.runs)

    def test_sensitive_fixture_caught(self):
        report = perturb(sensitive_experiment, seeds=(1, 2, 3))
        assert not report.passed, report.render()
        assert "FAIL" in report.render()
        # at least one seed produced a different completion order
        assert any(not run.result_identical for run in report.runs)

    def test_sensitive_failure_is_reproducible(self):
        first = perturb(sensitive_experiment, seeds=(1,))
        second = perturb(sensitive_experiment, seeds=(1,))
        assert first.runs[0].result_identical == second.runs[0].result_identical

    def test_needs_a_seed(self):
        with pytest.raises(ExperimentError):
            perturb(insensitive_experiment, seeds=())

    def test_report_serialises(self):
        report = perturb(insensitive_experiment, seeds=(1,))
        payload = report.to_dict()
        assert payload["passed"] is True
        assert payload["runs"][0]["seed"] == 1
        assert isinstance(report, PerturbReport)

    def test_fig3_survives_perturbation(self):
        """Acceptance criterion stand-in for the CI fig7/faults_pingpong
        smoke: a real experiment, byte-identical under 3 seeds."""
        report = perturb("fig3", fast=True, seeds=(1, 2, 3))
        assert report.passed, report.render()


class TestResultOnlyMode:
    """``require_projection=False`` (CLI ``--result-only``): for experiments
    whose timing tail legitimately depends on same-timestamp matching order
    (table6/table7's merge phase), only rendered-result byte-identity gates."""

    def _report(self, require_projection, result_identical, projection="drifted"):
        from repro.analysis.perturb import PerturbRun

        report = PerturbReport(
            experiment_id="fixture",
            fast=True,
            baseline_projection="baseline",
            baseline_events=10,
            require_projection=require_projection,
        )
        report.runs.append(
            PerturbRun(
                seed=1, projection=projection, events=8,
                result_identical=result_identical,
            )
        )
        return report

    def test_projection_drift_not_gating(self):
        report = self._report(require_projection=False, result_identical=True)
        assert report.passed
        assert "not gating" in report.render()
        assert "PASS" in report.render()

    def test_result_drift_still_fails(self):
        report = self._report(require_projection=False, result_identical=False)
        assert not report.passed

    def test_projection_drift_gates_by_default(self):
        report = self._report(require_projection=True, result_identical=True)
        assert not report.passed

    def test_mode_recorded_in_report(self):
        report = self._report(require_projection=False, result_identical=True)
        assert report.to_dict()["require_projection"] is False

    def test_perturb_threads_the_flag(self):
        report = perturb(insensitive_experiment, seeds=(1,), require_projection=False)
        assert report.require_projection is False
        assert report.passed
