"""Runtime behaviour (placement, timeout, results) and trace accounting."""

import math

import pytest

from repro.errors import MpiError
from repro.impls import get_implementation
from repro.mpi import MpiJob
from repro.mpi.constants import COLLECTIVE_CONTEXT, POINT_TO_POINT_CONTEXT
from repro.net import build_pair_testbed
from repro.tcp import DEFAULT_SYSCTLS, TUNED_SYSCTLS
from repro.units import KB
from tests.conftest import make_cluster_job, make_grid_job


def test_empty_placement_rejected():
    net = build_pair_testbed()
    with pytest.raises(MpiError):
        MpiJob(net, get_implementation("mpich2"), [])


def test_rank_context_fields():
    job = make_cluster_job(nprocs=3)

    def program(ctx):
        assert ctx.size == 3
        assert ctx.comm.rank == ctx.rank
        assert ctx.node is job.placement[ctx.rank]
        yield from ctx.compute(0)
        return ctx.rank

    result = job.run(program)
    assert result.returns == [0, 1, 2]
    assert result.nprocs == 3


def test_compute_charges_by_node_speed():
    job = make_grid_job(nprocs=2)  # rank0 Rennes (1.10), rank1 Nancy (1.00)

    def program(ctx):
        yield from ctx.compute(1e9)
        return ctx.wtime()

    result = job.run(program)
    assert result.returns[0] == pytest.approx(1 / 1.10)
    assert result.returns[1] == pytest.approx(1 / 1.00)
    assert result.makespan == pytest.approx(1.0)


def test_negative_compute_rejected():
    job = make_cluster_job(nprocs=1)

    def program(ctx):
        yield from ctx.compute(-1)

    with pytest.raises(MpiError):
        job.run(program)


def test_timeout_reports_timed_out():
    job = make_cluster_job(nprocs=2)

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.recv(1)  # never sent: hangs
        else:
            yield from ctx.compute_time(0.1)

    result = job.run(program, timeout=5.0)
    assert result.timed_out
    assert math.isinf(result.makespan)
    assert math.isinf(result.rank_times[0])
    assert result.rank_times[1] == pytest.approx(0.1)


def test_timeout_not_triggered_when_finishing():
    job = make_cluster_job(nprocs=2)

    def program(ctx):
        yield from ctx.compute_time(0.5)

    result = job.run(program, timeout=100.0)
    assert not result.timed_out
    assert result.makespan == pytest.approx(0.5)


def test_per_rank_rng_deterministic_and_distinct():
    draws = {}
    for attempt in range(2):
        job = make_cluster_job(nprocs=2, seed=7)

        def program(ctx):
            yield from ctx.compute(0)
            return float(ctx.rng.random())

        draws[attempt] = job.run(program).returns
    assert draws[0] == draws[1]
    assert draws[0][0] != draws[0][1]


def test_sysctls_dict_per_cluster():
    net = build_pair_testbed(nodes_per_site=1)
    placement = [net.clusters["rennes"].nodes[0], net.clusters["nancy"].nodes[0]]
    job = MpiJob(
        net,
        get_implementation("mpich2"),
        placement,
        sysctls={"rennes": TUNED_SYSCTLS},
    )
    assert job.fabric.sysctls_for(placement[0]) is TUNED_SYSCTLS
    assert job.fabric.sysctls_for(placement[1]) is DEFAULT_SYSCTLS


# --- tracing -----------------------------------------------------------------------
def test_trace_separates_contexts():
    job = make_cluster_job(nprocs=4)

    def program(ctx):
        yield from ctx.comm.allreduce(1.0, nbytes=8)
        if ctx.rank == 0:
            yield from ctx.comm.send(1, nbytes=123)
        elif ctx.rank == 1:
            yield from ctx.comm.recv(0)

    result = job.run(program)
    p2p = result.trace.p2p_summary()
    assert p2p.messages == 1
    assert p2p.bytes == 123
    coll = result.trace.collective_summary()
    assert coll.messages > 0
    assert result.trace.collective_calls["allreduce"] == 4  # one call per rank


def test_trace_dominant_sizes_and_describe():
    job = make_cluster_job(nprocs=2)

    def program(ctx):
        if ctx.rank == 0:
            for _ in range(5):
                yield from ctx.comm.send(1, nbytes=8)
            for _ in range(3):
                yield from ctx.comm.send(1, nbytes=1024)
        else:
            for _ in range(8):
                yield from ctx.comm.recv(0)

    result = job.run(program)
    dominant = dict(result.trace.dominant_sizes(POINT_TO_POINT_CONTEXT))
    assert dominant == {8: 5, 1024: 3}
    text = result.trace.describe(POINT_TO_POINT_CONTEXT)
    assert "5 * 8" in text
    assert "3 * 1k" in text


def test_trace_histogram_bands():
    job = make_cluster_job(nprocs=2)

    def program(ctx):
        if ctx.rank == 0:
            for nbytes in (100, 120, 100 * KB):
                yield from ctx.comm.send(1, nbytes=nbytes)
        else:
            for _ in range(3):
                yield from ctx.comm.recv(0)

    result = job.run(program)
    bands = result.trace.size_histogram(POINT_TO_POINT_CONTEXT)
    assert sum(count for _, _, count in bands) == 3


def test_trace_disabled_records_nothing():
    job = make_cluster_job(nprocs=2, trace=False)

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(1, nbytes=100)
        else:
            yield from ctx.comm.recv(0)

    result = job.run(program)
    assert result.trace.total_messages == 0


def test_collective_traffic_volume_sane():
    """Recursive-doubling allreduce on P ranks moves P*log2(P) messages."""
    nprocs = 8
    job = make_cluster_job(nprocs=nprocs, impl_name="mpich2")

    def program(ctx):
        yield from ctx.comm.allreduce(1.0, nbytes=1024)

    result = job.run(program)
    coll = result.trace.collective_summary()
    assert coll.messages == nprocs * math.log2(nprocs)
