"""Unit tests for MPI building blocks: envelopes, datatypes, requests,
reduction ops, mailbox edge cases."""

import numpy as np
import pytest

from repro.errors import MpiError
from repro.mpi import ANY_SOURCE, ANY_TAG, BYTE, DOUBLE, INT, Request, Status
from repro.mpi.constants import (
    BAND,
    BOR,
    COLLECTIVE_CONTEXT,
    LAND,
    LOR,
    MAX,
    MIN,
    POINT_TO_POINT_CONTEXT,
    PROD,
    SUM,
)
from repro.mpi.datatypes import Datatype
from repro.mpi.matching import Mailbox
from repro.mpi.message import Envelope
from repro.mpi.request import waitall, waitany
from repro.sim import Environment


# --- datatypes -----------------------------------------------------------------
def test_datatype_sizes():
    assert BYTE.size == 1
    assert INT.size == 4
    assert DOUBLE.size == 8
    assert DOUBLE.bytes_for(1000) == 8000


def test_datatype_validation():
    with pytest.raises(MpiError):
        Datatype("bad", 0)
    with pytest.raises(MpiError):
        INT.bytes_for(-1)


# --- reduction ops ---------------------------------------------------------------
def test_ops_on_scalars():
    assert SUM(2, 3) == 5
    assert PROD(2, 3) == 6
    assert MAX(2, 3) == 3
    assert MIN(2, 3) == 2
    assert LAND(True, False) is False
    assert LOR(True, False) is True
    assert BAND(0b1100, 0b1010) == 0b1000
    assert BOR(0b1100, 0b1010) == 0b1110


def test_ops_on_arrays():
    a, b = np.array([1.0, 5.0]), np.array([3.0, 2.0])
    np.testing.assert_array_equal(SUM(a, b), [4.0, 7.0])
    np.testing.assert_array_equal(MAX(a, b), [3.0, 5.0])


def test_ops_none_passthrough():
    assert SUM(None, None) is None
    assert SUM(None, 5) == 5
    assert SUM(5, None) == 5


# --- envelopes ----------------------------------------------------------------------
def test_envelope_matching():
    env = Envelope(src=2, dst=0, tag=7, context=POINT_TO_POINT_CONTEXT, nbytes=10)
    assert env.matches(2, 7, POINT_TO_POINT_CONTEXT)
    assert env.matches(ANY_SOURCE, 7, POINT_TO_POINT_CONTEXT)
    assert env.matches(2, ANY_TAG, POINT_TO_POINT_CONTEXT)
    assert env.matches(ANY_SOURCE, ANY_TAG, POINT_TO_POINT_CONTEXT)
    assert not env.matches(1, 7, POINT_TO_POINT_CONTEXT)
    assert not env.matches(2, 8, POINT_TO_POINT_CONTEXT)
    assert not env.matches(2, 7, COLLECTIVE_CONTEXT)


# --- requests ----------------------------------------------------------------------
def test_request_lifecycle():
    env = Environment()
    req = Request(env, "send")
    assert not req.complete
    assert not req.test()
    with pytest.raises(MpiError):
        req.result()
    req._finish("done")
    env.run()
    assert req.complete
    assert req.result() == "done"
    assert "complete" in repr(req)


def test_request_kind_validation():
    env = Environment()
    with pytest.raises(MpiError):
        Request(env, "teleport")


def test_waitall_empty():
    env = Environment()

    def proc(out):
        results = yield from waitall(env, [])
        out.append(results)

    out = []
    env.process(proc(out))
    env.run()
    assert out == [[]]


def test_waitany_empty_rejected():
    env = Environment()

    def proc():
        yield from waitany(env, [])

    env.process(proc())
    with pytest.raises(MpiError):
        env.run()


# --- mailbox ------------------------------------------------------------------------
def test_mailbox_validation():
    env = Environment()
    with pytest.raises(MpiError):
        Mailbox(env, 0, copy_bandwidth=0)


def test_mailbox_idle():
    env = Environment()
    box = Mailbox(env, 0, copy_bandwidth=1e9)
    assert box.idle()
    box.post_recv(ANY_SOURCE, ANY_TAG, POINT_TO_POINT_CONTEXT)
    assert not box.idle()


def test_mailbox_unexpected_then_matched():
    env = Environment()
    box = Mailbox(env, 0, copy_bandwidth=1e9)
    envelope = Envelope(
        src=1, dst=0, tag=3, context=POINT_TO_POINT_CONTEXT, nbytes=1000,
        payload="data",
    )
    box.deliver(envelope)
    assert box.stats.unexpected == 1
    env.run(until=1e-6)  # the receive is genuinely late, not a same-tick tie
    request = box.post_recv(1, 3, POINT_TO_POINT_CONTEXT)
    env.run()  # run the copy process
    assert request.complete
    payload, status = request.result()
    assert payload == "data"
    assert status == Status(1, 3, 1000)
    assert box.stats.copies_bytes == 1000
    assert box.idle()


def test_mailbox_posted_then_delivered_no_copy():
    env = Environment()
    box = Mailbox(env, 0, copy_bandwidth=1e9)
    request = box.post_recv(ANY_SOURCE, ANY_TAG, POINT_TO_POINT_CONTEXT)
    box.deliver(
        Envelope(src=2, dst=0, tag=0, context=POINT_TO_POINT_CONTEXT, nbytes=50)
    )
    env.run()
    assert request.complete
    assert box.stats.expected == 1
    assert box.stats.copies_bytes == 0


def test_mailbox_wildcards_match_in_arrival_order():
    env = Environment()
    box = Mailbox(env, 0, copy_bandwidth=1e9)
    for i, src in enumerate((3, 1, 2)):
        env.run(until=(i + 1) * 1e-6)  # distinct arrival instants
        box.deliver(
            Envelope(src=src, dst=0, tag=0, context=POINT_TO_POINT_CONTEXT,
                     nbytes=8, payload=i)
        )
    env.run(until=1e-5)
    request = box.post_recv(ANY_SOURCE, ANY_TAG, POINT_TO_POINT_CONTEXT)
    env.run()
    payload, status = request.result()
    assert payload == 0  # first arrival, regardless of source rank
    assert status.source == 3


def test_mailbox_same_tick_arrivals_match_in_canonical_order():
    # Cross-sender order within one tick is a queue accident; the mailbox
    # canonicalises it to (src, seq) so ANY_SOURCE matching is
    # schedule-independent.
    env = Environment()
    box = Mailbox(env, 0, copy_bandwidth=1e9)
    for i, src in enumerate((3, 1, 2)):
        box.deliver(
            Envelope(src=src, dst=0, tag=0, context=POINT_TO_POINT_CONTEXT,
                     nbytes=8, payload=i)
        )
    env.run(until=1e-6)
    request = box.post_recv(ANY_SOURCE, ANY_TAG, POINT_TO_POINT_CONTEXT)
    env.run()
    payload, status = request.result()
    assert status.source == 1  # lowest same-instant source, not arrival accident
    assert payload == 1


def test_mailbox_same_tick_tie_is_expected_no_copy():
    # An envelope arriving at exactly the tick its receive is posted is
    # classified expected in both intra-tick orders: no unexpected-queue
    # copy charge, and the stats agree with the post-first schedule.
    env = Environment()
    box = Mailbox(env, 0, copy_bandwidth=1e9)
    envelope = Envelope(
        src=1, dst=0, tag=3, context=POINT_TO_POINT_CONTEXT, nbytes=1000,
        payload="data",
    )
    box.deliver(envelope)
    request = box.post_recv(1, 3, POINT_TO_POINT_CONTEXT)
    env.run()
    payload, status = request.result()
    assert payload == "data"
    assert status == Status(1, 3, 1000)
    assert box.stats.expected == 1
    assert box.stats.unexpected == 0
    assert box.stats.copies_bytes == 0
