"""The CI perf-regression gate: budgets file and check script semantics."""

import importlib.util
import json
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
BUDGETS = REPO / "benchmarks" / "budgets.json"

spec = importlib.util.spec_from_file_location(
    "check_perf_budget", REPO / "scripts" / "check_perf_budget.py"
)
gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(gate)


@pytest.fixture(scope="module")
def budget_doc():
    return json.loads(BUDGETS.read_text())


def _manifest(tmp_path, experiments):
    path = tmp_path / "BENCH.json"
    entry = {
        "label": "test",
        "jobs": 4,
        "ok": True,
        "telemetry": False,
        "experiments": {
            eid: {"wall_s": wall, "ok": True} for eid, wall in experiments.items()
        },
    }
    path.write_text(json.dumps({"schema": 1, "runs": [entry]}))
    return path


def _budgets(tmp_path, budgets, slack=0.5, grace_s=2.0):
    path = tmp_path / "budgets.json"
    path.write_text(
        json.dumps({"schema": 1, "slack": slack, "grace_s": grace_s, "budgets": budgets})
    )
    return path


def test_budget_file_covers_every_experiment(budget_doc):
    from repro.experiments import EXPERIMENTS

    assert sorted(budget_doc["budgets"]) == sorted(EXPERIMENTS)


def test_budget_file_slack_is_generous(budget_doc):
    # The ISSUE's contract: +-50% runner-noise slack, plus an absolute
    # grace so near-zero entries (table1: ~1 ms) can never flake.
    assert budget_doc["slack"] == 0.5
    assert budget_doc["grace_s"] >= 1.0


def test_within_budget_passes(tmp_path, capsys):
    rc = gate.main(
        [
            "--manifest", str(_manifest(tmp_path, {"fig7": 2.5})),
            "--budgets", str(_budgets(tmp_path, {"fig7": 2.0})),
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "PERF OK" in out


def test_regression_fails_with_before_after_table(tmp_path, capsys):
    rc = gate.main(
        [
            "--manifest", str(_manifest(tmp_path, {"fig7": 30.0})),
            "--budgets", str(_budgets(tmp_path, {"fig7": 2.0})),
        ]
    )
    out = capsys.readouterr().out
    assert rc == 1
    # before/after table: budget and fresh wall side by side, then verdict
    assert "2.000" in out and "30.000" in out
    assert "PERF REGRESSION: fig7" in out


def test_grace_absorbs_near_zero_noise(tmp_path):
    # 1 ms budget, 800 ms fresh wall: a huge ratio but inside the absolute
    # grace, exactly the table1/table3 interpreter-jitter case.
    rc = gate.main(
        [
            "--manifest", str(_manifest(tmp_path, {"table1": 0.8})),
            "--budgets", str(_budgets(tmp_path, {"table1": 0.001})),
        ]
    )
    assert rc == 0


def test_unbudgeted_experiment_fails(tmp_path, capsys):
    rc = gate.main(
        [
            "--manifest", str(_manifest(tmp_path, {"fig7": 1.0, "fig99": 1.0})),
            "--budgets", str(_budgets(tmp_path, {"fig7": 2.0})),
        ]
    )
    assert rc == 1
    assert "no budget" in capsys.readouterr().out


def test_experiment_missing_from_campaign_fails(tmp_path, capsys):
    rc = gate.main(
        [
            "--manifest", str(_manifest(tmp_path, {"fig7": 1.0})),
            "--budgets", str(_budgets(tmp_path, {"fig7": 2.0, "table6": 300.0})),
        ]
    )
    assert rc == 1
    assert "missing from campaign manifest" in capsys.readouterr().out


def test_committed_budgets_pass_against_seed_entry(tmp_path, budget_doc):
    # The committed budgets must accept the manifest entry they were
    # seeded from (fresh wall == budget for every experiment).
    manifest = _manifest(tmp_path, dict(budget_doc["budgets"]))
    rc = gate.main(["--manifest", str(manifest), "--budgets", str(BUDGETS)])
    assert rc == 0


def test_empty_manifest_is_a_hard_error(tmp_path):
    path = tmp_path / "BENCH.json"
    path.write_text(json.dumps({"schema": 1, "runs": []}))
    with pytest.raises(SystemExit, match="no campaign entries"):
        gate.main(["--manifest", str(path), "--budgets", str(BUDGETS)])
