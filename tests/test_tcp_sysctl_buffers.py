"""Tests for sysctl configs and socket buffer resolution."""

import pytest

from repro.errors import TcpError
from repro.tcp import (
    BufferPolicy,
    DEFAULT_SYSCTLS,
    SysctlConfig,
    TUNED_MAX_ONLY_SYSCTLS,
    TUNED_SYSCTLS,
    effective_buffers,
)
from repro.tcp.sysctl import BufferTriple
from repro.units import KB, MB


def test_default_sysctls_are_linux_2618():
    cfg = DEFAULT_SYSCTLS
    assert cfg.rmem_max == 131071
    assert cfg.wmem_max == 131071
    assert cfg.tcp_rmem.default_bytes == 87380
    assert cfg.tcp_rmem.max_bytes == 174760
    assert cfg.congestion_control == "bic"  # Table 3: BIC + Sack
    assert cfg.tcp_slow_start_after_idle


def test_with_buffer_max():
    cfg = DEFAULT_SYSCTLS.with_buffer_max(4 * MB)
    assert cfg.rmem_max == 4 * MB
    assert cfg.wmem_max == 4 * MB
    assert cfg.tcp_rmem.max_bytes == 4 * MB
    assert cfg.tcp_wmem.max_bytes == 4 * MB
    # middle value untouched (this is GridMPI's problem)
    assert cfg.tcp_rmem.default_bytes == 87380


def test_with_buffer_default():
    cfg = DEFAULT_SYSCTLS.with_buffer_default(4 * MB)
    assert cfg.tcp_rmem.default_bytes == 4 * MB
    assert cfg.tcp_wmem.default_bytes == 4 * MB
    assert cfg.tcp_rmem.max_bytes == 4 * MB  # max lifted to stay consistent


def test_tuned_sysctls():
    assert TUNED_SYSCTLS.tcp_rmem.default_bytes == 4 * MB
    assert TUNED_SYSCTLS.tcp_rmem.max_bytes == 4 * MB
    assert TUNED_MAX_ONLY_SYSCTLS.tcp_rmem.default_bytes == 87380


def test_invalid_buffer_triple():
    with pytest.raises(TcpError):
        BufferTriple(100, 50, 200)  # default < min
    with pytest.raises(TcpError):
        BufferTriple(100, 200, 150)  # max < default


def test_invalid_congestion_control():
    with pytest.raises(TcpError):
        SysctlConfig(congestion_control="cubic-from-the-future")


def test_render_commands():
    cmds = TUNED_SYSCTLS.render_commands()
    assert f"echo {4 * MB} > /proc/sys/net/core/rmem_max" in cmds
    assert any("tcp_rmem" in c for c in cmds)
    assert any("tcp_wmem" in c for c in cmds)


# --- buffer policies -----------------------------------------------------------
def test_autotune_uses_max():
    snd, rcv = effective_buffers(BufferPolicy.autotune(), DEFAULT_SYSCTLS, DEFAULT_SYSCTLS)
    assert snd == 174760
    assert rcv == 174760


def test_initial_pins_receive_window():
    snd, rcv = effective_buffers(BufferPolicy.initial(), DEFAULT_SYSCTLS, DEFAULT_SYSCTLS)
    assert snd == 174760  # send side still auto-tunes
    assert rcv == 87380  # receive window stuck at the initial value
    # raising only the maxima does not help (the paper's GridMPI finding)
    snd, rcv = effective_buffers(
        BufferPolicy.initial(), TUNED_MAX_ONLY_SYSCTLS, TUNED_MAX_ONLY_SYSCTLS
    )
    assert rcv == 87380
    # raising the middle value does
    snd, rcv = effective_buffers(BufferPolicy.initial(), TUNED_SYSCTLS, TUNED_SYSCTLS)
    assert rcv == 4 * MB


def test_fixed_clamped_by_core_max():
    policy = BufferPolicy.fixed(4 * MB, 4 * MB)
    snd, rcv = effective_buffers(policy, DEFAULT_SYSCTLS, DEFAULT_SYSCTLS)
    # rmem_max/wmem_max = 128k: the request is silently clamped — exactly
    # why OpenMPI's mca knobs need the sysctl tuning as well.
    assert snd == 131071
    assert rcv == 131071
    snd, rcv = effective_buffers(policy, TUNED_SYSCTLS, TUNED_SYSCTLS)
    assert snd == 4 * MB
    assert rcv == 4 * MB


def test_openmpi_default_128k_fixed():
    policy = BufferPolicy.fixed(128 * KB, 128 * KB)
    snd, rcv = effective_buffers(policy, TUNED_SYSCTLS, TUNED_SYSCTLS)
    # Even on a tuned kernel, a fixed 128 kB request stays 128 kB: the mca
    # parameters are mandatory for OpenMPI on the grid.
    assert snd == 128 * KB
    assert rcv == 128 * KB


def test_mixed_hosts_use_their_own_sysctls():
    snd, rcv = effective_buffers(BufferPolicy.autotune(), TUNED_SYSCTLS, DEFAULT_SYSCTLS)
    assert snd == 4 * MB  # sender tuned
    assert rcv == 174760  # receiver not


def test_policy_validation():
    with pytest.raises(TcpError):
        BufferPolicy("banana")
    with pytest.raises(TcpError):
        BufferPolicy("fixed")  # missing sizes
    with pytest.raises(TcpError):
        BufferPolicy("fixed", sndbuf=-1, rcvbuf=100)
    with pytest.raises(TcpError):
        BufferPolicy("autotune", sndbuf=100, rcvbuf=100)
