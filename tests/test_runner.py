"""Runner subsystem: cache semantics, parallel/serial identity, failures.

The fake experiments below are injected into the live registry dict; the
pool uses the fork start method (skipped where unavailable), so worker
processes inherit the injected entries without pickling the functions.
"""

import importlib.util
import json
import logging
import multiprocessing
import os
import pathlib
import sys
import time

import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.base import ExperimentResult
from repro.experiments.registry import get_shard_plan
from repro.runner import (
    ExperimentSpec,
    ResultCache,
    RunnerPolicy,
    record_campaign,
    run_campaign,
)
from repro.runner.cache import source_digest

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="pool tests require the fork start method",
)

REPO = pathlib.Path(__file__).resolve().parent.parent


def _tiny_experiment(fast=False):
    return ExperimentResult("tiny", "Tiny", "Table 0", [{"x": 1}], "tiny report")


def _raising_experiment(fast=False):
    raise RuntimeError("synthetic experiment failure")


def _crashing_experiment(fast=False):
    os._exit(3)  # simulate a worker segfault: no exception, no cleanup


def _hanging_experiment(fast=False):
    time.sleep(60)  # a stuck shard: only the supervisor's timeout ends it
    return _tiny_experiment(fast)


@pytest.fixture()
def tiny(monkeypatch):
    monkeypatch.setitem(EXPERIMENTS, "tiny", _tiny_experiment)
    return "tiny"


# --- cache semantics --------------------------------------------------------------
def test_cache_miss_then_hit(tmp_path, tiny):
    cache = ResultCache(root=tmp_path, digest="digest-a")
    specs = [ExperimentSpec(tiny, fast=True)]

    first = run_campaign(specs, cache=cache)
    assert first.ok and not first.runs[0].cached
    assert first.runs[0].trace_hash  # sanitizer hook ran

    second = run_campaign(specs, cache=cache)
    assert second.ok and second.runs[0].cached
    assert second.runs[0].text == first.runs[0].text
    assert second.runs[0].trace_hash == first.runs[0].trace_hash


def test_source_digest_invalidates_cache(tmp_path, tiny):
    specs = [ExperimentSpec(tiny, fast=True)]
    run_campaign(specs, cache=ResultCache(root=tmp_path, digest="digest-a"))
    # Same tree, same digest -> hit; changed source digest -> miss.
    hit = run_campaign(specs, cache=ResultCache(root=tmp_path, digest="digest-a"))
    miss = run_campaign(specs, cache=ResultCache(root=tmp_path, digest="digest-b"))
    assert hit.runs[0].cached
    assert not miss.runs[0].cached


def test_fast_flag_is_part_of_the_key(tmp_path, tiny):
    cache = ResultCache(root=tmp_path, digest="digest-a")
    run_campaign([ExperimentSpec(tiny, fast=True)], cache=cache)
    full = run_campaign([ExperimentSpec(tiny, fast=False)], cache=cache)
    assert not full.runs[0].cached


def test_disabled_cache_never_hits(tmp_path, tiny):
    cache = ResultCache(root=tmp_path, digest="digest-a", enabled=False)
    run_campaign([ExperimentSpec(tiny, fast=True)], cache=cache)
    again = run_campaign([ExperimentSpec(tiny, fast=True)], cache=cache)
    assert not again.runs[0].cached
    assert list(tmp_path.iterdir()) == []  # nothing written


def test_cache_roundtrips_infinities(tmp_path):
    cache = ResultCache(root=tmp_path, digest="digest-a")
    cache.store("npb/test/point", True, {"payload": {"times": {"a": float("inf")}}})
    loaded = cache.load("npb/test/point", True)
    assert loaded["payload"]["times"]["a"] == float("inf")


def test_source_digest_changes_with_content(tmp_path):
    (tmp_path / "m.py").write_text("x = 1\n")
    before = source_digest(tmp_path)
    (tmp_path / "m.py").write_text("x = 2\n")
    assert source_digest(tmp_path) != before


# --- parallel == serial -----------------------------------------------------------
@needs_fork
def test_sharded_parallel_output_is_byte_identical_to_serial(tmp_path):
    direct = run_experiment("fig6", fast=True)
    campaign = run_campaign(
        [ExperimentSpec("fig6", fast=True)],
        jobs=4,
        cache=ResultCache(root=tmp_path, digest="digest-a"),
        out_dir=tmp_path / "out",
    )
    run = campaign.runs[0]
    assert run.ok and run.sharded
    assert run.text == direct.text
    assert run.trace_mode == "sharded"
    # the written report is the golden format: text + wall/fast footer
    written = (tmp_path / "out" / "fig6.txt").read_text()
    body, footer = written.rsplit("\n\n", 1)
    assert body == direct.text
    assert footer.startswith("[") and "s wall, fast=True]" in footer
    # warm-cache replay returns the same bytes
    warm = run_campaign(
        [ExperimentSpec("fig6", fast=True)],
        jobs=4,
        cache=ResultCache(root=tmp_path, digest="digest-a"),
    )
    assert warm.runs[0].cached and warm.runs[0].text == direct.text


def test_npb_merge_is_identical_to_serial(monkeypatch):
    # Prefill the NPB memo so neither path simulates anything; the test
    # pins merge() to the serial rendering, value for value.
    from repro.experiments import fig10, fig12, npb_runs
    from repro.impls import IMPLEMENTATION_ORDER

    cls, sample = npb_runs.npb_fast_config(True)
    fake = {}
    for placement in ("grid16", "cluster16"):
        for i, bench in enumerate(npb_runs.NPB_ORDER):
            for j, name in enumerate(IMPLEMENTATION_ORDER):
                t = float("inf") if (i, j) == (2, 3) else 10.0 + i + 0.1 * j
                fake[(bench, name, placement, cls, "fully_tuned", sample)] = t
    monkeypatch.setattr(npb_runs, "_cache", fake)

    for module in (fig10, fig12):
        payloads = {
            shard.task_id: npb_runs.run_npb_point_shard(fast=True, **shard.params)
            for shard in module.shards(fast=True)
        }
        # JSON round-trip, as the shard cache would do
        payloads = json.loads(json.dumps(payloads))
        assert module.merge(payloads, fast=True).text == module.run(fast=True).text


def test_ray2mesh_merge_is_identical_to_serial(monkeypatch):
    from repro.experiments import table6, table7

    fake = {
        site: table6.Ray2MeshSummary(
            rays_per_cluster={s: 1000 + 10 * i + j for j, s in enumerate(table6.SITES)},
            comp_time=100.0 + i,
            merge_time=50.0 + i,
            total_time=150.0 + 2 * i,
        )
        for i, site in enumerate(table6.SITES)
    }
    monkeypatch.setattr(table6, "_cache", {("ray2mesh", True): fake})
    payloads = {
        f"ray2mesh/{site}": {
            "rays_per_cluster": fake[site].rays_per_cluster,
            "comp_time": fake[site].comp_time,
            "merge_time": fake[site].merge_time,
            "total_time": fake[site].total_time,
        }
        for site in table6.SITES
    }
    payloads = json.loads(json.dumps(payloads))
    assert table6.merge(payloads, fast=True).text == table6.run(fast=True).text
    assert table7.merge(payloads, fast=True).text == table7.run(fast=True).text


def test_shard_plans_dedupe_across_experiments():
    t6 = [s.task_id for s in get_shard_plan("table6", fast=True).shards]
    t7 = [s.task_id for s in get_shard_plan("table7", fast=True).shards]
    assert t6 == t7  # one ray2mesh run per site feeds both tables

    grid16 = {s.task_id for s in get_shard_plan("fig10", fast=True).shards}
    assert grid16 <= {s.task_id for s in get_shard_plan("fig12", fast=True).shards}
    assert grid16 <= {s.task_id for s in get_shard_plan("fig13", fast=True).shards}


def test_unsharded_experiments_have_no_plan():
    assert get_shard_plan("table1", fast=True) is None


# --- failure surfacing ------------------------------------------------------------
def test_raising_experiment_fails_without_aborting_campaign(tmp_path, monkeypatch, tiny):
    monkeypatch.setitem(EXPERIMENTS, "boom", _raising_experiment)
    campaign = run_campaign(
        [ExperimentSpec("boom", fast=True), ExperimentSpec(tiny, fast=True)],
        cache=ResultCache(root=tmp_path, digest="digest-a"),
    )
    assert not campaign.ok
    boom, tiny_run = campaign.runs
    assert not boom.ok and "RuntimeError" in boom.error
    assert tiny_run.ok  # the loop kept going
    assert "FAILED: boom" in campaign.summary()
    # failures are never cached
    rerun = run_campaign(
        [ExperimentSpec("boom", fast=True)],
        cache=ResultCache(root=tmp_path, digest="digest-a"),
    )
    assert not rerun.runs[0].cached


@needs_fork
def test_raising_experiment_fails_on_the_pool_too(tmp_path, monkeypatch, tiny):
    monkeypatch.setitem(EXPERIMENTS, "boom", _raising_experiment)
    campaign = run_campaign(
        [ExperimentSpec("boom", fast=True), ExperimentSpec(tiny, fast=True)],
        jobs=2,
        cache=ResultCache(root=tmp_path, digest="digest-a"),
    )
    assert not campaign.ok
    assert "RuntimeError" in campaign.runs[0].error
    assert campaign.runs[1].ok


@needs_fork
def test_worker_crash_surfaces_as_failure_not_hang(tmp_path, monkeypatch):
    monkeypatch.setitem(EXPERIMENTS, "crash", _crashing_experiment)
    campaign = run_campaign(
        [ExperimentSpec("crash", fast=True)],
        jobs=2,
        cache=ResultCache(root=tmp_path, digest="digest-a"),
    )
    assert not campaign.ok
    assert campaign.runs[0].error  # BrokenProcessPool, surfaced as text


# --- robustness policy: timeouts, retries, graceful degradation -------------------
@needs_fork
def test_hung_task_times_out_retries_then_fails(tmp_path, monkeypatch, tiny):
    monkeypatch.setitem(EXPERIMENTS, "hang", _hanging_experiment)
    campaign = run_campaign(
        [ExperimentSpec("hang", fast=True), ExperimentSpec(tiny, fast=True)],
        jobs=2,
        cache=ResultCache(root=tmp_path / "cache", digest="digest-a"),
        policy=RunnerPolicy(timeout_s=0.5, retries=1, backoff_s=0.01),
        out_dir=tmp_path / "out",
    )
    assert not campaign.ok
    hang, tiny_run = campaign.runs
    assert "timed out after 0.5s wall clock" in hang.error
    assert "gave up after 2 attempts" in hang.error
    assert tiny_run.ok  # partial results: the healthy experiment completed
    assert campaign.timeouts == 2  # initial attempt + one retry
    assert campaign.retries == 1
    # ... and its report was still written, while the hung one has none
    assert (tmp_path / "out" / "tiny.txt").exists()
    assert not (tmp_path / "out" / "hang.txt").exists()


@needs_fork
def test_crashed_task_recovers_on_retry(tmp_path, monkeypatch):
    marker = tmp_path / "crashed-once"

    def flaky(fast=False):
        if not marker.exists():
            marker.write_text("first attempt crashed")
            os._exit(9)
        return ExperimentResult("flaky", "Flaky", "-", [{"x": 1}], "flaky ok")

    monkeypatch.setitem(EXPERIMENTS, "flaky", flaky)
    campaign = run_campaign(
        [ExperimentSpec("flaky", fast=True)],
        jobs=2,
        cache=ResultCache(root=tmp_path / "cache", digest="digest-a"),
        policy=RunnerPolicy(timeout_s=30.0, retries=2, backoff_s=0.01),
    )
    assert campaign.ok
    assert campaign.runs[0].text == "flaky ok"
    assert campaign.retries == 1  # one crash, one successful resubmission
    assert campaign.timeouts == 0


@needs_fork
def test_crashing_task_exhausts_retries_with_attempt_count(tmp_path, monkeypatch):
    monkeypatch.setitem(EXPERIMENTS, "crash", _crashing_experiment)
    campaign = run_campaign(
        [ExperimentSpec("crash", fast=True)],
        jobs=2,
        cache=ResultCache(root=tmp_path, digest="digest-a"),
        policy=RunnerPolicy(timeout_s=30.0, retries=2, backoff_s=0.01),
    )
    assert not campaign.ok
    assert "worker crashed (exit code 3)" in campaign.runs[0].error
    assert "gave up after 3 attempts" in campaign.runs[0].error
    assert campaign.retries == 2


@needs_fork
def test_retry_and_timeout_counters_reach_the_manifest(tmp_path, monkeypatch):
    monkeypatch.setitem(EXPERIMENTS, "hang", _hanging_experiment)
    campaign = run_campaign(
        [ExperimentSpec("hang", fast=True)],
        jobs=2,
        cache=ResultCache(root=tmp_path, digest="digest-a"),
        policy=RunnerPolicy(timeout_s=0.3, retries=1, backoff_s=0.01),
    )
    manifest = tmp_path / "bench.json"
    record_campaign(campaign, path=manifest, label="robustness")
    entry = json.loads(manifest.read_text())["runs"][-1]
    assert entry["retries"] == campaign.retries == 1
    assert entry["timeouts"] == campaign.timeouts == 2


def test_runner_policy_validation():
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        RunnerPolicy(timeout_s=0.0)
    with pytest.raises(ReproError):
        RunnerPolicy(retries=-1)
    with pytest.raises(ReproError):
        RunnerPolicy(backoff_s=-0.1)


@needs_fork
def test_workers_store_with_the_parent_digest(tmp_path, tiny):
    # The parent computes source_digest() once and ships it to workers; a
    # worker recomputing its own digest would be both slow and racy.
    cache = ResultCache(root=tmp_path, digest="pinned-digest")
    campaign = run_campaign([ExperimentSpec(tiny, fast=True)], jobs=2, cache=cache)
    assert campaign.ok
    assert cache.path("experiment/tiny", True).exists()
    rerun = run_campaign([ExperimentSpec(tiny, fast=True)], jobs=2, cache=cache)
    assert rerun.runs[0].cached


# --- cache corruption: miss + evict + warn ----------------------------------------
def test_corrupt_cache_entry_is_a_miss_and_gets_evicted(tmp_path, caplog):
    cache = ResultCache(root=tmp_path, digest="digest-a")
    cache.store("experiment/tiny", True, {"ok": True})
    path = cache.path("experiment/tiny", True)
    path.write_text("{ truncated garbage", encoding="utf-8")
    with caplog.at_level(logging.WARNING, logger="repro.runner.cache"):
        assert cache.load("experiment/tiny", True) is None
    assert not path.exists()  # evicted, cannot shadow the recomputed entry
    assert "evicted corrupt cache entry" in caplog.text
    assert "malformed JSON" in caplog.text
    # the slot is reusable immediately
    cache.store("experiment/tiny", True, {"ok": True})
    assert cache.load("experiment/tiny", True) == {"ok": True}


def test_wrong_shape_cache_document_is_evicted(tmp_path, caplog):
    cache = ResultCache(root=tmp_path, digest="digest-a")
    path = cache.path("experiment/tiny", True)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({"schema": 1, "artifact": "not a dict"}))
    with caplog.at_level(logging.WARNING, logger="repro.runner.cache"):
        assert cache.load("experiment/tiny", True) is None
    assert not path.exists()
    assert "unexpected document shape" in caplog.text


def test_corrupt_entry_forces_recompute_then_reheals(tmp_path, tiny):
    cache = ResultCache(root=tmp_path, digest="digest-a")
    run_campaign([ExperimentSpec(tiny, fast=True)], cache=cache)
    cache.path("experiment/tiny", True).write_text("not json at all")
    rerun = run_campaign([ExperimentSpec(tiny, fast=True)], cache=cache)
    assert rerun.runs[0].ok
    assert not rerun.runs[0].cached  # corruption degraded to a recompute
    healed = run_campaign([ExperimentSpec(tiny, fast=True)], cache=cache)
    assert healed.runs[0].cached


# --- front-ends -------------------------------------------------------------------
def _load_wrapper():
    spec = importlib.util.spec_from_file_location(
        "run_all_experiments", REPO / "scripts" / "run_all_experiments.py"
    )
    wrapper = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(wrapper)
    return wrapper


def test_run_all_wrapper_reports_failures_with_exit_code(tmp_path, monkeypatch, tiny, capsys):
    wrapper = _load_wrapper()
    monkeypatch.setitem(EXPERIMENTS, "boom", _raising_experiment)
    monkeypatch.chdir(tmp_path)  # manifest + cache land in the tmp dir
    # A stale report from an earlier run must not survive the failure.
    (tmp_path / "out").mkdir()
    (tmp_path / "out" / "boom.txt").write_text("stale report\n")
    monkeypatch.setattr(
        sys,
        "argv",
        ["run_all_experiments.py", "boom", tiny, "--out", str(tmp_path / "out")],
    )
    assert wrapper.main() == 1  # non-zero, but the sweep kept going
    out = capsys.readouterr().out
    assert "1/2 experiments ok" in out and "FAILED: boom" in out
    assert (tmp_path / "out" / "tiny.txt").exists()
    assert not (tmp_path / "out" / "boom.txt").exists()
    assert (tmp_path / "BENCH_experiments.json").exists()


def test_run_all_wrapper_fast_is_uniform(tmp_path, monkeypatch, tiny, capsys):
    """--fast applies to every experiment — the wrapper produces the same
    bytes as ``repro run all --fast``, so either front-end can regenerate
    the ``results/fast`` goldens CI diffs against."""
    wrapper = _load_wrapper()
    monkeypatch.chdir(tmp_path)
    monkeypatch.setattr(
        sys,
        "argv",
        ["run_all_experiments.py", "table1", tiny, "--fast", "--out", "out"],
    )
    assert wrapper.main() == 0
    for report in ("table1.txt", "tiny.txt"):
        assert "fast=True]" in (tmp_path / "out" / report).read_text()


def test_cli_run_with_jobs_out_and_bench(tmp_path, monkeypatch, capsys):
    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    rc = main(["run", "table1", "--jobs", "2", "--out", "o", "--bench", "b.json"])
    assert rc == 0
    assert "[table1:" in capsys.readouterr().out
    assert (tmp_path / "o" / "table1.txt").exists()
    assert (tmp_path / "o" / "json" / "table1.json").exists()
    assert "table1" in json.loads((tmp_path / "b.json").read_text())["runs"][-1]["experiments"]


# --- manifest ---------------------------------------------------------------------
def test_manifest_records_serial_and_parallel_runs(tmp_path, tiny):
    bench = tmp_path / "BENCH.json"
    cache = ResultCache(root=tmp_path / "cache", digest="digest-a", enabled=False)
    serial = run_campaign([ExperimentSpec(tiny, fast=True)], jobs=1, cache=cache)
    record_campaign(serial, path=bench, label="serial")
    parallel = run_campaign([ExperimentSpec(tiny, fast=True)], jobs=8, cache=cache)
    record_campaign(parallel, path=bench, label="parallel")

    document = json.loads(bench.read_text())
    assert [entry["label"] for entry in document["runs"]] == ["serial", "parallel"]
    assert [entry["jobs"] for entry in document["runs"]] == [1, 8]
    for entry in document["runs"]:
        assert entry["ok"] and "tiny" in entry["experiments"]


# --- cache pruning ----------------------------------------------------------------
def _seed_cache_entry(root, name, *, size=100, age=0.0):
    root.mkdir(exist_ok=True)
    path = root / f"{name}.json"
    path.write_text("x" * size)
    stamp = time.time() - age
    os.utime(path, (stamp, stamp))
    return path


def test_prune_size_cap_evicts_oldest_first(tmp_path):
    from repro.runner.cache import prune_cache

    old = _seed_cache_entry(tmp_path, "old", age=300)
    mid = _seed_cache_entry(tmp_path, "mid", age=200)
    new = _seed_cache_entry(tmp_path, "new", age=100)
    report = prune_cache(tmp_path, max_bytes=250)
    assert report.removed == [old]
    assert not old.exists() and mid.exists() and new.exists()
    assert report.kept == 2 and report.kept_bytes == 200


def test_prune_max_age(tmp_path):
    from repro.runner.cache import prune_cache

    stale = _seed_cache_entry(tmp_path, "stale", age=7200)
    fresh = _seed_cache_entry(tmp_path, "fresh", age=60)
    report = prune_cache(tmp_path, max_age_seconds=3600)
    assert report.removed == [stale]
    assert not stale.exists() and fresh.exists()


def test_prune_always_removes_stray_tmp_files(tmp_path):
    from repro.runner.cache import prune_cache

    kept = _seed_cache_entry(tmp_path, "kept")
    stray = tmp_path / "entry.json.tmp1234"
    stray.write_text("partial write")
    report = prune_cache(tmp_path, max_bytes=10**9)
    assert report.removed_tmp == 1
    assert not stray.exists() and kept.exists()


def test_prune_dry_run_deletes_nothing(tmp_path):
    from repro.runner.cache import prune_cache

    old = _seed_cache_entry(tmp_path, "old", age=300)
    _seed_cache_entry(tmp_path, "new", age=100)
    report = prune_cache(tmp_path, max_bytes=150, dry_run=True)
    assert report.dry_run and report.removed == [old]
    assert old.exists()
    assert "would remove" in report.render()


def test_prune_missing_root_is_a_noop(tmp_path):
    from repro.runner.cache import prune_cache

    report = prune_cache(tmp_path / "absent")
    assert report.removed == [] and report.kept == 0


def test_result_cache_prune_wrapper(tmp_path, tiny):
    from repro.runner.cache import RESERVED_NAMES

    cache = ResultCache(root=tmp_path, digest="digest-a")
    run_campaign([ExperimentSpec(tiny, fast=True)], cache=cache)
    entries = [p for p in tmp_path.glob("*.json") if p.name not in RESERVED_NAMES]
    assert entries
    report = cache.prune(max_bytes=0)
    assert report.kept == 0
    # Only reserved sidecars (index/stats) may survive a full prune.
    survivors = {p.name for p in tmp_path.glob("*.json")}
    assert survivors <= set(RESERVED_NAMES)


# --- shared-shard wall attribution (tables 6/7 share the ray2mesh shards) ---------
def test_shard_sharers_links_table6_and_table7():
    from repro.runner.pool import _shard_sharers

    specs = [
        ExperimentSpec("table6", fast=True),
        ExperimentSpec("table7", fast=True),
        ExperimentSpec("table1", fast=True),  # unsharded: no entry at all
    ]
    sharers = _shard_sharers(specs)
    assert sharers[("table6", True)] == ["table7"]
    assert sharers[("table7", True)] == ["table6"]
    assert ("table1", True) not in sharers


def test_merge_attributes_shared_shard_wall_to_every_consumer():
    """Regression: table7 used to record wall_s=0.0 because all shard wall
    time landed on table6; every consumer must count the shared shards and
    say who else did."""
    from repro.experiments.base import ExperimentResult, ShardSpec
    from repro.runner.pool import ExperimentRun, _merge_sharded

    shards = tuple(
        ShardSpec(task_id=f"ray2mesh/{site}", runner="unused:unused")
        for site in ("nancy", "rennes")
    )

    class Plan:
        pass

    plan = Plan()
    plan.shards = shards
    plan.merge = lambda payloads, fast: ExperimentResult(
        "table7", "T7", "Table 7", [], "merged"
    )
    shard_results = {
        ("ray2mesh/nancy", True): {"payload": {}, "wall_s": 10.0, "trace_hash": "a"},
        ("ray2mesh/rennes", True): {"payload": {}, "wall_s": 2.5, "trace_hash": "b"},
    }
    run = _merge_sharded(
        ExperimentSpec("table7", fast=True),
        plan,
        shard_results,
        shared_with=["table6"],
    )
    assert run.ok
    assert run.wall_s == pytest.approx(12.5)
    assert run.shared_with == ["table6"]

    # The attribution survives the artifact round trip and the manifest.
    revived = ExperimentRun.from_artifact(
        ExperimentSpec("table7", fast=True), run.artifact()
    )
    assert revived.shared_with == ["table6"]
    assert revived.wall_s == pytest.approx(12.5)


def test_manifest_entry_records_shared_with(tmp_path, tiny):
    from repro.runner.manifest import campaign_entry
    from repro.runner.pool import CampaignResult, ExperimentRun

    campaign = CampaignResult(
        runs=[
            ExperimentRun(
                "table7", True, ok=True, sharded=True,
                wall_s=12.5, shared_with=["table6"],
            ),
            ExperimentRun("tiny", True, ok=True, wall_s=0.1),
        ],
        wall_s=12.6,
        jobs=2,
        cache_enabled=True,
    )
    entry = campaign_entry(campaign, label="test")
    assert entry["experiments"]["table7"]["shared_with"] == ["table6"]
    assert "shared_with" not in entry["experiments"]["tiny"]


# --- cost-model scheduling --------------------------------------------------------
def test_order_by_cost_longest_first():
    from repro.runner.pool import _Task, _order_by_cost

    def noop():
        pass

    tasks = [
        _Task(key=("shard", "a", True), target=noop, args=(), label="a"),
        _Task(key=("shard", "b", True), target=noop, args=(), label="b"),
        _Task(key=("experiment", "x", True), target=noop, args=(), label="x"),
        _Task(key=("shard", "new", True), target=noop, args=(), label="new"),
    ]
    estimates = {"a": 1.0, "b": 30.0, "experiment/x": 5.0}
    _order_by_cost(tasks, estimates)
    # Unknown history first (it might be the long pole), then descending.
    assert [t.label for t in tasks] == ["new", "b", "x", "a"]


def test_order_by_cost_without_history_is_label_order():
    from repro.runner.pool import _Task, _order_by_cost

    tasks = [
        _Task(key=("shard", n, True), target=None, args=(), label=n)
        for n in ("c", "a", "b")
    ]
    _order_by_cost(tasks, {})
    assert [t.label for t in tasks] == ["a", "b", "c"]


def test_load_task_estimates_latest_wins(tmp_path):
    from repro.runner.manifest import load_task_estimates

    manifest = tmp_path / "bench.json"
    manifest.write_text(json.dumps({"schema": 1, "runs": [
        {
            "shards": {"npb/grid16/ft": 9.0},
            "experiments": {"fig3": {"ok": True, "wall_s": 2.0}},
        },
        {
            "shards": {"npb/grid16/ft": 4.5},
            "experiments": {
                "fig3": {"ok": True, "wall_s": 1.0},
                "broken": {"ok": False, "wall_s": 99.0},
            },
        },
    ]}), encoding="utf-8")
    estimates = load_task_estimates(manifest)
    assert estimates["npb/grid16/ft"] == 4.5  # newest entry wins
    assert estimates["experiment/fig3"] == 1.0
    assert "experiment/broken" not in estimates  # failures are not history


def test_load_task_estimates_missing_manifest(tmp_path):
    from repro.runner.manifest import load_task_estimates

    assert load_task_estimates(tmp_path / "absent.json") == {}


# --- cache counters / stats --------------------------------------------------------
def test_campaign_counts_hits_and_misses(tmp_path, tiny):
    cache = ResultCache(root=tmp_path, digest="digest-a")
    first = run_campaign([ExperimentSpec(tiny, fast=True)], cache=cache)
    assert first.cache_misses >= 1 and first.cache_hits == 0
    assert first.cache_stores >= 1
    assert "1 miss" in first.cache_summary()

    cache2 = ResultCache(root=tmp_path, digest="digest-a")
    second = run_campaign([ExperimentSpec(tiny, fast=True)], cache=cache2)
    assert second.cache_hits == 1 and second.cache_stores == 0
    assert second.cache_summary().startswith("cache: 1 hit")


def test_campaign_writes_stats_sidecar(tmp_path, tiny):
    cache = ResultCache(root=tmp_path, digest="digest-a")
    run_campaign([ExperimentSpec(tiny, fast=True)], cache=cache)
    document = json.loads((tmp_path / "stats.json").read_text(encoding="utf-8"))
    assert document["stores"] >= 1
    assert "experiments" in document


def test_manifest_entry_records_cache_counters(tmp_path, tiny):
    cache = ResultCache(root=tmp_path, digest="digest-a")
    campaign = run_campaign([ExperimentSpec(tiny, fast=True)], cache=cache)
    path = record_campaign(campaign, path=tmp_path / "bench.json")
    entry = json.loads(path.read_text(encoding="utf-8"))["runs"][-1]
    assert entry["cache"] == {
        "hits": campaign.cache_hits,
        "misses": campaign.cache_misses,
        "stores": campaign.cache_stores,
    }


def test_disabled_cache_summary(tmp_path, tiny):
    cache = ResultCache(root=tmp_path, digest="digest-a", enabled=False)
    campaign = run_campaign([ExperimentSpec(tiny, fast=True)], cache=cache)
    assert campaign.cache_summary() == "cache: disabled"


def test_salt_segregates_entries(tmp_path, tiny):
    clean = ResultCache(root=tmp_path, digest="digest-a")
    run_campaign([ExperimentSpec(tiny, fast=True)], cache=clean)
    salted = ResultCache(root=tmp_path, digest="digest-a", salt="faults=lossy")
    faulted = run_campaign([ExperimentSpec(tiny, fast=True)], cache=salted)
    assert not faulted.runs[0].cached  # the clean entry must not replay


# --- dependency-aware invalidation (end to end through the campaign runner) --------
def _deps_with_touch(module=None):
    from repro.analysis.imports import DependencyDigests, ImportGraph

    if module is None:
        return DependencyDigests()
    source = ImportGraph().source(module)
    return DependencyDigests(overlay={module: source + b"\n# touched\n"})


def test_touching_a_leaf_module_keeps_experiments_warm(tmp_path):
    specs = [ExperimentSpec("table4", fast=True)]
    cold = run_campaign(
        specs, cache=ResultCache(root=tmp_path, deps=_deps_with_touch())
    )
    assert not cold.runs[0].cached
    warm = run_campaign(
        specs,
        cache=ResultCache(
            root=tmp_path, deps=_deps_with_touch("repro.obs.report")
        ),
    )
    assert warm.runs[0].cached  # obs/report.py is outside table4's closure


def test_touching_a_dependency_goes_cold(tmp_path):
    specs = [ExperimentSpec("table4", fast=True)]
    run_campaign(specs, cache=ResultCache(root=tmp_path, deps=_deps_with_touch()))
    cold = run_campaign(
        specs,
        cache=ResultCache(
            root=tmp_path, deps=_deps_with_touch("repro.tcp.congestion")
        ),
    )
    assert not cold.runs[0].cached  # every simulation reaches the TCP stack


# --- profile recording -------------------------------------------------------------
def test_profile_report_rows_and_recording(tmp_path):
    from repro.obs.profile import profile_report
    from repro.runner.manifest import record_profile

    report = profile_report("table1", fast=True, top=5)
    assert report.rows and len(report.rows) <= 5
    assert {"function", "where", "ncalls", "tottime_s", "cumtime_s"} <= set(
        report.rows[0]
    )
    # rows are sorted by cumulative time, descending
    cums = [row["cumtime_s"] for row in report.rows]
    assert cums == sorted(cums, reverse=True)

    path = record_profile(
        report.experiment_id,
        report.fast,
        report.rows,
        report.wall_s,
        path=tmp_path / "bench.json",
    )
    document = json.loads(path.read_text(encoding="utf-8"))
    entry = document["profiles"]["table1|fast=True"]
    assert entry["top"] == report.rows
    assert entry["wall_s"] >= 0
