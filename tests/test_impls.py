"""Tests of the four implementation models against the paper's data."""

import math

import pytest

from repro.errors import MpiError
from repro.impls import ALL_IMPLEMENTATIONS, IMPLEMENTATION_ORDER, get_implementation
from repro.impls.base import MpiImplementation
from repro.tcp.buffers import BufferPolicy
from repro.units import KB, MB, usec


def test_four_implementations():
    assert set(ALL_IMPLEMENTATIONS) == {"mpich2", "gridmpi", "madeleine", "openmpi"}
    assert IMPLEMENTATION_ORDER == ("mpich2", "gridmpi", "madeleine", "openmpi")


def test_lookup_aliases():
    assert get_implementation("MPICH2").name == "mpich2"
    assert get_implementation("mpich-madeleine").name == "madeleine"
    assert get_implementation("MPICH-Mad").name == "madeleine"
    assert get_implementation("Open MPI").name == "openmpi"
    with pytest.raises(MpiError):
        get_implementation("lam/mpi")


def test_table4_overheads():
    """Table 4 deltas: cluster +5/+5/+21/+5 us, grid +6/+7/+14/+8 us."""
    expected = {
        "mpich2": (5, 6),
        "gridmpi": (5, 7),
        "madeleine": (21, 14),
        "openmpi": (5, 8),
    }
    for name, (lan, wan) in expected.items():
        impl = ALL_IMPLEMENTATIONS[name]
        assert impl.overhead_lan == pytest.approx(usec(lan)), name
        assert impl.overhead_wan == pytest.approx(usec(wan)), name
        assert impl.latency_overhead(False) == impl.overhead_lan
        assert impl.latency_overhead(True) == impl.overhead_wan


def test_table5_original_thresholds():
    assert ALL_IMPLEMENTATIONS["mpich2"].eager_threshold == 256 * KB
    assert math.isinf(ALL_IMPLEMENTATIONS["gridmpi"].eager_threshold)
    assert ALL_IMPLEMENTATIONS["madeleine"].eager_threshold == 128 * KB
    assert ALL_IMPLEMENTATIONS["openmpi"].eager_threshold == 64 * KB


def test_buffer_policies():
    assert ALL_IMPLEMENTATIONS["mpich2"].buffer_policy.mode == "autotune"
    assert ALL_IMPLEMENTATIONS["madeleine"].buffer_policy.mode == "autotune"
    assert ALL_IMPLEMENTATIONS["gridmpi"].buffer_policy.mode == "initial"
    openmpi = ALL_IMPLEMENTATIONS["openmpi"].buffer_policy
    assert openmpi.mode == "fixed"
    assert openmpi.sndbuf == 128 * KB


def test_gridmpi_pacing_and_collectives():
    gridmpi = ALL_IMPLEMENTATIONS["gridmpi"]
    assert gridmpi.paced
    assert gridmpi.ss_cap_divisor == 1.0
    assert gridmpi.collectives["bcast"] == "van_de_geijn"
    assert gridmpi.collectives["allreduce"] == "rabenseifner"
    for other in ("mpich2", "madeleine", "openmpi"):
        impl = ALL_IMPLEMENTATIONS[other]
        assert not impl.paced
        assert impl.ss_cap_divisor > 1.0
        assert "bcast" not in impl.collectives


def test_madeleine_known_failures():
    assert ALL_IMPLEMENTATIONS["madeleine"].known_failures == {"bt", "sp"}
    for other in ("mpich2", "gridmpi", "openmpi"):
        assert not ALL_IMPLEMENTATIONS[other].known_failures


def test_tcp_options_reflect_impl():
    options = ALL_IMPLEMENTATIONS["gridmpi"].tcp_options()
    assert options.paced
    assert options.buffer_policy.mode == "initial"
    options = ALL_IMPLEMENTATIONS["openmpi"].tcp_options()
    assert options.buffer_policy.sndbuf == 128 * KB


def test_with_eager_threshold():
    tuned = ALL_IMPLEMENTATIONS["mpich2"].with_eager_threshold(65 * MB)
    assert tuned.eager_threshold == 65 * MB
    assert ALL_IMPLEMENTATIONS["mpich2"].eager_threshold == 256 * KB  # frozen


def test_with_socket_buffers_only_fixed_mode():
    openmpi = ALL_IMPLEMENTATIONS["openmpi"].with_socket_buffers(4 * MB)
    assert openmpi.buffer_policy.sndbuf == 4 * MB
    # no-op for kernel-governed implementations
    mpich2 = ALL_IMPLEMENTATIONS["mpich2"].with_socket_buffers(4 * MB)
    assert mpich2.buffer_policy.mode == "autotune"


def test_with_collective():
    ablated = ALL_IMPLEMENTATIONS["gridmpi"].with_collective("bcast", "binomial")
    assert ablated.collectives["bcast"] == "binomial"
    assert ablated.collectives["allreduce"] == "rabenseifner"


def test_features_table1():
    for impl in ALL_IMPLEMENTATIONS.values():
        assert impl.features is not None
        assert impl.features.first_publication
    assert "pacing" in ALL_IMPLEMENTATIONS["gridmpi"].features.long_distance.lower()
    assert "None" == ALL_IMPLEMENTATIONS["mpich2"].features.long_distance


def test_validation():
    base = ALL_IMPLEMENTATIONS["mpich2"]
    with pytest.raises(MpiError):
        MpiImplementation(
            name="x", display_name="x", version="1", eager_threshold=-1,
            overhead_lan=0, overhead_wan=0, per_byte_overhead=0,
            copy_bandwidth=1e9, buffer_policy=BufferPolicy.autotune(),
            paced=False, ss_cap_divisor=1.0, probe_loss_rounds=10,
        )
    with pytest.raises(MpiError):
        MpiImplementation(
            name="x", display_name="x", version="1", eager_threshold=1,
            overhead_lan=0, overhead_wan=0, per_byte_overhead=0,
            copy_bandwidth=0, buffer_policy=BufferPolicy.autotune(),
            paced=False, ss_cap_divisor=1.0, probe_loss_rounds=10,
        )


def test_repr():
    assert "inf" in repr(ALL_IMPLEMENTATIONS["gridmpi"])
    assert "mpich2" in repr(ALL_IMPLEMENTATIONS["mpich2"])
