"""CLI smoke tests."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table4" in out
    assert "fig7" in out


def test_run_static_table(capsys):
    assert main(["run", "table1"]) == 0
    out = capsys.readouterr().out
    assert "GridMPI" in out
    assert "[table1:" in out


def test_run_table3(capsys):
    assert main(["run", "table3", "--fast"]) == 0
    out = capsys.readouterr().out
    assert "Opteron" in out


def test_run_unknown_experiment():
    from repro.errors import ExperimentError

    with pytest.raises(ExperimentError):
        main(["run", "fig42"])


def test_version(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
