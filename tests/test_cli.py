"""CLI smoke tests."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table4" in out
    assert "fig7" in out


def test_run_static_table(capsys):
    assert main(["run", "table1"]) == 0
    out = capsys.readouterr().out
    assert "GridMPI" in out
    assert "[table1:" in out


def test_run_table3(capsys):
    assert main(["run", "table3", "--fast"]) == 0
    out = capsys.readouterr().out
    assert "Opteron" in out


def test_run_unknown_experiment():
    from repro.errors import ExperimentError

    with pytest.raises(ExperimentError):
        main(["run", "fig42"])


def test_jobs_must_be_positive(capsys):
    for bad in ("0", "-3"):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "table1", "--jobs", bad])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "worker count must be >= 1" in err
        assert "--jobs 1 for a serial in-process run" in err


def test_jobs_must_be_an_int(capsys):
    with pytest.raises(SystemExit):
        main(["run", "table1", "--jobs", "many"])
    assert "invalid" in capsys.readouterr().err


def test_faults_list(capsys):
    assert main(["faults", "list"]) == 0
    out = capsys.readouterr().out
    assert "none" in out and "lossy-wan" in out and "degraded-grid" in out
    assert "seed=" in out  # the describe() line makes seeding visible


def test_run_with_fault_scenario(capsys):
    assert main(["run", "table1", "--faults", "degraded-grid", "--no-cache"]) == 0
    captured = capsys.readouterr()
    assert "[table1:" in captured.out
    assert "faults: degraded-grid" in captured.err


def test_run_with_unknown_fault_scenario():
    from repro.errors import FaultConfigError

    with pytest.raises(FaultConfigError):
        main(["run", "table1", "--faults", "wobbly-wan"])


def test_run_with_none_scenario_matches_clean_run(capsys):
    assert main(["run", "table1", "--no-cache"]) == 0
    clean = capsys.readouterr()
    assert main(["run", "table1", "--faults", "none", "--no-cache"]) == 0
    with_none = capsys.readouterr()
    assert clean.out == with_none.out
    assert "faults:" not in with_none.err  # inactive scenario: no banner


def test_version(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
