"""CLI smoke tests."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table4" in out
    assert "fig7" in out


def test_run_static_table(capsys):
    assert main(["run", "table1"]) == 0
    out = capsys.readouterr().out
    assert "GridMPI" in out
    assert "[table1:" in out


def test_run_table3(capsys):
    assert main(["run", "table3", "--fast"]) == 0
    out = capsys.readouterr().out
    assert "Opteron" in out


def test_run_unknown_experiment():
    from repro.errors import ExperimentError

    with pytest.raises(ExperimentError):
        main(["run", "fig42"])


def test_jobs_must_be_positive(capsys):
    for bad in ("0", "-3"):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "table1", "--jobs", bad])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "worker count must be >= 1" in err
        assert "--jobs 1 for a serial in-process run" in err


def test_jobs_must_be_an_int(capsys):
    with pytest.raises(SystemExit):
        main(["run", "table1", "--jobs", "many"])
    assert "invalid" in capsys.readouterr().err


def test_faults_list(capsys):
    assert main(["faults", "list"]) == 0
    out = capsys.readouterr().out
    assert "none" in out and "lossy-wan" in out and "degraded-grid" in out
    assert "seed=" in out  # the describe() line makes seeding visible


def test_run_with_fault_scenario(capsys):
    assert main(["run", "table1", "--faults", "degraded-grid", "--no-cache"]) == 0
    captured = capsys.readouterr()
    assert "[table1:" in captured.out
    assert "faults: degraded-grid" in captured.err


def test_run_with_unknown_fault_scenario():
    from repro.errors import FaultConfigError

    with pytest.raises(FaultConfigError):
        main(["run", "table1", "--faults", "wobbly-wan"])


def test_run_with_none_scenario_matches_clean_run(capsys):
    assert main(["run", "table1", "--no-cache"]) == 0
    clean = capsys.readouterr()
    assert main(["run", "table1", "--faults", "none", "--no-cache"]) == 0
    with_none = capsys.readouterr()
    assert clean.out == with_none.out
    assert "faults:" not in with_none.err  # inactive scenario: no banner


def test_version(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_lint_rules_catalog_lists_all_families(capsys):
    assert main(["lint", "--rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("DET001", "UNIT001", "SIM001", "DIM001", "SCHED001", "NOQA001"):
        assert rule in out


def test_lint_clean_file_exits_zero(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("def f(x):\n    return x + 1\n")
    assert main(["lint", str(clean)]) == 0
    assert "clean" in capsys.readouterr().out


def test_lint_dirty_file_exits_one(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\nx = random.random()\n")
    assert main(["lint", str(dirty)]) == 1
    assert "DET001" in capsys.readouterr().out


def test_lint_sarif_stdout_is_valid(tmp_path, capsys):
    import json as _json

    from repro.analysis import validate_sarif

    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\nx = random.random()\n")
    # --sarif with no value streams the log to stdout
    assert main(["lint", str(dirty), "--sarif"]) == 1
    report = _json.loads(capsys.readouterr().out)
    assert validate_sarif(report) == []
    assert [r["ruleId"] for r in report["runs"][0]["results"]] == ["DET001"]


def test_lint_sarif_to_file(tmp_path, capsys):
    import json as _json

    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\nx = random.random()\n")
    out = tmp_path / "lint.sarif"
    assert main(["lint", "--sarif", str(out), str(dirty)]) == 1
    assert _json.loads(out.read_text())["version"] == "2.1.0"


def test_lint_write_then_apply_baseline(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\nx = random.random()\n")
    baseline = tmp_path / "baseline.json"
    assert main(["lint", "--baseline", str(baseline), "--write-baseline", str(dirty)]) == 0
    capsys.readouterr()
    # the finding is now suppressed by the baseline...
    assert main(["lint", "--baseline", str(baseline), str(dirty)]) == 0
    assert "clean" in capsys.readouterr().out
    # ...but --no-baseline still reports it
    assert main(["lint", "--baseline", str(baseline), "--no-baseline", str(dirty)]) == 1


def test_sanitize_perturb_passes_on_real_experiment(tmp_path, capsys):
    out = tmp_path / "fig3.txt"
    assert main(
        ["sanitize", "fig3", "--perturb", "--seeds", "2", "--write-result", str(out)]
    ) == 0
    assert "PASS" in capsys.readouterr().out
    assert out.read_text().endswith("\n")
    import json as _json

    report = _json.loads((tmp_path / "fig3.txt.perturb.json").read_text())
    assert report["passed"] is True
    assert [run["seed"] for run in report["runs"]] == [1, 2]


def test_cache_prune_cli(tmp_path, capsys):
    root = tmp_path / "cache"
    root.mkdir()
    (root / "entry.json").write_text("x" * 64)
    assert main(["cache", "prune", "--root", str(root), "--max-size", "0"]) == 0
    assert "removed 1 entry" in capsys.readouterr().out
    assert not (root / "entry.json").exists()


def test_cache_prune_bad_size_exits_two(capsys):
    assert main(["cache", "prune", "--max-size", "banana"]) == 2
    assert "size" in capsys.readouterr().err.lower()
