"""Tuning advisor and threshold sweep tests (§4.2, Table 5)."""

import pytest

from repro.errors import ReproError
from repro.impls import (
    ALL_IMPLEMENTATIONS,
    IMPLEMENTATION_ORDER,
    get_implementation,
)
from repro.net import build_pair_testbed, build_ray2mesh_testbed
from repro.tcp import TUNED_SYSCTLS
from repro.tuning import (
    advise_buffer_bytes,
    advise_eager_threshold,
    bdp_bytes,
    measure_ideal_threshold,
    probe_network,
    render_recipe,
    threshold_sweep,
    tune_for_grid,
    worst_inter_site_pair,
)
from repro.tuning.sweep import ABOVE_MAX
from repro.units import Gbps, KB, MB, Size, msec


def test_bdp_rennes_nancy():
    """§4.2.1: 'the socket buffer has to be set to at least 1.45 MB
    (RTT=11.6 ms, bandwidth=1 Gbps)'."""
    assert bdp_bytes(msec(11.6), Gbps(1)) == pytest.approx(1_450_000, rel=0.01)


def test_bdp_validation():
    with pytest.raises(ReproError):
        bdp_bytes(0, Gbps(1))
    with pytest.raises(ReproError):
        bdp_bytes(0.01, -1)


def test_advise_buffer_is_4mb_for_the_paper_testbed():
    """The paper sets 4 MB 'for compatibility with the rest of the grid'."""
    net = build_ray2mesh_testbed()  # worst path: 19.9 ms -> BDP 2.5 MB
    assert advise_buffer_bytes(net) == 4 * MB


def test_advise_buffer_pair_testbed():
    net = build_pair_testbed()
    advised = advise_buffer_bytes(net)
    assert advised >= bdp_bytes(msec(11.6), Gbps(1))
    assert advised % MB == 0


def test_advise_requires_inter_site_paths():
    from repro.net import Network

    net = Network()
    net.add_cluster("solo").add_nodes(2)
    with pytest.raises(ReproError):
        advise_buffer_bytes(net)


def test_tune_for_grid():
    openmpi = tune_for_grid(get_implementation("openmpi"))
    assert openmpi.buffer_policy.sndbuf == 4 * MB
    assert openmpi.eager_threshold == 32 * MB  # clamped to its maximum
    mpich2 = tune_for_grid(get_implementation("mpich2"))
    assert mpich2.eager_threshold == 65 * MB
    assert mpich2.buffer_policy.mode == "autotune"  # kernel-governed


def test_recipes_mention_the_papers_knobs():
    for name, impl in ALL_IMPLEMENTATIONS.items():
        recipe = render_recipe(impl, TUNED_SYSCTLS)
        assert recipe.impl_name == name
        assert any("rmem_max" in c for c in recipe.sysctl_commands)
        text = " ".join(recipe.steps)
        if name == "mpich2":
            assert "MPIDI_CH3_EAGER_MAX_MSG_SIZE" in text
        elif name == "gridmpi":
            assert "middle value" in text
        elif name == "madeleine":
            assert "DEFAULT_SWITCH" in text
        elif name == "openmpi":
            assert "btl_tcp_sndbuf" in text
            assert "btl_tcp_eager_limit" in text


def test_threshold_sweep_grid_eager_always_wins():
    """Table 5: with pre-posted receives, eager wins at every size on the
    grid, so the ideal threshold is 65 MB (32 MB for OpenMPI)."""
    net = build_pair_testbed(nodes_per_site=1)
    a = net.clusters["rennes"].nodes[0]
    b = net.clusters["nancy"].nodes[0]
    sizes = [256 * KB, MB, 4 * MB]
    for name, expected in (("mpich2", 65 * MB), ("openmpi", 32 * MB)):
        impl = get_implementation(name).with_socket_buffers(4 * MB)
        ideal = measure_ideal_threshold(
            impl, net, a, b, sizes=sizes, repeats=4, sysctls=TUNED_SYSCTLS
        )
        assert ideal == expected, name


def test_threshold_sweep_points_show_rndv_penalty():
    net = build_pair_testbed(nodes_per_site=1)
    a = net.clusters["rennes"].nodes[0]
    b = net.clusters["nancy"].nodes[0]
    impl = get_implementation("mpich2")
    points = threshold_sweep(
        impl, net, a, b, sizes=[512 * KB], repeats=5, sysctls=TUNED_SYSCTLS
    )
    (point,) = points
    assert point.eager_wins
    # the WAN handshake costs real bandwidth at this size
    assert point.eager_bandwidth_mbps > 1.2 * point.rndv_bandwidth_mbps


def test_above_max_constant():
    assert ABOVE_MAX == 65 * MB


# --- the closed loop: measure, then tune -------------------------------------------
def test_probe_network_measures_every_inter_site_pair():
    net = build_ray2mesh_testbed()
    probes = probe_network(net, sysctls=TUNED_SYSCTLS)
    pairs = {(p.site_a, p.site_b) for p in probes}
    assert len(pairs) == 6  # C(4,2) site pairs, all routable
    worst = max(probes, key=lambda p: p.rtt_seconds)
    assert {worst.site_a, worst.site_b} == {"nancy", "sophia"}  # 19.93 ms
    assert worst.rtt_seconds == pytest.approx(msec(19.93), rel=0.01)
    # steady-state goodput, not the window-limited ramp
    assert worst.bandwidth_bps > 900e6


def test_measured_buffer_advice_matches_declared_topology():
    """The probes must reach the same 4 MB the paper derives from the
    declared RTT/bandwidth — measurement closes the loop, it does not
    drift from it."""
    net = build_ray2mesh_testbed()
    probes = probe_network(net, sysctls=TUNED_SYSCTLS)
    assert advise_buffer_bytes(net, probes=probes) == advise_buffer_bytes(net)
    assert advise_buffer_bytes(net, probes=probes) == 4 * MB


def test_advise_eager_threshold_reproduces_table5():
    """Table 5 from measurement alone: 65 MB everywhere, 32 MB for
    OpenMPI (its eager-limit maximum)."""
    net = build_pair_testbed(nodes_per_site=1)
    expected = {
        "mpich2": 65 * MB,
        "gridmpi": 65 * MB,
        "madeleine": 65 * MB,
        "openmpi": 32 * MB,
    }
    sizes = [256 * KB, MB, 4 * MB]
    for name in IMPLEMENTATION_ORDER:
        impl = get_implementation(name)
        advised = advise_eager_threshold(
            impl, net, sizes=sizes, repeats=2, sysctls=TUNED_SYSCTLS
        )
        assert advised == expected[name], name
        assert isinstance(advised, int)  # a byte count, not a float


def test_tune_for_grid_closed_loop_measures_both_knobs():
    net = build_pair_testbed(nodes_per_site=1)
    tuned = tune_for_grid(
        get_implementation("openmpi"), network=net, sysctls=TUNED_SYSCTLS
    )
    assert tuned.eager_threshold == 32 * MB  # measured, then clamped
    assert tuned.buffer_policy.mode == "fixed"
    assert tuned.buffer_policy.sndbuf % MB == 0


def test_recipe_and_simulation_agree_for_every_impl():
    """Satellite regression: the rendered human recipe and the simulated
    implementation must encode the same knob values — the clamp lives in
    both paths, so neither can drift."""
    for name in IMPLEMENTATION_ORDER:
        impl = get_implementation(name)
        tuned = tune_for_grid(impl)
        recipe = render_recipe(impl, TUNED_SYSCTLS)
        assert recipe.eager_threshold == tuned.eager_threshold, name
        if tuned.buffer_policy.mode == "fixed":
            assert recipe.buffer_bytes == tuned.buffer_policy.sndbuf, name
        # and an explicit oversized request clamps identically in both
        big = Size(128 * MB)
        tuned_big = tune_for_grid(impl, eager_threshold=big)
        recipe_big = render_recipe(impl, TUNED_SYSCTLS, eager_threshold=big)
        assert recipe_big.eager_threshold == tuned_big.eager_threshold, name


def test_worst_inter_site_pair_picks_highest_rtt():
    net = build_ray2mesh_testbed()
    a, b = worst_inter_site_pair(net)
    assert {a.cluster.name, b.cluster.name} == {"nancy", "sophia"}
