"""Import-graph analysis and the dependency-aware cache invalidation matrix.

The first half exercises :mod:`repro.analysis.imports` on a synthetic
package tree (resolution rules, closures, overlays); the second half pins
the *real* tree's invalidation behaviour: touching one module must chill
exactly the experiments that can reach it, and nothing else.
"""

import pathlib

import pytest

from repro.analysis.imports import DependencyDigests, ImportGraph

REPO = pathlib.Path(__file__).resolve().parent.parent


# --- synthetic-tree resolution rules ----------------------------------------------
@pytest.fixture()
def pkg(tmp_path):
    """A small package exercising every import form the resolver handles."""
    root = tmp_path / "pkg"
    root.mkdir()
    (root / "__init__.py").write_text("")
    (root / "leaf.py").write_text("X = 1\n")
    (root / "mid.py").write_text("from pkg.leaf import X\n")
    (root / "top.py").write_text("import pkg.mid\nimport json\n")
    sub = root / "sub"
    sub.mkdir()
    (sub / "__init__.py").write_text("")
    (sub / "attr.py").write_text("Y = 2\n")
    # ``from pkg.sub import attr`` names the submodule; ``from pkg import sub``
    # names the package itself (its __init__).
    (root / "uses_sub.py").write_text(
        "from pkg.sub import attr\nfrom pkg import sub\n"
    )
    (sub / "relative.py").write_text("from .attr import Y\nfrom ..leaf import X\n")
    return root


def test_absolute_and_from_imports_resolve(pkg):
    graph = ImportGraph(pkg, package="pkg")
    assert graph.imports_of("pkg.top") == {"pkg.mid"}  # stdlib json ignored
    assert graph.imports_of("pkg.mid") == {"pkg.leaf"}


def test_from_package_import_prefers_the_submodule(pkg):
    graph = ImportGraph(pkg, package="pkg")
    assert graph.imports_of("pkg.uses_sub") == {"pkg.sub.attr", "pkg.sub"}


def test_relative_imports_resolve_against_the_package(pkg):
    graph = ImportGraph(pkg, package="pkg")
    assert graph.imports_of("pkg.sub.relative") == {"pkg.sub.attr", "pkg.leaf"}


def test_closure_is_reflexive_and_transitive(pkg):
    graph = ImportGraph(pkg, package="pkg")
    assert graph.closure("pkg.top") == {"pkg.top", "pkg.mid", "pkg.leaf"}
    assert graph.closure("pkg.leaf") == {"pkg.leaf"}


def test_unparsable_module_has_no_edges_but_still_digests(pkg):
    (pkg / "broken.py").write_text("def (\n")
    graph = ImportGraph(pkg, package="pkg")
    assert graph.imports_of("pkg.broken") == frozenset()
    assert graph.file_digest("pkg.broken")  # bytes still fold into the key


def test_overlay_changes_digest_without_touching_disk(pkg):
    deps = DependencyDigests(pkg, package="pkg")
    before = deps.closure_digest("pkg.top")
    overlaid = DependencyDigests(
        pkg, package="pkg", overlay={"pkg.leaf": b"X = 99\n"}
    )
    assert overlaid.closure_digest("pkg.top") != before
    # The on-disk file is untouched, so a fresh analyser agrees with `before`.
    assert DependencyDigests(pkg, package="pkg").closure_digest("pkg.top") == before


def test_unknown_module_returns_none(pkg):
    deps = DependencyDigests(pkg, package="pkg")
    assert deps.closure_digest("pkg.missing") is None
    assert deps.closure_digest("other.top") is None


def test_engine_modules_salt_every_digest(pkg):
    deps = DependencyDigests(pkg, package="pkg", engine_modules=("pkg.leaf",))
    top = deps.closure_digest("pkg.top")
    # pkg.sub.attr does not import pkg.leaf, yet the engine salt reaches it.
    attr = deps.closure_digest("pkg.sub.attr")
    changed = DependencyDigests(
        pkg,
        package="pkg",
        overlay={"pkg.leaf": b"X = 99\n"},
        engine_modules=("pkg.leaf",),
    )
    assert changed.closure_digest("pkg.top") != top
    assert changed.closure_digest("pkg.sub.attr") != attr


# --- the real tree's invalidation matrix ------------------------------------------
#: experiment/shard-runner roots the cache actually keys by
ROOTS = (
    "repro.experiments.npb_runs",       # NPB figures' shard runner
    "repro.experiments.table6",         # ray2mesh shard runner (tables 6/7)
    "repro.experiments.pingpong_common",  # pingpong sweeps' shard runner
    "repro.experiments.fig3",           # an unsharded pingpong figure
)


def _touch(module: str) -> DependencyDigests:
    base = ImportGraph()
    return DependencyDigests(
        overlay={module: base.source(module) + b"\n# invalidation probe\n"}
    )


@pytest.fixture(scope="module")
def baseline():
    deps = DependencyDigests()
    return {root: deps.closure_digest(root) for root in ROOTS}


@pytest.mark.parametrize(
    ("touched", "cold"),
    [
        # An NPB kernel chills only the NPB runner.
        ("repro.npb.cg", {"repro.experiments.npb_runs"}),
        # The ray2mesh app chills only tables 6/7.
        ("repro.apps.ray2mesh", {"repro.experiments.table6"}),
        # A pure reporting module chills nothing: the whole point.
        ("repro.obs.report", set()),
        # Every simulated byte flows through TCP congestion control, so
        # touching it correctly chills every simulation root.
        ("repro.tcp.congestion", set(ROOTS)),
    ],
)
def test_invalidation_matrix(baseline, touched, cold):
    deps = _touch(touched)
    changed = {
        root for root in ROOTS if deps.closure_digest(root) != baseline[root]
    }
    assert changed == cold


def test_every_root_is_known_to_the_graph(baseline):
    assert all(digest is not None for digest in baseline.values())


def test_shard_runner_modules_are_resolvable():
    """Every registry shard plan's runner module must be in the graph —
    otherwise its shards silently fall back to whole-tree keys."""
    from repro.experiments import EXPERIMENTS
    from repro.experiments.registry import get_shard_plan

    graph = ImportGraph()
    for experiment_id in sorted(EXPERIMENTS):
        plan = get_shard_plan(experiment_id, fast=True)
        if plan is None:
            continue
        for shard in plan.shards:
            assert shard.module in graph, shard.runner


def test_experiment_modules_are_resolvable():
    from repro.experiments import EXPERIMENTS
    from repro.experiments.registry import experiment_module

    graph = ImportGraph()
    for experiment_id in sorted(EXPERIMENTS):
        module = experiment_module(experiment_id)
        assert module is not None and module in graph, experiment_id
