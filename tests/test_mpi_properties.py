"""Property-based tests (hypothesis) on core invariants.

The simulation is deterministic, so hypothesis explores *inputs* (message
schedules, vector sizes, rank counts, operations) while each run remains
exactly reproducible.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.impls import get_implementation
from repro.mpi import MAX, MIN, SUM
from repro.mpi.collectives.segutil import chunk_sizes, join_array, split_array
from repro.net import build_pair_testbed
from repro.tcp import TUNED_SYSCTLS
from repro.units import KB
from tests.conftest import make_cluster_job

# Keep runs small: each example spins up a full simulation.
FAST = settings(max_examples=25, deadline=None)


# --- segmentation helpers ------------------------------------------------------
@given(nbytes=st.integers(0, 10**9), parts=st.integers(1, 64))
@FAST
def test_chunk_sizes_partition(nbytes, parts):
    sizes = chunk_sizes(nbytes, parts)
    assert len(sizes) == parts
    assert sum(sizes) == nbytes
    assert max(sizes) - min(sizes) <= 1
    assert all(s >= 0 for s in sizes)


@given(n=st.integers(1, 5000), parts=st.integers(1, 32))
@FAST
def test_split_join_roundtrip(n, parts):
    arr = np.arange(n, dtype=np.float64)
    segments = split_array(arr, parts)
    rebuilt = join_array(segments, arr.shape)
    np.testing.assert_array_equal(rebuilt, arr)


# --- message ordering -------------------------------------------------------------
@given(
    sizes=st.lists(st.integers(1, 512 * KB), min_size=1, max_size=12),
    seed=st.integers(0, 10**6),
)
@FAST
def test_messages_arrive_in_send_order(sizes, seed):
    """Whatever the mix of eager and rendezvous sizes, same-tag messages
    from one sender are received in send order (non-overtaking)."""
    job = make_cluster_job("mpich2", nprocs=2, seed=seed)
    received = []

    def program(ctx):
        if ctx.rank == 0:
            for i, nbytes in enumerate(sizes):
                yield from ctx.comm.send(1, nbytes=nbytes, tag=0, payload=i)
        else:
            for _ in sizes:
                payload, _ = yield from ctx.comm.recv(0, 0)
                received.append(payload)

    job.run(program)
    assert received == list(range(len(sizes)))


# --- collective correctness over random shapes --------------------------------------
@given(
    n=st.integers(1, 40000),
    nprocs=st.sampled_from([2, 3, 4, 8]),
    op_name=st.sampled_from(["sum", "max", "min"]),
)
@FAST
def test_allreduce_matches_numpy(n, nprocs, op_name):
    op = {"sum": SUM, "max": MAX, "min": MIN}[op_name]
    np_fn = {"sum": np.sum, "max": np.max, "min": np.min}[op_name]
    job = make_cluster_job("gridmpi", nprocs=nprocs)  # rabenseifner path

    def program(ctx):
        data = np.linspace(ctx.rank, ctx.rank + 1, n)
        result = yield from ctx.comm.allreduce(data, nbytes=data.nbytes, op=op)
        expected = np_fn(
            np.stack([np.linspace(r, r + 1, n) for r in range(nprocs)]), axis=0
        )
        np.testing.assert_allclose(np.asarray(result).reshape(-1), expected, rtol=1e-9)
        return True

    assert all(job.run(program).returns)


@given(
    n=st.integers(1, 30000),
    nprocs=st.sampled_from([2, 4, 5, 8]),
    root=st.integers(0, 7),
)
@FAST
def test_bcast_van_de_geijn_matches_input(n, nprocs, root):
    root = root % nprocs
    impl = get_implementation("gridmpi")
    job = make_cluster_job(nprocs=nprocs, impl=impl)
    data = np.arange(n, dtype=np.float64)

    def program(ctx):
        payload = data.copy() if ctx.rank == root else None
        result = yield from ctx.comm.bcast(payload, nbytes=data.nbytes, root=root)
        np.testing.assert_array_equal(np.asarray(result).reshape(-1), data)
        return True

    assert all(job.run(program).returns)


# --- determinism ------------------------------------------------------------------------
@given(seed=st.integers(0, 1000), nprocs=st.sampled_from([2, 4]))
@settings(max_examples=10, deadline=None)
def test_identical_jobs_identical_makespans(seed, nprocs):
    def build():
        job = make_cluster_job("openmpi", nprocs=nprocs, seed=seed)

        def program(ctx):
            data = np.ones(1000) * ctx.rank
            yield from ctx.comm.allreduce(data, nbytes=data.nbytes)
            yield from ctx.comm.barrier()

        return job.run(program).makespan

    assert build() == build()


# --- conservation: traced bytes equal sent bytes --------------------------------------------
@given(
    sizes=st.lists(st.integers(0, 100 * KB), min_size=1, max_size=10),
)
@FAST
def test_trace_byte_conservation(sizes):
    job = make_cluster_job(nprocs=2)

    def program(ctx):
        if ctx.rank == 0:
            for nbytes in sizes:
                yield from ctx.comm.send(1, nbytes=nbytes)
        else:
            for _ in sizes:
                yield from ctx.comm.recv(0)

    result = job.run(program)
    assert result.trace.p2p_summary().messages == len(sizes)
    assert result.trace.p2p_summary().bytes == sum(sizes)
