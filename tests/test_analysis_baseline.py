"""Suppression baseline and SARIF 2.1.0 export."""

import json

import pytest

from repro.analysis.baseline import (
    BaselineEntry,
    BaselineError,
    canonical_path,
    load_baseline,
    partition,
    write_baseline,
)
from repro.analysis.export import (
    render_sarif,
    sarif_report,
    validate_sarif,
    write_sarif,
)
from repro.analysis.linter import RULE_CATALOG, lint_source
from repro.analysis.passes.base import Violation


def _violation(rule="DET001", line=4, path="src/repro/sim/core.py", snippet="x = 1"):
    return Violation(path, line, rule, "message", "hint", snippet=snippet)


class TestCanonicalPath:
    def test_strips_to_package(self):
        assert canonical_path("/a/b/src/repro/sim/core.py") == "repro/sim/core.py"

    def test_non_package_path_passes_through(self):
        assert canonical_path("fixture.py") == "fixture.py"


class TestBaselineMatching:
    def test_snippet_match_survives_line_drift(self):
        entry = BaselineEntry(
            "repro/sim/core.py", "DET001", 4, "x = 1", "accepted for reasons"
        )
        assert entry.matches(_violation(line=400))  # same text, moved

    def test_snippet_mismatch_rejected(self):
        entry = BaselineEntry(
            "repro/sim/core.py", "DET001", 4, "y = 2", "accepted"
        )
        assert not entry.matches(_violation())

    def test_rule_and_path_must_match(self):
        entry = BaselineEntry(
            "repro/sim/core.py", "DET002", 4, "x = 1", "accepted"
        )
        assert not entry.matches(_violation())

    def test_partition(self):
        matched_entry = BaselineEntry(
            "repro/sim/core.py", "DET001", 4, "x = 1", "accepted"
        )
        stale_entry = BaselineEntry(
            "repro/net/fluid.py", "DET006", 9, "gone", "was accepted"
        )
        fresh, matched, stale = partition(
            [_violation(), _violation(rule="DET004")],
            [matched_entry, stale_entry],
        )
        assert [v.rule for v in fresh] == ["DET004"]
        assert matched == [(_violation(), matched_entry)]
        assert stale == [stale_entry]


class TestBaselineFile:
    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == []

    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([_violation()], path=path, justification="known and fine")
        (entry,) = load_baseline(path)
        assert entry.path == "repro/sim/core.py"
        assert entry.rule == "DET001"
        assert entry.snippet == "x = 1"
        assert entry.justification == "known and fine"

    def test_empty_justification_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                {
                    "schema": 1,
                    "entries": [
                        {"path": "repro/x.py", "rule": "DET001", "justification": "  "}
                    ],
                }
            )
        )
        with pytest.raises(BaselineError, match="justification"):
            load_baseline(path)

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{nope")
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema": 99, "entries": []}))
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_checked_in_baseline_is_valid_and_empty(self):
        # the production tree lints clean; suppressions live as pragmas
        assert load_baseline() == []


class TestSarif:
    def test_report_validates(self):
        violations = lint_source("import random\nx = random.random()\n", path="f.py")
        report = sarif_report(violations)
        assert validate_sarif(report) == []
        assert report["version"] == "2.1.0"

    def test_rule_index_resolves(self):
        violations = lint_source("import random\nx = random.random()\n", path="f.py")
        report = sarif_report(violations)
        (result,) = report["runs"][0]["results"]
        rules = report["runs"][0]["tool"]["driver"]["rules"]
        assert rules[result["ruleIndex"]]["id"] == result["ruleId"] == "DET001"

    def test_all_catalog_rules_exported(self):
        report = sarif_report([])
        exported = {r["id"] for r in report["runs"][0]["tool"]["driver"]["rules"]}
        assert exported == set(RULE_CATALOG)

    def test_snippet_and_location_carried(self):
        violations = lint_source("import random\nx = random.random()\n", path="f.py")
        report = sarif_report(violations)
        (result,) = report["runs"][0]["results"]
        physical = result["locations"][0]["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == "f.py"
        assert physical["region"]["startLine"] == 2
        assert physical["region"]["snippet"]["text"] == "x = random.random()"

    def test_baseline_matches_become_suppressions(self):
        violation = _violation()
        entry = BaselineEntry(
            "repro/sim/core.py", "DET001", 4, "x = 1", "accepted for reasons"
        )
        report = sarif_report([], baseline_matches=[(violation, entry)])
        (result,) = report["runs"][0]["results"]
        (suppression,) = result["suppressions"]
        assert suppression["kind"] == "external"
        assert suppression["justification"] == "accepted for reasons"
        assert validate_sarif(report) == []

    def test_round_trip_through_file(self, tmp_path):
        path = tmp_path / "lint.sarif"
        write_sarif(sarif_report([_violation()]), path)
        loaded = json.loads(path.read_text())
        assert validate_sarif(loaded) == []
        assert render_sarif(loaded) == path.read_text()

    def test_validator_rejects_broken_documents(self):
        assert validate_sarif([]) != []
        assert validate_sarif({"version": "2.0.0", "runs": []}) != []
        report = sarif_report([_violation()])
        report["runs"][0]["results"][0]["ruleIndex"] = 999
        assert any("ruleIndex" in p for p in validate_sarif(report))
