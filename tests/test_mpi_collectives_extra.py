"""Correctness of the additional collective algorithms (pipeline bcast,
Bruck alltoall/allgather, scan) and their latency/bandwidth trade-offs."""

import numpy as np
import pytest

from repro.impls import get_implementation
from repro.mpi import MAX, SUM, MpiJob
from repro.net import build_pair_testbed
from repro.tcp import TUNED_SYSCTLS
from repro.units import KB, MB
from tests.conftest import make_cluster_job, make_grid_job


def run_with(algo, program, nprocs=8, grid=False, impl_name="mpich2"):
    impl = get_implementation(impl_name)
    if algo:
        impl = impl.with_collective(*algo)
    maker = make_grid_job if grid else make_cluster_job
    return maker(nprocs=nprocs, impl=impl).run(program)


# --- pipeline bcast -------------------------------------------------------------
@pytest.mark.parametrize("nprocs", [2, 4, 5, 8])
@pytest.mark.parametrize("root", [0, 1])
def test_pipeline_bcast_arrays(nprocs, root):
    data = np.arange(150_000, dtype=np.float64)  # ~1.2 MB: deep pipeline

    def program(ctx):
        payload = data.copy() if ctx.rank == root else None
        result = yield from ctx.comm.bcast(payload, nbytes=data.nbytes, root=root)
        np.testing.assert_array_equal(np.asarray(result).reshape(-1), data)
        return True

    result = run_with(("bcast", "pipeline"), program, nprocs=nprocs)
    assert all(result.returns)


def test_pipeline_bcast_small_falls_back():
    def program(ctx):
        value = yield from ctx.comm.bcast(
            "tiny" if ctx.rank == 0 else None, nbytes=64, root=0
        )
        assert value == "tiny"
        return True

    assert all(run_with(("bcast", "pipeline"), program).returns)


def test_pipeline_beats_binomial_for_huge_cluster_bcast():
    """The chain moves nbytes once per hop, fully pipelined; binomial
    repeats the whole message log2(P) times from the root's NIC."""

    def duration(algo):
        def program(ctx):
            t0 = ctx.wtime()
            yield from ctx.comm.bcast(None, nbytes=64 * MB, root=0)
            return ctx.wtime() - t0

        result = run_with(("bcast", algo), program, nprocs=8)
        return max(result.returns)

    assert duration("pipeline") < duration("binomial")


# --- Bruck ----------------------------------------------------------------------
@pytest.mark.parametrize("nprocs", [2, 3, 4, 5, 8])
def test_bruck_alltoall_correct(nprocs):
    def program(ctx):
        payloads = [(ctx.rank, d) for d in range(nprocs)]
        blocks = yield from ctx.comm.alltoall(payloads, nbytes_each=64)
        assert blocks == [(s, ctx.rank) for s in range(nprocs)]
        return True

    result = run_with(("alltoall", "bruck"), program, nprocs=nprocs)
    assert all(result.returns)


@pytest.mark.parametrize("nprocs", [2, 3, 4, 7, 8])
def test_bruck_allgather_correct(nprocs):
    def program(ctx):
        blocks = yield from ctx.comm.allgather(f"b{ctx.rank}", nbytes_each=64)
        assert blocks == [f"b{r}" for r in range(nprocs)]
        return True

    result = run_with(("allgather", "bruck"), program, nprocs=nprocs)
    assert all(result.returns)


def test_bruck_fewer_rounds_wins_on_wan_latency():
    """16 tiny blocks over the WAN: Bruck's log2(P) rounds beat the
    pairwise algorithm's P-1 rounds."""

    def duration(algo):
        def program(ctx):
            t0 = ctx.wtime()
            yield from ctx.comm.alltoall(
                [None] * ctx.size, nbytes_each=64
            )
            return ctx.wtime() - t0

        result = run_with(("alltoall", algo), program, nprocs=16, grid=True)
        return max(result.returns)

    assert duration("bruck") < 0.6 * duration("pairwise")


# --- scan -----------------------------------------------------------------------
@pytest.mark.parametrize("nprocs", [1, 2, 4, 7])
def test_scan_prefix_sums(nprocs):
    def program(ctx):
        result = yield from ctx.comm.scan(float(ctx.rank + 1), nbytes=8, op=SUM)
        expected = sum(range(1, ctx.rank + 2))
        assert result == pytest.approx(expected)
        return True

    assert all(run_with(None, program, nprocs=nprocs).returns)


def test_scan_arrays_max():
    def program(ctx):
        data = np.array([float(ctx.rank), float(-ctx.rank)])
        result = yield from ctx.comm.scan(data, nbytes=data.nbytes, op=MAX)
        np.testing.assert_array_equal(result, [float(ctx.rank), 0.0])
        return True

    assert all(run_with(None, program, nprocs=4).returns)
