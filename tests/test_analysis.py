"""Tests for the analysis package (curve metrics, exports)."""

import json

import pytest

from repro.analysis import (
    crossover_size,
    experiment_to_dict,
    experiment_to_json,
    half_bandwidth_size,
    plateau_bandwidth,
    relative_series,
)
from repro.apps.pingpong import PingPongCurve, PingPongPoint
from repro.errors import ReproError
from repro.experiments.base import ExperimentResult


def curve(values, label="c"):
    points = [
        PingPongPoint(nbytes=1024 * (2**i), min_rtt=1e-3, max_bandwidth_mbps=bw)
        for i, bw in enumerate(values)
    ]
    return PingPongCurve(label, points)


def test_plateau():
    c = curve([10, 100, 880, 900, 920])
    assert plateau_bandwidth(c) == pytest.approx(900)
    with pytest.raises(ReproError):
        plateau_bandwidth(PingPongCurve("x", []))


def test_half_bandwidth_size():
    c = curve([10, 100, 500, 880, 900, 920])
    # plateau 900, half 450 -> first point >= 450 is the 4 kB one
    assert half_bandwidth_size(c) == 4096
    assert half_bandwidth_size(curve([1, 2, 3])) is not None
    never = curve([1, 1, 1])
    # plateau 1, half 0.5: first point qualifies
    assert half_bandwidth_size(never) == 1024


def test_crossover():
    a = curve([100, 200, 300, 300])
    b = curve([50, 100, 350, 400])
    assert crossover_size(a, b) == 4096
    assert crossover_size(b, a) is None  # b starts behind and ends ahead
    assert crossover_size(a, curve([1, 1, 1, 1])) is None  # never crossed


def test_relative_series():
    times = {"mpich2": 10.0, "gridmpi": 5.0, "madeleine": float("inf")}
    rel = relative_series(times, "mpich2")
    assert rel == {"mpich2": 1.0, "gridmpi": 2.0, "madeleine": 0.0}
    with pytest.raises(ReproError):
        relative_series(times, "lam")


def test_export_roundtrip():
    result = ExperimentResult(
        "table4", "t", "ref",
        rows=[{"stack": "TCP", "grid_us": 5812.4, "dnf": float("inf")}],
        text="...",
    )
    payload = json.loads(experiment_to_json(result))
    assert payload["experiment_id"] == "table4"
    assert payload["rows"][0]["grid_us"] == 5812.4
    assert payload["rows"][0]["dnf"] == "inf"
    assert experiment_to_dict(result)["paper_ref"] == "ref"


def test_export_real_experiment():
    from repro.experiments import run_experiment

    payload = json.loads(experiment_to_json(run_experiment("table1")))
    assert len(payload["rows"]) == 6
