"""Numerical correctness of every collective algorithm.

Each algorithm is run with real numpy payloads through the full simulated
stack and checked against the numpy ground truth, across power-of-two and
odd rank counts.
"""

import numpy as np
import pytest

from repro.errors import MpiError
from repro.impls import get_implementation
from repro.mpi import MAX, MIN, PROD, SUM
from repro.mpi.collectives import ALGORITHMS, DEFAULTS, resolve
from tests.conftest import make_cluster_job, make_grid_job


def run_collective(program, nprocs=4, impl_name="mpich2", algo=None, grid=False):
    impl = get_implementation(impl_name)
    if algo:
        operation, name = algo
        impl = impl.with_collective(operation, name)
    maker = make_grid_job if grid else make_cluster_job
    job = maker(nprocs=nprocs, impl=impl)
    return job.run(program)


# --- bcast ---------------------------------------------------------------------
@pytest.mark.parametrize("algo", sorted(ALGORITHMS["bcast"]))
@pytest.mark.parametrize("nprocs", [2, 4, 5, 8])
def test_bcast_algorithms(algo, nprocs):
    root = min(1, nprocs - 1)
    data = np.arange(20000, dtype=np.float64)

    def program(ctx):
        payload = data.copy() if ctx.rank == root else None
        result = yield from ctx.comm.bcast(payload, nbytes=data.nbytes, root=root)
        np.testing.assert_array_equal(np.asarray(result).reshape(-1), data)
        return True

    result = run_collective(program, nprocs=nprocs, algo=("bcast", algo), grid=True)
    assert all(result.returns)


@pytest.mark.parametrize("algo", sorted(ALGORITHMS["bcast"]))
def test_bcast_opaque_payload(algo):
    def program(ctx):
        payload = {"config": [1, 2, 3]} if ctx.rank == 0 else None
        result = yield from ctx.comm.bcast(payload, nbytes=100 * 1024, root=0)
        assert result == {"config": [1, 2, 3]}
        return True

    result = run_collective(program, nprocs=4, algo=("bcast", algo))
    assert all(result.returns)


def test_bcast_2d_array_shape_preserved():
    data = np.arange(30000, dtype=np.float64).reshape(100, 300)

    def program(ctx):
        payload = data.copy() if ctx.rank == 2 else None
        result = yield from ctx.comm.bcast(payload, nbytes=data.nbytes, root=2)
        assert result.shape == (100, 300)
        np.testing.assert_array_equal(result, data)
        return True

    result = run_collective(program, nprocs=8, algo=("bcast", "van_de_geijn"))
    assert all(result.returns)


# --- reduce / allreduce --------------------------------------------------------------
@pytest.mark.parametrize("nprocs", [2, 4, 7, 8])
def test_reduce_sum(nprocs):
    def program(ctx):
        data = np.full(1000, float(ctx.rank + 1))
        result = yield from ctx.comm.reduce(data, nbytes=data.nbytes, op=SUM, root=0)
        if ctx.rank == 0:
            expected = sum(range(1, nprocs + 1))
            np.testing.assert_allclose(result, expected)
        else:
            assert result is None
        return True

    assert all(run_collective(program, nprocs=nprocs).returns)


@pytest.mark.parametrize("algo", sorted(ALGORITHMS["allreduce"]))
@pytest.mark.parametrize("nprocs", [2, 4, 6, 8])
@pytest.mark.parametrize("op,expected_fn", [(SUM, np.sum), (MAX, np.max), (MIN, np.min)])
def test_allreduce_algorithms(algo, nprocs, op, expected_fn):
    n = 30000  # large enough to engage Rabenseifner's segmented path

    def program(ctx):
        rng = np.random.default_rng(100 + ctx.rank)
        data = rng.random(n)
        result = yield from ctx.comm.allreduce(data, nbytes=data.nbytes, op=op)
        all_data = np.stack(
            [np.random.default_rng(100 + r).random(n) for r in range(nprocs)]
        )
        np.testing.assert_allclose(
            np.asarray(result).reshape(-1), expected_fn(all_data, axis=0), rtol=1e-10
        )
        return True

    result = run_collective(program, nprocs=nprocs, algo=("allreduce", algo), grid=True)
    assert all(result.returns)


def test_allreduce_scalar_payload():
    def program(ctx):
        result = yield from ctx.comm.allreduce(float(ctx.rank), nbytes=8, op=SUM)
        assert result == pytest.approx(6.0)  # 0+1+2+3
        return True

    assert all(run_collective(program, nprocs=4).returns)


def test_allreduce_prod():
    def program(ctx):
        result = yield from ctx.comm.allreduce(float(ctx.rank + 1), nbytes=8, op=PROD)
        assert result == pytest.approx(24.0)
        return True

    assert all(run_collective(program, nprocs=4).returns)


# --- allgather -----------------------------------------------------------------------
@pytest.mark.parametrize("algo", sorted(ALGORITHMS["allgather"]))
@pytest.mark.parametrize("nprocs", [2, 4, 5, 8])
def test_allgather_algorithms(algo, nprocs):
    def program(ctx):
        data = np.full(100, float(ctx.rank))
        blocks = yield from ctx.comm.allgather(data, nbytes_each=data.nbytes)
        assert len(blocks) == nprocs
        for r, block in enumerate(blocks):
            np.testing.assert_array_equal(block, np.full(100, float(r)))
        return True

    result = run_collective(program, nprocs=nprocs, algo=("allgather", algo))
    assert all(result.returns)


# --- alltoall(v) --------------------------------------------------------------------
@pytest.mark.parametrize("nprocs", [2, 4, 5, 8])
def test_alltoall(nprocs):
    def program(ctx):
        payloads = [f"{ctx.rank}->{d}" for d in range(nprocs)]
        blocks = yield from ctx.comm.alltoall(payloads, nbytes_each=1024)
        assert blocks == [f"{s}->{ctx.rank}" for s in range(nprocs)]
        return True

    assert all(run_collective(program, nprocs=nprocs).returns)


@pytest.mark.parametrize("nprocs", [3, 4, 8])
def test_alltoallv_sizes(nprocs):
    def program(ctx):
        sizes = [(ctx.rank + 1) * 100 + d for d in range(nprocs)]
        payloads = [(ctx.rank, d) for d in range(nprocs)]
        blocks, recv_sizes = yield from ctx.comm.alltoallv(sizes, payloads)
        assert blocks == [(s, ctx.rank) for s in range(nprocs)]
        assert recv_sizes == [(s + 1) * 100 + ctx.rank for s in range(nprocs)]
        return True

    assert all(run_collective(program, nprocs=nprocs).returns)


def test_alltoall_wrong_payload_count():
    def program(ctx):
        yield from ctx.comm.alltoall([1, 2], nbytes_each=10)  # nprocs=4

    with pytest.raises(MpiError):
        run_collective(program, nprocs=4)


# --- gather / scatter --------------------------------------------------------------
@pytest.mark.parametrize("algo", sorted(ALGORITHMS["gather"]))
@pytest.mark.parametrize("nprocs", [2, 4, 5])
def test_gather_algorithms(algo, nprocs):
    root = nprocs - 1

    def program(ctx):
        blocks = yield from ctx.comm.gather(
            f"item{ctx.rank}", nbytes_each=512, root=root
        )
        if ctx.rank == root:
            assert blocks == [f"item{r}" for r in range(nprocs)]
        else:
            assert blocks is None
        return True

    assert all(run_collective(program, nprocs=nprocs, algo=("gather", algo)).returns)


@pytest.mark.parametrize("algo", sorted(ALGORITHMS["scatter"]))
@pytest.mark.parametrize("nprocs", [2, 4, 5])
def test_scatter_algorithms(algo, nprocs):
    def program(ctx):
        payloads = [f"part{d}" for d in range(nprocs)] if ctx.rank == 0 else None
        item = yield from ctx.comm.scatter(payloads, nbytes_each=256, root=0)
        assert item == f"part{ctx.rank}"
        return True

    assert all(run_collective(program, nprocs=nprocs, algo=("scatter", algo)).returns)


def test_gatherv_scatterv():
    def program(ctx):
        nbytes = (ctx.rank + 1) * 1000
        blocks, sizes = yield from ctx.comm.gatherv(
            f"v{ctx.rank}", nbytes=nbytes, root=0
        )
        if ctx.rank == 0:
            assert blocks == ["v0", "v1", "v2", "v3"]
            assert sizes == [1000, 2000, 3000, 4000]
        item = yield from ctx.comm.scatterv(
            [100, 200, 300, 400] if ctx.rank == 0 else None,
            [f"s{d}" for d in range(4)] if ctx.rank == 0 else None,
            root=0,
        )
        assert item == f"s{ctx.rank}"
        return True

    assert all(run_collective(program, nprocs=4).returns)


# --- barrier --------------------------------------------------------------------------
@pytest.mark.parametrize("nprocs", [2, 4, 7])
def test_barrier_synchronises(nprocs):
    def program(ctx):
        # Rank r works r*0.1 s; after the barrier everyone's clock is at
        # least the slowest rank's work time.
        yield from ctx.compute_time(ctx.rank * 0.1)
        yield from ctx.comm.barrier()
        return ctx.wtime()

    result = run_collective(program, nprocs=nprocs)
    slowest = (nprocs - 1) * 0.1
    assert all(t >= slowest for t in result.returns)


# --- dispatch ------------------------------------------------------------------------
def test_unknown_algorithm_rejected():
    with pytest.raises(MpiError):
        resolve("bcast", "teleportation")
    with pytest.raises(MpiError):
        resolve("dance", "binomial")


def test_defaults_cover_all_operations():
    assert set(DEFAULTS) == set(ALGORITHMS)
    for operation, name in DEFAULTS.items():
        assert name in ALGORITHMS[operation]


def test_single_rank_collectives_trivial():
    def program(ctx):
        result = yield from ctx.comm.allreduce(5.0, nbytes=8, op=SUM)
        assert result == 5.0
        value = yield from ctx.comm.bcast("x", nbytes=10, root=0)
        assert value == "x"
        yield from ctx.comm.barrier()
        return True

    assert all(run_collective(program, nprocs=1).returns)
