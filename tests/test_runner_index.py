"""Artifact index: build/staleness/query semantics plus the CLI front-ends."""

import json

import pytest

from repro.cli import main
from repro.runner.cache import ResultCache
from repro.runner.index import (
    artifact_text,
    build_index,
    load_index,
    query_index,
    render_query,
)


def _experiment_artifact(experiment_id="fig7", **overrides):
    artifact = {
        "kind": "experiment",
        "experiment_id": experiment_id,
        "fast": True,
        "ok": True,
        "sharded": False,
        "wall_s": 4.2,
        "shared_with": [],
        "trace_hash": "abc123",
        "trace_mode": "serial",
        "trace_events": 10,
        "title": "Throughput vs message size",
        "paper_ref": "Fig. 7",
        "rows": [{"impl": "madeleine", "size_kb": 128}],
        "text": "rendered fig7 report",
        "error": None,
    }
    artifact.update(overrides)
    return artifact


@pytest.fixture()
def store(tmp_path):
    """A cache root holding one experiment entry and one shard entry."""
    cache = ResultCache(root=tmp_path, digest="digest-a")
    cache.store("experiment/fig7", True, _experiment_artifact())
    cache.store(
        "npb/grid16/ft",
        True,
        {"kind": "shard", "payload": {}, "wall_s": 1.5, "trace_hash": "def456"},
    )
    return tmp_path


def test_build_index_covers_cache_entries(store):
    document = build_index(store)
    by_id = {record["task_id"]: record for record in document["records"]}
    assert set(by_id) == {"experiment/fig7", "npb/grid16/ft"}
    fig7 = by_id["experiment/fig7"]
    assert fig7["kind"] == "experiment"
    assert fig7["experiment_id"] == "fig7"
    assert fig7["wall_s"] == 4.2
    assert fig7["trace_hash"] == "abc123"
    assert fig7["source_digest"]  # provenance present
    assert "madeleine" in fig7["terms"]
    shard = by_id["npb/grid16/ft"]
    assert shard["kind"] == "shard" and shard["wall_s"] == 1.5
    assert (store / "index.json").exists()


def test_query_matches_experiment_scenario_and_impl(store):
    assert {r.task_id for r in query_index("fig7", store)} == {"experiment/fig7"}
    # implementation names from rows are searchable
    assert query_index("madeleine", store)
    # shard ids match on substring too
    assert {r.task_id for r in query_index("grid16", store)} == {"npb/grid16/ft"}
    assert query_index("nonexistent-thing", store) == []


def test_query_is_case_insensitive(store):
    assert query_index("MADELEINE", store)


def test_index_rebuilds_when_the_store_changes(store):
    build_index(store)
    cache = ResultCache(root=store, digest="digest-a")
    cache.store("experiment/fig9", True, _experiment_artifact("fig9"))
    # load_index must notice the (name, mtime, size) listing changed.
    document = load_index(store)
    ids = {record["task_id"] for record in document["records"]}
    assert "experiment/fig9" in ids


def test_stale_index_is_not_used_without_rebuild(store):
    build_index(store)
    cache = ResultCache(root=store, digest="digest-a")
    cache.store("experiment/fig9", True, _experiment_artifact("fig9"))
    document = load_index(store, rebuild=False)
    assert document["records"] == []  # stale: refuse, do not serve old data


def test_index_ignores_corrupt_entries(store):
    (store / "junk.json").write_text("{not json", encoding="utf-8")
    document = build_index(store)
    assert all(r["path"] != str(store / "junk.json") for r in document["records"])


def test_index_covers_out_dir_reports(store, tmp_path):
    out = tmp_path / "out"
    (out / "json").mkdir(parents=True)
    (out / "json" / "table4.json").write_text(
        json.dumps(_experiment_artifact("table4", rows=[{"impl": "mpich"}])),
        encoding="utf-8",
    )
    records = query_index("table4", store, out_dirs=[out])
    assert [r.kind for r in records] == ["report"]
    assert "mpich" in records[0].terms


def test_artifact_text_roundtrip(store):
    (record,) = query_index("fig7", store)
    assert artifact_text(record) == "rendered fig7 report"


def test_render_query_mentions_provenance(store):
    records = query_index("fig7", store)
    text = render_query("fig7", records)
    assert "experiment/fig7" in text
    assert "wall 4.2s" in text
    assert "digest" in text


# --- CLI front-ends -----------------------------------------------------------------
def test_cli_index_rebuild_and_query(store, capsys):
    assert main(["index", "rebuild", "--root", str(store)]) == 0
    assert "indexed 2 artifacts" in capsys.readouterr().out
    assert main(["query", "fig7", "--root", str(store)]) == 0
    out = capsys.readouterr().out
    assert "experiment/fig7" in out and "Fig. 7" in out


def test_cli_query_text_prints_the_cached_report(store, capsys):
    assert main(["query", "fig7", "--root", str(store), "--text"]) == 0
    assert "rendered fig7 report" in capsys.readouterr().out


def test_cli_query_miss_exits_nonzero(store, capsys):
    assert main(["query", "zzz-no-such-thing", "--root", str(store)]) == 1
    assert "no matches" in capsys.readouterr().out


def test_cli_cache_stats(store, capsys):
    cache = ResultCache(root=store, digest="digest-a")
    cache.hits, cache.misses, cache.stores = 3, 1, 1
    cache.write_stats()
    assert main(["cache", "stats", "--root", str(store)]) == 0
    out = capsys.readouterr().out
    assert "2 entries" in out
    assert "experiment entries: 1" in out
    assert "shard entries:      1" in out
    assert "3 hits, 1 misses, 1 stored" in out
