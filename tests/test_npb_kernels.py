"""NPB: configuration validation, verification kernels, skeleton traffic."""

import math

import pytest

from repro.errors import WorkloadError
from repro.impls import get_implementation
from repro.mpi import MpiJob
from repro.mpi.constants import COLLECTIVE_CONTEXT, POINT_TO_POINT_CONTEXT
from repro.net import build_pair_testbed
from repro.npb import BENCHMARK_NAMES, COMM_TYPE, run_npb, run_suite, validate_config
from repro.npb.suite import clear_failure_memo
from repro.npb.common import (
    DEFAULT_SAMPLE_ITERS,
    FLOP_COUNTS,
    grid_2d,
    grid_3d,
    per_rank_flops,
    sampled_loop,
)
from repro.npb.suite import get_benchmark, get_verifier
from repro.tcp import TUNED_SYSCTLS


def cluster16():
    net = build_pair_testbed(nodes_per_site=16)
    return net, net.clusters["rennes"].nodes[:16]


def grid_8_8():
    net = build_pair_testbed(nodes_per_site=8)
    return net, net.clusters["rennes"].nodes[:8] + net.clusters["nancy"].nodes[:8]


# --- configuration ---------------------------------------------------------------
def test_all_benchmarks_known():
    assert set(BENCHMARK_NAMES) == {"ep", "cg", "mg", "lu", "sp", "bt", "is", "ft"}
    for name in BENCHMARK_NAMES:
        assert name in COMM_TYPE
        assert name in FLOP_COUNTS
        assert name in DEFAULT_SAMPLE_ITERS


def test_validate_config_rejects_bad_input():
    with pytest.raises(WorkloadError):
        validate_config("xx", "B", 4)
    with pytest.raises(WorkloadError):
        validate_config("cg", "Z", 4)
    with pytest.raises(WorkloadError):
        validate_config("cg", "B", 3)  # not a power of two
    with pytest.raises(WorkloadError):
        validate_config("bt", "B", 8)  # not square
    validate_config("bt", "B", 16)
    validate_config("cg", "B", 16)


def test_unknown_benchmark_lookup():
    with pytest.raises(WorkloadError):
        get_benchmark("hpl")
    with pytest.raises(WorkloadError):
        get_verifier("hpl")


def test_grid_factorisations():
    assert grid_2d(16) == (4, 4)
    assert grid_2d(4) == (2, 2)
    assert grid_2d(8) in ((4, 2),)
    assert sorted(grid_3d(16), reverse=True) == list(grid_3d(16))
    assert math.prod(grid_3d(16)) == 16
    assert math.prod(grid_3d(12)) == 12


def test_per_rank_flops():
    from repro.npb.common import EFFICIENCY

    # operation count split per rank, inflated by the sustained-efficiency
    # factor (LU runs at ~40 % of the calibrated node rate)
    assert per_rank_flops("lu", "B", 16) == pytest.approx(
        119.3e9 / 16 / EFFICIENCY["lu"]
    )
    assert 0 < EFFICIENCY["cg"] < EFFICIENCY["lu"] <= 0.5


# --- sampling ---------------------------------------------------------------------
def test_sampled_loop_extrapolates():
    from tests.conftest import make_cluster_job

    job = make_cluster_job(nprocs=1)
    executed = []

    def program(ctx):
        def body(it):
            executed.append(it)
            yield from ctx.compute_time(1.0)

        yield from sampled_loop(ctx, total_iters=10, sample_iters=3, body=body)

    result = job.run(program)
    assert executed == [0, 1, 2]
    assert result.makespan == pytest.approx(10.0)


def test_sampled_loop_full_when_none():
    from tests.conftest import make_cluster_job

    job = make_cluster_job(nprocs=1)
    executed = []

    def program(ctx):
        def body(it):
            executed.append(it)
            yield from ctx.compute_time(0.1)

        yield from sampled_loop(ctx, total_iters=5, sample_iters=None, body=body)

    job.run(program)
    assert executed == [0, 1, 2, 3, 4]


# --- verification kernels: the dataflow of every skeleton is real ---------------------
@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_verification_kernel(name):
    nprocs = 4
    net = build_pair_testbed(nodes_per_site=4)
    placement = net.clusters["rennes"].nodes[:4]
    program = get_verifier(name)(nprocs)
    job = MpiJob(net, get_implementation("mpich2"), placement, sysctls=TUNED_SYSCTLS)
    result = job.run(program)
    if name == "cg":  # returns the relative solution error
        assert all(err < 1e-8 for err in result.returns)
    else:
        assert all(bool(v) for v in result.returns)


def test_verification_kernels_16_ranks():
    net, placement = cluster16()
    for name in ("lu", "bt", "ft"):
        program = get_verifier(name)(16)
        job = MpiJob(net, get_implementation("gridmpi"), placement, sysctls=TUNED_SYSCTLS)
        result = job.run(program)
        assert all(bool(v) for v in result.returns), name


# --- skeleton runs -----------------------------------------------------------------------
@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_class_s_runs_quickly(name):
    net = build_pair_testbed(nodes_per_site=4)
    placement = net.clusters["rennes"].nodes[:4]
    result = run_npb(
        name, "S", net, get_implementation("mpich2"), placement,
        sysctls=TUNED_SYSCTLS, sample_iters=None,
    )
    assert result.completed
    assert 0 < result.time < 60


def test_class_b_ep_structure():
    net, placement = grid_8_8()
    result = run_npb(
        "ep", "B", net, get_implementation("gridmpi"), placement,
        sysctls=TUNED_SYSCTLS, trace=True,
    )
    assert result.completed
    # EP: almost pure compute, three tiny collectives.
    assert result.trace.collective_calls["allreduce"] == 3 * 16
    assert result.trace.p2p_summary().messages == 0
    compute_floor = FLOP_COUNTS["ep"]["B"] * 1e9 / 16 / 1.10e9
    assert result.time >= compute_floor


def test_lu_message_sizes_match_table2():
    """Table 2: LU sends ~1 kB messages (960-1040 B for class B)."""
    net, placement = grid_8_8()
    result = run_npb(
        "lu", "B", net, get_implementation("gridmpi"), placement,
        sysctls=TUNED_SYSCTLS, sample_iters=2, trace=True,
    )
    dominant = result.trace.dominant_sizes(POINT_TO_POINT_CONTEXT, top=1)[0]
    assert 800 <= dominant[0] <= 1200


def test_cg_has_8b_and_140k_messages():
    """Table 2: CG mixes 8 B dot products with ~147 kB vector exchanges."""
    net, placement = grid_8_8()
    result = run_npb(
        "cg", "B", net, get_implementation("gridmpi"), placement,
        sysctls=TUNED_SYSCTLS, sample_iters=1, trace=True,
    )
    sizes = {s for s, _ in result.trace.dominant_sizes(POINT_TO_POINT_CONTEXT, top=5)}
    assert 8 in sizes
    assert any(120_000 <= s <= 160_000 for s in sizes)


def test_is_ft_are_collective_benchmarks():
    net, placement = grid_8_8()
    for name in ("is", "ft"):
        result = run_npb(
            name, "A", net, get_implementation("mpich2"), placement,
            sysctls=TUNED_SYSCTLS, sample_iters=2, trace=True,
        )
        assert result.trace.collective_summary().messages > 0
        assert result.trace.p2p_summary().messages == 0, name


def test_madeleine_known_failures_reported():
    net, placement = grid_8_8()
    impl = get_implementation("madeleine")
    result = run_npb("bt", "B", net, impl, placement, sysctls=TUNED_SYSCTLS)
    assert result.timed_out
    assert not result.completed
    assert math.isinf(result.time)
    # but it can be forced to run anyway
    result2 = run_npb(
        "bt", "S", net, impl, placement, sysctls=TUNED_SYSCTLS,
        honor_known_failures=False, sample_iters=2,
    )
    assert result2.completed


def test_known_failure_records_the_hang_point():
    """§4.3: the madeleine BT/SP timeout is no longer a bare ``inf`` — the
    result carries a KnownFailure locating the collective the documented
    hang cannot get past (BT/SP's only collective: the final residual
    allreduce)."""
    clear_failure_memo()
    net, placement = grid_8_8()
    impl = get_implementation("madeleine")
    for name in ("bt", "sp"):
        result = run_npb(name, "B", net, impl, placement, sysctls=TUNED_SYSCTLS)
        failure = result.failure
        assert failure is not None, name
        assert failure.impl_name == "madeleine"
        assert failure.benchmark == name
        assert failure.collective == "allreduce"
        assert failure.algorithm  # the model's pick, never empty
        assert 0 < failure.enters_at < failure.probe_makespan
        text = failure.describe()
        assert "documented timeout" in text
        assert "allreduce" in text


def test_known_failure_probe_is_memoized():
    clear_failure_memo()
    net, placement = grid_8_8()
    impl = get_implementation("madeleine")
    first = run_npb("bt", "B", net, impl, placement, sysctls=TUNED_SYSCTLS)
    second = run_npb("bt", "B", net, impl, placement, sysctls=TUNED_SYSCTLS)
    assert second.failure is first.failure  # same object: probe ran once


def test_completed_runs_have_no_failure_record():
    net, placement = grid_8_8()
    result = run_npb(
        "bt", "S", net, get_implementation("mpich2"), placement,
        sysctls=TUNED_SYSCTLS, sample_iters=2,
    )
    assert result.completed
    assert result.failure is None


def test_run_suite():
    net = build_pair_testbed(nodes_per_site=4)
    placement = net.clusters["rennes"].nodes[:4]
    results = run_suite(
        ["ep", "mg"], "S", net, get_implementation("mpich2"), placement,
        sysctls=TUNED_SYSCTLS,
    )
    assert set(results) == {"ep", "mg"}
    assert all(r.completed for r in results.values())


def test_grid_slower_than_cluster_for_cg():
    """CG (little messages) must suffer on the grid (Fig. 12)."""
    impl = get_implementation("gridmpi")
    net_c, cluster_placement = cluster16()
    r_cluster = run_npb(
        "cg", "A", net_c, impl, cluster_placement, sysctls=TUNED_SYSCTLS, sample_iters=2
    )
    net_g, grid_placement = grid_8_8()
    r_grid = run_npb(
        "cg", "A", net_g, impl, grid_placement, sysctls=TUNED_SYSCTLS, sample_iters=2
    )
    assert r_grid.time > 1.5 * r_cluster.time


def test_ep_nearly_unaffected_by_grid():
    """EP relative performance ≈ 1 (Fig. 12)."""
    impl = get_implementation("gridmpi")
    net_c, cluster_placement = cluster16()
    r_cluster = run_npb("ep", "A", net_c, impl, cluster_placement, sysctls=TUNED_SYSCTLS)
    net_g, grid_placement = grid_8_8()
    r_grid = run_npb("ep", "A", net_g, impl, grid_placement, sysctls=TUNED_SYSCTLS)
    # Most of the residual gap is CPU heterogeneity (Nancy's 2.0 GHz
    # Opterons pace the grid run), not communication.
    assert r_cluster.time / r_grid.time > 0.85
