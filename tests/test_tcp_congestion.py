"""Tests for congestion window dynamics."""

import pytest

from repro.errors import TcpError
from repro.tcp import MSS, CongestionState
from repro.tcp.congestion import BIC_BETA, BIC_SMAX_SEGMENTS, INITIAL_WINDOW


def test_initial_state():
    cc = CongestionState()
    assert cc.cwnd == INITIAL_WINDOW == 3 * MSS
    assert cc.in_slow_start
    assert cc.losses == 0


def test_slow_start_doubles():
    cc = CongestionState()
    cc.on_round()
    assert cc.cwnd == 2 * INITIAL_WINDOW
    cc.on_round()
    assert cc.cwnd == 4 * INITIAL_WINDOW


def test_slow_start_capped_at_ssthresh():
    cc = CongestionState(ssthresh=10 * MSS)
    cc.cwnd = 8 * MSS
    cc.on_round()
    assert cc.cwnd == 10 * MSS  # not 16


def test_loss_multiplicative_decrease_bic():
    cc = CongestionState()
    cc.cwnd = 100 * MSS
    cc.on_loss()
    assert cc.cwnd == pytest.approx(BIC_BETA * 100 * MSS)
    assert cc.ssthresh == cc.cwnd
    assert cc.last_max == 100 * MSS
    assert not cc.in_slow_start
    assert cc.losses == 1


def test_loss_reno_halves():
    cc = CongestionState(algorithm="reno")
    cc.cwnd = 100 * MSS
    cc.on_loss()
    assert cc.cwnd == pytest.approx(50 * MSS)


def test_loss_floor_two_segments():
    cc = CongestionState()
    cc.cwnd = float(2 * MSS)
    cc.on_loss()
    assert cc.cwnd == 2 * MSS


def test_reno_linear_growth():
    cc = CongestionState(algorithm="reno")
    cc.cwnd = 100 * MSS
    cc.on_loss()
    before = cc.cwnd
    cc.on_round()
    assert cc.cwnd == before + MSS


def test_bic_binary_search_towards_last_max():
    cc = CongestionState()
    cc.cwnd = 200 * MSS
    cc.on_loss()  # cwnd = 160 MSS, last_max = 200 MSS
    cc.on_round()
    # increment = (200-160)/2 = 20 MSS
    assert cc.cwnd == pytest.approx(180 * MSS)
    cc.on_round()
    # increment = (200-180)/2 = 10 MSS
    assert cc.cwnd == pytest.approx(190 * MSS)


def test_bic_increment_clamped_to_smax():
    cc = CongestionState()
    cc.cwnd = 1000 * MSS
    cc.on_loss()  # cwnd = 800 MSS, gap 200 MSS -> raw increment 100 > Smax 32
    before = cc.cwnd
    cc.on_round()
    assert cc.cwnd == before + BIC_SMAX_SEGMENTS * MSS


def test_bic_max_probing_accelerates():
    cc = CongestionState()
    cc.cwnd = 10 * MSS
    cc.on_loss()  # last_max = 10 MSS, cwnd = 8 MSS
    # Climb back over last_max, then probe.
    increments = []
    for _ in range(12):
        before = cc.cwnd
        cc.on_round()
        increments.append(cc.cwnd - before)
    probing = [i for i in increments[3:] if i > 0]
    # Accelerating (non-decreasing) and bounded by Smax.
    assert all(b >= a - 1e-9 for a, b in zip(probing, probing[1:]))
    assert max(probing) <= BIC_SMAX_SEGMENTS * MSS + 1e-9


def test_idle_restart():
    cc = CongestionState()
    cc.cwnd = 500 * MSS
    cc.on_loss()
    ssthresh = cc.ssthresh
    cc.on_idle_restart()
    assert cc.cwnd == INITIAL_WINDOW
    assert cc.ssthresh == ssthresh  # preserved: ramp back is fast
    assert cc.in_slow_start


def test_clamp():
    cc = CongestionState()
    cc.cwnd = 500 * MSS
    cc.clamp(100 * MSS)
    assert cc.cwnd == 100 * MSS
    with pytest.raises(TcpError):
        cc.clamp(0)


def test_unknown_algorithm_rejected():
    with pytest.raises(TcpError):
        CongestionState(algorithm="vegas")


def test_slow_start_then_avoidance_cycle():
    """A full lifecycle: slow start, loss, BIC climb back past the max."""
    cc = CongestionState()
    rounds_in_ss = 0
    while cc.in_slow_start and cc.cwnd < 100 * MSS:
        cc.on_round()
        rounds_in_ss += 1
    assert rounds_in_ss <= 7  # exponential: 3 MSS -> >100 MSS in ~6 doublings
    cc.on_loss()
    target = cc.last_max
    rounds_in_ca = 0
    while cc.cwnd < target and rounds_in_ca < 1000:
        cc.on_round()
        rounds_in_ca += 1
    assert cc.cwnd >= target
    assert rounds_in_ca > 2  # distinctly slower than slow start
