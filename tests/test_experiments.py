"""Experiment-layer tests: every table/figure runs (fast mode) and shows
the paper's qualitative shape."""

import math

import pytest

from repro.errors import ExperimentError
from repro.experiments import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments.environments import (
    cluster_placement,
    get_environment,
    grid_placement,
    pingpong_pair,
)
from repro.experiments.npb_runs import clear_cache, npb_time
from repro.units import MB


def test_registry_covers_every_table_and_figure():
    expected = {
        "table1", "table2", "table3", "table4", "table5", "table6", "table7",
        "fig3", "fig5", "fig6", "fig7", "fig9", "fig10", "fig11", "fig12", "fig13",
        "faults_pingpong", "faults_cg", "coll_hier",
    }
    assert set(EXPERIMENTS) == expected


def test_unknown_experiment():
    with pytest.raises(ExperimentError):
        get_experiment("fig99")


# --- environments ---------------------------------------------------------------
def test_environments():
    default = get_environment("default")
    tuned = get_environment("fully_tuned")
    assert default.sysctls.tcp_rmem.max_bytes == 174760
    assert tuned.sysctls.tcp_rmem.max_bytes == 4 * MB
    assert default.impl("openmpi").buffer_policy.sndbuf == 128 * 1024
    assert tuned.impl("openmpi").buffer_policy.sndbuf == 4 * MB
    assert tuned.impl("mpich2").eager_threshold == 65 * MB
    assert tuned.impl("openmpi").eager_threshold == 32 * MB
    with pytest.raises(ExperimentError):
        get_environment("casually_tuned")


def test_placements():
    net, nodes = grid_placement(8)
    assert len(nodes) == 8
    assert {n.cluster.name for n in nodes} == {"rennes", "nancy"}
    net, nodes = cluster_placement(4)
    assert {n.cluster.name for n in nodes} == {"rennes"}
    with pytest.raises(ExperimentError):
        grid_placement(5)
    with pytest.raises(ExperimentError):
        pingpong_pair("moon")


# --- static tables -----------------------------------------------------------------
def test_table1_rows():
    result = run_experiment("table1")
    assert len(result.rows) == 6  # the paper lists all six implementations
    assert "GridMPI" in result.text


def test_table3_rows():
    result = run_experiment("table3")
    assert any("Opteron 248" in str(r.values()) for r in result.rows)
    assert "BIC + Sack" in result.text


# --- measured tables ----------------------------------------------------------------
def test_table4_matches_paper_within_2us():
    result = run_experiment("table4", fast=True)
    for row in result.rows:
        assert row["cluster_us"] == pytest.approx(row["paper_cluster_us"], abs=2)
        assert row["grid_us"] == pytest.approx(row["paper_grid_us"], abs=3)


def test_table5_fast():
    result = run_experiment("table5", fast=True)
    by_name = {r["implementation"]: r for r in result.rows}
    assert by_name["gridmpi"]["measured_cluster"] is None  # never rendezvous
    assert by_name["mpich2"]["measured_grid"] == 65 * MB
    assert by_name["openmpi"]["measured_grid"] == 32 * MB


# --- pingpong figures -------------------------------------------------------------------
def test_fig3_collapse():
    result = run_experiment("fig3", fast=True)
    for row in result.rows:
        for label, bw in row.items():
            if label == "nbytes":
                continue
            # The paper: nothing above 120 Mbps.  Our fluid model shows a
            # short burst hump where the message size crosses the default
            # buffer size (~128-256 kB, a single line-rate burst); allow it
            # but require the collapse everywhere else.
            limit = 170 if 64 * 1024 <= row["nbytes"] <= 256 * 1024 else 130
            assert bw <= limit, (label, row)


def test_fig5_cluster_plateau():
    result = run_experiment("fig5", fast=True)
    big = next(r for r in result.rows if r["nbytes"] == 64 * MB)
    for label, bw in big.items():
        if label != "nbytes":
            assert 800 <= bw <= 945, label


def test_fig6_tcp_tuned():
    result = run_experiment("fig6", fast=True)
    big = next(r for r in result.rows if r["nbytes"] == 64 * MB)
    # TCP and GridMPI reach ~900; the rendezvous-bound stacks lag at 64 MB
    # (their threshold is still the default).
    assert big["TCP"] >= 800
    assert big["GridMPI"] >= 750
    # the Fig. 6 threshold dip: at 256 kB Madeleine (128 kB threshold) is
    # already paying the WAN rendezvous, GridMPI (threshold ∞) is not
    dip = next(r for r in result.rows if r["nbytes"] == 256 * 1024)
    assert dip["GridMPI"] > 1.5 * dip["MPICH-Madeleine"]


def test_fig7_fully_tuned():
    result = run_experiment("fig7", fast=True)
    big = next(r for r in result.rows if r["nbytes"] == 64 * MB)
    for label, bw in big.items():
        if label == "nbytes":
            continue
        assert bw >= 700, label
    # OpenMPI is the slowest of the four at 64 MB (Fig. 7)
    impls = {k: v for k, v in big.items() if k not in ("nbytes", "TCP")}
    assert min(impls, key=impls.get) == "OpenMPI"


def test_fig9_fast():
    result = run_experiment("fig9", fast=True)
    by_stack = {r["stack"]: r for r in result.rows}
    assert 500 <= by_stack["TCP"]["peak_mbps"] <= 640
    # paced beats unpaced to 500 Mbps
    assert by_stack["GridMPI"]["t500_s"] < by_stack["MPICH2"]["t500_s"]


# --- NPB figures (class A fast mode, shared cache) -----------------------------------------
@pytest.fixture(scope="module")
def npb_results():
    clear_cache()
    fig10 = run_experiment("fig10", fast=True)
    fig12 = run_experiment("fig12", fast=True)
    fig13 = run_experiment("fig13", fast=True)
    return fig10, fig12, fig13


def test_fig10_gridmpi_wins_collectives(npb_results):
    fig10, _, _ = npb_results
    rows = {r["bench"]: r for r in fig10.rows}
    assert rows["ft"]["gridmpi"] > 1.3
    assert rows["is"]["gridmpi"] > 1.0
    # MPICH2 is the best on LU (nobody beats the reference clearly)
    assert rows["lu"]["gridmpi"] <= 1.1
    assert rows["lu"]["madeleine"] < 1.0
    # Madeleine DNFs on BT and SP
    assert rows["bt"]["madeleine"] == 0.0
    assert rows["sp"]["madeleine"] == 0.0


def test_fig12_shape(npb_results):
    _, fig12, _ = npb_results
    rows = {r["bench"]: r for r in fig12.rows}
    # EP barely affected; CG and MG hit hardest (small messages).
    assert rows["ep"]["gridmpi"] > 0.8
    assert rows["cg"]["gridmpi"] < 0.6
    assert rows["mg"]["gridmpi"] < 0.75
    assert rows["lu"]["mpich2"] > rows["cg"]["mpich2"]


def test_fig13_grid_is_worth_it(npb_results):
    _, _, fig13 = npb_results
    rows = {r["bench"]: r for r in fig13.rows}
    # At the paper's class B every benchmark gains; the fast mode runs
    # class A where the latency-bound CG/IS legitimately do not, so the
    # all-gain assertion is restricted to the compute-heavy kernels here
    # (the full-scale check lives in benchmarks/test_fig13...).
    for bench in ("ep", "mg", "lu", "sp", "bt", "ft"):
        assert rows[bench]["gridmpi"] > 1.0, bench
    # ...LU close to the ideal 4, CG far from it.
    assert rows["lu"]["gridmpi"] > 2.0
    assert rows["cg"]["gridmpi"] < rows["lu"]["gridmpi"]


def test_npb_cache_reused(npb_results):
    t1 = npb_time("ep", "gridmpi", "grid16", cls="A")
    t2 = npb_time("ep", "gridmpi", "grid16", cls="A")
    assert t1 == t2


# --- ray2mesh tables ---------------------------------------------------------------------
@pytest.fixture(scope="module")
def ray_tables():
    return run_experiment("table6", fast=True), run_experiment("table7", fast=True)


def test_table6_sophia_leads(ray_tables):
    table6, _ = ray_tables
    rows = {r["cluster"]: r for r in table6.rows}
    for master in ("nancy", "rennes", "sophia", "toulouse"):
        per_master = {c: rows[c][f"master_{master}"] for c in rows}
        assert max(per_master, key=per_master.get) == "sophia"


def test_table7_placement_insensitive(ray_tables):
    _, table7 = ray_tables
    totals = [r["total_s"] for r in table7.rows]
    assert max(totals) / min(totals) < 1.05


def test_table2_fast():
    result = run_experiment("table2", fast=True)
    rows = {r["bench"]: r for r in result.rows}
    assert rows["is"]["type"] == "Collective"
    assert rows["lu"]["type"] == "P. to P."
    # LU's dominant size is ~1 kB (Table 2)
    lu_sizes = [s for s, _ in rows["lu"]["dominant_sizes"]]
    assert any(500 <= s <= 1500 for s in lu_sizes)
