"""The CI warm-rerun gate: cached-fraction floor and wall budget."""

import importlib.util
import json
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
BUDGETS = REPO / "benchmarks" / "budgets.json"

spec = importlib.util.spec_from_file_location(
    "check_warm_rerun", REPO / "scripts" / "check_warm_rerun.py"
)
gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(gate)


def _manifest(tmp_path, cached_flags, wall_s=5.0):
    path = tmp_path / "BENCH.json"
    entry = {
        "label": "warm",
        "wall_s": wall_s,
        "experiments": {
            f"exp{i}": {"ok": True, "cached": flag}
            for i, flag in enumerate(cached_flags)
        },
    }
    path.write_text(json.dumps({"schema": 1, "runs": [entry]}))
    return path


def _budgets(tmp_path, min_cached_fraction=0.8, max_wall_s=60.0):
    path = tmp_path / "budgets.json"
    path.write_text(
        json.dumps(
            {
                "warm_rerun": {
                    "min_cached_fraction": min_cached_fraction,
                    "max_wall_s": max_wall_s,
                }
            }
        )
    )
    return path


def test_fully_warm_passes(tmp_path, capsys):
    manifest = _manifest(tmp_path, [True] * 10)
    budgets = _budgets(tmp_path)
    assert gate.main(["--manifest", str(manifest), "--budgets", str(budgets)]) == 0
    assert "WARM-RERUN OK" in capsys.readouterr().out


def test_cold_fraction_fails_and_names_the_cold_ones(tmp_path, capsys):
    manifest = _manifest(tmp_path, [True, False, False, False])
    budgets = _budgets(tmp_path)
    assert gate.main(["--manifest", str(manifest), "--budgets", str(budgets)]) == 1
    out = capsys.readouterr().out
    assert "WARM-RERUN FAIL" in out
    assert "exp1" in out  # the cold experiments are listed


def test_wall_budget_fails(tmp_path, capsys):
    manifest = _manifest(tmp_path, [True] * 5, wall_s=120.0)
    budgets = _budgets(tmp_path, max_wall_s=60.0)
    assert gate.main(["--manifest", str(manifest), "--budgets", str(budgets)]) == 1
    assert "warm wall" in capsys.readouterr().out


def test_exactly_at_the_floor_passes(tmp_path):
    manifest = _manifest(tmp_path, [True] * 8 + [False] * 2)
    budgets = _budgets(tmp_path, min_cached_fraction=0.8)
    assert gate.main(["--manifest", str(manifest), "--budgets", str(budgets)]) == 0


def test_committed_budget_has_a_warm_rerun_block():
    document = json.loads(BUDGETS.read_text())
    block = document["warm_rerun"]
    assert 0.0 < block["min_cached_fraction"] <= 1.0
    assert block["max_wall_s"] > 0


def test_empty_manifest_is_a_hard_error(tmp_path):
    path = tmp_path / "BENCH.json"
    path.write_text(json.dumps({"schema": 1, "runs": []}))
    budgets = _budgets(tmp_path)
    with pytest.raises(SystemExit):
        gate.main(["--manifest", str(path), "--budgets", str(budgets)])
