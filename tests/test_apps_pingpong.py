"""Pingpong application tests against the paper's Figures 3/5/6/7 and Table 4."""

import pytest

from repro.apps import mpi_pingpong, mpi_stream, tcp_pingpong, tcp_stream
from repro.impls import ALL_IMPLEMENTATIONS, get_implementation
from repro.net import build_pair_testbed
from repro.tcp import TUNED_SYSCTLS
from repro.units import KB, MB, to_usec

SIZES = [1, 1024, 128 * KB, MB, 16 * MB]


@pytest.fixture(scope="module")
def pair():
    net = build_pair_testbed(nodes_per_site=2)
    return net


def cluster_nodes(net):
    return net.clusters["rennes"].nodes[0], net.clusters["rennes"].nodes[1]


def grid_nodes(net):
    return net.clusters["rennes"].nodes[0], net.clusters["nancy"].nodes[0]


def test_tcp_pingpong_latency_table4(pair):
    a, b = cluster_nodes(pair)
    curve = tcp_pingpong(pair, a, b, sizes=[1], repeats=20)
    assert to_usec(curve.points[0].one_way_latency) == pytest.approx(41, abs=2)


def test_mpi_pingpong_latency_all_impls(pair):
    """Table 4, grid column: 5818 / 5819 / 5826 / 5820 us."""
    expected = {"mpich2": 5818, "gridmpi": 5819, "madeleine": 5826, "openmpi": 5820}
    a, b = grid_nodes(pair)
    for name, target in expected.items():
        curve = mpi_pingpong(
            pair, get_implementation(name), a, b, sizes=[1], repeats=5,
            sysctls=TUNED_SYSCTLS,
        )
        assert to_usec(curve.points[0].one_way_latency) == pytest.approx(
            target, abs=3
        ), name


def test_cluster_bandwidth_reaches_940(pair):
    a, b = cluster_nodes(pair)
    curve = mpi_pingpong(
        pair, get_implementation("mpich2"), a, b, sizes=[16 * MB], repeats=10,
        sysctls=TUNED_SYSCTLS,
    )
    assert 880 <= curve.max_bandwidth_mbps <= 945


def test_grid_default_all_impls_below_120(pair):
    """Fig. 3: with default parameters nothing exceeds ~120 Mbps."""
    a, b = grid_nodes(pair)
    for name in ALL_IMPLEMENTATIONS:
        curve = mpi_pingpong(
            pair, get_implementation(name), a, b, sizes=[4 * MB], repeats=8,
        )
        assert curve.max_bandwidth_mbps <= 125, name


def test_grid_tuned_bandwidth(pair):
    """Fig. 7: after full tuning every implementation approaches 900 Mbps
    (OpenMPI a little lower on big messages)."""
    a, b = grid_nodes(pair)
    for name in ALL_IMPLEMENTATIONS:
        impl = get_implementation(name).with_eager_threshold(65 * MB)
        impl = impl.with_socket_buffers(4 * MB)
        # 30 round trips: enough for the congestion window to reach steady
        # state (the paper's sweep does 200 per size, sizes ascending).
        curve = mpi_pingpong(
            pair, impl, a, b, sizes=[64 * MB], repeats=30, sysctls=TUNED_SYSCTLS
        )
        low = 700 if name == "openmpi" else 800
        assert low <= curve.max_bandwidth_mbps <= 945, (
            name, curve.max_bandwidth_mbps,
        )


def test_threshold_dip_only_without_tuning(pair):
    """Fig. 6 vs Fig. 7: MPICH2's 256 kB dip disappears once the
    eager/rendezvous threshold is raised."""
    a, b = grid_nodes(pair)
    untuned = mpi_pingpong(
        pair, get_implementation("mpich2"), a, b,
        sizes=[256 * KB, 512 * KB], repeats=80, sysctls=TUNED_SYSCTLS,
    )
    tuned = mpi_pingpong(
        pair, get_implementation("mpich2").with_eager_threshold(65 * MB), a, b,
        sizes=[256 * KB, 512 * KB], repeats=80, sysctls=TUNED_SYSCTLS,
    )
    # The rendezvous handshake costs a WAN round trip at this size.
    assert tuned.bandwidth_at(512 * KB) > 1.4 * untuned.bandwidth_at(512 * KB)


def test_gridmpi_has_no_dip_by_default(pair):
    a, b = grid_nodes(pair)
    curve = mpi_pingpong(
        pair, get_implementation("gridmpi"), a, b,
        sizes=[128 * KB, 256 * KB, 512 * KB], repeats=100, sysctls=TUNED_SYSCTLS,
    )
    # Monotone through the region where others dip (threshold ∞).
    bws = [p.max_bandwidth_mbps for p in curve.points]
    assert bws == sorted(bws)


def test_stream_fig9_shapes(pair):
    """Fig. 9: ~570 Mbps ceiling; GridMPI reaches 500 Mbps around 2 s,
    unpaced implementations around 4 s."""
    a, b = grid_nodes(pair)
    tcp = tcp_stream(pair, a, b, nbytes=MB, count=200, sysctls=TUNED_SYSCTLS)
    peak = max(s.bandwidth_mbps for s in tcp)
    assert 500 <= peak <= 640

    def time_to_500(samples):
        for s in samples:
            if s.bandwidth_mbps >= 500:
                return s.time
        return float("inf")

    # §4.2.3 runs the stream on the tuned stack (untuned MPICH2 would pay
    # a rendezvous handshake per 1 MB message and cap near 320 Mbps).
    grid_mpi = mpi_stream(
        pair, get_implementation("gridmpi"), a, b, nbytes=MB, count=250,
        sysctls=TUNED_SYSCTLS,
    )
    mpich2 = mpi_stream(
        pair,
        get_implementation("mpich2").with_eager_threshold(65 * MB),
        a, b, nbytes=MB, count=350, sysctls=TUNED_SYSCTLS,
    )
    # The MPI streams echo the full 1 MB payload (both directions ramp),
    # so they converge ~2x slower than the one-way calibration; ordering
    # and separation match the paper (GridMPI ~2 s, others ~4 s, scaled).
    t_grid = time_to_500(grid_mpi)
    t_mpich = time_to_500(mpich2)
    assert 1.0 <= t_grid <= 4.5
    assert t_mpich > 1.3 * t_grid
    assert t_mpich <= 10.0


def test_curve_helpers(pair):
    a, b = cluster_nodes(pair)
    curve = tcp_pingpong(pair, a, b, sizes=[1024, 2048], repeats=3)
    assert curve.sizes == [1024, 2048]
    assert curve.bandwidth_at(1024) > 0
    with pytest.raises(KeyError):
        curve.bandwidth_at(4096)
