"""Tests for unit helpers and the RNG registry."""

import numpy as np
import pytest

from repro.sim import RngRegistry
from repro.units import (
    GB,
    KB,
    MB,
    Gbps,
    Mbps,
    bytes_per_second,
    fmt_bytes,
    fmt_rate,
    fmt_time,
    goodput_mbps,
    kb,
    log2_sizes,
    mb,
    msec,
    parse_size,
    to_msec,
    to_usec,
    transfer_seconds,
    usec,
)


def test_byte_constants():
    assert KB == 1024
    assert MB == 1024**2
    assert GB == 1024**3
    assert kb(128) == 131072
    assert mb(4) == 4194304


def test_rates():
    assert Mbps(940) == 940e6
    assert Gbps(1) == 1e9
    assert bytes_per_second(Gbps(1)) == 125e6


def test_times():
    assert usec(41) == pytest.approx(41e-6)
    assert msec(11.6) == pytest.approx(0.0116)
    assert to_usec(41e-6) == pytest.approx(41)
    assert to_msec(0.0116) == pytest.approx(11.6)


def test_transfer_seconds():
    # 1 MB over 1 Gbps = 8.388 ms of serialisation.
    assert transfer_seconds(MB, Gbps(1)) == pytest.approx(8.388608e-3)


def test_transfer_seconds_zero_rate():
    with pytest.raises(ValueError):
        transfer_seconds(100, 0)


def test_goodput():
    assert goodput_mbps(MB, 8.388608e-3) == pytest.approx(1000.0, rel=1e-6)
    assert goodput_mbps(1, 0) == float("inf")


def test_fmt_bytes():
    assert fmt_bytes(1) == "1"
    assert fmt_bytes(1024) == "1k"
    assert fmt_bytes(131072) == "128k"
    assert fmt_bytes(4 * MB) == "4M"
    assert fmt_bytes(GB) == "1G"
    assert fmt_bytes(1536) == "1.5k"


def test_fmt_rate():
    assert fmt_rate(940e6) == "940.0 Mbps"
    assert fmt_rate(1e9) == "1.00 Gbps"
    assert fmt_rate(5e3) == "5.0 kbps"
    assert fmt_rate(12) == "12.0 bps"


def test_fmt_time():
    assert fmt_time(2.5) == "2.50 s"
    assert fmt_time(5.8e-3) == "5.800 ms"
    assert fmt_time(41e-6) == "41.0 us"
    assert fmt_time(3e-9) == "3.0 ns"


def test_parse_size():
    assert parse_size("128k") == 131072
    assert parse_size("4MB") == 4 * MB
    assert parse_size("64M") == 64 * MB
    assert parse_size("512") == 512
    assert parse_size("1g") == GB
    with pytest.raises(ValueError):
        parse_size("many")


def test_parse_fmt_roundtrip():
    for size in log2_sizes(KB, 64 * MB):
        assert parse_size(fmt_bytes(size)) == size


def test_log2_sizes():
    assert log2_sizes(1024, 8192) == [1024, 2048, 4096, 8192]
    with pytest.raises(ValueError):
        log2_sizes(0, 10)
    with pytest.raises(ValueError):
        log2_sizes(100, 10)


def test_rng_registry_reproducible():
    a = RngRegistry(seed=7).stream("x").random(5)
    b = RngRegistry(seed=7).stream("x").random(5)
    np.testing.assert_array_equal(a, b)


def test_rng_registry_streams_independent():
    rngs = RngRegistry(seed=7)
    a = rngs.stream("a").random(5)
    b = rngs.stream("b").random(5)
    assert not np.array_equal(a, b)


def test_rng_registry_caches_streams():
    rngs = RngRegistry(seed=7)
    assert rngs.stream("a") is rngs.stream("a")


def test_rng_registry_seed_changes_streams():
    a = RngRegistry(seed=1).stream("x").random(5)
    b = RngRegistry(seed=2).stream("x").random(5)
    assert not np.array_equal(a, b)


def test_rng_registry_reset():
    rngs = RngRegistry(seed=7)
    first = rngs.stream("x")
    draw1 = first.random(3)
    rngs.reset()
    second = rngs.stream("x")
    assert first is not second
    np.testing.assert_array_equal(draw1, second.random(3))
