"""Per-rule fixtures for the determinism/unit-safety linter.

Each rule family gets positive snippets (must flag), negative snippets
(must stay silent) and a pragma-suppressed variant.  The snippets are
linted as strings, never written to disk, so the repo-wide lint gate in
conftest never sees them.
"""

import textwrap

import pytest

from repro.analysis.linter import RULE_CATALOG, Linter, lint_paths, lint_source, render_report


def rules_of(source, **kwargs):
    violations = lint_source(textwrap.dedent(source), **kwargs)
    return [v.rule for v in violations]


# ---------------------------------------------------------------------------
# DET: nondeterminism sources
# ---------------------------------------------------------------------------
class TestDetRules:
    def test_stdlib_random_flagged(self):
        assert "DET001" in rules_of(
            """
            import random

            def jitter():
                return random.random() * 2
            """
        )

    def test_registry_stream_not_flagged(self):
        assert rules_of(
            """
            from repro.sim.rng import RngRegistry

            def jitter(rngs: RngRegistry):
                return rngs.stream("net.jitter").uniform()
            """
        ) == []

    @pytest.mark.parametrize(
        "call", ["time.time()", "time.perf_counter()", "time.monotonic()"]
    )
    def test_wall_clock_flagged(self, call):
        assert "DET002" in rules_of(
            f"""
            import time

            def stamp():
                return {call}
            """
        )

    def test_env_now_not_flagged(self):
        assert rules_of(
            """
            def stamp(env):
                return env.now
            """
        ) == []

    def test_datetime_now_flagged(self):
        assert "DET003" in rules_of(
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """
        )

    def test_os_urandom_flagged(self):
        assert "DET004" in rules_of(
            """
            import os

            def token():
                return os.urandom(8)
            """
        )

    def test_numpy_rng_outside_registry_flagged(self):
        assert "DET005" in rules_of(
            """
            import numpy as np

            def data():
                return np.random.default_rng(42).uniform(size=8)
            """
        )

    def test_numpy_rng_aliased_import_flagged(self):
        assert "DET005" in rules_of(
            """
            from numpy.random import default_rng

            def data():
                return default_rng().uniform(size=8)
            """
        )

    def test_set_iteration_scheduling_flagged(self):
        assert "DET006" in rules_of(
            """
            def reschedule(env, flows):
                for flow in set(flows):
                    env.timeout(flow.eta)
            """
        )

    def test_sorted_iteration_not_flagged(self):
        assert rules_of(
            """
            def reschedule(env, flows):
                for flow in sorted(set(flows), key=lambda f: f.uid):
                    env.timeout(flow.eta)
            """
        ) == []

    def test_set_iteration_without_scheduling_not_flagged(self):
        assert rules_of(
            """
            def total(flows):
                acc = 0.0
                for flow in set(flows):
                    acc += flow.remaining_bits
                return acc
            """
        ) == []

    def test_pragma_suppresses(self):
        assert rules_of(
            """
            import numpy as np

            def data():
                return np.random.default_rng(42).uniform(size=8)  # lint: disable=DET005
            """
        ) == []

    def test_pragma_is_rule_specific(self):
        # a pragma for a different rule must not suppress DET005
        assert "DET005" in rules_of(
            """
            import numpy as np

            def data():
                return np.random.default_rng(42).uniform(size=8)  # lint: disable=DET001
            """
        )


# ---------------------------------------------------------------------------
# UNIT: bytes vs bits/s, float time equality
# ---------------------------------------------------------------------------
class TestUnitRules:
    def test_raw_literal_rate_flagged(self):
        assert "UNIT001" in rules_of(
            """
            def build(net):
                return net.add_link(capacity_bps=1000000000)
            """
        )

    def test_units_helper_rate_not_flagged(self):
        assert rules_of(
            """
            from repro.units import Gbps

            def build(net):
                return net.add_link(capacity_bps=Gbps(1))
            """
        ) == []

    def test_small_rate_literal_not_flagged(self):
        # sub-1024 literals are assumed intentional (e.g. testing edge cases)
        assert rules_of(
            """
            def build(net):
                return net.add_link(capacity_bps=100)
            """
        ) == []

    def test_mbps_into_byte_position_flagged(self):
        assert "UNIT002" in rules_of(
            """
            from repro.units import Mbps

            def send(comm):
                yield from comm.allreduce(None, nbytes=Mbps(30), op=None)
            """
        )

    def test_size_helper_into_byte_position_not_flagged(self):
        assert rules_of(
            """
            from repro.units import mb

            def send(comm):
                yield from comm.allreduce(None, nbytes=mb(30), op=None)
            """
        ) == []

    def test_rate_expression_into_byte_position_flagged(self):
        assert "UNIT002" in rules_of(
            """
            from repro.units import Mbps

            def configure(sock):
                sock.setopt(rcvbuf=Mbps(940) * 0.0208)
            """
        )

    def test_float_equality_on_sim_time_flagged(self):
        assert "UNIT003" in rules_of(
            """
            def wait_until(env, deadline):
                return env.now == deadline
            """
        )

    def test_float_equality_via_wtime_flagged(self):
        assert "UNIT003" in rules_of(
            """
            def check(ctx, start_time):
                return ctx.wtime() == start_time
            """
        )

    def test_time_zero_check_not_flagged(self):
        assert rules_of(
            """
            def at_origin(env):
                return env.now == 0
            """
        ) == []

    def test_time_inequality_not_flagged(self):
        assert rules_of(
            """
            def overdue(env, deadline):
                return env.now > deadline
            """
        ) == []

    def test_pragma_suppresses_unit(self):
        assert rules_of(
            """
            def build(net):
                return net.add_link(capacity_bps=1000000000)  # lint: disable=UNIT001
            """
        ) == []


# ---------------------------------------------------------------------------
# SIM: engine-contract misuse
# ---------------------------------------------------------------------------
class TestSimRules:
    def test_return_pending_event_flagged(self):
        assert "SIM001" in rules_of(
            """
            def proc(env):
                yield env.timeout(1.0)
                return env.timeout(2.0)
            """
        )

    def test_yield_then_plain_return_not_flagged(self):
        assert rules_of(
            """
            def proc(env):
                value = yield env.timeout(1.0)
                return value
            """
        ) == []

    def test_non_generator_factory_not_flagged(self):
        # Environment.timeout itself returns a Timeout; that is fine
        assert rules_of(
            """
            def timeout(self, delay):
                return Timeout(self, delay)
            """
        ) == []

    def test_double_trigger_flagged(self):
        assert "SIM002" in rules_of(
            """
            def finish(event):
                event.succeed(1)
                event.succeed(2)
            """
        )

    def test_branched_trigger_not_flagged(self):
        assert rules_of(
            """
            def finish(event, ok):
                if ok:
                    event.succeed(1)
                else:
                    event.fail(ValueError("no"))
            """
        ) == []

    def test_bare_except_flagged(self):
        assert "SIM003" in rules_of(
            """
            def drive(proc):
                try:
                    next(proc)
                except:
                    pass
            """
        )

    def test_typed_except_not_flagged(self):
        assert rules_of(
            """
            def drive(proc):
                try:
                    next(proc)
                except StopIteration:
                    pass
            """
        ) == []


# ---------------------------------------------------------------------------
# pragma handling: # repro: noqa=..., function scope, staleness
# ---------------------------------------------------------------------------
class TestPragmas:
    def test_repro_noqa_spelling_suppresses(self):
        assert rules_of(
            """
            import random

            def jitter():
                return random.random()  # repro: noqa=DET001
            """
        ) == []

    def test_multi_rule_comma_list(self):
        # one pragma, two rules firing on the same line: both suppressed
        assert rules_of(
            """
            import random, time

            def f():
                return random.random() + time.time()  # repro: noqa=DET001,DET002
            """
        ) == []

    def test_comma_list_leaves_other_rules_alone(self):
        assert rules_of(
            """
            import random, os

            def f():
                return (random.random(), os.urandom(4))  # repro: noqa=DET001,DET002
            """
        ) == ["DET004", "NOQA001"]  # DET002 in the list never fires -> stale

    def test_function_scope_pragma_on_def_line(self):
        # pragma on the def line covers the whole body
        assert rules_of(
            """
            import random

            def jitter():  # repro: noqa=DET001
                a = random.random()
                b = random.random()
                return a + b
            """
        ) == []

    def test_function_scope_pragma_on_decorator_line(self):
        assert rules_of(
            """
            import functools
            import random

            @functools.lru_cache  # repro: noqa=DET001
            def jitter():
                return random.random()
            """
        ) == []

    def test_function_scope_pragma_does_not_leak_past_function(self):
        assert rules_of(
            """
            import random

            def covered():  # repro: noqa=DET001
                return random.random()

            def uncovered():
                return random.random()
            """
        ) == ["DET001"]

    def test_stale_pragma_reported(self):
        # the pragma'd rule never fires: the pragma itself is the finding
        violations = lint_source(
            textwrap.dedent(
                """
                def clean():
                    return 1  # repro: noqa=DET001
                """
            )
        )
        assert [v.rule for v in violations] == ["NOQA001"]
        assert "DET001" in violations[0].message

    def test_unknown_rule_pragma_reported(self):
        violations = lint_source("x = 1  # repro: noqa=NOPE999\n")
        assert [v.rule for v in violations] == ["NOQA001"]
        assert "unknown rule" in violations[0].message

    def test_stale_check_skipped_for_passes_that_did_not_run(self):
        # a DET pragma cannot be judged stale when only UNIT rules ran
        from repro.analysis.passes import UnitSafetyPass

        linter = Linter(passes=[UnitSafetyPass])
        assert linter.lint_source("x = 1  # repro: noqa=DET001\n") == []

    def test_used_pragma_not_stale_under_select(self):
        # select narrows the *report*; a pragma whose rule fires is used
        # even when that rule is deselected
        source = textwrap.dedent(
            """
            import random

            def f():
                return random.random()  # repro: noqa=DET001
            """
        )
        assert Linter(select=["NOQA001"]).lint_source(source) == []

    def test_legacy_spelling_still_works(self):
        assert rules_of(
            """
            import random

            def f():
                return random.random()  # lint: disable=DET001
            """
        ) == []


# ---------------------------------------------------------------------------
# driver behaviour
# ---------------------------------------------------------------------------
class TestDriver:
    def test_select_restricts_rules(self):
        source = textwrap.dedent(
            """
            import random

            def f(event):
                try:
                    return random.random()
                except:
                    event.succeed(1)
                    event.succeed(2)
            """
        )
        only_det = Linter(select=["DET001"]).lint_source(source)
        assert {v.rule for v in only_det} == {"DET001"}
        ignored = Linter(ignore=["DET001", "SIM003"]).lint_source(source)
        assert {v.rule for v in ignored} == {"SIM002"}

    def test_violation_carries_location_and_hint(self):
        source = "import random\n\n\nx = random.random()\n"
        (violation,) = lint_source(source, path="fixture.py")
        assert violation.path == "fixture.py"
        assert violation.line == 4
        assert violation.rule == "DET001"
        assert violation.hint
        assert "fixture.py:4: DET001" in violation.render()

    def test_syntax_error_reported_not_raised(self):
        (violation,) = lint_source("def broken(:\n")
        assert violation.rule == "PARSE"

    def test_rule_catalog_complete(self):
        expected = {
            "DET001", "DET002", "DET003", "DET004", "DET005", "DET006",
            "UNIT001", "UNIT002", "UNIT003",
            "SIM001", "SIM002", "SIM003",
            "DIM001", "DIM002", "DIM003", "DIM004", "DIM005",
            "SCHED001", "SCHED002", "SCHED003",
            "NOQA001",
        }
        assert set(RULE_CATALOG) == expected

    def test_repo_lints_clean(self):
        violations = lint_paths()
        assert violations == [], render_report(violations)

    def test_render_report_clean(self):
        assert render_report([]) == "repro lint: clean"
