"""Tests for the extension implementations (MPICH-G2, MPICH-VMI) and the
multi-stream transport."""

import pytest

from repro.errors import MpiError
from repro.impls import (
    ALL_IMPLEMENTATIONS,
    EXTENDED_IMPLEMENTATIONS,
    get_implementation,
)
from repro.mpi import MpiJob
from repro.mpi.transport import MultiStreamLink, Transport
from repro.net import build_pair_testbed
from repro.tcp import TUNED_SYSCTLS
from repro.units import MB, to_usec
from tests.conftest import make_grid_job


def test_extended_registry():
    assert set(EXTENDED_IMPLEMENTATIONS) == set(ALL_IMPLEMENTATIONS) | {
        "mpichg2", "mpichvmi",
    }
    assert get_implementation("g2").name == "mpichg2"
    assert get_implementation("VMI").name == "mpichvmi"
    # the benchmarked set stays the paper's four
    assert "mpichg2" not in ALL_IMPLEMENTATIONS


def test_g2_model_fields():
    g2 = get_implementation("mpichg2")
    assert g2.parallel_streams == 4
    assert g2.stream_threshold == MB
    assert g2.collectives["bcast"] == "hierarchical"
    # Globus stack: the largest latency overhead of the set
    assert g2.overhead_lan > ALL_IMPLEMENTATIONS["madeleine"].overhead_lan


def test_g2_small_messages_single_stream():
    """Striping must not touch small messages (latency would suffer)."""
    job = make_grid_job(impl=get_implementation("mpichg2"), nprocs=2)

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(1, nbytes=1)
        else:
            yield from ctx.comm.recv(0)
            return ctx.wtime()

    result = job.run(program)
    # one-way = 5812 us TCP + 30 us Globus overhead
    assert to_usec(result.returns[1]) == pytest.approx(5842, abs=3)


def test_g2_parallel_streams_beat_single_stream_on_cold_path():
    """A big message on a cold WAN path: 4 windows ramp in parallel."""

    def first_transfer_time(impl):
        job = make_grid_job(impl=impl, nprocs=2)

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(1, nbytes=32 * MB)
            else:
                yield from ctx.comm.recv(0)
                return ctx.wtime()

        return job.run(program).returns[1]

    import dataclasses

    g2 = get_implementation("mpichg2").with_eager_threshold(65 * MB)
    single = dataclasses.replace(g2, parallel_streams=1)
    t_striped = first_transfer_time(g2)
    t_single = first_transfer_time(single)
    assert t_striped < 0.7 * t_single


def test_multistream_preserves_message_integrity():
    """Striping is a transport detail: payloads and ordering survive."""
    job = make_grid_job(impl=get_implementation("mpichg2"), nprocs=2)
    got = []

    def program(ctx):
        if ctx.rank == 0:
            for i in range(3):
                yield from ctx.comm.send(1, nbytes=4 * MB, tag=1, payload=i)
        else:
            for _ in range(3):
                payload, _ = yield from ctx.comm.recv(0, 1)
                got.append(payload)

    job.run(program)
    assert got == [0, 1, 2]


def test_multistream_validation():
    net = build_pair_testbed(nodes_per_site=1)
    with pytest.raises(MpiError):
        MultiStreamLink([], net.clusters["rennes"].nodes[0], threshold=0)
    from repro.tcp.connection import Fabric, TcpOptions
    from repro.sim import Environment

    env = Environment()
    fabric = Fabric(env, net)
    with pytest.raises(MpiError):
        Transport(fabric, net.clusters["rennes"].nodes[:1], TcpOptions(),
                  parallel_streams=0)


def test_vmi_hierarchical_bcast_correct():
    """MPICH-VMI's hierarchical broadcast delivers correct data over a
    split placement."""
    import numpy as np

    job = make_grid_job(impl=get_implementation("mpichvmi"), nprocs=8)
    data = np.arange(5000.0)

    def program(ctx):
        payload = data.copy() if ctx.rank == 3 else None
        result = yield from ctx.comm.bcast(payload, nbytes=data.nbytes, root=3)
        np.testing.assert_array_equal(np.asarray(result).reshape(-1), data)
        return True

    assert all(job.run(program).returns)


def test_hierarchical_bcast_fewer_wan_crossings():
    """Topology-aware broadcast crosses the WAN once per remote site.

    On two sites a binomial tree's critical path happens to include only
    one WAN hop too; on the paper's *four-site* ray2mesh testbed the
    binomial chain crosses the WAN twice or more, so a small broadcast
    pays ~2 one-way delays where the hierarchical algorithm pays one."""
    from repro.net import build_ray2mesh_testbed

    def wan_bcast_time(impl_name):
        impl = get_implementation(impl_name)
        net = build_ray2mesh_testbed(nodes_per_site=8)
        placement = [n for s in sorted(net.clusters) for n in net.clusters[s].nodes]
        job = MpiJob(net, impl, placement, sysctls=TUNED_SYSCTLS)

        def program(ctx):
            t0 = ctx.wtime()
            yield from ctx.comm.bcast(None, nbytes=1024, root=0)
            return ctx.wtime() - t0

        return max(job.run(program).returns)

    binomial = wan_bcast_time("mpich2")
    hierarchical = wan_bcast_time("mpichvmi")
    # ~10 ms (one worst-path hop) vs ~17 ms (two hops)
    assert hierarchical < 0.7 * binomial
