"""ray2mesh tests against the paper's Tables 6 and 7 (reduced scale)."""

import pytest

from repro.apps import run_ray2mesh
from repro.apps.ray2mesh import RAYS_PER_BLOCK
from repro.errors import WorkloadError
from repro.impls import get_implementation
from repro.tcp import TUNED_SYSCTLS

IMPL = get_implementation("mpich2")

# Reduced scale for tests: 100k rays (the benchmarks run the full 1M).
SCALE = dict(total_rays=100_000, sysctls=TUNED_SYSCTLS)


@pytest.fixture(scope="module")
def run_rennes():
    return run_ray2mesh(IMPL, master_site="rennes", **SCALE)


def test_all_rays_computed(run_rennes):
    assert run_rennes.total_rays == 100_000


def test_sophia_computes_most(run_rennes):
    """Table 6: Sophia (fastest cluster) computes the most rays, Nancy
    (slowest) the fewest."""
    rays = run_rennes.rays_per_cluster
    assert rays["sophia"] == max(rays.values())
    assert rays["nancy"] == min(rays.values())
    # Sophia's advantage is ~20-30 % (Table 6: ~36.5k vs ~29.5k per node).
    assert 1.1 <= rays["sophia"] / rays["nancy"] <= 1.5


def test_phase_times_positive(run_rennes):
    assert run_rennes.comp_time > 0
    assert run_rennes.merge_time > 0
    assert run_rennes.total_time > run_rennes.comp_time + run_rennes.merge_time


def test_master_placement_insensitive():
    """Table 7: total time barely depends on the master's location (the
    paper's conclusion: placement does not matter for this application)."""
    totals = {}
    for site in ("nancy", "sophia"):
        result = run_ray2mesh(IMPL, master_site=site, **SCALE)
        totals[site] = result.total_time
    spread = max(totals.values()) / min(totals.values())
    assert spread < 1.05


def test_computing_time_placement_insensitive():
    comps = [
        run_ray2mesh(IMPL, master_site=site, **SCALE).comp_time
        for site in ("rennes", "toulouse")
    ]
    assert max(comps) / min(comps) < 1.05


def test_invalid_master_site():
    with pytest.raises(WorkloadError):
        run_ray2mesh(IMPL, master_site="atlantis", **SCALE)


def test_invalid_ray_counts():
    with pytest.raises(WorkloadError):
        run_ray2mesh(IMPL, total_rays=0)
    with pytest.raises(WorkloadError):
        run_ray2mesh(IMPL, rays_per_block=0)


def test_block_constant_matches_paper():
    assert RAYS_PER_BLOCK == 1000
