"""Span analytics (``repro.obs.aggregate`` / ``repro.obs.flame``).

Contracts under test:

* episode splitting at ``mpi.job.begin`` markers (jobs restart the
  virtual clock, so containment only makes sense per episode);
* containment-forest building over completion-ordered records, including
  the zero-duration-span boundary rule;
* tick-exact self/cumulative frame accounting and collapsed stacks;
* the site-pair WAN matrix over site-tagged spans;
* the critical-path walk (descend into the last-finishing child);
* renderer determinism (collapsed text and SVG);
* permutation invariance of every aggregate in the payload merge order
  (the property that makes serial and ``--jobs N`` campaigns agree);
* the new NPB phase spans exist, nest the collectives, and do not
  perturb the simulation;
* ``explain fig10`` renders deterministically and names the dominant
  phase and top WAN pair.
"""

import json
import multiprocessing

import pytest

from repro.obs import TelemetryConfig, merge_payloads
from repro.obs.aggregate import (
    Frame,
    build_forest,
    collapsed_stacks,
    critical_path,
    frame_stats,
    job_makespans,
    npb_phase_totals,
    rollup,
    site_pair_matrix,
    split_episodes,
    ticks,
)
from repro.obs.flame import render_collapsed, render_svg
from repro.obs.runtime import session

from tests.conftest import make_cluster_job, make_grid_job

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="pool tests require the fork start method",
)


def _begin(impl="openmpi", nprocs=2):
    return ("i", 0.0, 0.0, "mpi.job.begin", "mpi", "job", {"impl": impl, "nprocs": nprocs})


def _payload(tracks):
    return {
        "schema": 1,
        "config": {"spans": True, "metrics": True},
        "tracks": {name: {"events": list(events)} for name, events in tracks.items()},
    }


#: one job episode in completion order: an allreduce inside a compute
#: phase inside the rank lane, plus the closing whole-job span
_EPISODE = [
    _begin("openmpi"),
    ("X", 1.0, 2.0, "coll.allreduce", "mpi.collective", "rank0", None),
    ("X", 0.0, 4.0, "npb.phase.compute", "npb.phase", "rank0", None),
    ("X", 0.0, 5.0, "mpi.job", "mpi", "job", None),
]


# --- episodes ----------------------------------------------------------------------
def test_split_episodes_cuts_at_job_begin_and_keeps_preamble():
    pre = ("X", 0.0, 1.0, "tcp.transmit", "tcp", "tcp:a", None)
    events = [pre] + _EPISODE + [_begin("mpich2"), ("X", 0.0, 3.0, "mpi.job", "mpi", "job", None)]
    episodes = split_episodes(events)
    assert [e.impl for e in episodes] == ["", "openmpi", "mpich2"]
    assert episodes[0].records == [pre]
    assert len(episodes[1].records) == 3
    assert [e.index for e in episodes] == [0, 1, 2]


def test_split_episodes_drops_empty_episodes():
    events = [_begin("a"), _begin("b"), ("X", 0.0, 1.0, "mpi.job", "mpi", "job", None)]
    episodes = split_episodes(events)
    assert [e.impl for e in episodes] == ["b"]


# --- forest building ---------------------------------------------------------------
def test_build_forest_adopts_contained_suffix_in_completion_order():
    roots = build_forest(_EPISODE)  # merged view: all lanes
    assert [r.name for r in roots] == ["mpi.job"]
    (job,) = roots
    assert [c.name for c in job.children] == ["npb.phase.compute"]
    assert [c.name for c in job.children[0].children] == ["coll.allreduce"]


def test_build_forest_lane_filter_keeps_cross_lane_spans_as_roots():
    roots = build_forest(_EPISODE, lane="rank0")
    assert [r.name for r in roots] == ["npb.phase.compute"]
    assert [c.name for c in roots[0].children] == ["coll.allreduce"]


def test_zero_duration_span_on_a_start_boundary_stays_a_root():
    # The zero-width span completed *before* the phase began (same
    # timestamp): adopting it would claim it happened inside.
    records = [
        ("X", 2.0, 0.0, "coll.barrier", "mpi.collective", "rank0", None),
        ("X", 2.0, 3.0, "npb.phase.compute", "npb.phase", "rank0", None),
    ]
    roots = build_forest(records)
    assert [r.name for r in roots] == ["coll.barrier", "npb.phase.compute"]
    # ... but a zero-duration span strictly inside is adopted.
    records = [
        ("X", 2.5, 0.0, "coll.barrier", "mpi.collective", "rank0", None),
        ("X", 2.0, 3.0, "npb.phase.compute", "npb.phase", "rank0", None),
    ]
    (phase,) = build_forest(records)
    assert [c.name for c in phase.children] == ["coll.barrier"]


# --- frame accounting --------------------------------------------------------------
def test_frame_stats_tick_accounting_is_exact():
    frames = frame_stats(_payload({"t": _EPISODE}))
    compute = frames["npb.phase.compute"]
    assert (compute.calls, compute.cum_ticks, compute.self_ticks) == (1, 4_000_000, 2_000_000)
    leaf = frames["npb.phase.compute;coll.allreduce"]
    assert (leaf.cum_ticks, leaf.self_ticks) == (2_000_000, 2_000_000)
    # Per-lane trees: the job lane's span does not absorb the rank lane.
    assert frames["mpi.job"].self_ticks == 5_000_000
    assert ticks(2.0) == 2_000_000


def test_collapsed_stacks_keep_only_positive_self_ticks():
    events = [
        ("X", 0.0, 2.0, "coll.bcast", "mpi.collective", "rank0", None),
        ("X", 0.0, 2.0, "npb.phase.compute", "npb.phase", "rank0", None),  # self == 0
    ]
    stacks = collapsed_stacks(_payload({"t": events}))
    assert stacks == {"npb.phase.compute;coll.bcast": 2_000_000}


def test_npb_phase_totals_and_makespans_key_on_track_and_impl():
    two_jobs = _EPISODE + [
        _begin("mpich2"),
        ("X", 0.0, 1.5, "npb.phase.compute", "npb.phase", "rank0", None),
        ("X", 0.0, 2.0, "mpi.job", "mpi", "job", None),
    ]
    payload = _payload({"npb/grid16/cg": two_jobs})
    assert npb_phase_totals(payload) == {
        ("npb/grid16/cg", "openmpi", "compute"): 4_000_000,
        ("npb/grid16/cg", "mpich2", "compute"): 1_500_000,
    }
    assert job_makespans(payload) == {
        ("npb/grid16/cg", "openmpi"): 5_000_000,
        ("npb/grid16/cg", "mpich2"): 2_000_000,
    }


# --- WAN matrix --------------------------------------------------------------------
def _wan_events(impl="openmpi"):
    return [
        _begin(impl),
        ("X", 0.0, 0.5, "tcp.transmit", "tcp", "tcp:a->b",
         {"bytes": 1000, "src_site": "rennes", "dst_site": "nancy", "retransmits": 2}),
        ("X", 0.5, 0.25, "tcp.transmit", "tcp", "tcp:a->b",
         {"bytes": 500, "src_site": "rennes", "dst_site": "nancy", "retransmits": 0}),
        ("X", 0.0, 0.1, "rndv.handshake", "mpi.rndv", "rank0->1",
         {"bytes": 1000, "src_site": "rennes", "dst_site": "nancy"}),
        ("X", 0.0, 0.2, "tcp.transmit", "tcp", "tcp:c->c",
         {"bytes": 800, "src_site": "rennes", "dst_site": "rennes", "retransmits": 0}),
    ]


def test_site_pair_matrix_aggregates_transmit_and_handshake_spans():
    matrix = site_pair_matrix(_payload({"t": _wan_events()}))
    wan = matrix[("rennes", "nancy")]
    assert (wan.transfers, wan.bytes, wan.transmit_ticks) == (2, 1500, 750_000)
    assert (wan.retransmits, wan.handshakes, wan.handshake_ticks) == (2, 1, 100_000)
    lan = matrix[("rennes", "rennes")]
    assert (lan.transfers, lan.handshakes) == (1, 0)


def test_site_pair_matrix_impl_filter_selects_episodes():
    events = _wan_events("openmpi") + _wan_events("mpich2")
    payload = _payload({"t": events})
    assert site_pair_matrix(payload, impl="openmpi")[("rennes", "nancy")].transfers == 2
    assert site_pair_matrix(payload)[("rennes", "nancy")].transfers == 4
    assert site_pair_matrix(payload, impl="nonesuch") == {}


# --- critical path -----------------------------------------------------------------
def test_critical_path_descends_into_the_last_finishing_child():
    events = [
        _begin(),
        ("X", 0.0, 3.0, "npb.phase.compute", "npb.phase", "rank0", None),  # ends at 3
        ("X", 1.0, 3.5, "npb.phase.compute", "npb.phase", "rank1", None),  # ends at 4.5
        ("X", 0.0, 5.0, "mpi.job", "mpi", "job", None),
    ]
    chain = critical_path(_payload({"t": events}))
    assert [(hop["name"], hop["lane"], hop["depth"]) for hop in chain] == [
        ("mpi.job", "job", 0),
        ("npb.phase.compute", "rank1", 1),  # the later finisher gates the job
    ]
    assert chain[0]["ticks"] == 5_000_000 and chain[0]["track"] == "t"
    assert critical_path({"schema": 1, "tracks": {}}) == []


# --- rollup ------------------------------------------------------------------------
def test_rollup_summarises_spans_and_wan_pairs():
    payload = _payload({"t": _EPISODE + _wan_events()[1:]})
    summary = rollup(payload, top=2)
    assert summary["spans"] == 7
    assert len(summary["top_self"]) == 2
    assert summary["top_self"][0][0] == "mpi.job"
    assert set(summary["wan"]) == {"rennes->nancy"}  # same-site pairs excluded
    assert summary["wan"]["rennes->nancy"]["bytes"] == 1500
    assert json.dumps(summary)  # manifest-serialisable


# --- renderers ---------------------------------------------------------------------
def test_render_collapsed_is_sorted_and_stable():
    stacks = {"b;c": 2, "a": 1}
    text = render_collapsed(stacks)
    assert text == "a 1\nb;c 2\n"
    assert render_collapsed(dict(reversed(list(stacks.items())))) == text


def test_render_svg_is_deterministic_and_self_contained():
    stacks = collapsed_stacks(_payload({"t": _EPISODE}))
    first = render_svg(stacks, title="t <&>")
    assert first == render_svg(dict(reversed(list(stacks.items()))), title="t <&>")
    assert first.startswith("<svg ") and first.endswith("</svg>\n")
    assert "npb.phase.compute" in first
    assert "t &lt;&amp;&gt;" in first  # titles are escaped
    assert "script" not in first


def test_render_svg_of_an_empty_payload_says_so():
    svg = render_svg({})
    assert "(no spans recorded)" in svg
    assert svg.startswith("<svg ")


# --- permutation invariance (merge order) ------------------------------------------
def test_aggregates_are_invariant_under_merge_order_and_track_collisions():
    # Two shard payloads with one colliding track name: merging [a, b]
    # vs [b, a] concatenates the colliding track's events in a different
    # order, but every aggregate is a keyed sum over episodes — the
    # flamegraph, matrix and rollup must not notice.
    shard_a = _payload({"shared": _EPISODE, "only/a": _wan_events()})
    shard_b = _payload({"shared": _wan_events("mpich2"), "only/b": _EPISODE})
    ab = merge_payloads([shard_a, shard_b])
    ba = merge_payloads([shard_b, shard_a])
    assert ab["tracks"]["shared"]["events"] != ba["tracks"]["shared"]["events"]
    assert collapsed_stacks(ab) == collapsed_stacks(ba)
    assert render_collapsed(collapsed_stacks(ab)) == render_collapsed(collapsed_stacks(ba))
    assert render_svg(collapsed_stacks(ab)) == render_svg(collapsed_stacks(ba))
    assert site_pair_matrix(ab) == site_pair_matrix(ba)
    assert npb_phase_totals(ab) == npb_phase_totals(ba)
    assert rollup(ab) == rollup(ba)
    stats_ab, stats_ba = frame_stats(ab), frame_stats(ba)
    assert {k: (f.calls, f.cum_ticks, f.self_ticks) for k, f in stats_ab.items()} == {
        k: (f.calls, f.cum_ticks, f.self_ticks) for k, f in stats_ba.items()
    }
    assert isinstance(next(iter(stats_ab.values())), Frame)


def test_duplicate_span_names_do_not_collapse_distinct_episodes():
    # The same program run twice by the same impl: calls double, ticks sum.
    events = _EPISODE + _EPISODE
    frames = frame_stats(_payload({"t": events}))
    assert frames["npb.phase.compute"].calls == 2
    assert frames["npb.phase.compute"].cum_ticks == 8_000_000


# --- live instrumentation ----------------------------------------------------------
def _npb_program():
    # A tiny CG-shaped program: phases around a collective.
    from repro.npb.common import phase

    def program(ctx):
        def work():
            # 1 MB: above every eager threshold, so the grid run crosses
            # the WAN with rendezvous + window-limited TCP transfers.
            yield from ctx.comm.allreduce(nbytes=1024 * 1024)

        yield from phase(ctx, "residual", work())

    return program


def test_phase_wrapper_records_spans_and_nests_the_collective():
    job = make_grid_job(impl_name="openmpi", nprocs=2)
    with session(TelemetryConfig(), default_track="npb/grid16/cg") as sess:
        job.run(_npb_program())
    payload = sess.to_payload()
    names = sess.span_names()
    assert names.get("npb.phase.residual", 0) == 2  # one per rank
    stacks = collapsed_stacks(payload)
    assert any(key.startswith("npb.phase.residual;coll.allreduce") for key in stacks)
    totals = npb_phase_totals(payload)
    assert list(totals) == [("npb/grid16/cg", "openmpi", "residual")]
    assert totals[("npb/grid16/cg", "openmpi", "residual")] > 0


def test_phase_wrapper_is_a_passthrough_when_telemetry_is_off():
    from repro.npb.common import phase

    class _Ctx:
        pass

    body = iter([1, 2])
    assert phase(_Ctx(), "compute", body) is body


def test_tcp_and_rndv_spans_carry_site_tags_on_the_grid():
    job = make_grid_job(impl_name="openmpi", nprocs=2)
    with session(TelemetryConfig()) as sess:
        job.run(_npb_program())
    payload = sess.to_payload()
    matrix = site_pair_matrix(payload)
    assert matrix, "no site-tagged spans recorded"
    assert all(src and dst for src, dst in matrix)
    assert any(src != dst for src, dst in matrix), "grid job crossed no site boundary"
    assert sum(cell.transfers for cell in matrix.values()) > 0


def test_job_begin_instant_marks_each_job_with_its_impl():
    job = make_cluster_job(impl_name="mpich2", nprocs=2)
    with session(TelemetryConfig()) as sess:
        job.run(_npb_program())
        job.run(_npb_program())
    (track_data,) = sess.to_payload()["tracks"].values()
    episodes = split_episodes(track_data["events"])
    assert [e.impl for e in episodes] == ["mpich2", "mpich2"]
    assert {e.meta["nprocs"] for e in episodes} == {2}


def test_phase_spans_do_not_perturb_the_event_schedule():
    from repro.sim.core import trace_capture

    def run_once(telemetry):
        job = make_grid_job(impl_name="openmpi", nprocs=2)
        with trace_capture() as hasher:
            if telemetry:
                with session(TelemetryConfig()):
                    job.run(_npb_program())
            else:
                job.run(_npb_program())
        return hasher.hexdigest()

    assert run_once(False) == run_once(True)


# --- explain fig10 + campaign integration ------------------------------------------
def _fig10_style_payload():
    def episode(compute_s, comm_s):
        return [
            _begin("openmpi"),
            ("X", 0.0, compute_s, "npb.phase.compute", "npb.phase", "rank0", None),
            ("X", compute_s, comm_s, "npb.phase.transpose", "npb.phase", "rank0", None),
            ("X", 0.0, compute_s + comm_s, "mpi.job", "mpi", "job", None),
        ]

    payload = _payload(
        {
            "npb/grid16/cg": episode(1.0, 4.0),     # communication-bound on the grid
            "npb/cluster16/cg": episode(1.0, 0.5),
            "npb/grid16/mg": episode(2.0, 1.0),
            "npb/cluster16/mg": episode(2.0, 0.4),
        }
    )
    payload["tracks"]["npb/grid16/cg"]["events"].extend(_wan_events()[1:])
    return payload


def test_explain_fig10_names_dominant_phase_and_top_wan_pair():
    from repro.obs.report import explain_fig10

    payload = _fig10_style_payload()
    first = explain_fig10(payload=payload)
    assert explain_fig10(payload=payload) == first
    assert "Fig. 10 explained" in first
    assert "Diagnosis:" in first
    # cg's grid time is communication-bound: transpose dominates at 80%.
    assert "* cg: dominant phase 'transpose' (80.0% of 5.000 s rank-time)" in first
    assert "* dominant phase overall: cg 'transpose'" in first
    assert "* top WAN site pair: rennes -> nancy (81.0% of all tracked wire time" in first
    assert "x8.00" in first  # grid/cluster ratio of the transpose row


def test_explain_dispatches_fig10_and_rejects_unknown():
    from repro.errors import ReproError
    from repro.obs import report

    seen = {}

    def fake(fast=True, jobs=1, payload=None):
        seen["args"] = (fast, jobs)
        return "ok"

    original = report.explain_fig10
    report.explain_fig10 = fake
    try:
        assert report.explain("fig10", fast=True, jobs=3) == "ok"
    finally:
        report.explain_fig10 = original
    assert seen["args"] == (True, 3)
    with pytest.raises(ReproError):
        report.explain("fig99")


def test_empty_session_exports_are_valid(tmp_path):
    # A traced run that records no spans still produces loadable
    # artifacts: a schema-valid Chrome trace and a headed CSV.
    from repro.obs import (
        render_chrome_trace,
        render_metrics_csv,
        validate_chrome_trace,
    )

    with session(TelemetryConfig()) as sess:
        pass  # telemetry on, nothing instrumented ran
    payload = sess.to_payload()
    assert payload["tracks"] == {}
    document = json.loads(render_chrome_trace(payload, label="empty"))
    assert validate_chrome_trace(document) == []
    assert document["traceEvents"][0]["name"] == "trace_label"
    assert render_metrics_csv(payload) == "track,kind,name,labels,bin,value\n"
    assert render_collapsed(collapsed_stacks(payload)) == ""
    assert "(no spans recorded)" in render_svg(collapsed_stacks(payload))


@needs_fork
def test_flame_outputs_are_byte_identical_serial_vs_parallel(tmp_path):
    from repro.runner import ExperimentSpec, ResultCache, run_campaign

    def outputs(jobs):
        campaign = run_campaign(
            [ExperimentSpec("fig11", fast=True)],
            jobs=jobs,
            cache=ResultCache(root=tmp_path / f"jobs{jobs}", digest="digest-a"),
            telemetry=TelemetryConfig(),
        )
        assert campaign.ok
        payload = campaign.runs[0].telemetry
        stacks = collapsed_stacks(payload)
        return (
            render_collapsed(stacks),
            render_svg(stacks, title="fig11"),
            json.dumps(campaign.runs[0].rollup, sort_keys=True),
        )

    serial = outputs(1)
    parallel = outputs(4)
    assert serial[0] == parallel[0]  # collapsed stacks
    assert serial[1] == parallel[1]  # SVG
    assert serial[2] == parallel[2]  # manifest rollup
    assert "npb.phase." in serial[0]


def test_campaign_rollup_lands_in_the_manifest_entry(tmp_path):
    from repro.runner import ExperimentSpec, ResultCache, run_campaign
    from repro.runner.manifest import campaign_entry

    campaign = run_campaign(
        [ExperimentSpec("fig6", fast=True)],
        cache=ResultCache(root=tmp_path, digest="digest-a"),
        telemetry=TelemetryConfig(),
    )
    run = campaign.runs[0]
    assert run.rollup is not None and run.rollup["spans"] > 0
    assert "rollup" not in run.artifact()  # never cached
    entry = campaign_entry(campaign, label="test")
    assert entry["experiments"]["fig6"]["rollup"] == run.rollup

    untraced = run_campaign(
        [ExperimentSpec("table1", fast=True)],
        cache=ResultCache(root=tmp_path, digest="digest-b"),
    )
    assert untraced.runs[0].rollup is None
    assert "rollup" not in campaign_entry(untraced)["experiments"]["table1"]
