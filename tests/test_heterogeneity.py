"""Tests for the §5 heterogeneity extension: high-speed fabrics for
intra-cluster traffic, TCP for the WAN."""

import pytest

from repro.errors import NetworkConfigError
from repro.impls import get_implementation
from repro.mpi import MpiJob
from repro.mpi.transport import FabricLink
from repro.net import Network
from repro.tcp import TUNED_SYSCTLS
from repro.units import Gbps, MB, msec, to_usec, usec


def myrinet_testbed():
    """Two clusters: Rennes-like with Myrinet, Nancy-like Ethernet-only."""
    net = Network("hetero")
    myri = net.add_cluster(
        "rennes", intra_rtt=usec(58), fabric="myrinet",
        fabric_bps=Gbps(2), fabric_rtt=usec(16),
    )
    myri.add_nodes(4, gflops=1.1)
    net.add_cluster("nancy", intra_rtt=usec(58)).add_nodes(4, gflops=1.0)
    net.set_rtt("rennes", "nancy", msec(11.6))
    return net


def test_fabric_declared_on_nodes():
    net = myrinet_testbed()
    rennes_node = net.clusters["rennes"].nodes[0]
    nancy_node = net.clusters["nancy"].nodes[0]
    assert rennes_node.fabric_tx is not None
    assert rennes_node.fabric_tx.capacity_bps == Gbps(2)
    assert nancy_node.fabric_tx is None


def test_unknown_fabric_rejected():
    net = Network()
    with pytest.raises(NetworkConfigError):
        net.add_cluster("x", fabric="carrier-pigeon")


def test_native_impl_uses_fabric_locally():
    """Madeleine on a Myrinet cluster: ~11 us one-way latency instead of 62."""
    net = myrinet_testbed()
    impl = get_implementation("madeleine")
    job = MpiJob(net, impl, net.clusters["rennes"].nodes[:2], sysctls=TUNED_SYSCTLS)

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(1, nbytes=1)
        else:
            yield from ctx.comm.recv(0)
            return ctx.wtime()

    latency = to_usec(job.run(program).returns[1])
    # fabric one-way (8 us wire + 3 us host) + Madeleine's 21 us overhead
    assert latency == pytest.approx(32, abs=3)
    assert latency < 45  # clearly below the TCP path (41 + overhead)


def test_tcp_only_impl_ignores_fabric():
    """GridMPI (no low-latency network support, Table 1) stays on TCP."""
    net = myrinet_testbed()
    impl = get_implementation("gridmpi")
    job = MpiJob(net, impl, net.clusters["rennes"].nodes[:2], sysctls=TUNED_SYSCTLS)

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(1, nbytes=1)
        else:
            yield from ctx.comm.recv(0)
            return ctx.wtime()

    latency = to_usec(job.run(program).returns[1])
    assert latency == pytest.approx(46, abs=2)  # the Table 4 TCP figure


def test_fabric_bandwidth_2gbps():
    net = myrinet_testbed()
    impl = get_implementation("madeleine").with_eager_threshold(65 * MB)
    job = MpiJob(net, impl, net.clusters["rennes"].nodes[:2], sysctls=TUNED_SYSCTLS)

    def program(ctx):
        if ctx.rank == 0:
            t0 = ctx.wtime()
            yield from ctx.comm.send(1, nbytes=16 * MB)
            yield from ctx.comm.recv(1)
            return 16 * MB * 8 / ((ctx.wtime() - t0) / 2) / 1e6
        yield from ctx.comm.recv(0)
        yield from ctx.comm.send(0, nbytes=16 * MB)

    bandwidth = job.run(program).returns[0]
    assert 1500 <= bandwidth <= 2000  # beyond anything GbE TCP can do


def test_inter_site_still_tcp():
    """Across the WAN even Madeleine falls back to TCP (the paper's
    §2.1.2: Madeleine uses TCP for long distance)."""
    net = myrinet_testbed()
    impl = get_implementation("madeleine")
    placement = [net.clusters["rennes"].nodes[0], net.clusters["nancy"].nodes[0]]
    job = MpiJob(net, impl, placement, sysctls=TUNED_SYSCTLS)

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(1, nbytes=1)
        else:
            yield from ctx.comm.recv(0)
            return ctx.wtime()

    latency = to_usec(job.run(program).returns[1])
    assert latency == pytest.approx(5826, abs=3)  # Table 4's grid value


def test_fabric_speeds_up_local_collectives():
    """An allreduce within the Myrinet cluster: native beats TCP-only."""
    net = myrinet_testbed()
    placement = net.clusters["rennes"].nodes[:4]

    def duration(impl_name):
        impl = get_implementation(impl_name).with_eager_threshold(65 * MB)
        job = MpiJob(net, impl, placement, sysctls=TUNED_SYSCTLS)

        def program(ctx):
            t0 = ctx.wtime()
            yield from ctx.comm.allreduce(None, nbytes=4 * MB)
            return ctx.wtime() - t0

        return max(job.run(program).returns)

    madeleine = duration("madeleine")
    gridmpi = duration("gridmpi")
    assert madeleine < gridmpi


def test_fabric_link_requires_ports():
    net = myrinet_testbed()
    nancy_nodes = net.clusters["nancy"].nodes
    from repro.errors import MpiError
    from repro.net.fluid import FluidNetwork
    from repro.sim import Environment

    fluid = FluidNetwork(Environment())
    with pytest.raises(MpiError):
        FabricLink(fluid, nancy_nodes[0], nancy_nodes[1])
