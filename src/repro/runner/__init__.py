"""Parallel experiment orchestrator with content-addressed result caching.

``repro run --jobs N`` and ``scripts/run_all_experiments.py`` are thin
front-ends over :func:`repro.runner.pool.run_campaign`:

* :mod:`repro.runner.pool` — process-per-task orchestration, shard dedup,
  cost-model (longest-first) dispatch, wall-clock timeouts, bounded
  retries, failure surfacing;
* :mod:`repro.runner.cache` — ``.repro-cache/`` keyed by (task id, fast
  flag, import-closure digest of the task's modules), so editing a leaf
  module only invalidates the shards that import it;
* :mod:`repro.runner.manifest` — the ``BENCH_experiments.json`` timing
  manifest, which doubles as the scheduler's wall-clock history;
* :mod:`repro.runner.index` — the queryable index behind ``repro query``.
"""

from repro.runner.cache import ResultCache, cache_stats, source_digest
from repro.runner.index import build_index, load_index, query_index
from repro.runner.manifest import (
    load_task_estimates,
    record_campaign,
    record_profile,
)
from repro.runner.pool import (
    CampaignResult,
    ExperimentRun,
    ExperimentSpec,
    RunnerPolicy,
    run_campaign,
)

__all__ = [
    "CampaignResult",
    "ExperimentRun",
    "ExperimentSpec",
    "ResultCache",
    "RunnerPolicy",
    "build_index",
    "cache_stats",
    "load_index",
    "load_task_estimates",
    "query_index",
    "record_campaign",
    "record_profile",
    "run_campaign",
    "source_digest",
]
