"""Parallel experiment orchestrator with content-addressed result caching.

``repro run --jobs N`` and ``scripts/run_all_experiments.py`` are thin
front-ends over :func:`repro.runner.pool.run_campaign`:

* :mod:`repro.runner.pool` — process-per-task orchestration, shard dedup,
  wall-clock timeouts, bounded retries, failure surfacing;
* :mod:`repro.runner.cache` — ``.repro-cache/`` keyed by (task id, fast
  flag, source digest of ``src/repro``);
* :mod:`repro.runner.manifest` — the ``BENCH_experiments.json`` timing
  manifest.
"""

from repro.runner.cache import ResultCache, source_digest
from repro.runner.manifest import record_campaign
from repro.runner.pool import (
    CampaignResult,
    ExperimentRun,
    ExperimentSpec,
    RunnerPolicy,
    run_campaign,
)

__all__ = [
    "CampaignResult",
    "ExperimentRun",
    "ExperimentSpec",
    "ResultCache",
    "RunnerPolicy",
    "record_campaign",
    "run_campaign",
    "source_digest",
]
