"""Queryable on-disk index over cached artifacts and run reports.

``repro query fig7`` should answer "what do we already know about fig7,
and where did it come from" without simulating anything.  The index is a
single JSON document (``.repro-cache/index.json``) summarising every
artifact the cache holds plus any ``--out`` report directories it is
pointed at: task id, kind (experiment or shard), fast flag, provenance
(source digest the entry was computed under, wall seconds, trace hash)
and a bag of searchable terms harvested from the result rows
(implementation names, scenarios, benchmarks, sites).

Staleness is detected from the directory listing — (name, mtime, size)
per entry file — so ``repro query`` silently rebuilds after a campaign
without ever re-reading unchanged artifacts' content a second time per
rebuild.  The index is derived data: deleting it is always safe.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Iterable, Optional

from repro.runner.cache import DEFAULT_CACHE_ROOT, RESERVED_NAMES

#: index schema version; bump on shape changes so stale files rebuild
INDEX_SCHEMA = 1

#: index file name inside the cache root
INDEX_NAME = "index.json"

#: row keys whose string values become searchable terms
TERM_KEYS = (
    "impl",
    "implementation",
    "name",
    "label",
    "scenario",
    "benchmark",
    "kernel",
    "site",
    "curve",
    "where",
    "env",
    "env_name",
    "placement",
)

#: terms kept per record — enough for every impl/scenario name, bounded
#: so a pathological artifact cannot bloat the index
MAX_TERMS = 32


@dataclass
class IndexRecord:
    """One indexed artifact."""

    path: str
    task_id: str
    kind: str  # "experiment" | "shard"
    experiment_id: str = ""
    fast: bool = False
    source_digest: str = ""
    wall_s: float = 0.0
    trace_hash: str = ""
    title: str = ""
    paper_ref: str = ""
    terms: list[str] = field(default_factory=list)

    def matches(self, needle: str) -> bool:
        needle = needle.lower()
        haystacks = [
            self.task_id,
            self.experiment_id,
            self.kind,
            self.title,
            self.paper_ref,
            *self.terms,
        ]
        return any(needle in hay.lower() for hay in haystacks)

    def render(self) -> str:
        digest = self.source_digest
        if digest.startswith("closure:"):
            digest = digest[len("closure:") :]
        provenance = (
            f"fast={self.fast}  wall {self.wall_s:.1f}s  "
            f"digest {digest[:12] or '-'}"
        )
        lines = [f"{self.task_id}  [{self.kind}]  {provenance}"]
        if self.title:
            ref = f" ({self.paper_ref})" if self.paper_ref else ""
            lines.append(f"  {self.title}{ref}")
        lines.append(f"  {self.path}")
        return "\n".join(lines)


def _terms_from_rows(rows: Any) -> list[str]:
    terms: list[str] = []
    seen: set[str] = set()
    if not isinstance(rows, list):
        return terms
    for row in rows:
        if not isinstance(row, dict):
            continue
        for key in TERM_KEYS:
            value = row.get(key)
            if isinstance(value, str) and value and value.lower() not in seen:
                seen.add(value.lower())
                terms.append(value)
                if len(terms) >= MAX_TERMS:
                    return terms
    return terms


def _record_from_cache_entry(path: Path, document: dict) -> Optional[IndexRecord]:
    artifact = document.get("artifact")
    if not isinstance(artifact, dict) or "task_id" not in document:
        return None
    kind = artifact.get("kind", "shard")
    record = IndexRecord(
        path=str(path),
        task_id=str(document["task_id"]),
        kind=str(kind),
        fast=bool(document.get("fast", False)),
        source_digest=str(document.get("source_digest", "")),
        wall_s=float(artifact.get("wall_s", 0.0) or 0.0),
        trace_hash=str(artifact.get("trace_hash", "")),
    )
    if kind == "experiment":
        record.experiment_id = str(artifact.get("experiment_id", ""))
        record.title = str(artifact.get("title", ""))
        record.paper_ref = str(artifact.get("paper_ref", ""))
        record.terms = _terms_from_rows(artifact.get("rows"))
    return record


def _record_from_report(path: Path, artifact: dict) -> Optional[IndexRecord]:
    if artifact.get("kind") != "experiment" or "experiment_id" not in artifact:
        return None
    experiment_id = str(artifact["experiment_id"])
    return IndexRecord(
        path=str(path),
        task_id=f"experiment/{experiment_id}",
        kind="report",
        experiment_id=experiment_id,
        fast=bool(artifact.get("fast", False)),
        wall_s=float(artifact.get("wall_s", 0.0) or 0.0),
        trace_hash=str(artifact.get("trace_hash", "")),
        title=str(artifact.get("title", "")),
        paper_ref=str(artifact.get("paper_ref", "")),
        terms=_terms_from_rows(artifact.get("rows")),
    )


def _fingerprint(paths: Iterable[Path]) -> list[list]:
    """(name, mtime, size) per file: the staleness check's ground truth."""
    out = []
    for path in sorted(paths):
        try:
            stat = path.stat()
        except OSError:
            continue
        out.append([path.name, round(stat.st_mtime, 3), stat.st_size])
    return out


def _entry_files(cache_root: Path) -> list[Path]:
    if not cache_root.is_dir():
        return []
    return [
        path
        for path in sorted(cache_root.iterdir())
        if path.is_file()
        and path.suffix == ".json"
        and path.name not in RESERVED_NAMES
    ]


def _report_files(out_dirs: Iterable[Path]) -> list[Path]:
    files: list[Path] = []
    for out_dir in out_dirs:
        json_dir = Path(out_dir) / "json"
        if json_dir.is_dir():
            files.extend(sorted(json_dir.glob("*.json")))
    return files


def build_index(
    cache_root: "Path | str | None" = None,
    out_dirs: Iterable["Path | str"] = (),
) -> dict[str, Any]:
    """Scan the store (and report dirs) into an index document, and write
    it to ``<cache_root>/index.json``."""
    root = Path(cache_root) if cache_root is not None else DEFAULT_CACHE_ROOT
    records: list[IndexRecord] = []
    entry_files = _entry_files(root)
    for path in entry_files:
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue  # corrupt entries are the cache's problem, not ours
        if isinstance(document, dict):
            record = _record_from_cache_entry(path, document)
            if record is not None:
                records.append(record)
    report_files = _report_files(Path(d) for d in out_dirs)
    for path in report_files:
        try:
            artifact = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        if isinstance(artifact, dict):
            record = _record_from_report(path, artifact)
            if record is not None:
                records.append(record)

    records.sort(key=lambda r: (r.kind != "experiment", r.task_id, r.path))
    document = {
        "schema": INDEX_SCHEMA,
        "cache_root": str(root),
        "out_dirs": sorted(str(d) for d in out_dirs),
        "fingerprint": _fingerprint(entry_files + report_files),
        "records": [asdict(record) for record in records],
    }
    if root.is_dir() or records:
        root.mkdir(parents=True, exist_ok=True)
        path = root / INDEX_NAME
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(document, indent=1), encoding="utf-8")
        os.replace(tmp, path)
    return document


def load_index(
    cache_root: "Path | str | None" = None,
    out_dirs: Iterable["Path | str"] = (),
    rebuild: bool = True,
) -> dict[str, Any]:
    """The current index document, rebuilding when missing or stale.

    Stale means the store's (name, mtime, size) listing no longer matches
    the fingerprint captured at build time — the cheap check that makes
    ``repro query`` safe to run right after a campaign.
    """
    root = Path(cache_root) if cache_root is not None else DEFAULT_CACHE_ROOT
    out_dirs = tuple(out_dirs)
    path = root / INDEX_NAME
    document: Optional[dict] = None
    try:
        loaded = json.loads(path.read_text(encoding="utf-8"))
        if isinstance(loaded, dict) and loaded.get("schema") == INDEX_SCHEMA:
            document = loaded
    except (OSError, ValueError):
        document = None
    if document is not None:
        current = _fingerprint(
            _entry_files(root) + _report_files(Path(d) for d in out_dirs)
        )
        requested_dirs = sorted(str(d) for d in out_dirs)
        if (
            document.get("fingerprint") != current
            or document.get("out_dirs", []) != requested_dirs
        ):
            document = None  # stale: the store moved under it
    if document is None:
        if not rebuild:
            return {"schema": INDEX_SCHEMA, "records": [], "fingerprint": []}
        document = build_index(root, out_dirs)
    return document


def query_index(
    pattern: str,
    cache_root: "Path | str | None" = None,
    out_dirs: Iterable["Path | str"] = (),
) -> list[IndexRecord]:
    """Records matching ``pattern`` (case-insensitive substring over task
    id, experiment id, kind, title, paper ref, and harvested terms)."""
    document = load_index(cache_root, out_dirs)
    records = [
        IndexRecord(**raw)
        for raw in document.get("records", [])
        if isinstance(raw, dict)
    ]
    return [record for record in records if record.matches(pattern)]


def render_query(pattern: str, records: list[IndexRecord]) -> str:
    if not records:
        return (
            f"query {pattern!r}: no matches "
            "(nothing indexed yet? run a campaign, or `repro index rebuild`)"
        )
    lines = [
        f"query {pattern!r}: {len(records)} match"
        f"{'' if len(records) == 1 else 'es'}"
    ]
    for record in records:
        lines.append(record.render())
    return "\n".join(lines)


def artifact_text(record: IndexRecord) -> Optional[str]:
    """The rendered report text stored in an indexed artifact, if any."""
    try:
        document = json.loads(Path(record.path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    artifact = document.get("artifact", document) if isinstance(document, dict) else {}
    text = artifact.get("text") if isinstance(artifact, dict) else None
    return text if isinstance(text, str) and text else None
