"""Content-addressed result cache under ``.repro-cache/``.

Cache keys are ``blake2b(task id | fast flag | source digest)`` where the
source digest hashes every ``*.py`` file of the installed ``repro``
package: any source change invalidates every entry, so a cached replay can
never serve results computed by different code.  Entries are small JSON
documents — the same structured artifacts the runner writes per run — so
they double as machine-readable experiment records.

Two task namespaces share the store: ``experiment/<id>`` for whole
experiment results and the shard ``task_id``s of
:class:`repro.experiments.base.ShardSpec` (e.g. ``npb/grid16/ft``).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from pathlib import Path
from typing import Any, Optional

logger = logging.getLogger("repro.runner.cache")

#: default cache root, relative to the invocation directory
DEFAULT_CACHE_ROOT = Path(".repro-cache")

_PACKAGE_ROOT = Path(__file__).resolve().parent.parent  # src/repro


def source_digest(package_root: Optional[Path] = None) -> str:
    """Digest of every ``*.py`` file under the repro package.

    Deterministic: files are folded in sorted relative-path order, with
    path and content separated by NUL bytes so renames change the digest.
    """
    root = Path(package_root) if package_root is not None else _PACKAGE_ROOT
    hasher = hashlib.blake2b(digest_size=16)
    for path in sorted(root.rglob("*.py")):
        hasher.update(path.relative_to(root).as_posix().encode("utf-8"))
        hasher.update(b"\0")
        hasher.update(path.read_bytes())
        hasher.update(b"\0")
    return hasher.hexdigest()


class ResultCache:
    """Load/store JSON artifacts keyed by (task id, fast flag, source digest)."""

    def __init__(
        self,
        root: "Path | str | None" = None,
        digest: Optional[str] = None,
        enabled: bool = True,
    ) -> None:
        self.root = Path(root) if root is not None else DEFAULT_CACHE_ROOT
        self.enabled = enabled
        # Computing the digest walks ~200 files once per cache instance.
        self.digest = digest if digest is not None else source_digest()

    def key(self, task_id: str, fast: bool) -> str:
        material = f"{task_id}|fast={fast}|src={self.digest}"
        return hashlib.blake2b(material.encode("utf-8"), digest_size=16).hexdigest()

    def path(self, task_id: str, fast: bool) -> Path:
        safe = task_id.replace("/", "_")
        return self.root / f"{safe}-{self.key(task_id, fast)}.json"

    def load(self, task_id: str, fast: bool) -> Optional[dict]:
        """The cached artifact, or ``None`` on miss/corruption.

        A corrupted entry (truncated write, malformed JSON, wrong document
        shape) is a *miss*: the bad file is evicted so it cannot shadow the
        recomputed artifact, and a warning is logged.
        """
        if not self.enabled:
            return None
        path = self.path(task_id, fast)
        if not path.exists():
            return None
        try:
            with path.open("r", encoding="utf-8") as fh:
                document = json.load(fh)
        except OSError:
            return None  # unreadable, not necessarily corrupt: leave it
        except ValueError:
            self._evict_corrupt(path, task_id, "malformed JSON")
            return None
        if not isinstance(document, dict) or not isinstance(
            document.get("artifact"), dict
        ):
            self._evict_corrupt(path, task_id, "unexpected document shape")
            return None
        if document.get("task_id") != task_id:  # hash collision paranoia
            return None
        return document["artifact"]

    def _evict_corrupt(self, path: Path, task_id: str, reason: str) -> None:
        try:
            path.unlink()
        except OSError:
            pass  # already gone, or unremovable: the miss still stands
        logger.warning(
            "evicted corrupt cache entry for %r at %s (%s)", task_id, path, reason
        )

    def store(self, task_id: str, fast: bool, artifact: dict[str, Any]) -> Optional[Path]:
        """Write the artifact; returns its path (``None`` when disabled)."""
        if not self.enabled:
            return None
        path = self.path(task_id, fast)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "schema": 1,
            "task_id": task_id,
            "fast": fast,
            "source_digest": self.digest,
            "artifact": artifact,
        }
        # Write-then-rename so a concurrent reader never sees a torn file.
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(document, indent=1), encoding="utf-8")
        os.replace(tmp, path)
        return path
