"""Content-addressed result cache under ``.repro-cache/``.

Cache keys are ``blake2b(task id | fast flag | source digest)`` where the
source digest hashes every ``*.py`` file of the installed ``repro``
package: any source change invalidates every entry, so a cached replay can
never serve results computed by different code.  Entries are small JSON
documents — the same structured artifacts the runner writes per run — so
they double as machine-readable experiment records.

Two task namespaces share the store: ``experiment/<id>`` for whole
experiment results and the shard ``task_id``s of
:class:`repro.experiments.base.ShardSpec` (e.g. ``npb/grid16/ft``).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

logger = logging.getLogger("repro.runner.cache")

#: default cache root, relative to the invocation directory
DEFAULT_CACHE_ROOT = Path(".repro-cache")

_PACKAGE_ROOT = Path(__file__).resolve().parent.parent  # src/repro


def source_digest(package_root: Optional[Path] = None) -> str:
    """Digest of every ``*.py`` file under the repro package.

    Deterministic: files are folded in sorted relative-path order, with
    path and content separated by NUL bytes so renames change the digest.
    """
    root = Path(package_root) if package_root is not None else _PACKAGE_ROOT
    hasher = hashlib.blake2b(digest_size=16)
    for path in sorted(root.rglob("*.py")):
        hasher.update(path.relative_to(root).as_posix().encode("utf-8"))
        hasher.update(b"\0")
        hasher.update(path.read_bytes())
        hasher.update(b"\0")
    return hasher.hexdigest()


class ResultCache:
    """Load/store JSON artifacts keyed by (task id, fast flag, source digest)."""

    def __init__(
        self,
        root: "Path | str | None" = None,
        digest: Optional[str] = None,
        enabled: bool = True,
    ) -> None:
        self.root = Path(root) if root is not None else DEFAULT_CACHE_ROOT
        self.enabled = enabled
        # Computing the digest walks ~200 files once per cache instance.
        self.digest = digest if digest is not None else source_digest()

    def key(self, task_id: str, fast: bool) -> str:
        material = f"{task_id}|fast={fast}|src={self.digest}"
        return hashlib.blake2b(material.encode("utf-8"), digest_size=16).hexdigest()

    def path(self, task_id: str, fast: bool) -> Path:
        safe = task_id.replace("/", "_")
        return self.root / f"{safe}-{self.key(task_id, fast)}.json"

    def load(self, task_id: str, fast: bool) -> Optional[dict]:
        """The cached artifact, or ``None`` on miss/corruption.

        A corrupted entry (truncated write, malformed JSON, wrong document
        shape) is a *miss*: the bad file is evicted so it cannot shadow the
        recomputed artifact, and a warning is logged.
        """
        if not self.enabled:
            return None
        path = self.path(task_id, fast)
        if not path.exists():
            return None
        try:
            with path.open("r", encoding="utf-8") as fh:
                document = json.load(fh)
        except OSError:
            return None  # unreadable, not necessarily corrupt: leave it
        except ValueError:
            self._evict_corrupt(path, task_id, "malformed JSON")
            return None
        if not isinstance(document, dict) or not isinstance(
            document.get("artifact"), dict
        ):
            self._evict_corrupt(path, task_id, "unexpected document shape")
            return None
        if document.get("task_id") != task_id:  # hash collision paranoia
            return None
        return document["artifact"]

    def _evict_corrupt(self, path: Path, task_id: str, reason: str) -> None:
        try:
            path.unlink()
        except OSError:
            pass  # already gone, or unremovable: the miss still stands
        logger.warning(
            "evicted corrupt cache entry for %r at %s (%s)", task_id, path, reason
        )

    def store(self, task_id: str, fast: bool, artifact: dict[str, Any]) -> Optional[Path]:
        """Write the artifact; returns its path (``None`` when disabled)."""
        if not self.enabled:
            return None
        path = self.path(task_id, fast)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "schema": 1,
            "task_id": task_id,
            "fast": fast,
            "source_digest": self.digest,
            "artifact": artifact,
        }
        # Write-then-rename so a concurrent reader never sees a torn file.
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(document, indent=1), encoding="utf-8")
        os.replace(tmp, path)
        return path

    def prune(
        self,
        max_bytes: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
        dry_run: bool = False,
    ) -> "PruneReport":
        """Prune the store (see module-level :func:`prune_cache`)."""
        return prune_cache(
            self.root,
            max_bytes=max_bytes,
            max_age_seconds=max_age_seconds,
            dry_run=dry_run,
        )


@dataclass
class PruneReport:
    """What a cache prune did (or would do, under ``dry_run``)."""

    root: Path
    dry_run: bool = False
    kept: int = 0
    kept_bytes: int = 0
    removed: list[Path] = field(default_factory=list)
    removed_bytes: int = 0
    #: orphaned write-then-rename temp files cleaned up alongside
    removed_tmp: int = 0

    def render(self) -> str:
        verb = "would remove" if self.dry_run else "removed"
        lines = [
            f"cache prune {self.root}: {verb} {len(self.removed)} entr"
            f"{'y' if len(self.removed) == 1 else 'ies'} "
            f"({self.removed_bytes} bytes), kept {self.kept} "
            f"({self.kept_bytes} bytes)"
        ]
        if self.removed_tmp:
            lines.append(f"  {verb} {self.removed_tmp} stray .tmp file(s)")
        for path in self.removed:
            lines.append(f"  {verb} {path.name}")
        return "\n".join(lines)


#: default size cap for ``repro cache prune`` (256 MiB)
DEFAULT_CACHE_CAP_BYTES = 256 * 1024 * 1024


def prune_cache(
    root: "Path | str | None" = None,
    max_bytes: Optional[int] = None,
    max_age_seconds: Optional[float] = None,
    dry_run: bool = False,
) -> PruneReport:
    """Bound the cache: drop stale-by-age entries, then oldest-first to a
    size cap.

    The store is content-addressed against the *current* source digest, so
    every source change strands the previous digest's entries forever —
    unbounded growth unless pruned.  Eviction is by modification time,
    oldest first, with the file name as a deterministic tie-break; stray
    ``*.tmp<pid>`` files from interrupted writes are always removed.  With
    ``dry_run`` nothing is deleted and the report lists the candidates.
    """
    report = PruneReport(
        root=Path(root) if root is not None else DEFAULT_CACHE_ROOT,
        dry_run=dry_run,
    )
    if not report.root.is_dir():
        return report
    if max_bytes is None and max_age_seconds is None:
        max_bytes = DEFAULT_CACHE_CAP_BYTES

    entries: list[tuple[float, str, Path, int]] = []
    for path in sorted(report.root.iterdir()):
        if not path.is_file():
            continue
        if ".tmp" in path.suffix:
            report.removed_tmp += 1
            if not dry_run:
                _remove_quietly(path)
            continue
        if path.suffix != ".json":
            continue
        try:
            stat = path.stat()
        except OSError:
            continue
        entries.append((stat.st_mtime, path.name, path, stat.st_size))
    entries.sort()  # oldest first; name breaks mtime ties deterministically

    # The prune clock is host wall time by design: cache entry ages are an
    # operational property of the store, not simulation state.
    now = time.time()  # repro: noqa=DET002
    doomed: list[tuple[Path, int]] = []
    survivors: list[tuple[float, str, Path, int]] = []
    for entry in entries:
        mtime, _name, path, size = entry
        if max_age_seconds is not None and now - mtime > max_age_seconds:
            doomed.append((path, size))
        else:
            survivors.append(entry)
    if max_bytes is not None:
        total = sum(size for _, _, _, size in survivors)
        while survivors and total > max_bytes:
            mtime, _name, path, size = survivors.pop(0)
            doomed.append((path, size))
            total -= size

    for path, size in doomed:
        report.removed.append(path)
        report.removed_bytes += size
        if not dry_run:
            _remove_quietly(path)
    report.kept = len(survivors)
    report.kept_bytes = sum(size for _, _, _, size in survivors)
    return report


def _remove_quietly(path: Path) -> None:
    try:
        path.unlink()
    except OSError:
        pass  # raced with another pruner: the entry is gone either way
