"""Content-addressed result cache under ``.repro-cache/``.

Cache keys are ``blake2b(task id | fast flag | source digest | shard
spec | salt)``.  The source digest is *dependency-aware*: when the task's
root module is known (every registry experiment and every shard runner),
only the module's import closure is digested
(:class:`repro.analysis.imports.DependencyDigests`), so touching
``obs/report.py`` leaves every simulation shard warm while touching
``tcp/congestion.py`` — which every simulated byte flows through —
correctly invalidates them all.  Tasks without a known root (tests
injecting ad-hoc experiments) fall back to the whole-tree digest; a
pinned ``digest=`` disables closures entirely, preserving the historical
"one digest per store" semantics tests rely on.  Entries are small JSON
documents — the same structured artifacts the runner writes per run — so
they double as machine-readable experiment records.

Two task namespaces share the store: ``experiment/<id>`` for whole
experiment results and the shard ``task_id``s of
:class:`repro.experiments.base.ShardSpec` (e.g. ``npb/grid16/ft``).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:
    from repro.analysis.imports import DependencyDigests

logger = logging.getLogger("repro.runner.cache")

#: default cache root, relative to the invocation directory
DEFAULT_CACHE_ROOT = Path(".repro-cache")

#: files in the cache root that are not artifact entries
RESERVED_NAMES = ("index.json", "stats.json")

_PACKAGE_ROOT = Path(__file__).resolve().parent.parent  # src/repro


def source_digest(package_root: Optional[Path] = None) -> str:
    """Digest of every ``*.py`` file under the repro package.

    Deterministic: files are folded in sorted relative-path order, with
    path and content separated by NUL bytes so renames change the digest.
    """
    root = Path(package_root) if package_root is not None else _PACKAGE_ROOT
    hasher = hashlib.blake2b(digest_size=16)
    for path in sorted(root.rglob("*.py")):
        hasher.update(path.relative_to(root).as_posix().encode("utf-8"))
        hasher.update(b"\0")
        hasher.update(path.read_bytes())
        hasher.update(b"\0")
    return hasher.hexdigest()


def spec_material(runner: str, params: dict[str, Any]) -> str:
    """Canonical digestable form of a shard spec (runner + params).

    Folding the spec into the key means per-curve/per-site shards keep
    hitting independently even if a task_id is ever reused with different
    parameters, and a parameter change can never replay a stale payload.
    """
    material = json.dumps({"runner": runner, "params": params}, sort_keys=True)
    return hashlib.blake2b(material.encode("utf-8"), digest_size=8).hexdigest()


def _default_deps() -> "DependencyDigests | None":
    """A dependency-digest analyser over the installed package.

    Import is deferred (cache -> analysis would otherwise be a hard
    layering edge) and failure degrades to whole-tree digests — caching
    must keep working even if the analyser chokes on the tree.
    """
    try:
        from repro.analysis.imports import DependencyDigests

        return DependencyDigests()
    except Exception:  # noqa: BLE001 - degrade to the pessimistic digest
        logger.warning("dependency analysis unavailable; whole-tree cache keys")
        return None


class ResultCache:
    """Load/store JSON artifacts keyed by (task id, fast flag, source digest).

    ``digest`` pins one digest for every task (tests, and the workers —
    the parent resolves each task's dependency digest once and ships the
    result down).  Without a pin, per-task digests come from ``deps``
    (built by default) via each task's ``module=`` root, falling back to
    the whole-tree :func:`source_digest`.  ``salt`` joins every key — the
    CLI uses it to segregate faulted campaigns from clean ones.

    The instance counts its ``hits`` / ``misses`` / ``stores``;
    :meth:`write_stats` persists them to ``<root>/stats.json`` so
    ``repro cache stats`` can report on the last campaign.
    """

    def __init__(
        self,
        root: "Path | str | None" = None,
        digest: Optional[str] = None,
        enabled: bool = True,
        deps: "DependencyDigests | None" = None,
        salt: str = "",
    ) -> None:
        self.root = Path(root) if root is not None else DEFAULT_CACHE_ROOT
        self.enabled = enabled
        self.salt = salt
        self.hits = 0
        self.misses = 0
        self.stores = 0
        if digest is not None:
            # Pinned digest: closures off unless deps is passed explicitly.
            self.digest = digest
            self.deps = deps
        else:
            # Computing the digest walks ~200 files once per cache instance;
            # the dependency graph parses them once more (ASTs, memoized).
            self.digest = source_digest()
            self.deps = deps if deps is not None else _default_deps()

    def effective_digest(self, module: Optional[str] = None, spec: str = "") -> str:
        """The digest component of a task's key, dependency-aware.

        This exact string is shipped to shard workers as their pinned
        ``digest`` so parent and worker compute identical keys without the
        worker rebuilding the import graph.
        """
        digest = self.digest
        if module is not None and self.deps is not None:
            closure = self.deps.closure_digest(module)
            if closure is not None:
                digest = f"closure:{closure}"
        if spec:
            digest += f"|spec={spec}"
        if self.salt:
            digest += f"|{self.salt}"
        return digest

    def key(
        self,
        task_id: str,
        fast: bool,
        module: Optional[str] = None,
        spec: str = "",
    ) -> str:
        material = f"{task_id}|fast={fast}|src={self.effective_digest(module, spec)}"
        return hashlib.blake2b(material.encode("utf-8"), digest_size=16).hexdigest()

    def path(
        self,
        task_id: str,
        fast: bool,
        module: Optional[str] = None,
        spec: str = "",
    ) -> Path:
        safe = task_id.replace("/", "_")
        return self.root / f"{safe}-{self.key(task_id, fast, module, spec)}.json"

    def load(
        self,
        task_id: str,
        fast: bool,
        module: Optional[str] = None,
        spec: str = "",
    ) -> Optional[dict]:
        """The cached artifact, or ``None`` on miss/corruption.

        A corrupted entry (truncated write, malformed JSON, wrong document
        shape) is a *miss*: the bad file is evicted so it cannot shadow the
        recomputed artifact, and a warning is logged.
        """
        if not self.enabled:
            return None
        path = self.path(task_id, fast, module, spec)
        if not path.exists():
            self.misses += 1
            return None
        try:
            with path.open("r", encoding="utf-8") as fh:
                document = json.load(fh)
        except OSError:
            self.misses += 1
            return None  # unreadable, not necessarily corrupt: leave it
        except ValueError:
            self._evict_corrupt(path, task_id, "malformed JSON")
            self.misses += 1
            return None
        if not isinstance(document, dict) or not isinstance(
            document.get("artifact"), dict
        ):
            self._evict_corrupt(path, task_id, "unexpected document shape")
            self.misses += 1
            return None
        if document.get("task_id") != task_id:  # hash collision paranoia
            self.misses += 1
            return None
        self.hits += 1
        return document["artifact"]

    def _evict_corrupt(self, path: Path, task_id: str, reason: str) -> None:
        try:
            path.unlink()
        except OSError:
            pass  # already gone, or unremovable: the miss still stands
        logger.warning(
            "evicted corrupt cache entry for %r at %s (%s)", task_id, path, reason
        )

    def store(
        self,
        task_id: str,
        fast: bool,
        artifact: dict[str, Any],
        module: Optional[str] = None,
        spec: str = "",
    ) -> Optional[Path]:
        """Write the artifact; returns its path (``None`` when disabled)."""
        if not self.enabled:
            return None
        path = self.path(task_id, fast, module, spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "schema": 1,
            "task_id": task_id,
            "fast": fast,
            "source_digest": self.effective_digest(module, spec),
            "artifact": artifact,
        }
        # Write-then-rename so a concurrent reader never sees a torn file.
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(document, indent=1), encoding="utf-8")
        os.replace(tmp, path)
        self.stores += 1
        return path

    def counters(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}

    def write_stats(self, extra: "dict[str, Any] | None" = None) -> Optional[Path]:
        """Persist this instance's counters to ``<root>/stats.json``.

        Called once per campaign by the runner; ``repro cache stats``
        reads the file back.  No-op when the cache is disabled (there is
        nothing meaningful to report and possibly no directory).
        """
        if not self.enabled:
            return None
        path = self.root / "stats.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {"schema": 1, **self.counters(), **(extra or {})}
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(document, indent=1), encoding="utf-8")
        os.replace(tmp, path)
        return path

    def prune(
        self,
        max_bytes: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
        dry_run: bool = False,
    ) -> "PruneReport":
        """Prune the store (see module-level :func:`prune_cache`)."""
        return prune_cache(
            self.root,
            max_bytes=max_bytes,
            max_age_seconds=max_age_seconds,
            dry_run=dry_run,
        )


@dataclass
class PruneReport:
    """What a cache prune did (or would do, under ``dry_run``)."""

    root: Path
    dry_run: bool = False
    kept: int = 0
    kept_bytes: int = 0
    removed: list[Path] = field(default_factory=list)
    removed_bytes: int = 0
    #: orphaned write-then-rename temp files cleaned up alongside
    removed_tmp: int = 0

    def render(self) -> str:
        verb = "would remove" if self.dry_run else "removed"
        lines = [
            f"cache prune {self.root}: {verb} {len(self.removed)} entr"
            f"{'y' if len(self.removed) == 1 else 'ies'} "
            f"({self.removed_bytes} bytes), kept {self.kept} "
            f"({self.kept_bytes} bytes)"
        ]
        if self.removed_tmp:
            lines.append(f"  {verb} {self.removed_tmp} stray .tmp file(s)")
        for path in self.removed:
            lines.append(f"  {verb} {path.name}")
        return "\n".join(lines)


#: default size cap for ``repro cache prune`` (256 MiB)
DEFAULT_CACHE_CAP_BYTES = 256 * 1024 * 1024


def prune_cache(
    root: "Path | str | None" = None,
    max_bytes: Optional[int] = None,
    max_age_seconds: Optional[float] = None,
    dry_run: bool = False,
) -> PruneReport:
    """Bound the cache: drop stale-by-age entries, then oldest-first to a
    size cap.

    The store is content-addressed against the *current* source digest, so
    every source change strands the previous digest's entries forever —
    unbounded growth unless pruned.  Eviction is by modification time,
    oldest first, with the file name as a deterministic tie-break; stray
    ``*.tmp<pid>`` files from interrupted writes are always removed.  With
    ``dry_run`` nothing is deleted and the report lists the candidates.
    """
    report = PruneReport(
        root=Path(root) if root is not None else DEFAULT_CACHE_ROOT,
        dry_run=dry_run,
    )
    if not report.root.is_dir():
        return report
    if max_bytes is None and max_age_seconds is None:
        max_bytes = DEFAULT_CACHE_CAP_BYTES

    entries: list[tuple[float, str, Path, int]] = []
    for path in sorted(report.root.iterdir()):
        if not path.is_file():
            continue
        if ".tmp" in path.suffix:
            report.removed_tmp += 1
            if not dry_run:
                _remove_quietly(path)
            continue
        if path.suffix != ".json" or path.name in RESERVED_NAMES:
            continue  # the index/stats sidecars are not artifact entries
        try:
            stat = path.stat()
        except OSError:
            continue
        entries.append((stat.st_mtime, path.name, path, stat.st_size))
    entries.sort()  # oldest first; name breaks mtime ties deterministically

    # The prune clock is host wall time by design: cache entry ages are an
    # operational property of the store, not simulation state.
    now = time.time()  # repro: noqa=DET002
    doomed: list[tuple[Path, int]] = []
    survivors: list[tuple[float, str, Path, int]] = []
    for entry in entries:
        mtime, _name, path, size = entry
        if max_age_seconds is not None and now - mtime > max_age_seconds:
            doomed.append((path, size))
        else:
            survivors.append(entry)
    if max_bytes is not None:
        total = sum(size for _, _, _, size in survivors)
        while survivors and total > max_bytes:
            mtime, _name, path, size = survivors.pop(0)
            doomed.append((path, size))
            total -= size

    for path, size in doomed:
        report.removed.append(path)
        report.removed_bytes += size
        if not dry_run:
            _remove_quietly(path)
    report.kept = len(survivors)
    report.kept_bytes = sum(size for _, _, _, size in survivors)
    return report


def _remove_quietly(path: Path) -> None:
    try:
        path.unlink()
    except OSError:
        pass  # raced with another pruner: the entry is gone either way


# --- `repro cache stats` -----------------------------------------------------------
@dataclass
class CacheStats:
    """Store shape + the last campaign's hit/miss counters."""

    root: Path
    entries: int = 0
    total_bytes: int = 0
    experiments: int = 0
    shards: int = 0
    #: counters persisted by the last campaign's :meth:`ResultCache.write_stats`
    last_campaign: dict = field(default_factory=dict)

    def summary_line(self) -> str:
        parts = [
            f"{self.entries} entr{'y' if self.entries == 1 else 'ies'}",
            f"{self.total_bytes} bytes",
        ]
        lc = self.last_campaign
        if lc:
            parts.append(
                f"last campaign: {lc.get('hits', 0)} hits, "
                f"{lc.get('misses', 0)} misses, {lc.get('stores', 0)} stored"
            )
        return f"cache {self.root}: " + ", ".join(parts)

    def render(self) -> str:
        lines = [
            self.summary_line(),
            f"  experiment entries: {self.experiments}",
            f"  shard entries:      {self.shards}",
        ]
        return "\n".join(lines)


def cache_stats(root: "Path | str | None" = None) -> CacheStats:
    """Scan the store: entry counts, bytes, last-campaign counters."""
    stats = CacheStats(root=Path(root) if root is not None else DEFAULT_CACHE_ROOT)
    if not stats.root.is_dir():
        return stats
    for path in sorted(stats.root.iterdir()):
        if not path.is_file() or path.suffix != ".json":
            continue
        if path.name in RESERVED_NAMES:
            continue
        try:
            size = path.stat().st_size
        except OSError:
            continue
        stats.entries += 1
        stats.total_bytes += size
        if path.name.startswith("experiment_"):
            stats.experiments += 1
        else:
            stats.shards += 1
    stats_path = stats.root / "stats.json"
    if stats_path.exists():
        try:
            document = json.loads(stats_path.read_text(encoding="utf-8"))
            if isinstance(document, dict):
                stats.last_campaign = document
        except (OSError, ValueError):
            pass  # a torn stats file degrades to "no last campaign"
    return stats
