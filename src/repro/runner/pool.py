"""Hardened process-per-task experiment orchestrator.

Execution model
---------------
A campaign is a list of :class:`ExperimentSpec`.  Each experiment is first
looked up in the result cache; misses are executed either in-process
(``jobs <= 1``, identical to the historical serial loop) or on a
process-per-task engine governed by a :class:`RunnerPolicy`.

On the parallel path, experiments that expose shard hooks (see
:mod:`repro.experiments.base`) are decomposed: their shards run as
individual tasks, deduplicated campaign-wide by ``task_id`` (table6 and
table7 share the four ray2mesh runs; figs 10/12/13 share the grid16 NPB
points), and merged back in the parent.  Shard payloads are cached by the
*worker* that computed them — the parent passes its cache root and source
digest down (the digest is computed exactly once per campaign) — so a
completed shard survives even a parent crash and is never recomputed.

Every unit of work runs under :func:`repro.sim.core.trace_capture`, the
same hook the determinism sanitizer uses, so each artifact carries an
event-trace hash.  A sharded experiment records the canonical combination
of its shard hashes (:meth:`EventTraceHasher.combine`) — a different value
from an unsharded run's hash, which is why artifacts record the trace
*mode* alongside the digest.

Robustness
----------
Each task owns a dedicated worker process and a result pipe, which is what
makes real fault handling possible (a shared ``ProcessPoolExecutor``
cannot kill a hung task without poisoning the whole pool):

* **timeouts** — a task that exceeds ``RunnerPolicy.timeout_s`` of wall
  clock is terminated (SIGTERM) and counted;
* **retries** — crashed (died without reporting) and timed-out tasks are
  resubmitted up to ``retries`` times with exponential backoff; a *clean*
  worker exception is deterministic and never retried;
* **graceful degradation** — a task that exhausts its attempts fails only
  the experiments depending on it; everything else completes, partial
  results merge, and the campaign reports what happened through the
  ``retries``/``timeouts`` counters (surfaced in
  ``BENCH_experiments.json``).
"""

from __future__ import annotations

import importlib
import math
import multiprocessing
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

from repro.errors import ReproError
from repro.mpi.tracing import EventTraceHasher
from repro.obs.runtime import TelemetryConfig, merge_payloads
from repro.obs.runtime import session as telemetry_session
from repro.runner.cache import ResultCache
from repro.sim.core import trace_capture

#: fork keeps workers cheap and lets tests inject registry entries; fall
#: back to the platform default where fork does not exist (Windows).
_START_METHOD = "fork" if "fork" in multiprocessing.get_all_start_methods() else None

#: parent poll interval while supervising workers (host-side seconds)
_POLL_INTERVAL_S = 0.02


@dataclass(frozen=True)
class RunnerPolicy:
    """Fault-handling knobs of the parallel engine.

    ``timeout_s`` is wall-clock per *task* (one shard or one unsharded
    experiment), not per campaign; ``None`` disables timeouts.  Crashed
    and timed-out tasks are retried up to ``retries`` times, sleeping
    ``backoff_s * 2**attempt`` between attempts.
    """

    timeout_s: Optional[float] = None
    retries: int = 1
    backoff_s: float = 0.5

    def __post_init__(self):
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ReproError("timeout_s must be positive (or None to disable)")
        if self.retries < 0:
            raise ReproError("retries must be >= 0")
        if self.backoff_s < 0:
            raise ReproError("backoff_s must be >= 0")


DEFAULT_POLICY = RunnerPolicy()


@dataclass(frozen=True)
class ExperimentSpec:
    """One requested experiment run."""

    experiment_id: str
    fast: bool = False

    @property
    def key(self) -> tuple[str, bool]:
        return (self.experiment_id, self.fast)


@dataclass
class ExperimentRun:
    """Outcome of one experiment within a campaign."""

    experiment_id: str
    fast: bool
    ok: bool
    cached: bool = False
    sharded: bool = False
    #: aggregate worker seconds (for a sharded run: the sum over its
    #: shards, including shards shared with other experiments)
    wall_s: float = 0.0
    #: other experiment ids this run shared work with (tables 6/7 share
    #: the four ray2mesh runs): for a sharded run, experiments consuming
    #: at least one common shard (whose wall time is counted in *both*
    #: ``wall_s`` figures); for a serial run, experiments whose in-process
    #: memo this run reused (which is why its own ``wall_s`` can be ~0).
    shared_with: list[str] = field(default_factory=list)
    text: str = ""
    rows: list = field(default_factory=list)
    title: str = ""
    paper_ref: str = ""
    trace_hash: str = ""
    trace_mode: str = "serial"
    trace_events: int = 0
    error: Optional[str] = None
    #: merged telemetry payload (``repro.obs``); present only when the
    #: campaign ran with telemetry enabled.  Deliberately NOT part of
    #: :meth:`artifact`: telemetry runs bypass the result cache, and the
    #: cached/golden artifacts must stay byte-identical either way.
    telemetry: Optional[dict] = None
    #: compact span-analytics summary (``repro.obs.aggregate.rollup``)
    #: derived from ``telemetry``; recorded into the campaign manifest so
    #: traced campaigns leave a greppable footprint of where the ticks
    #: went.  Like ``telemetry``, never part of :meth:`artifact`.
    rollup: Optional[dict] = None

    def artifact(self) -> dict[str, Any]:
        """The structured JSON artifact stored in the cache / out dir."""
        return {
            "kind": "experiment",
            "experiment_id": self.experiment_id,
            "fast": self.fast,
            "ok": self.ok,
            "sharded": self.sharded,
            "wall_s": round(self.wall_s, 3),
            "shared_with": self.shared_with,
            "trace_hash": self.trace_hash,
            "trace_mode": self.trace_mode,
            "trace_events": self.trace_events,
            "title": self.title,
            "paper_ref": self.paper_ref,
            "rows": self.rows,
            "text": self.text,
            "error": self.error,
        }

    @classmethod
    def from_artifact(cls, spec: ExperimentSpec, artifact: dict) -> "ExperimentRun":
        return cls(
            experiment_id=spec.experiment_id,
            fast=spec.fast,
            ok=bool(artifact.get("ok", False)),
            cached=True,
            sharded=bool(artifact.get("sharded", False)),
            wall_s=float(artifact.get("wall_s", 0.0)),
            shared_with=list(artifact.get("shared_with", [])),
            text=artifact.get("text", ""),
            rows=artifact.get("rows", []),
            title=artifact.get("title", ""),
            paper_ref=artifact.get("paper_ref", ""),
            trace_hash=artifact.get("trace_hash", ""),
            trace_mode=artifact.get("trace_mode", "serial"),
            trace_events=int(artifact.get("trace_events", 0)),
            error=artifact.get("error"),
        )


@dataclass
class CampaignResult:
    """Everything one ``run_campaign`` call did."""

    runs: list[ExperimentRun]
    wall_s: float
    jobs: int
    cache_enabled: bool
    #: crashed/timed-out task re-submissions performed by the engine
    retries: int = 0
    #: tasks terminated for exceeding the policy's wall-clock timeout
    timeouts: int = 0
    #: the campaign recorded telemetry (and therefore bypassed the cache)
    telemetry_enabled: bool = False
    #: per-shard worker wall seconds, by task_id (cached shards report the
    #: wall of the run that originally computed them) — the cost model's
    #: training data, recorded into the manifest
    shard_walls: dict[str, float] = field(default_factory=dict)
    #: result-cache traffic: parent-side lookups plus every store the
    #: campaign performed (including worker-side shard stores)
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0

    @property
    def failures(self) -> list[ExperimentRun]:
        return [run for run in self.runs if not run.ok]

    @property
    def cached(self) -> list[ExperimentRun]:
        return [run for run in self.runs if run.cached]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        done = len(self.runs) - len(self.failures)
        parts = [
            f"{done}/{len(self.runs)} experiments ok",
            f"{len(self.cached)} cached",
            f"jobs={self.jobs}",
            f"{self.wall_s:.1f}s wall",
        ]
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.timeouts:
            parts.append(f"{self.timeouts} timeouts")
        if self.failures:
            failed = ", ".join(run.experiment_id for run in self.failures)
            parts.append(f"FAILED: {failed}")
        return "; ".join(parts)

    def cache_summary(self) -> str:
        """One-line cache traffic report (printed by ``repro run``)."""
        if not self.cache_enabled:
            return "cache: disabled"
        return (
            f"cache: {self.cache_hits} hit{'s' if self.cache_hits != 1 else ''}, "
            f"{self.cache_misses} miss{'es' if self.cache_misses != 1 else ''}, "
            f"{self.cache_stores} stored"
        )


# --- worker-side functions (module-level: picklable by reference) ----------------
def _resolve(dotted: str) -> Callable[..., Any]:
    module_name, _, func_name = dotted.partition(":")
    return getattr(importlib.import_module(module_name), func_name)


def _shard_worker(
    runner: str,
    params: dict,
    fast: bool,
    task_id: str = "",
    cache_root: str = "",
    cache_digest: str = "",
    cache_enabled: bool = False,
    telemetry: "tuple[bool, bool] | None" = None,
) -> dict:
    """Execute one shard under trace capture; returns its artifact.

    When the parent hands down its cache coordinates, the artifact is
    stored *here*, in the worker — the parent passes its already-computed
    source digest (computed once per campaign), and a completed shard
    survives even if the parent dies before collecting it.
    """
    started = time.monotonic()  # host-side timing, not sim state  # lint: disable=DET002
    config = TelemetryConfig.from_tuple(telemetry)
    sess = None
    with trace_capture() as hasher:
        if config is None:
            payload = _resolve(runner)(fast=fast, **params)
        else:
            # The shard's records default into the track named after its
            # task_id — the same track the serial path switches to.
            with telemetry_session(config, default_track=task_id) as sess:
                payload = _resolve(runner)(fast=fast, **params)
    elapsed = time.monotonic() - started  # lint: disable=DET002
    artifact = {
        "kind": "shard",
        "payload": payload,
        "wall_s": round(elapsed, 3),
        "trace_hash": hasher.hexdigest(),
        "trace_events": hasher.events,
    }
    if sess is not None:
        artifact["telemetry"] = sess.to_payload()
    if cache_enabled and task_id and cache_root:
        cache = ResultCache(root=cache_root, digest=cache_digest, enabled=True)
        cache.store(task_id, fast, artifact)
    return artifact


def _experiment_worker(
    experiment_id: str,
    fast: bool,
    telemetry: "tuple[bool, bool] | None" = None,
) -> dict:
    """Execute one whole experiment under trace capture."""
    from repro.experiments import run_experiment

    started = time.monotonic()  # host-side timing, not sim state  # lint: disable=DET002
    config = TelemetryConfig.from_tuple(telemetry)
    sess = None
    with trace_capture() as hasher:
        if config is None:
            result = run_experiment(experiment_id, fast=fast)
        else:
            with telemetry_session(
                config, default_track=f"experiment/{experiment_id}"
            ) as sess:
                result = run_experiment(experiment_id, fast=fast)
    elapsed = time.monotonic() - started  # lint: disable=DET002
    # Same convention as the sanitizer: fold the rendered text so
    # value-level divergence changes the hash too.
    hasher.update_text(result.text)
    payload = {
        "wall_s": elapsed,
        "trace_hash": hasher.hexdigest(),
        "trace_events": hasher.events,
        "title": result.title,
        "paper_ref": result.paper_ref,
        "rows": result.rows,
        "text": result.text,
    }
    if sess is not None:
        payload["telemetry"] = sess.to_payload()
    return payload


def _task_main(conn, target: Callable[..., Any], args: tuple) -> None:
    """Worker process entry point: run ``target`` and report on the pipe.

    A clean exception is reported as ``("error", message)`` — it is
    deterministic, so the parent fails the task without retrying.  A
    worker that dies before sending anything (segfault, ``os._exit``,
    SIGKILL) is detected by the parent through its exit code instead.
    """
    try:
        result = target(*args)
        conn.send(("ok", result))
    except BaseException as exc:  # noqa: BLE001 - marshalled to the parent
        try:
            conn.send(("error", _describe_error(exc)))
        except Exception:  # noqa: BLE001 - parent sees a crash instead
            pass
    finally:
        conn.close()


def _describe_error(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


# --- the process-per-task engine --------------------------------------------------
@dataclass
class _Task:
    """One unit of work for the engine (a shard or a whole experiment)."""

    key: tuple
    target: Callable[..., Any]
    args: tuple
    label: str
    attempts: int = 0


class _Running:
    """Book-keeping for one live worker process."""

    __slots__ = ("task", "process", "conn", "deadline")

    def __init__(self, task: _Task, process, conn, deadline: Optional[float]):
        self.task = task
        self.process = process
        self.conn = conn
        self.deadline = deadline


def _run_tasks(
    tasks: list[_Task],
    jobs: int,
    policy: RunnerPolicy,
    context,
) -> tuple[dict[tuple, tuple[str, Any]], int, int]:
    """Supervise ``tasks`` on up to ``jobs`` worker processes.

    Returns ``(outcomes, retries, timeouts)`` where each outcome is
    ``("ok", payload)`` or ``("error", message)``.  Never raises for a
    misbehaving task; the engine always drains.
    """
    ready: list[_Task] = list(tasks)
    delayed: list[tuple[float, _Task]] = []  # (not-before, task) backoff queue
    running: list[_Running] = []
    outcomes: dict[tuple, tuple[str, Any]] = {}
    n_retries = 0
    n_timeouts = 0

    def launch(task: _Task) -> None:
        parent_conn, child_conn = context.Pipe(duplex=False)
        process = context.Process(
            target=_task_main,
            args=(child_conn, task.target, task.args),
            name=f"repro-worker:{task.label}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # the parent only reads
        deadline = (
            time.monotonic() + policy.timeout_s  # lint: disable=DET002
            if policy.timeout_s is not None
            else None
        )
        running.append(_Running(task, process, parent_conn, deadline))

    def retire(entry: _Running) -> None:
        entry.conn.close()
        entry.process.join(timeout=5.0)
        if entry.process.is_alive():  # ignored SIGTERM: escalate
            entry.process.kill()
            entry.process.join()
        running.remove(entry)

    def requeue_or_fail(task: _Task, reason: str) -> None:
        nonlocal n_retries
        task.attempts += 1
        if task.attempts <= policy.retries:
            n_retries += 1
            delay = policy.backoff_s * (2 ** (task.attempts - 1))
            not_before = time.monotonic() + delay  # lint: disable=DET002
            delayed.append((not_before, task))
        else:
            outcomes[task.key] = (
                "error",
                f"{reason} (gave up after {task.attempts} attempt"
                f"{'s' if task.attempts != 1 else ''})",
            )

    while ready or delayed or running:
        now = time.monotonic()  # lint: disable=DET002

        still_delayed: list[tuple[float, _Task]] = []
        for not_before, task in delayed:
            if not_before <= now:
                ready.append(task)
            else:
                still_delayed.append((not_before, task))
        delayed = still_delayed

        while ready and len(running) < jobs:
            launch(ready.pop(0))

        progressed = False
        for entry in list(running):
            task, process = entry.task, entry.process
            # Read the exit code *before* polling the pipe: a worker's
            # send happens-before its exit, so "exited and still no
            # message" is a definite crash, never a lost result.
            exited = process.exitcode is not None
            message: Optional[tuple[str, Any]] = None
            if entry.conn.poll():
                try:
                    message = entry.conn.recv()
                except (EOFError, OSError):
                    message = None  # died mid-send: handled as a crash below
            if message is not None:
                outcomes[task.key] = message
                retire(entry)
                progressed = True
                continue
            if exited:
                # Exited without reporting: a hard crash (segfault,
                # os._exit, OOM kill).  Retry with backoff.
                retire(entry)
                requeue_or_fail(
                    task, f"worker crashed (exit code {process.exitcode})"
                )
                progressed = True
                continue
            if entry.deadline is not None and now >= entry.deadline:
                process.terminate()
                retire(entry)
                n_timeouts += 1
                requeue_or_fail(
                    task, f"timed out after {policy.timeout_s:g}s wall clock"
                )
                progressed = True
        if not progressed and (running or delayed):
            time.sleep(_POLL_INTERVAL_S)
    return outcomes, n_retries, n_timeouts


# --- orchestration ---------------------------------------------------------------
def _shard_sharers(
    specs: list[ExperimentSpec],
) -> dict[tuple[str, bool], list[str]]:
    """Per spec key, the other experiment ids consuming any common shard.

    Derived from the shard plans alone, so it is the same answer for a
    serial campaign (where sharing happens through in-process memos) and
    a pooled one (where it happens through deduplicated shard tasks).
    """
    from repro.experiments.registry import get_shard_plan

    shard_ids: dict[tuple[str, bool], set[str]] = {}
    for spec in specs:
        try:
            plan = get_shard_plan(spec.experiment_id, spec.fast)
        except Exception:  # noqa: BLE001 - surfaced by the actual run
            continue
        if plan is not None:
            shard_ids[spec.key] = {shard.task_id for shard in plan.shards}
    return {
        key: sorted(
            {
                other[0]
                for other, other_ids in shard_ids.items()
                if other != key and other_ids & ids
            }
        )
        for key, ids in shard_ids.items()
    }


def _run_from_worker_payload(spec: ExperimentSpec, payload: dict) -> ExperimentRun:
    return ExperimentRun(
        experiment_id=spec.experiment_id,
        fast=spec.fast,
        ok=True,
        wall_s=payload["wall_s"],
        text=payload["text"],
        rows=payload["rows"],
        title=payload["title"],
        paper_ref=payload["paper_ref"],
        trace_hash=payload["trace_hash"],
        trace_mode="serial",
        trace_events=payload["trace_events"],
        telemetry=payload.get("telemetry"),
    )


def _failed_run(spec: ExperimentSpec, error: str, sharded: bool = False) -> ExperimentRun:
    return ExperimentRun(
        experiment_id=spec.experiment_id,
        fast=spec.fast,
        ok=False,
        sharded=sharded,
        error=error,
    )


def _run_serial(
    misses: list[ExperimentSpec],
    cache: ResultCache,
    progress: Optional[Callable[[str], None]],
    telemetry: "tuple[bool, bool] | None" = None,
) -> dict[tuple[str, bool], ExperimentRun]:
    """The historical one-at-a-time loop, minus its abort-on-first-error."""
    runs: dict[tuple[str, bool], ExperimentRun] = {}
    sharers = _shard_sharers(misses)
    for spec in misses:
        try:
            payload = _experiment_worker(spec.experiment_id, spec.fast, telemetry)
            run = _run_from_worker_payload(spec, payload)
            # Record work sharing: a later experiment reusing an earlier
            # one's in-process memo measures ~0 s of its own wall time,
            # and the manifest entry should say why (table7 <- table6).
            run.shared_with = sharers.get(spec.key, [])
        except Exception as exc:  # noqa: BLE001 - surfaced in the campaign result
            run = _failed_run(spec, _describe_error(exc))
        _finish_run(run, cache, progress)
        runs[spec.key] = run
    return runs


def _experiment_root(experiment_id: str) -> Optional[str]:
    """The experiment's defining module — its cache dependency root."""
    try:
        from repro.experiments.registry import experiment_module

        return experiment_module(experiment_id)
    except Exception:  # noqa: BLE001 - fall back to whole-tree digests
        return None


def _finish_run(
    run: ExperimentRun,
    cache: ResultCache,
    progress: Optional[Callable[[str], None]],
) -> None:
    if run.ok:
        cache.store(
            f"experiment/{run.experiment_id}",
            run.fast,
            run.artifact(),
            module=_experiment_root(run.experiment_id),
        )
    if progress is not None:
        state = "failed" if not run.ok else ("cached" if run.cached else "ok")
        progress(f"{run.experiment_id}: {run.wall_s:7.1f}s [{state}]")


def _order_by_cost(tasks: list[_Task], estimates: dict[str, float]) -> None:
    """Longest-estimated-first (LPT) dispatch order, in place.

    With FIFO submission the 4-worker makespan was hostage to whichever
    heavyweight (fig10, fig12, the ray2mesh shards) happened to land last;
    sorting by historical wall estimates starts the long poles first so
    the short tail packs in behind them.  Tasks with no history sort
    before everything (an unknown might *be* the long pole); ties break on
    the label so the order is deterministic for a given manifest.
    """

    def estimate(task: _Task) -> float:
        kind, ident = task.key[0], task.key[1]
        lookup = ident if kind == "shard" else f"experiment/{ident}"
        return estimates.get(lookup, math.inf)

    tasks.sort(key=lambda task: (-estimate(task), task.label))


def _run_parallel(
    misses: list[ExperimentSpec],
    cache: ResultCache,
    jobs: int,
    policy: RunnerPolicy,
    progress: Optional[Callable[[str], None]],
    telemetry: "tuple[bool, bool] | None" = None,
    estimates: "dict[str, float] | None" = None,
) -> tuple[dict[tuple[str, bool], ExperimentRun], int, int, dict[str, float]]:
    from repro.experiments.registry import ShardPlan, get_shard_plan

    context = multiprocessing.get_context(_START_METHOD)
    runs: dict[tuple[str, bool], ExperimentRun] = {}
    plans: dict[tuple[str, bool], ShardPlan] = {}
    tasks: list[_Task] = []
    submitted: set[tuple] = set()
    #: (shard task_id, fast) -> completed shard artifact
    shard_results: dict[tuple[str, bool], dict] = {}

    for spec in misses:
        try:
            plan = get_shard_plan(spec.experiment_id, spec.fast)
        except Exception as exc:  # noqa: BLE001
            runs[spec.key] = _failed_run(spec, _describe_error(exc))
            continue
        if plan is None:
            tasks.append(
                _Task(
                    key=("experiment", spec.experiment_id, spec.fast),
                    target=_experiment_worker,
                    args=(spec.experiment_id, spec.fast, telemetry),
                    label=spec.experiment_id,
                )
            )
            continue
        plans[spec.key] = plan
        for shard in plan.shards:
            shard_key = (shard.task_id, spec.fast)
            if shard_key in shard_results or shard_key in submitted:
                continue  # deduplicated across experiments
            cached = cache.load(
                shard.task_id, spec.fast, module=shard.module, spec=shard.cache_spec()
            )
            if cached is not None:
                shard_results[shard_key] = cached
                continue
            submitted.add(shard_key)
            tasks.append(
                _Task(
                    key=("shard", shard.task_id, spec.fast),
                    target=_shard_worker,
                    # The worker stores its own artifact: the parent
                    # resolves the shard's dependency-aware digest once and
                    # ships it down, so the worker never walks the tree.
                    args=(
                        shard.runner,
                        shard.params,
                        spec.fast,
                        shard.task_id,
                        str(cache.root),
                        cache.effective_digest(
                            module=shard.module, spec=shard.cache_spec()
                        ),
                        cache.enabled,
                        telemetry,
                    ),
                    label=shard.task_id,
                )
            )

    _order_by_cost(tasks, estimates or {})
    outcomes, n_retries, n_timeouts = _run_tasks(tasks, jobs, policy, context)
    sharers = _shard_sharers(misses)

    for key, (status, payload) in outcomes.items():
        if key[0] != "shard":
            continue
        shard_key = (key[1], key[2])
        shard_results[shard_key] = (
            payload if status == "ok" else {"error": payload}
        )
        if status == "ok" and cache.enabled:
            # The worker stored its own artifact; account for it here so
            # the campaign's store counter covers shard traffic too.
            cache.stores += 1

    shard_walls = {
        task_id: round(float(artifact["wall_s"]), 3)
        for (task_id, _fast), artifact in sorted(shard_results.items())
        if "wall_s" in artifact
    }

    for spec in misses:
        if spec.key in runs:
            continue
        experiment_key = ("experiment", spec.experiment_id, spec.fast)
        if experiment_key in outcomes:
            status, payload = outcomes[experiment_key]
            if status == "ok":
                run = _run_from_worker_payload(spec, payload)
            else:
                run = _failed_run(spec, payload)
        else:
            run = _merge_sharded(
                spec,
                plans[spec.key],
                shard_results,
                shared_with=sharers.get(spec.key, []),
            )
        _finish_run(run, cache, progress)
        runs[spec.key] = run
    return runs, n_retries, n_timeouts, shard_walls


def _merge_sharded(
    spec: ExperimentSpec,
    plan: "Any",
    shard_results: dict[tuple[str, bool], dict],
    shared_with: "list[str] | None" = None,
) -> ExperimentRun:
    payloads: dict[str, Any] = {}
    shard_hashes: dict[str, str] = {}
    shard_telemetry: dict[str, dict] = {}
    wall = 0.0
    events = 0
    failed: list[str] = []
    for shard in plan.shards:
        artifact = shard_results.get((shard.task_id, spec.fast), {})
        if "payload" not in artifact:
            failed.append(f"{shard.task_id} ({artifact.get('error', 'missing')})")
            continue
        payloads[shard.task_id] = artifact["payload"]
        shard_hashes[shard.task_id] = artifact.get("trace_hash", "")
        if artifact.get("telemetry"):
            shard_telemetry[shard.task_id] = artifact["telemetry"]
        wall += float(artifact.get("wall_s", 0.0))
        events += int(artifact.get("trace_events", 0))
    if failed:
        return _failed_run(
            spec, "shard failure: " + "; ".join(failed), sharded=True
        )
    try:
        result = plan.merge(payloads, fast=spec.fast)
    except Exception as exc:  # noqa: BLE001
        return _failed_run(spec, f"merge failed: {_describe_error(exc)}", sharded=True)
    return ExperimentRun(
        experiment_id=spec.experiment_id,
        fast=spec.fast,
        ok=True,
        sharded=True,
        wall_s=wall,
        # Shared shard walls are counted into every consumer's wall_s;
        # this names the other experiments double-counting them.
        shared_with=list(shared_with or []),
        text=result.text,
        rows=result.rows,
        title=result.title,
        paper_ref=result.paper_ref,
        trace_hash=EventTraceHasher.combine(shard_hashes, result.text),
        trace_mode="sharded",
        trace_events=events,
        # Sorted task_id order, independent of shard completion order —
        # the serial==parallel telemetry byte-identity relies on it.
        telemetry=(
            merge_payloads(
                shard_telemetry[task_id] for task_id in sorted(shard_telemetry)
            )
            if shard_telemetry
            else None
        ),
    )


def run_campaign(
    specs: list[ExperimentSpec],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    use_cache: bool = True,
    out_dir: "Path | str | None" = None,
    progress: Optional[Callable[[str], None]] = None,
    policy: Optional[RunnerPolicy] = None,
    telemetry: Optional[TelemetryConfig] = None,
    estimates: "dict[str, float] | None" = None,
) -> CampaignResult:
    """Run a campaign; never raises for individual experiment failures.

    ``cache`` may be injected (tests use a tmp root / pinned digest);
    otherwise a default :class:`ResultCache` under ``.repro-cache/`` is
    built with ``enabled=use_cache``.  ``policy`` tunes timeout/retry
    handling on the parallel path; the serial path (``jobs <= 1``) runs
    in-process, where a hung experiment cannot be killed.

    ``estimates`` maps task ids (shard ``task_id``s and
    ``experiment/<id>``) to historical wall seconds; the parallel engine
    dispatches longest-estimated-first so the makespan is not hostage to
    a heavyweight landing last.  ``None`` loads the history recorded in
    ``BENCH_experiments.json`` (missing file: every task is unknown and
    the order degrades to the deterministic label order).

    ``telemetry`` turns on the ``repro.obs`` recorder in every worker and
    attaches the merged payload to each :class:`ExperimentRun`.  Telemetry
    campaigns bypass the result cache entirely — cached artifacts carry no
    telemetry, and a half-cached campaign would return half-empty traces.
    """
    started = time.monotonic()  # host-side timing, not sim state  # lint: disable=DET002
    if telemetry is not None:
        cache = ResultCache(enabled=False, digest="")
    elif cache is None:
        cache = ResultCache(enabled=use_cache, digest="" if not use_cache else None)
    if policy is None:
        policy = DEFAULT_POLICY
    telemetry_pair = telemetry.as_tuple() if telemetry is not None else None
    if estimates is None and jobs > 1:
        from repro.runner.manifest import load_task_estimates

        estimates = load_task_estimates()

    runs: dict[tuple[str, bool], ExperimentRun] = {}
    misses: list[ExperimentSpec] = []
    n_retries = 0
    n_timeouts = 0
    shard_walls: dict[str, float] = {}
    for spec in specs:
        if spec.key in runs or spec in misses:
            continue
        artifact = cache.load(
            f"experiment/{spec.experiment_id}",
            spec.fast,
            module=_experiment_root(spec.experiment_id),
        )
        if artifact is not None and artifact.get("ok"):
            run = ExperimentRun.from_artifact(spec, artifact)
            if progress is not None:
                progress(f"{spec.experiment_id}: {run.wall_s:7.1f}s [cached]")
            runs[spec.key] = run
        else:
            misses.append(spec)

    if misses:
        if jobs <= 1:
            runs.update(_run_serial(misses, cache, progress, telemetry_pair))
        else:
            parallel_runs, n_retries, n_timeouts, shard_walls = _run_parallel(
                misses, cache, jobs, policy, progress, telemetry_pair, estimates
            )
            runs.update(parallel_runs)

    ordered = [runs[spec.key] for spec in specs]
    if telemetry is not None and telemetry.spans:
        from repro.obs.aggregate import rollup as span_rollup

        for run in ordered:
            if run.telemetry is not None:
                run.rollup = span_rollup(run.telemetry)
    elapsed = time.monotonic() - started  # lint: disable=DET002
    campaign = CampaignResult(
        runs=ordered,
        wall_s=elapsed,
        jobs=jobs,
        cache_enabled=cache.enabled,
        retries=n_retries,
        timeouts=n_timeouts,
        telemetry_enabled=telemetry is not None,
        shard_walls=shard_walls,
        cache_hits=cache.hits,
        cache_misses=cache.misses,
        cache_stores=cache.stores,
    )
    if cache.enabled:
        cache.write_stats(
            {
                "jobs": jobs,
                "experiments": len(campaign.runs),
                "cached_experiments": len(campaign.cached),
            }
        )
    if out_dir is not None:
        write_reports(campaign, Path(out_dir))
    return campaign


def write_reports(campaign: CampaignResult, out_dir: Path) -> None:
    """``<id>.txt`` rendered reports + ``json/<id>.json`` artifacts.

    The text format (report, blank line, wall/fast footer) is the one the
    committed goldens under ``results/`` use; CI diffs these files with
    the footer line ignored.
    """
    import json

    json_dir = out_dir / "json"
    json_dir.mkdir(parents=True, exist_ok=True)
    for run in campaign.runs:
        text_path = out_dir / f"{run.experiment_id}.txt"
        json_path = json_dir / f"{run.experiment_id}.json"
        if not run.ok:
            # Drop whatever a previous run left behind, so a failure never
            # leaves a stale report that looks current.
            text_path.unlink(missing_ok=True)
            json_path.unlink(missing_ok=True)
            continue
        text_path.write_text(
            run.text + f"\n\n[{run.wall_s:.1f}s wall, fast={run.fast}]\n",
            encoding="utf-8",
        )
        json_path.write_text(
            json.dumps(run.artifact(), indent=1), encoding="utf-8"
        )
