"""Process-pool experiment orchestrator.

Execution model
---------------
A campaign is a list of :class:`ExperimentSpec`.  Each experiment is first
looked up in the result cache; misses are executed either in-process
(``jobs <= 1``, identical to the historical serial loop) or on a
``ProcessPoolExecutor``.

On the pool path, experiments that expose shard hooks (see
:mod:`repro.experiments.base`) are decomposed: their shards are submitted
as individual tasks, deduplicated campaign-wide by ``task_id`` (table6 and
table7 share the four ray2mesh runs; figs 10/12/13 share the grid16 NPB
points), and merged back in the parent.  Shard payloads are individually
cached, so even a partially failed campaign never recomputes completed
work.

Every unit of work runs under :func:`repro.sim.core.trace_capture`, the
same hook the determinism sanitizer uses, so each artifact carries an
event-trace hash.  A sharded experiment records the canonical combination
of its shard hashes (:meth:`EventTraceHasher.combine`) — a different value
from an unsharded run's hash, which is why artifacts record the trace
*mode* alongside the digest.

Failure surfacing
-----------------
A raising experiment or shard marks that experiment failed and the
campaign continues; a worker that dies outright (``BrokenProcessPool``)
fails every experiment still in flight instead of hanging.  The campaign
result always reports what completed, what was cached, and what failed.
"""

from __future__ import annotations

import importlib
import multiprocessing
import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

from repro.mpi.tracing import EventTraceHasher
from repro.runner.cache import ResultCache
from repro.sim.core import trace_capture

#: fork keeps workers cheap and lets tests inject registry entries; fall
#: back to the platform default where fork does not exist (Windows).
_START_METHOD = "fork" if "fork" in multiprocessing.get_all_start_methods() else None


@dataclass(frozen=True)
class ExperimentSpec:
    """One requested experiment run."""

    experiment_id: str
    fast: bool = False

    @property
    def key(self) -> tuple[str, bool]:
        return (self.experiment_id, self.fast)


@dataclass
class ExperimentRun:
    """Outcome of one experiment within a campaign."""

    experiment_id: str
    fast: bool
    ok: bool
    cached: bool = False
    sharded: bool = False
    #: aggregate worker seconds (for a sharded run: the sum over its
    #: shards, including shards shared with other experiments)
    wall_s: float = 0.0
    text: str = ""
    rows: list = field(default_factory=list)
    title: str = ""
    paper_ref: str = ""
    trace_hash: str = ""
    trace_mode: str = "serial"
    trace_events: int = 0
    error: Optional[str] = None

    def artifact(self) -> dict[str, Any]:
        """The structured JSON artifact stored in the cache / out dir."""
        return {
            "kind": "experiment",
            "experiment_id": self.experiment_id,
            "fast": self.fast,
            "ok": self.ok,
            "sharded": self.sharded,
            "wall_s": round(self.wall_s, 3),
            "trace_hash": self.trace_hash,
            "trace_mode": self.trace_mode,
            "trace_events": self.trace_events,
            "title": self.title,
            "paper_ref": self.paper_ref,
            "rows": self.rows,
            "text": self.text,
            "error": self.error,
        }

    @classmethod
    def from_artifact(cls, spec: ExperimentSpec, artifact: dict) -> "ExperimentRun":
        return cls(
            experiment_id=spec.experiment_id,
            fast=spec.fast,
            ok=bool(artifact.get("ok", False)),
            cached=True,
            sharded=bool(artifact.get("sharded", False)),
            wall_s=float(artifact.get("wall_s", 0.0)),
            text=artifact.get("text", ""),
            rows=artifact.get("rows", []),
            title=artifact.get("title", ""),
            paper_ref=artifact.get("paper_ref", ""),
            trace_hash=artifact.get("trace_hash", ""),
            trace_mode=artifact.get("trace_mode", "serial"),
            trace_events=int(artifact.get("trace_events", 0)),
            error=artifact.get("error"),
        )


@dataclass
class CampaignResult:
    """Everything one ``run_campaign`` call did."""

    runs: list[ExperimentRun]
    wall_s: float
    jobs: int
    cache_enabled: bool

    @property
    def failures(self) -> list[ExperimentRun]:
        return [run for run in self.runs if not run.ok]

    @property
    def cached(self) -> list[ExperimentRun]:
        return [run for run in self.runs if run.cached]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        done = len(self.runs) - len(self.failures)
        parts = [
            f"{done}/{len(self.runs)} experiments ok",
            f"{len(self.cached)} cached",
            f"jobs={self.jobs}",
            f"{self.wall_s:.1f}s wall",
        ]
        if self.failures:
            failed = ", ".join(run.experiment_id for run in self.failures)
            parts.append(f"FAILED: {failed}")
        return "; ".join(parts)


# --- worker-side functions (module-level: picklable by reference) ----------------
def _resolve(dotted: str) -> Callable[..., Any]:
    module_name, _, func_name = dotted.partition(":")
    return getattr(importlib.import_module(module_name), func_name)


def _shard_worker(runner: str, params: dict, fast: bool) -> dict:
    """Execute one shard under trace capture; returns its artifact."""
    started = time.monotonic()  # host-side timing, not sim state  # lint: disable=DET002
    with trace_capture() as hasher:
        payload = _resolve(runner)(fast=fast, **params)
    elapsed = time.monotonic() - started  # lint: disable=DET002
    return {
        "kind": "shard",
        "payload": payload,
        "wall_s": round(elapsed, 3),
        "trace_hash": hasher.hexdigest(),
        "trace_events": hasher.events,
    }


def _experiment_worker(experiment_id: str, fast: bool) -> dict:
    """Execute one whole experiment under trace capture."""
    from repro.experiments import run_experiment

    started = time.monotonic()  # host-side timing, not sim state  # lint: disable=DET002
    with trace_capture() as hasher:
        result = run_experiment(experiment_id, fast=fast)
    elapsed = time.monotonic() - started  # lint: disable=DET002
    # Same convention as the sanitizer: fold the rendered text so
    # value-level divergence changes the hash too.
    hasher.update_text(result.text)
    return {
        "wall_s": elapsed,
        "trace_hash": hasher.hexdigest(),
        "trace_events": hasher.events,
        "title": result.title,
        "paper_ref": result.paper_ref,
        "rows": result.rows,
        "text": result.text,
    }


def _describe_error(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


# --- orchestration ---------------------------------------------------------------
def _run_from_worker_payload(spec: ExperimentSpec, payload: dict) -> ExperimentRun:
    return ExperimentRun(
        experiment_id=spec.experiment_id,
        fast=spec.fast,
        ok=True,
        wall_s=payload["wall_s"],
        text=payload["text"],
        rows=payload["rows"],
        title=payload["title"],
        paper_ref=payload["paper_ref"],
        trace_hash=payload["trace_hash"],
        trace_mode="serial",
        trace_events=payload["trace_events"],
    )


def _failed_run(spec: ExperimentSpec, error: str, sharded: bool = False) -> ExperimentRun:
    return ExperimentRun(
        experiment_id=spec.experiment_id,
        fast=spec.fast,
        ok=False,
        sharded=sharded,
        error=error,
    )


def _run_serial(
    misses: list[ExperimentSpec],
    cache: ResultCache,
    progress: Optional[Callable[[str], None]],
) -> dict[tuple[str, bool], ExperimentRun]:
    """The historical one-at-a-time loop, minus its abort-on-first-error."""
    runs: dict[tuple[str, bool], ExperimentRun] = {}
    for spec in misses:
        try:
            payload = _experiment_worker(spec.experiment_id, spec.fast)
            run = _run_from_worker_payload(spec, payload)
        except Exception as exc:  # noqa: BLE001 - surfaced in the campaign result
            run = _failed_run(spec, _describe_error(exc))
        _finish_run(run, cache, progress)
        runs[spec.key] = run
    return runs


def _finish_run(
    run: ExperimentRun,
    cache: ResultCache,
    progress: Optional[Callable[[str], None]],
) -> None:
    if run.ok:
        cache.store(f"experiment/{run.experiment_id}", run.fast, run.artifact())
    if progress is not None:
        state = "failed" if not run.ok else ("cached" if run.cached else "ok")
        progress(f"{run.experiment_id}: {run.wall_s:7.1f}s [{state}]")


def _run_parallel(
    misses: list[ExperimentSpec],
    cache: ResultCache,
    jobs: int,
    progress: Optional[Callable[[str], None]],
) -> dict[tuple[str, bool], ExperimentRun]:
    from repro.experiments.registry import ShardPlan, get_shard_plan

    context = (
        multiprocessing.get_context(_START_METHOD) if _START_METHOD else None
    )
    runs: dict[tuple[str, bool], ExperimentRun] = {}
    plans: dict[tuple[str, bool], ShardPlan] = {}
    experiment_futures: dict[tuple[str, bool], Future] = {}
    #: (shard task_id, fast) -> completed shard artifact
    shard_results: dict[tuple[str, bool], dict] = {}
    shard_futures: dict[tuple[str, bool], Future] = {}

    with ProcessPoolExecutor(max_workers=jobs, mp_context=context) as pool:
        for spec in misses:
            try:
                plan = get_shard_plan(spec.experiment_id, spec.fast)
            except Exception as exc:  # noqa: BLE001
                runs[spec.key] = _failed_run(spec, _describe_error(exc))
                continue
            if plan is None:
                experiment_futures[spec.key] = pool.submit(
                    _experiment_worker, spec.experiment_id, spec.fast
                )
                continue
            plans[spec.key] = plan
            for shard in plan.shards:
                shard_key = (shard.task_id, spec.fast)
                if shard_key in shard_results or shard_key in shard_futures:
                    continue  # deduplicated across experiments
                cached = cache.load(shard.task_id, spec.fast)
                if cached is not None:
                    shard_results[shard_key] = cached
                else:
                    shard_futures[shard_key] = pool.submit(
                        _shard_worker, shard.runner, shard.params, spec.fast
                    )

        # Collect shards first (they gate the merges).  A BrokenProcessPool
        # makes every remaining future raise immediately, so this loop
        # terminates — no hang — and the affected experiments fail below.
        for (task_id, fast), future in shard_futures.items():
            try:
                artifact = future.result()
                shard_results[(task_id, fast)] = artifact
                cache.store(task_id, fast, artifact)
            except Exception as exc:  # noqa: BLE001
                shard_results[(task_id, fast)] = {"error": _describe_error(exc)}

        for spec in misses:
            if spec.key in runs:
                continue
            if spec.key in experiment_futures:
                try:
                    payload = experiment_futures[spec.key].result()
                    run = _run_from_worker_payload(spec, payload)
                except Exception as exc:  # noqa: BLE001
                    run = _failed_run(spec, _describe_error(exc))
            else:
                run = _merge_sharded(spec, plans[spec.key], shard_results)
            _finish_run(run, cache, progress)
            runs[spec.key] = run
    return runs


def _merge_sharded(
    spec: ExperimentSpec,
    plan: "Any",
    shard_results: dict[tuple[str, bool], dict],
) -> ExperimentRun:
    payloads: dict[str, Any] = {}
    shard_hashes: dict[str, str] = {}
    wall = 0.0
    events = 0
    failed: list[str] = []
    for shard in plan.shards:
        artifact = shard_results.get((shard.task_id, spec.fast), {})
        if "payload" not in artifact:
            failed.append(f"{shard.task_id} ({artifact.get('error', 'missing')})")
            continue
        payloads[shard.task_id] = artifact["payload"]
        shard_hashes[shard.task_id] = artifact.get("trace_hash", "")
        wall += float(artifact.get("wall_s", 0.0))
        events += int(artifact.get("trace_events", 0))
    if failed:
        return _failed_run(
            spec, "shard failure: " + "; ".join(failed), sharded=True
        )
    try:
        result = plan.merge(payloads, fast=spec.fast)
    except Exception as exc:  # noqa: BLE001
        return _failed_run(spec, f"merge failed: {_describe_error(exc)}", sharded=True)
    return ExperimentRun(
        experiment_id=spec.experiment_id,
        fast=spec.fast,
        ok=True,
        sharded=True,
        wall_s=wall,
        text=result.text,
        rows=result.rows,
        title=result.title,
        paper_ref=result.paper_ref,
        trace_hash=EventTraceHasher.combine(shard_hashes, result.text),
        trace_mode="sharded",
        trace_events=events,
    )


def run_campaign(
    specs: list[ExperimentSpec],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    use_cache: bool = True,
    out_dir: "Path | str | None" = None,
    progress: Optional[Callable[[str], None]] = None,
) -> CampaignResult:
    """Run a campaign; never raises for individual experiment failures.

    ``cache`` may be injected (tests use a tmp root / pinned digest);
    otherwise a default :class:`ResultCache` under ``.repro-cache/`` is
    built with ``enabled=use_cache``.
    """
    started = time.monotonic()  # host-side timing, not sim state  # lint: disable=DET002
    if cache is None:
        cache = ResultCache(enabled=use_cache, digest="" if not use_cache else None)

    runs: dict[tuple[str, bool], ExperimentRun] = {}
    misses: list[ExperimentSpec] = []
    for spec in specs:
        if spec.key in runs or spec in misses:
            continue
        artifact = cache.load(f"experiment/{spec.experiment_id}", spec.fast)
        if artifact is not None and artifact.get("ok"):
            run = ExperimentRun.from_artifact(spec, artifact)
            if progress is not None:
                progress(f"{spec.experiment_id}: {run.wall_s:7.1f}s [cached]")
            runs[spec.key] = run
        else:
            misses.append(spec)

    if misses:
        if jobs <= 1:
            runs.update(_run_serial(misses, cache, progress))
        else:
            runs.update(_run_parallel(misses, cache, jobs, progress))

    ordered = [runs[spec.key] for spec in specs]
    elapsed = time.monotonic() - started  # lint: disable=DET002
    campaign = CampaignResult(
        runs=ordered, wall_s=elapsed, jobs=jobs, cache_enabled=cache.enabled
    )
    if out_dir is not None:
        write_reports(campaign, Path(out_dir))
    return campaign


def write_reports(campaign: CampaignResult, out_dir: Path) -> None:
    """``<id>.txt`` rendered reports + ``json/<id>.json`` artifacts.

    The text format (report, blank line, wall/fast footer) is the one the
    committed goldens under ``results/`` use; CI diffs these files with
    the footer line ignored.
    """
    import json

    json_dir = out_dir / "json"
    json_dir.mkdir(parents=True, exist_ok=True)
    for run in campaign.runs:
        text_path = out_dir / f"{run.experiment_id}.txt"
        json_path = json_dir / f"{run.experiment_id}.json"
        if not run.ok:
            # Drop whatever a previous run left behind, so a failure never
            # leaves a stale report that looks current.
            text_path.unlink(missing_ok=True)
            json_path.unlink(missing_ok=True)
            continue
        text_path.write_text(
            run.text + f"\n\n[{run.wall_s:.1f}s wall, fast={run.fast}]\n",
            encoding="utf-8",
        )
        json_path.write_text(
            json.dumps(run.artifact(), indent=1), encoding="utf-8"
        )
