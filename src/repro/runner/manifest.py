"""``BENCH_experiments.json``: the campaign timing manifest.

Every runner campaign appends one entry recording its configuration
(jobs, cache state) and per-experiment timings/trace hashes, so serial
and parallel runs of the same campaign sit side by side — that is the
evidence behind the "measurably lower wall-clock" claim, and CI uploads
the file as a build artifact.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.runner.pool import CampaignResult

#: default manifest location: the repository/invocation root
DEFAULT_BENCH_PATH = Path("BENCH_experiments.json")

#: entries kept per manifest — enough history to compare runs, bounded
#: so the file never grows without limit
MAX_RUNS = 50


def campaign_entry(campaign: "CampaignResult", label: str = "") -> dict[str, Any]:
    entry: dict[str, Any] = {
        # Host-side bookkeeping of when the campaign ran; the simulation
        # itself never reads this.
        "unix_time": round(time.time(), 1),  # lint: disable=DET002
        "label": label,
        "jobs": campaign.jobs,
        "cache_enabled": campaign.cache_enabled,
        "telemetry": campaign.telemetry_enabled,
        "wall_s": round(campaign.wall_s, 3),
        "ok": campaign.ok,
        "retries": campaign.retries,
        "timeouts": campaign.timeouts,
        "cached_experiments": len(campaign.cached),
        "failed_experiments": [run.experiment_id for run in campaign.failures],
        "experiments": {
            run.experiment_id: {
                "fast": run.fast,
                "ok": run.ok,
                "cached": run.cached,
                "sharded": run.sharded,
                "wall_s": round(run.wall_s, 3),
                "trace_mode": run.trace_mode,
                "trace_hash": run.trace_hash,
                # Experiments that consumed the same shards / memoised
                # work: their wall_s figures overlap (sharded) or this
                # run's ~0 wall_s reused theirs (serial).
                **(
                    {"shared_with": run.shared_with}
                    if run.shared_with
                    else {}
                ),
            }
            for run in campaign.runs
        },
    }
    return entry


def record_campaign(
    campaign: "CampaignResult",
    path: "Path | str | None" = None,
    label: str = "",
) -> Path:
    """Append the campaign to the manifest (kept to ``MAX_RUNS`` entries)."""
    manifest_path = Path(path) if path is not None else DEFAULT_BENCH_PATH
    try:
        document = json.loads(manifest_path.read_text(encoding="utf-8"))
        if not isinstance(document, dict) or "runs" not in document:
            document = {"schema": 1, "runs": []}
    except (OSError, ValueError):
        document = {"schema": 1, "runs": []}
    document["runs"] = (document["runs"] + [campaign_entry(campaign, label)])[-MAX_RUNS:]
    manifest_path.parent.mkdir(parents=True, exist_ok=True)
    # Write-then-rename, matching the cache: a concurrent reader (or a
    # crash mid-write) never sees a torn manifest.
    tmp = manifest_path.with_suffix(f".tmp{os.getpid()}")
    tmp.write_text(json.dumps(document, indent=1) + "\n", encoding="utf-8")
    os.replace(tmp, manifest_path)
    return manifest_path
