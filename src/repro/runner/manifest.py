"""``BENCH_experiments.json``: the campaign timing manifest.

Every runner campaign appends one entry recording its configuration
(jobs, cache state) and per-experiment timings/trace hashes, so serial
and parallel runs of the same campaign sit side by side — that is the
evidence behind the "measurably lower wall-clock" claim, and CI uploads
the file as a build artifact.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.runner.pool import CampaignResult

#: default manifest location: the repository/invocation root
DEFAULT_BENCH_PATH = Path("BENCH_experiments.json")

#: entries kept per manifest — enough history to compare runs, bounded
#: so the file never grows without limit
MAX_RUNS = 50


def campaign_entry(campaign: "CampaignResult", label: str = "") -> dict[str, Any]:
    entry: dict[str, Any] = {
        # Host-side bookkeeping of when the campaign ran; the simulation
        # itself never reads this.
        "unix_time": round(time.time(), 1),  # lint: disable=DET002
        "label": label,
        "jobs": campaign.jobs,
        "cache_enabled": campaign.cache_enabled,
        "telemetry": campaign.telemetry_enabled,
        "wall_s": round(campaign.wall_s, 3),
        "ok": campaign.ok,
        "retries": campaign.retries,
        "timeouts": campaign.timeouts,
        "cached_experiments": len(campaign.cached),
        "failed_experiments": [run.experiment_id for run in campaign.failures],
        # Per-shard worker walls: the cost model's history.  Dispatch order
        # for the next campaign is seeded from these, so heavyweights
        # (fig10/fig12, the ray2mesh sites) start first.
        **({"shards": campaign.shard_walls} if campaign.shard_walls else {}),
        "cache": {
            "hits": campaign.cache_hits,
            "misses": campaign.cache_misses,
            "stores": campaign.cache_stores,
        },
        "experiments": {
            run.experiment_id: {
                "fast": run.fast,
                "ok": run.ok,
                "cached": run.cached,
                "sharded": run.sharded,
                "wall_s": round(run.wall_s, 3),
                "trace_mode": run.trace_mode,
                "trace_hash": run.trace_hash,
                # Experiments that consumed the same shards / memoised
                # work: their wall_s figures overlap (sharded) or this
                # run's ~0 wall_s reused theirs (serial).
                **(
                    {"shared_with": run.shared_with}
                    if run.shared_with
                    else {}
                ),
                # Span-analytics roll-up of a traced run: span count, top
                # self-tick frames, WAN site-pair totals (repro.obs).
                **({"rollup": run.rollup} if run.rollup else {}),
            }
            for run in campaign.runs
        },
    }
    return entry


def _load_document(manifest_path: Path) -> dict[str, Any]:
    try:
        document = json.loads(manifest_path.read_text(encoding="utf-8"))
        if not isinstance(document, dict) or "runs" not in document:
            document = {"schema": 1, "runs": []}
    except (OSError, ValueError):
        document = {"schema": 1, "runs": []}
    return document


def _write_document(manifest_path: Path, document: dict[str, Any]) -> Path:
    manifest_path.parent.mkdir(parents=True, exist_ok=True)
    # Write-then-rename, matching the cache: a concurrent reader (or a
    # crash mid-write) never sees a torn manifest.
    tmp = manifest_path.with_suffix(f".tmp{os.getpid()}")
    tmp.write_text(json.dumps(document, indent=1) + "\n", encoding="utf-8")
    os.replace(tmp, manifest_path)
    return manifest_path


def record_campaign(
    campaign: "CampaignResult",
    path: "Path | str | None" = None,
    label: str = "",
) -> Path:
    """Append the campaign to the manifest (kept to ``MAX_RUNS`` entries)."""
    manifest_path = Path(path) if path is not None else DEFAULT_BENCH_PATH
    document = _load_document(manifest_path)
    document["runs"] = (document["runs"] + [campaign_entry(campaign, label)])[-MAX_RUNS:]
    return _write_document(manifest_path, document)


def load_task_estimates(path: "Path | str | None" = None) -> dict[str, float]:
    """Historical wall seconds per task, for the cost-model scheduler.

    Keys are shard ``task_id``s (from entries' ``shards`` maps) and
    ``experiment/<id>`` (from per-experiment walls — meaningful for
    unsharded experiments; a sharded experiment's wall is its shard sum,
    but sharded experiments never appear as whole tasks on the pool).
    Entries are folded oldest to newest so the latest observation wins.
    Estimates are deliberately mode-agnostic (fast and full walls share a
    key): the scheduler only needs relative order within one campaign,
    and a campaign runs in one mode.  A missing or torn manifest returns
    ``{}`` — scheduling degrades to deterministic label order.
    """
    manifest_path = Path(path) if path is not None else DEFAULT_BENCH_PATH
    estimates: dict[str, float] = {}
    for entry in _load_document(manifest_path).get("runs", []):
        if not isinstance(entry, dict):
            continue
        for task_id, wall in (entry.get("shards") or {}).items():
            if isinstance(wall, (int, float)) and wall >= 0:
                estimates[task_id] = float(wall)
        for experiment_id, record in (entry.get("experiments") or {}).items():
            if not isinstance(record, dict) or not record.get("ok"):
                continue
            wall = record.get("wall_s")
            if isinstance(wall, (int, float)) and wall >= 0:
                estimates[f"experiment/{experiment_id}"] = float(wall)
    return estimates


#: hotspot tables kept per manifest, newest wins per (experiment, fast)
MAX_PROFILES = 40


def record_profile(
    experiment_id: str,
    fast: bool,
    rows: list[dict[str, Any]],
    wall_s: float,
    path: "Path | str | None" = None,
) -> Path:
    """Record a ``repro profile`` hotspot table into the manifest.

    Profiles live under ``document["profiles"]`` keyed by
    ``<experiment>|fast=<bool>`` so fast and paper-scale profiles sit side
    by side; CI uploads the manifest, making hotspot drift reviewable the
    same way campaign walls are.
    """
    manifest_path = Path(path) if path is not None else DEFAULT_BENCH_PATH
    document = _load_document(manifest_path)
    profiles = document.setdefault("profiles", {})
    if not isinstance(profiles, dict):
        profiles = document["profiles"] = {}
    profiles[f"{experiment_id}|fast={fast}"] = {
        # Host-side bookkeeping, like campaign entries' unix_time.
        "unix_time": round(time.time(), 1),  # lint: disable=DET002
        "experiment_id": experiment_id,
        "fast": fast,
        "wall_s": round(wall_s, 3),
        "top": rows,
    }
    while len(profiles) > MAX_PROFILES:
        oldest = min(profiles, key=lambda key: profiles[key].get("unix_time", 0.0))
        del profiles[oldest]
    return _write_document(manifest_path, document)
