"""Plain-text rendering of tables and figures (terminal-friendly)."""

from repro.report.tables import Table
from repro.report.plots import bar_chart, line_chart

__all__ = ["Table", "bar_chart", "line_chart"]
