"""ASCII charts: enough to eyeball the shape of every paper figure."""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

_GLYPHS = "*o+x#@%&"


def line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    title: str = "",
    width: int = 72,
    height: int = 18,
    x_labels: Optional[Sequence[str]] = None,
    y_label: str = "",
) -> str:
    """Plot several (x, y) series on a shared character grid.

    X positions are mapped by *index* within the union of x values (the
    paper's bandwidth figures use logarithmic size axes, so equal spacing
    per point is exactly right).
    """
    if not series:
        raise ValueError("nothing to plot")
    xs = sorted({x for points in series.values() for x, _ in points})
    ymax = max((y for points in series.values() for _, y in points), default=1.0)
    ymax = ymax if ymax > 0 else 1.0
    grid = [[" "] * width for _ in range(height)]

    def col(x: float) -> int:
        return round(xs.index(x) * (width - 1) / max(len(xs) - 1, 1))

    def row(y: float) -> int:
        return (height - 1) - round(min(y, ymax) / ymax * (height - 1))

    legend = []
    for glyph, (name, points) in zip(_GLYPHS, series.items()):
        legend.append(f"{glyph} {name}")
        for x, y in points:
            grid[row(y)][col(x)] = glyph

    lines = []
    if title:
        lines.append(title)
    lines.append(f"ymax = {ymax:.4g} {y_label}".rstrip())
    for r in grid:
        lines.append("|" + "".join(r))
    lines.append("+" + "-" * width)
    if x_labels:
        step = max(1, len(x_labels) // 8)
        marks = []
        for i in range(0, len(x_labels), step):
            marks.append(str(x_labels[i]))
        lines.append("  " + "  ".join(marks))
    lines.append("  ".join(legend))
    return "\n".join(line.rstrip() for line in lines)


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 50,
    reference: Optional[float] = None,
) -> str:
    """Horizontal bars; infinite values render as DNF (did not finish)."""
    if not values:
        raise ValueError("nothing to plot")
    finite = [v for v in values.values() if v == v and v != float("inf")]
    vmax = max(finite, default=1.0)
    vmax = vmax if vmax > 0 else 1.0
    label_width = max(len(k) for k in values)
    lines = [title] if title else []
    for name, value in values.items():
        if value != value or value == float("inf"):
            lines.append(f"{name.ljust(label_width)} | DNF")
            continue
        bar = "#" * max(0, round(value / vmax * width))
        lines.append(f"{name.ljust(label_width)} | {bar} {value:.3g}")
    if reference is not None:
        mark = round(reference / vmax * width)
        lines.append(" " * (label_width + 3) + " " * mark + f"^ ref={reference:g}")
    return "\n".join(lines)
