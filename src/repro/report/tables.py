"""Minimal ASCII table renderer used by every experiment."""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence


class Table:
    """Column-aligned text table.

    >>> t = Table(["name", "value"], title="demo")
    >>> t.add_row(["x", 1.5])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    demo
    name | value
    -----+------
    x    | 1.5
    """

    def __init__(self, columns: Sequence[str], title: str = ""):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = [str(c) for c in columns]
        self.title = title
        self.rows: list[list[str]] = []

    @staticmethod
    def _format(value: Any) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            if value != value:  # NaN
                return "-"
            if value == float("inf"):
                return "DNF"
            if abs(value) >= 1e7 or (0 < abs(value) < 0.01):
                return f"{value:.3g}"
            if abs(value) >= 1000:
                return f"{value:.0f}"
            return f"{value:.4g}" if abs(value) >= 1 else f"{value:.3f}"
        return str(value)

    def add_row(self, values: Iterable[Any]) -> None:
        row = [self._format(v) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        rule = "-+-".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(header)
        lines.append(rule)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(line.rstrip() for line in lines)

    def __str__(self) -> str:
        return self.render()
