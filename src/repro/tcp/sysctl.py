"""Linux TCP sysctls relevant to the paper's tuning (§4.2.1).

Two families of knobs control socket buffer sizes:

* ``net.core.rmem_max`` / ``net.core.wmem_max`` — the ceiling an
  *application* may request with ``setsockopt(SO_RCVBUF/SO_SNDBUF)``.
* ``net.ipv4.tcp_rmem`` / ``tcp_wmem`` — triples ``(min, default, max)``
  steering the kernel **auto-tuning**: a socket that never calls
  ``setsockopt`` starts at *default* and may grow to *max*.

The untuned values below are the Linux 2.6.18 defaults of the paper's
Debian nodes (Table 3).  With an 11.6 ms RTT they cap the window around
128–170 kB, i.e. 90–120 Mbps — exactly the collapse of Fig. 3.  The
paper's fix (§4.2.1) raises the relevant maxima to 4 MB (above the
1.45 MB bandwidth-delay product of the Rennes–Nancy path).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import TcpError
from repro.units import KB, MB


@dataclass(frozen=True)
class BufferTriple:
    """A ``(min, default, max)`` auto-tuning triple in bytes."""

    min_bytes: int
    default_bytes: int
    max_bytes: int

    def __post_init__(self):
        if not (0 < self.min_bytes <= self.default_bytes <= self.max_bytes):
            raise TcpError(
                f"invalid buffer triple ({self.min_bytes}, {self.default_bytes}, "
                f"{self.max_bytes}): must be 0 < min <= default <= max"
            )

    def render(self) -> str:
        return f"{self.min_bytes} {self.default_bytes} {self.max_bytes}"


@dataclass(frozen=True)
class SysctlConfig:
    """The TCP-related kernel configuration of one host."""

    #: ceiling for setsockopt(SO_RCVBUF) requests
    rmem_max: int = 131071
    #: ceiling for setsockopt(SO_SNDBUF) requests
    wmem_max: int = 131071
    #: receive-buffer auto-tuning triple (Linux 2.6.18 defaults)
    tcp_rmem: BufferTriple = field(
        default_factory=lambda: BufferTriple(4096, 87380, 174760)
    )
    #: send-buffer auto-tuning triple (Linux 2.6.18 defaults)
    tcp_wmem: BufferTriple = field(
        default_factory=lambda: BufferTriple(4096, 16384, 174760)
    )
    #: RFC 2861: reset cwnd after an idle period longer than the RTO
    tcp_slow_start_after_idle: bool = True
    #: congestion control algorithm (Table 3: "BIC + Sack")
    congestion_control: str = "bic"

    def __post_init__(self):
        if self.rmem_max <= 0 or self.wmem_max <= 0:
            raise TcpError("rmem_max / wmem_max must be positive")
        if self.congestion_control not in ("bic", "reno"):
            raise TcpError(f"unknown congestion control {self.congestion_control!r}")

    # -- the paper's tuning recipes ------------------------------------------------
    def with_buffer_max(self, nbytes: int = 4 * MB) -> "SysctlConfig":
        """§4.2.1: raise the auto-tuning maxima and the setsockopt ceilings.

        The paper sets 4 MB "for compatibility with the rest of the grid"
        (the Rennes–Nancy BDP alone would need 1.45 MB).
        """
        return replace(
            self,
            rmem_max=nbytes,
            wmem_max=nbytes,
            tcp_rmem=replace(self.tcp_rmem, max_bytes=nbytes),
            tcp_wmem=replace(self.tcp_wmem, max_bytes=nbytes),
        )

    def with_buffer_default(self, nbytes: int = 4 * MB) -> "SysctlConfig":
        """§4.2.1, GridMPI: also raise the *middle* (initial) value.

        GridMPI's sockets effectively keep their initial size, so tuning
        the maxima alone does not help it.
        """
        return replace(
            self,
            tcp_rmem=replace(
                self.tcp_rmem,
                default_bytes=nbytes,
                max_bytes=max(nbytes, self.tcp_rmem.max_bytes),
            ),
            tcp_wmem=replace(
                self.tcp_wmem,
                default_bytes=nbytes,
                max_bytes=max(nbytes, self.tcp_wmem.max_bytes),
            ),
        )

    def render_commands(self) -> list[str]:
        """The shell commands a Grid'5000 user would run for this config."""
        return [
            f"echo {self.rmem_max} > /proc/sys/net/core/rmem_max",
            f"echo {self.wmem_max} > /proc/sys/net/core/wmem_max",
            f"echo '{self.tcp_rmem.render()}' > /proc/sys/net/ipv4/tcp_rmem",
            f"echo '{self.tcp_wmem.render()}' > /proc/sys/net/ipv4/tcp_wmem",
        ]


#: Out-of-the-box configuration of the paper's Debian / 2.6.18 nodes.
DEFAULT_SYSCTLS = SysctlConfig()

#: The paper's tuned configuration (4 MB everywhere, §4.2.1).
TUNED_SYSCTLS = SysctlConfig().with_buffer_max(4 * MB).with_buffer_default(4 * MB)

#: Tuned maxima but untouched defaults — what a sysadmin gets after applying
#: only the first half of §4.2.1 (sufficient for auto-tuned sockets, not for
#: GridMPI's).
TUNED_MAX_ONLY_SYSCTLS = SysctlConfig().with_buffer_max(4 * MB)
