"""Socket buffer sizing: application requests vs kernel auto-tuning.

The four MPI implementations differ in how their sockets get buffers
(§4.2.1), which is why the same sysctl tuning helps some and not others:

* ``AUTOTUNE`` — the socket never calls ``setsockopt``; the kernel grows
  the buffer from ``tcp_*mem.default`` up to ``tcp_*mem.max``.  (MPICH2,
  MPICH-Madeleine; also the raw-TCP pingpong.)
* ``INITIAL`` — the *receive* window stays at its initial size
  ``tcp_rmem.default`` (the socket's usage pattern defeats receive-side
  auto-tuning), so raising only the maxima does not help.  (GridMPI —
  hence the paper's extra instruction to raise the middle value.)
* ``FIXED(n)`` — the application requests ``n`` bytes via ``setsockopt``;
  the kernel clamps the request to ``rmem_max``/``wmem_max`` **and
  disables auto-tuning**.  (OpenMPI: 128 kB by default, overridable with
  ``-mca btl_tcp_sndbuf/btl_tcp_rcvbuf``.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import TcpError
from repro.tcp.sysctl import SysctlConfig


@dataclass(frozen=True)
class BufferPolicy:
    """How one endpoint sizes its socket buffers.

    ``sndbuf``/``rcvbuf`` are byte counts (:data:`repro.units.Size`
    semantics), never rates — the UNIT002 lint rule enforces the call
    sites.
    """

    mode: str  # "autotune" | "initial" | "fixed"
    sndbuf: Optional[int] = None  # bytes; only for mode == "fixed"
    rcvbuf: Optional[int] = None  # bytes; only for mode == "fixed"

    def __post_init__(self):
        if self.mode not in ("autotune", "initial", "fixed"):
            raise TcpError(f"unknown buffer mode {self.mode!r}")
        if self.mode == "fixed":
            if not self.sndbuf or not self.rcvbuf:
                raise TcpError("fixed buffer policy needs sndbuf and rcvbuf")
            if self.sndbuf <= 0 or self.rcvbuf <= 0:
                raise TcpError("fixed buffer sizes must be positive")
        elif self.sndbuf is not None or self.rcvbuf is not None:
            raise TcpError(f"buffer sizes only apply to mode='fixed', not {self.mode!r}")

    @staticmethod
    def autotune() -> "BufferPolicy":
        return BufferPolicy("autotune")

    @staticmethod
    def initial() -> "BufferPolicy":
        return BufferPolicy("initial")

    @staticmethod
    def fixed(sndbuf: int, rcvbuf: int) -> "BufferPolicy":
        return BufferPolicy("fixed", sndbuf=sndbuf, rcvbuf=rcvbuf)


def effective_buffers(
    policy: BufferPolicy,
    sender_sysctl: SysctlConfig,
    receiver_sysctl: SysctlConfig,
) -> tuple[int, int]:
    """Resolve the steady-state ``(sndbuf, rcvbuf)`` of a connection.

    The send buffer lives on the sender host, the receive buffer on the
    receiver host; each is governed by its own host's sysctls.
    """
    if policy.mode == "autotune":
        snd = sender_sysctl.tcp_wmem.max_bytes
        rcv = receiver_sysctl.tcp_rmem.max_bytes
    elif policy.mode == "initial":
        # Send-side auto-tuning still grows the queue; the advertised
        # receive window is what stays pinned at its initial value.
        snd = sender_sysctl.tcp_wmem.max_bytes
        rcv = receiver_sysctl.tcp_rmem.default_bytes
    else:  # fixed: setsockopt clamps against the core maxima
        # __post_init__ guarantees both sizes are set for mode == "fixed";
        # the narrowing assert is for mypy, which cannot see that.
        assert policy.sndbuf is not None and policy.rcvbuf is not None
        snd = min(policy.sndbuf, sender_sysctl.wmem_max)
        rcv = min(policy.rcvbuf, receiver_sysctl.rmem_max)
    return snd, rcv
