"""Congestion window dynamics: slow start, BIC/Reno avoidance, losses.

The model is *deterministic*: the paper's Fig. 9 curves are smooth ramps
with reproducible shapes, and determinism keeps every experiment exactly
repeatable.  Loss events are triggered by the connection (see
:mod:`repro.tcp.connection`) when the window crosses a threshold; this
module only evolves the window.

BIC (Table 3: the testbed kernels ran "BIC + Sack") is implemented in its
textbook form: after a loss at window ``W_max``, the window is cut to
``beta * W_max`` and then performs a binary search towards ``W_max``
(increment ``(W_max - W) / 2`` clamped to ``[S_min, S_max]``); past
``W_max`` it probes with slowly doubling increments.  Reno is included as
a baseline for ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TcpError

#: Ethernet TCP maximum segment size (1500 MTU - 40 bytes of headers, with
#: timestamps: 1448 payload bytes).
MSS = 1448

#: BIC constants (Linux 2.6 defaults, in segments).
BIC_SMAX_SEGMENTS = 32
BIC_SMIN_SEGMENTS = 1
BIC_BETA = 0.8

#: Max-probing above W_max is cautious in BIC: small steps that accelerate
#: slowly.  These two constants set the multi-second ramp time scale the
#: paper observes on the 11.6 ms path (Fig. 9).
PROBE_SMAX_SEGMENTS = 8
PROBE_ACCELERATION = 1.2

#: initial window: RFC 3390 for a 1448-byte MSS gives 3 segments.
INITIAL_WINDOW = 3 * MSS


@dataclass
class CongestionState:
    """Per-direction congestion control state."""

    algorithm: str = "bic"
    cwnd: float = float(INITIAL_WINDOW)
    ssthresh: float = float("inf")
    #: window at the last loss (BIC's W_max)
    last_max: float = 0.0
    #: current probing increment beyond last_max (BIC max-probing)
    _probe_increment: float = float(BIC_SMIN_SEGMENTS * MSS)
    losses: int = 0

    def __post_init__(self):
        if self.algorithm not in ("bic", "reno"):
            raise TcpError(f"unknown congestion algorithm {self.algorithm!r}")

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def on_round(self) -> None:
        """Grow the window after one RTT of window-limited transmission."""
        if self.in_slow_start:
            self.cwnd = min(self.cwnd * 2.0, self.ssthresh)
            return
        if self.algorithm == "reno":
            self.cwnd += MSS
            return
        # BIC congestion avoidance.
        smax = BIC_SMAX_SEGMENTS * MSS
        smin = BIC_SMIN_SEGMENTS * MSS
        if self.cwnd < self.last_max:
            # Binary search towards the previous maximum.
            increment = (self.last_max - self.cwnd) / 2.0
            increment = min(max(increment, smin), smax)
        else:
            # Max probing: slowly accelerating exploration of new territory.
            increment = self._probe_increment
            self._probe_increment = min(
                self._probe_increment * PROBE_ACCELERATION,
                PROBE_SMAX_SEGMENTS * MSS,
            )
        self.cwnd += increment

    def on_loss(self) -> None:
        """Multiplicative decrease after a loss event."""
        self.losses += 1
        self.last_max = self.cwnd
        beta = BIC_BETA if self.algorithm == "bic" else 0.5
        self.cwnd = max(float(2 * MSS), self.cwnd * beta)
        self.ssthresh = self.cwnd
        self._probe_increment = float(BIC_SMIN_SEGMENTS * MSS)

    def on_idle_restart(self) -> None:
        """RFC 2861: after an idle period > RTO, restart from the initial
        window (ssthresh is preserved so the ramp back is fast)."""
        self.cwnd = float(INITIAL_WINDOW)
        self._probe_increment = float(BIC_SMIN_SEGMENTS * MSS)

    def clamp(self, max_window: float) -> None:
        """Never let the window exceed what the buffers can hold."""
        if max_window <= 0:
            raise TcpError(f"window clamp must be positive, got {max_window}")
        self.cwnd = min(self.cwnd, float(max_window))
