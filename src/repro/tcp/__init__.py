"""A fluid model of Linux TCP as configured on the paper's testbed.

The model reproduces the mechanisms the paper tunes and measures:

* socket buffers bounded by sysctls, with kernel auto-tuning
  (:mod:`repro.tcp.sysctl`, :mod:`repro.tcp.buffers`);
* congestion control — slow start, BIC congestion avoidance, deterministic
  loss on queue overshoot, idle restart (:mod:`repro.tcp.congestion`);
* window-limited throughput ``min(cwnd, sndbuf, rcvbuf) / RTT`` on top of
  the fluid network (:mod:`repro.tcp.connection`);
* optional sender pacing (GridMPI's modification), modelled as the removal
  of the burstiness penalty on the slow-start overshoot point.
"""

from repro.tcp.buffers import BufferPolicy, effective_buffers
from repro.tcp.congestion import MSS, CongestionState
from repro.tcp.connection import (
    Fabric,
    TCP_STACK_ONEWAY,
    TcpConnection,
    TcpOptions,
    TransferStats,
    WIRE_FACTOR,
)
from repro.tcp.sysctl import (
    DEFAULT_SYSCTLS,
    SysctlConfig,
    TUNED_MAX_ONLY_SYSCTLS,
    TUNED_SYSCTLS,
)

__all__ = [
    "BufferPolicy",
    "CongestionState",
    "DEFAULT_SYSCTLS",
    "Fabric",
    "MSS",
    "SysctlConfig",
    "TCP_STACK_ONEWAY",
    "TUNED_MAX_ONLY_SYSCTLS",
    "TUNED_SYSCTLS",
    "TcpConnection",
    "TcpOptions",
    "TransferStats",
    "WIRE_FACTOR",
    "effective_buffers",
]
