"""The fluid TCP connection: window-limited transfers over the network.

Model summary
-------------
A message of ``n`` bytes becomes ``n * WIRE_FACTOR`` wire bytes (Ethernet
and TCP/IP framing — this is what makes a 1 Gbps link carry 940 Mbps of
application goodput).  The sender computes its effective window::

    W = min(cwnd, sndbuf, rcvbuf)

* ``wire <= W`` — the message fits in one window: it is sent as one
  uncapped fluid flow (bursts at line rate / fair share).
* ``wire > W`` — the transfer is **window-limited**: the flow is capped at
  ``W / RTT`` and a driver wakes up every RTT to evolve the congestion
  window (growth, or a loss event) and adjust the cap.

Loss events are deterministic and happen in three situations, all on
window growth (the window only evolves while it is the binding limit):

1. **Queue overflow** — ``cwnd`` exceeds the path BDP plus the bottleneck
   queue.  This is physical and applies to everyone; it bounds the
   steady-state window (the ~900 Mbps plateau of Fig. 6/7).
2. **Slow-start overshoot** — exponential growth blows through the
   bottleneck queue long before reaching the BDP.  The overshoot point is
   ``ss_cap / ss_cap_divisor``; a *paced* sender (GridMPI) and the plain
   TCP pingpong have divisor 1, while unpaced MPI senders (whose
   fragmented writes burst harder) use divisor ~2.  This is the paper's
   observation that MPI implementations ramp slower than raw TCP (Fig. 9).
3. **Probing losses** — while probing above the previous maximum
   (BIC max-probing), a loss occurs every ``probe_loss_rounds`` rounds.
   This produces the slow second-phase climb of Fig. 9; pacing stretches
   the period.

The returned timestamp of :meth:`TcpConnection.transmit` is the *arrival*
of the last byte at the receiver: sender-side completion plus one-way
propagation plus the receive-side stack crossing.

Calibration
-----------
``TCP_STACK_ONEWAY`` = 12 µs makes Table 4 exact: the cluster's 41 µs TCP
latency = 29 µs wire one-way + 12 µs stack, and the grid's 5812 µs =
5800 µs (half of the 11.6 ms ping RTT) + 12 µs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

from repro import faults as _faults
from repro.errors import TcpError
from repro.obs import runtime as _obs
from repro.faults.profile import FaultProfile
from repro.net.fluid import FluidNetwork
from repro.net.topology import Network, Node, Route
from repro.sim.core import Environment, Event
from repro.sim.queues import Resource
from repro.sim.rng import RngRegistry
from repro.tcp.buffers import BufferPolicy, effective_buffers
from repro.tcp.congestion import CongestionState
from repro.tcp.sysctl import DEFAULT_SYSCTLS, SysctlConfig
from repro.units import KB, usec

#: Ethernet + IP + TCP framing per 1448-byte segment (1538 wire bytes per
#: MSS): 1 Gbps carries ~941 Mbps of goodput, the paper's plateau.
WIRE_FACTOR = 1538.0 / 1448.0

#: Fixed wire cost of a message (minimum frame + connection bookkeeping).
PER_MESSAGE_WIRE_BYTES = 66

#: One-way host stack crossing (see module docstring: calibrated so that
#: Table 4's raw-TCP latencies are exact).
TCP_STACK_ONEWAY = usec(12)

#: Bottleneck queue sizes (router buffer on the WAN path, switch buffer in
#: the cluster).
WAN_QUEUE_BYTES = 512 * KB
LAN_QUEUE_BYTES = 256 * KB

#: Default slow-start overshoot point (before the burstiness divisor).
DEFAULT_SS_CAP_BYTES = 384 * KB

#: Default probing-loss period in rounds (raw TCP / paced senders).
DEFAULT_PROBE_LOSS_ROUNDS = 50

#: Minimum retransmission timeout (Linux): bounds the idle-restart check.
RTO_MIN = 0.2


def _race(env: Environment, first: Event, second: Event) -> Event:
    """Trigger once either child triggers — a slim two-event ``AnyOf``.

    The per-RTT driver loop in :meth:`_Direction.transmit` waits on
    *flow finished or window tick* once per round and then inspects
    ``flow.done`` itself, so the general combinator's tuple/set/result
    dict bookkeeping is pure overhead on the hottest wait in the
    simulator.  Scheduling behaviour is identical to ``AnyOf``: the
    race event triggers (priority NORMAL, same callback position) when
    the first child fires, and a late-failing child is defused exactly
    as ``AnyOf._check`` would.
    """
    race = Event(env)

    def fire(child: Event) -> None:
        if not child._ok:
            child._defused = True
            if not race.triggered:
                race.fail(child._value)
        elif not race.triggered:
            race.succeed(child._value)

    first.callbacks.append(fire)
    second.callbacks.append(fire)
    return race


@dataclass(frozen=True)
class TcpOptions:
    """Per-connection behaviour knobs (set by the MPI implementation)."""

    buffer_policy: BufferPolicy = field(default_factory=BufferPolicy.autotune)
    #: software pacing of sends (GridMPI); informational — its effects are
    #: carried by the two fields below.
    paced: bool = False
    #: divisor applied to the slow-start overshoot point; >1 for senders
    #: whose fragmented writes burst harder than a single TCP stream.
    ss_cap_divisor: float = 1.0
    #: one probing loss every this many rounds above the previous maximum.
    probe_loss_rounds: int = DEFAULT_PROBE_LOSS_ROUNDS
    #: override the congestion control algorithm (None: host sysctl).
    congestion_control: Optional[str] = None
    #: deterministic WAN degradation (None = the clean dedicated path);
    #: when a fault scenario is ambient (``repro.faults.activated``) the
    #: fabric substitutes the scenario's profile here.
    fault_profile: Optional[FaultProfile] = None

    def __post_init__(self):
        if self.ss_cap_divisor < 1.0:
            raise TcpError("ss_cap_divisor must be >= 1")
        if self.probe_loss_rounds < 1:
            raise TcpError("probe_loss_rounds must be >= 1")


@dataclass
class TransferStats:
    """Counters of one connection direction."""

    transfers: int = 0
    payload_bytes: float = 0.0
    window_rounds: int = 0
    losses: int = 0
    #: subset of ``losses`` that were injected by a fault profile
    injected_losses: int = 0
    idle_restarts: int = 0


class _Direction:
    """One half of a full-duplex TCP connection."""

    def __init__(
        self,
        env: Environment,
        fluid: FluidNetwork,
        route: Route,
        src_sysctl: SysctlConfig,
        dst_sysctl: SysctlConfig,
        options: TcpOptions,
        name: str,
        sites: tuple[str, str] = ("", ""),
    ):
        self.env = env
        self.fluid = fluid
        self.route = route
        self.options = options
        self.name = name
        #: endpoint cluster names, data direction: the span-analytics layer
        #: (obs/aggregate.py) keys its WAN-time matrix on this pair.
        self.src_site, self.dst_site = sites
        self.sndbuf, self.rcvbuf = effective_buffers(
            options.buffer_policy, src_sysctl, dst_sysctl
        )
        algo = options.congestion_control or src_sysctl.congestion_control
        self.cc = CongestionState(algorithm=algo)
        self.slow_start_after_idle = src_sysctl.tcp_slow_start_after_idle
        self.stats = TransferStats()
        self._lock = Resource(env, capacity=1)
        #: shared with the opposite direction: a connection receiving data
        #: is not idle, so a long pingpong turnaround must not trigger the
        #: RFC 2861 restart (set by TcpConnection after construction).
        self._activity = [-math.inf]
        self._probe_rounds = 0

        profile = options.fault_profile
        if profile is not None and profile.applies_to(route.inter_site):
            self.faults: Optional[FaultProfile] = profile
            self._rtt_scale = profile.rtt_inflation
            # Separate streams for loss and jitter draws: the loss stream
            # advances per window round, the jitter stream per transmit, so
            # enabling one effect never perturbs the other's sequence.
            rngs = RngRegistry(profile.seed)
            self._loss_rng = (
                rngs.stream(f"faults.loss.{name}") if profile.loss_prob > 0 else None
            )
            self._jitter_rng = (
                rngs.stream(f"faults.jitter.{name}")
                if profile.jitter_frac > 0
                else None
            )
        else:
            self.faults = None
            self._rtt_scale = 1.0
            self._loss_rng = None
            self._jitter_rng = None

        sess = _obs.ACTIVE
        if sess is not None and sess.metrics:
            sess.count("tcp.connections", wan=route.inter_site)
            if self.faults is not None:
                sess.count("faults.profiles_applied", wan=route.inter_site)

        # Precomputed registry keys for the per-message / per-RTT sites —
        # building the sorted label tuple there costs more than the record.
        wan = route.inter_site
        self._k_transfers = _obs.metric_key("tcp.transfers", wan=wan)
        self._k_transfer_bytes = _obs.metric_key("tcp.transfer_bytes", wan=wan)
        self._k_window_rounds = _obs.metric_key("tcp.window_rounds", wan=wan)

        queue = WAN_QUEUE_BYTES if route.inter_site else LAN_QUEUE_BYTES
        # BDP of the (possibly inflated) path: an RTT-inflating fault grows
        # the pipe the window has to fill before the queue overflows.
        bdp = route.bottleneck_bps * self.rtt / 8.0
        #: physical loss threshold: path BDP plus bottleneck queue (bytes).
        self.loss_threshold = bdp + queue
        #: slow-start overshoot point.
        self.ss_cap = (
            min(self.loss_threshold, DEFAULT_SS_CAP_BYTES) / options.ss_cap_divisor
        )

    # -- helpers ------------------------------------------------------------------
    @property
    def rtt(self) -> float:
        return self.route.rtt * self._rtt_scale

    @property
    def rto(self) -> float:
        return max(RTO_MIN, 2.0 * self.rtt)

    def window(self) -> float:
        return min(self.cc.cwnd, self.sndbuf, self.rcvbuf)

    def _cwnd_limited(self) -> bool:
        return self.cc.cwnd <= min(self.sndbuf, self.rcvbuf)

    def _on_window_round(self) -> None:
        """Evolve the congestion window after one window-limited RTT."""
        self.stats.window_rounds += 1
        was_slow_start = self.cc.in_slow_start
        loss_kind = self._evolve_window()

        sess = _obs.ACTIVE
        if sess is None:
            return
        now = self.env.now
        exited_slow_start = was_slow_start and not self.cc.in_slow_start
        if sess.spans:
            sess.sample(now, "tcp.cwnd", self.name, self.cc.cwnd)
            if loss_kind is not None:
                sess.instant(now, f"tcp.loss.{loss_kind}", "tcp", self.name)
            if exited_slow_start:
                sess.instant(now, "tcp.slowstart.exit", "tcp", self.name)
        if sess.metrics:
            sess.count_key(self._k_window_rounds)
            if loss_kind is not None:
                sess.count("tcp.losses", kind=loss_kind, wan=self.route.inter_site)
                if loss_kind == "injected":
                    sess.count("faults.injected_losses")
            if exited_slow_start:
                sess.count("tcp.slowstart_exits", wan=self.route.inter_site)
                sess.gauge("tcp.slowstart_exit_s", now, conn=self.name)

    def _evolve_window(self) -> Optional[str]:
        """One window-evolution step; returns the loss kind (or ``None``)."""
        if (
            self._loss_rng is not None
            and self.faults is not None
            and float(self._loss_rng.random()) < self.faults.loss_prob
        ):
            # Injected WAN loss: indistinguishable from a congestion signal
            # to the sender, so it composes with the deterministic overflow
            # / overshoot / probing losses below.
            self.cc.on_loss()
            self.stats.losses += 1
            self.stats.injected_losses += 1
            self._probe_rounds = 0
            return "injected"
        if not self._cwnd_limited():
            return None  # buffer-limited: the window must not evolve
        cc = self.cc
        if cc.in_slow_start:
            if cc.cwnd >= self.ss_cap:
                cc.on_loss()
                self.stats.losses += 1
                self._probe_rounds = 0
                return "overshoot"
            cc.on_round()
            return None
        if cc.cwnd >= self.loss_threshold:
            cc.on_loss()
            self.stats.losses += 1
            self._probe_rounds = 0
            return "overflow"
        if cc.cwnd >= cc.last_max:
            self._probe_rounds += 1
            if self._probe_rounds >= self.options.probe_loss_rounds:
                cc.on_loss()
                self.stats.losses += 1
                self._probe_rounds = 0
                return "probe"
        cc.on_round()
        return None

    # -- the transfer ----------------------------------------------------------------
    def transmit(self, nbytes: int):
        """Send ``nbytes``; returns the receiver-side arrival time.

        Generator — drive it from a simulation process.  Concurrent
        transmits on the same direction are serialised FIFO (one socket,
        one progress engine: head-of-line blocking is real).
        """
        if nbytes < 0:
            raise TcpError(f"cannot transmit {nbytes} bytes")
        t_post = self.env.now
        grant = self._lock.request()
        yield grant
        try:
            env = self.env
            sess = _obs.ACTIVE
            last_activity = self._activity[0]
            if (
                self.slow_start_after_idle
                and env.now - last_activity > self.rto
                and last_activity >= 0
            ):
                self.cc.on_idle_restart()
                self.stats.idle_restarts += 1
                if sess is not None:
                    if sess.spans:
                        sess.instant(env.now, "tcp.idle_restart", "tcp", self.name)
                    if sess.metrics:
                        sess.count("tcp.idle_restarts", wan=self.route.inter_site)

            wire = nbytes * WIRE_FACTOR + PER_MESSAGE_WIRE_BYTES
            self.stats.transfers += 1
            self.stats.payload_bytes += nbytes
            if sess is not None and sess.metrics:
                sess.count_key(self._k_transfers)
                sess.observe_key(self._k_transfer_bytes, nbytes)

            window = self.window()
            if wire <= window:
                flow = self.fluid.start_flow(self.name, self.route.pipes, wire)
                yield flow.done
            else:
                flow = self.fluid.start_flow(
                    self.name,
                    self.route.pipes,
                    wire,
                    rate_cap_bps=window * 8.0 / self.rtt,
                )
                sent_cap = window * 8.0 / self.rtt
                losses_before = self.stats.losses
                while not flow.done.triggered:
                    # The congestion window only evolves while it is the
                    # binding constraint (congestion window validation);
                    # when the path share limits the flow instead, check
                    # back lazily.  Compare against the cap the fluid layer
                    # actually has (sent_cap): small growth steps may not
                    # have been pushed yet.
                    window_limited = flow.rate_bps >= 0.98 * sent_cap
                    tick = env.timeout(self.rtt if window_limited else 8 * self.rtt)
                    yield _race(env, flow.done, tick)
                    if flow.done.triggered:
                        break
                    if window_limited:
                        self._on_window_round()
                        window = self.window()
                        new_cap = window * 8.0 / self.rtt
                        # Push only material changes (growth steps are a
                        # few percent); shrinks (losses) always propagate.
                        if new_cap < sent_cap or new_cap > 1.05 * sent_cap:
                            self.fluid.set_rate_cap(flow, new_cap)
                            sent_cap = new_cap
                if sess is not None and sess.spans:
                    # Window-limited transfers only: one span per segment
                    # of an NPB run would swamp the trace, but the large
                    # transfers are where the WAN diagnosis lives.
                    sess.complete(
                        t_post,
                        env.now - t_post,
                        "tcp.transmit",
                        "tcp",
                        self.name,
                        {
                            "bytes": nbytes,
                            "window_limited": True,
                            "src_site": self.src_site,
                            "dst_site": self.dst_site,
                            "retransmits": self.stats.losses - losses_before,
                        },
                    )
            self._activity[0] = env.now
            arrival = (
                env.now + self.route.one_way_delay * self._rtt_scale + TCP_STACK_ONEWAY
            )
            if self._jitter_rng is not None and self.faults is not None:
                jitter = (
                    float(self._jitter_rng.random())
                    * self.faults.jitter_frac
                    * self.route.one_way_delay
                )
                arrival += jitter
                if sess is not None and sess.metrics:
                    sess.count("faults.jitter_draws")
                    sess.count("faults.jitter_seconds", inc=jitter)
            return arrival
        finally:
            self._lock.release(grant)


class TcpConnection:
    """A full-duplex TCP connection between two nodes."""

    def __init__(
        self,
        env: Environment,
        fluid: FluidNetwork,
        network: Network,
        a: Node,
        b: Node,
        options: TcpOptions,
        sysctl_a: SysctlConfig,
        sysctl_b: SysctlConfig,
        name: str = "",
    ):
        self.env = env
        self.a = a
        self.b = b
        self.name = name or f"tcp:{a.name}<->{b.name}"
        self.forward = _Direction(
            env, fluid, network.route(a, b), sysctl_a, sysctl_b, options,
            f"{self.name}:fwd", (a.cluster.name, b.cluster.name),
        )
        self.backward = _Direction(
            env, fluid, network.route(b, a), sysctl_b, sysctl_a, options,
            f"{self.name}:rev", (b.cluster.name, a.cluster.name),
        )
        # One socket pair: activity in either direction keeps it warm.
        self.backward._activity = self.forward._activity

    @property
    def rtt(self) -> float:
        return self.forward.rtt

    def direction(self, src: Node) -> _Direction:
        if src is self.a:
            return self.forward
        if src is self.b:
            return self.backward
        raise TcpError(f"{src.name!r} is not an endpoint of {self.name!r}")

    def transmit(self, src: Node, nbytes: int):
        """Send ``nbytes`` from ``src`` to the other endpoint (generator;
        returns the arrival time at the receiver)."""
        return self.direction(src).transmit(nbytes)

    def connect(self):
        """Three-way handshake (generator): one RTT before data can flow."""
        yield self.env.timeout(self.forward.rtt + 2 * TCP_STACK_ONEWAY)


class Fabric:
    """Binds an environment, a topology and per-cluster sysctls together.

    The fabric is the factory for TCP connections; experiments mutate the
    sysctls (the paper's §4.2.1 tuning) before the MPI job starts.
    """

    def __init__(
        self,
        env: Environment,
        network: Network,
        sysctls: SysctlConfig = DEFAULT_SYSCTLS,
    ):
        self.env = env
        self.network = network
        self.fluid = FluidNetwork(env)
        self._sysctls: dict[str, SysctlConfig] = {
            name: sysctls for name in network.clusters
        }
        #: the ambient fault scenario at construction time (frozen here so a
        #: scenario deactivated mid-simulation cannot half-apply).
        self.fault_scenario = _faults.active_scenario()
        if self.fault_scenario is not None:
            self.fault_scenario.install(env, network, self.fluid)

    def set_sysctls(self, config: SysctlConfig, cluster: Optional[str] = None) -> None:
        """Apply a sysctl configuration to one cluster or to every host."""
        if cluster is None:
            for name in self._sysctls:
                self._sysctls[name] = config
            return
        if cluster not in self._sysctls:
            raise TcpError(f"unknown cluster {cluster!r}")
        self._sysctls[cluster] = config

    def sysctls_for(self, node: Node) -> SysctlConfig:
        return self._sysctls[node.cluster.name]

    def connect(self, a: Node, b: Node, options: TcpOptions) -> TcpConnection:
        scenario = self.fault_scenario
        if (
            scenario is not None
            and scenario.profile is not None
            and options.fault_profile is None
        ):
            options = replace(options, fault_profile=scenario.profile)
        return TcpConnection(
            self.env,
            self.fluid,
            self.network,
            a,
            b,
            options,
            self.sysctls_for(a),
            self.sysctls_for(b),
        )
