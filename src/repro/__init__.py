"""repro — a simulation-based reproduction of Hablot et al. (2007),
"Comparison and tuning of MPI implementations in a grid context".

The library contains, from the bottom up:

- :mod:`repro.sim` — a deterministic discrete-event engine.
- :mod:`repro.net` — nodes, links and the Grid'5000 testbed model.
- :mod:`repro.tcp` — a fluid TCP model: congestion control, socket buffers,
  kernel auto-tuning, pacing.
- :mod:`repro.mpi` — a message-passing library (point-to-point with
  eager/rendezvous protocol, a suite of collective algorithms, tracing).
- :mod:`repro.impls` — behavioural models of MPICH2, GridMPI,
  MPICH-Madeleine and OpenMPI.
- :mod:`repro.npb` — the eight NAS Parallel Benchmarks as communication/
  computation skeletons with verification kernels.
- :mod:`repro.apps` — pingpong and the ray2mesh seismic application.
- :mod:`repro.tuning` — the paper's tuning methodology as an advisor API.
- :mod:`repro.experiments` — one entry per paper table/figure.
"""

from repro._version import __version__

__all__ = ["__version__"]
