"""The receive-matching engine: posted-receive and unexpected queues.

MPI's matching rules, implemented the way real MPICH-family engines do it:

* an arriving message first scans the *posted receives* in post order and
  matches the first compatible one;
* a newly posted receive first scans the *unexpected queue* in arrival
  order and matches the first compatible message;
* matching respects the **non-overtaking rule** automatically because
  envelopes from one sender arrive in send order (the transport is FIFO
  per direction) and both queues are scanned in order.

The cost asymmetry of Fig. 4 lives here: an *eager* message that arrives
before its receive is posted goes through the unexpected queue and pays a
memory copy (``nbytes / copy_bandwidth``) when matched; a pre-posted
receive is completed with no extra copy.  A *rendezvous announce* carries
no data — matching it triggers the protocol's ``on_matched`` continuation
(send the ack, then the data).

"Before" is decided in integer engine ticks, with one deliberate
tie-break: an envelope whose arrival tick equals the posting tick is
classified *expected* (no copy) regardless of which event the queue
happened to run first.  Same-instant intra-tick order is a simulator
accident — without the tie-break, the expected/unexpected split (and the
copy charge) would depend on it, which is exactly the schedule
sensitivity the perturbation sanitizer exists to forbid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import MpiError, MpiTruncationError
from repro.mpi.message import Envelope, Status
from repro.mpi.request import Request
from repro.sim.core import Environment


@dataclass
class PostedRecv:
    src: int
    tag: int
    context: str
    request: Request
    max_bytes: Optional[int]

    def accepts(self, env: Envelope) -> bool:
        return env.matches(self.src, self.tag, self.context)


@dataclass
class MailboxStats:
    delivered: int = 0
    expected: int = 0
    unexpected: int = 0
    copies_bytes: float = 0.0


class Mailbox:
    """Per-rank matching engine."""

    def __init__(self, env: Environment, rank: int, copy_bandwidth: float):
        if copy_bandwidth <= 0:
            raise MpiError("copy bandwidth must be positive")
        self.env = env
        self.rank = rank
        self.copy_bandwidth = copy_bandwidth
        self.posted: list[PostedRecv] = []
        self.unexpected: list[Envelope] = []
        self.stats = MailboxStats()

    # -- receive side -----------------------------------------------------------
    def post_recv(
        self,
        src: int,
        tag: int,
        context: str,
        max_bytes: Optional[int] = None,
    ) -> Request:
        """Post a receive; returns its request (may complete later)."""
        request = Request(self.env, "recv")
        for i, envelope in enumerate(self.unexpected):
            if envelope.matches(src, tag, context):
                del self.unexpected[i]
                if envelope.arrived_at_ticks == self.env.now_ticks:
                    # The arrival and this post happened at the same virtual
                    # instant; which ran first is a queue accident, not
                    # physics.  Deterministic tie-break: a tie is *expected*
                    # (no unexpected-queue copy), matching what happens when
                    # the post is processed first — so both intra-tick
                    # orders cost the same and classify the same.
                    self.stats.unexpected -= 1
                    self.stats.expected += 1
                    self._complete_expected(envelope, request, max_bytes)
                else:
                    self._complete_from_unexpected(envelope, request, max_bytes)
                return request
        self.posted.append(PostedRecv(src, tag, context, request, max_bytes))
        return request

    # -- arrival side ------------------------------------------------------------
    def deliver(self, envelope: Envelope) -> None:
        """An envelope arrived from the network (called at arrival time)."""
        self.stats.delivered += 1
        envelope.arrived_at = self.env.now
        envelope.arrived_at_ticks = self.env.now_ticks
        for i, posted in enumerate(self.posted):
            if posted.accepts(envelope):
                del self.posted[i]
                self.stats.expected += 1
                self._complete_posted(envelope, posted)
                return
        self.stats.unexpected += 1
        # Canonical same-instant ordering.  Cross-sender arrival order at one
        # tick is a queue accident MPI leaves unspecified; keeping the
        # unexpected queue sorted by (tick, src, seq) makes ANY_SOURCE
        # matching — table7's merge phase — independent of it.  Per-sender
        # (non-overtaking) order is untouched: one sender's envelopes carry
        # increasing seq and arrive FIFO.
        i = len(self.unexpected)
        while i > 0:
            prev = self.unexpected[i - 1]
            if prev.arrived_at_ticks == envelope.arrived_at_ticks and (
                prev.src,
                prev.seq,
            ) > (envelope.src, envelope.seq):
                i -= 1
            else:
                break
        self.unexpected.insert(i, envelope)

    # -- completion paths ------------------------------------------------------------
    def _check_truncation(self, envelope: Envelope, max_bytes: Optional[int]) -> None:
        if max_bytes is not None and envelope.nbytes > max_bytes:
            raise MpiTruncationError(
                f"rank {self.rank}: message of {envelope.nbytes} B from rank "
                f"{envelope.src} truncates a {max_bytes} B receive buffer"
            )

    def _complete_posted(self, envelope: Envelope, posted: PostedRecv) -> None:
        """The receive was already posted when the envelope arrived."""
        self._complete_expected(envelope, posted.request, posted.max_bytes)

    def _complete_expected(
        self, envelope: Envelope, request: Request, max_bytes: Optional[int]
    ) -> None:
        """Expected-path completion: pre-posted receive, or a same-tick tie."""
        self._check_truncation(envelope, max_bytes)
        if envelope.eager:
            # Direct copy into the user buffer: no extra cost (Fig. 4 arrow 1).
            request._finish(
                (envelope.payload, Status(envelope.src, envelope.tag, envelope.nbytes))
            )
        else:
            # Rendezvous announce: hand control back to the protocol.
            if envelope.on_matched is None:
                raise MpiError("rendezvous announce without continuation")
            envelope.on_matched(request)

    def _complete_from_unexpected(
        self, envelope: Envelope, request: Request, max_bytes: Optional[int]
    ) -> None:
        """The envelope sat in the unexpected queue; the receive came late."""
        self._check_truncation(envelope, max_bytes)
        if envelope.eager:
            # The data landed in a temporary MPI buffer and must now be
            # copied out (Fig. 4 arrow 2).
            copy_time = envelope.nbytes / self.copy_bandwidth
            self.stats.copies_bytes += envelope.nbytes

            def copier():
                yield self.env.timeout(copy_time)
                request._finish(
                    (envelope.payload, Status(envelope.src, envelope.tag, envelope.nbytes))
                )

            self.env.process(copier())
        else:
            if envelope.on_matched is None:
                raise MpiError("rendezvous announce without continuation")
            envelope.on_matched(request)

    # -- introspection ------------------------------------------------------------------
    def idle(self) -> bool:
        """True when no receives or messages are pending (used by the
        runtime to detect ranks that finished with unconsumed traffic)."""
        return not self.posted and not self.unexpected
