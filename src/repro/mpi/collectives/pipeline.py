"""Pipeline (chain) broadcast and scan.

``bcast_pipeline``
    the classic segmented chain: the message is cut into fixed segments
    pushed along rank order.  Bandwidth-optimal asymptotically and very
    effective when the chain crosses each WAN cut exactly once (the
    contiguous grid placement); latency grows linearly with P, so it only
    pays for large messages.

``scan_linear``
    inclusive prefix reduction (``MPI_Scan``), chained along rank order.
"""

from __future__ import annotations

from typing import Any

from repro.mpi.collectives.bcast import SEGMENT_SWITCH_BYTES, bcast_binomial
from repro.mpi.collectives.segutil import chunk_sizes, is_array, join_array, split_array

#: segment size of the chain (64 kB: big enough to amortise per-message
#: overhead, small enough to pipeline deeply)
PIPELINE_SEGMENT_BYTES = 64 * 1024


def bcast_pipeline(comm, tag: int, root: int, nbytes: int, payload: Any):
    size, rank = comm.size, comm.rank
    if size == 1:
        return payload
    if nbytes < 4 * PIPELINE_SEGMENT_BYTES:
        result = yield from bcast_binomial(comm, tag, root, nbytes, payload)
        return result

    vrank = (rank - root) % size
    succ = (rank + 1) % size if vrank < size - 1 else None
    pred = (rank - 1) % size if vrank > 0 else None

    nseg = max(1, (nbytes + PIPELINE_SEGMENT_BYTES - 1) // PIPELINE_SEGMENT_BYTES)
    sizes = chunk_sizes(nbytes, nseg)
    array = is_array(payload)
    shape = payload.shape if array else None
    if rank == root:
        segments = split_array(payload, nseg) if array else [payload] * nseg
        if payload is None:
            segments = [None] * nseg
    else:
        segments = [None] * nseg

    for i in range(nseg):
        if pred is not None:
            (shape_in, seg), _ = yield from comm._crecv(pred, tag)
            segments[i] = seg
            if shape_in is not None:
                shape = shape_in
        if succ is not None:
            yield from comm._csend(succ, sizes[i], (shape, segments[i]), tag)

    if rank == root:
        return payload
    if segments and is_array(segments[0]):
        return join_array(segments, shape if shape is not None else (-1,))
    return segments[0]


def scan_linear(comm, tag: int, nbytes: int, payload: Any, op):
    """Inclusive scan: rank r returns op(payload_0, ..., payload_r)."""
    rank, size = comm.rank, comm.size
    accumulated = payload
    if rank > 0:
        upstream, _ = yield from comm._crecv(rank - 1, tag)
        accumulated = op(upstream, payload)
    if rank < size - 1:
        yield from comm._csend(rank + 1, nbytes, accumulated, tag)
    return accumulated
