"""Payload segmentation helpers for segment-based collective algorithms.

Three payload regimes flow through the collectives:

* ``None`` — timing-only runs: all that moves is byte counts.
* ``numpy.ndarray`` — verification runs: arrays are genuinely split,
  reduced and reassembled so tests can check numerical correctness.
* anything else (opaque) — carried whole; segment-based algorithms either
  carry the whole object per segment (broadcast-like, harmless) or refuse
  (reduction-scatter, where splitting is semantically required).
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.errors import MpiError


def chunk_sizes(nbytes: int, parts: int) -> list[int]:
    """Split ``nbytes`` into ``parts`` balanced non-negative chunks."""
    if parts <= 0:
        raise MpiError(f"cannot split into {parts} parts")
    base, rem = divmod(int(nbytes), parts)
    return [base + (1 if i < rem else 0) for i in range(parts)]


def split_array(arr: Optional[np.ndarray], parts: int) -> Optional[list]:
    """Split an array into ``parts`` balanced 1-D segments (None-safe)."""
    if arr is None:
        return None
    flat = np.asarray(arr).reshape(-1)
    return np.array_split(flat, parts)


def join_array(segments: list, shape) -> np.ndarray:
    """Reassemble segments produced by :func:`split_array`."""
    return np.concatenate([np.asarray(s).reshape(-1) for s in segments]).reshape(shape)


def is_array(payload: Any) -> bool:
    return isinstance(payload, np.ndarray)


def payload_shape(payload: Any):
    return payload.shape if is_array(payload) else None
