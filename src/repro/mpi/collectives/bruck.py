"""Bruck algorithms for latency-bound (small-message) collectives.

``alltoall_bruck``
    log2(P) rounds instead of P-1: each round r sends, to the rank
    ``2^r`` away, every block whose destination's bit r is set.  Total
    volume grows to ``(nbytes * P/2) * log2(P)`` but the round count —
    the thing that hurts at 5.8 ms a hop — drops from P-1 to ceil(log2 P).
``allgather_bruck``
    the allgather variant: blocks accumulate doubling each round.
"""

from __future__ import annotations

import math
from typing import Any, Optional, Sequence

from repro.errors import MpiError


def alltoall_bruck(comm, tag: int, nbytes_each: int, payloads: Optional[Sequence]):
    size, rank = comm.size, comm.rank
    if payloads is not None and len(payloads) != size:
        raise MpiError(f"alltoall needs {size} payloads, got {len(payloads)}")
    if size == 1:
        return [payloads[0] if payloads is not None else None]

    # Phase 1: local rotation — block for destination d sits at slot
    # (d - rank) mod P.
    slots: list[Any] = [
        payloads[(rank + i) % size] if payloads is not None else None
        for i in range(size)
    ]
    # track the destination of each slot for the final inverse rotation
    destinations = [(rank + i) % size for i in range(size)]

    # Phase 2: log rounds.
    r = 0
    while (1 << r) < size:
        step = 1 << r
        send_to = (rank + step) % size
        recv_from = (rank - step) % size
        moving = [i for i in range(size) if i & step]
        bundle = {i: (slots[i], destinations[i]) for i in moving}
        send_req = comm._cisend(send_to, nbytes_each * len(moving), bundle, tag)
        received, _ = yield from comm._crecv(recv_from, tag)
        yield from send_req.wait()
        for i, (block, dest) in received.items():
            slots[i] = block
            destinations[i] = dest
        r += 1

    # Phase 3: place blocks by their recorded source.  After the rounds,
    # slot i holds the block whose *destination* is this rank, originating
    # from rank (rank - i) mod P.
    result: list[Any] = [None] * size
    for i in range(size):
        source = (rank - i) % size
        result[source] = slots[i]
    return result


def allgather_bruck(comm, tag: int, nbytes_each: int, payload: Any):
    size, rank = comm.size, comm.rank
    blocks: dict[int, Any] = {rank: payload}
    step = 1
    while step < size:
        send_to = (rank - step) % size
        recv_from = (rank + step) % size
        count = min(step, size - step)
        # send the `count` most recently accumulated blocks
        to_send = {i: blocks[i] for i in list(blocks)[:count]}
        send_req = comm._cisend(send_to, nbytes_each * len(to_send), dict(to_send), tag)
        received, _ = yield from comm._crecv(recv_from, tag)
        yield from send_req.wait()
        blocks.update(received)
        step <<= 1
    if len(blocks) != size:
        raise MpiError(f"bruck allgather ended with {len(blocks)} of {size} blocks")
    return [blocks[i] for i in range(size)]
