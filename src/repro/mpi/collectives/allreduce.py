"""Allreduce algorithms.

``recursive_doubling``
    log2(P) exchange rounds of the full vector — latency-optimal, moves
    ``nbytes * log2(P)`` per rank (the MPICH-family default).
``rabenseifner``
    reduce-scatter (recursive halving) + allgather (recursive doubling):
    moves only ``2 * nbytes * (P-1)/P`` per rank — GridMPI's
    bandwidth-optimal choice for large vectors (Matsuda et al.,
    Cluster'06).  The exchange dimensions are ordered so the *highest*
    rank bit — the inter-site dimension under the standard contiguous
    placement — carries the smallest blocks: the reduce-scatter crosses
    the WAN with ``nbytes/P`` instead of ``nbytes/2``, which is the
    long-fat-network adaptation the GridMPI authors describe.  Falls
    back to recursive doubling for small vectors, non-power-of-two rank
    counts, and opaque payloads (where the semantically required vector
    split is impossible).
``reduce_bcast``
    naive composition, kept as an ablation baseline.
``hierarchical``
    topology-aware (§5 future work): LAN-local combine to each site
    leader, one symmetric WAN exchange among the leaders (every leader
    sends its partial to every other, all transfers overlapping),
    LAN-local broadcast — ``S(S-1)`` WAN messages instead of the ``P``
    full-vector crossings of recursive doubling's inter-site round, and
    a single overlapped WAN traversal instead of a star's two.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.obs import runtime as _obs
from repro.mpi.collectives.bcast import SEGMENT_SWITCH_BYTES, bcast_binomial
from repro.mpi.collectives.hierarchy import (
    hier_span,
    local_bcast,
    local_reduce,
    site_layout,
)
from repro.mpi.collectives.reduce import reduce_binomial
from repro.mpi.collectives.segutil import chunk_sizes, is_array


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def allreduce_recursive_doubling(comm, tag: int, nbytes: int, payload: Any, op):
    size, rank = comm.size, comm.rank
    if size == 1:
        return payload
    result = payload

    # Fold the remainder down to the nearest power of two.
    pof2 = 1
    while pof2 * 2 <= size:
        pof2 *= 2
    rem = size - pof2

    if rank < 2 * rem:
        if rank % 2 == 0:  # evens hand their data to the odd neighbour
            yield from comm._csend(rank + 1, nbytes, result, tag)
            newrank = -1
        else:
            other, _ = yield from comm._crecv(rank - 1, tag)
            result = op(result, other)
            newrank = rank // 2
    else:
        newrank = rank - rem

    if newrank >= 0:
        mask = 1
        while mask < pof2:
            newpartner = newrank ^ mask
            partner = (
                newpartner * 2 + 1 if newpartner < rem else newpartner + rem
            )
            send_req = comm._cisend(partner, nbytes, result, tag)
            other, _ = yield from comm._crecv(partner, tag)
            yield from send_req.wait()
            result = op(result, other)
            mask <<= 1

    # Unfold: give the folded evens their result back.
    if rank < 2 * rem:
        if rank % 2 == 0:
            result, _ = yield from comm._crecv(rank + 1, tag)
        else:
            yield from comm._csend(rank - 1, nbytes, result, tag)
    return result


def allreduce_rabenseifner(comm, tag: int, nbytes: int, payload: Any, op):
    size, rank = comm.size, comm.rank
    if size == 1:
        return payload
    splittable = payload is None or is_array(payload)
    if (
        not _is_power_of_two(size)
        or nbytes < SEGMENT_SWITCH_BYTES
        or not splittable
    ):
        result = yield from allreduce_recursive_doubling(comm, tag, nbytes, payload, op)
        return result

    steps = size.bit_length() - 1
    sizes = chunk_sizes(nbytes, size)
    if payload is None:
        segments: dict[int, object] = {i: None for i in range(size)}
    else:
        flat = np.asarray(payload).reshape(-1)
        bounds = np.array_split(np.arange(flat.size), size)
        segments = {i: flat[idx] for i, idx in enumerate(bounds)}
    shape = payload.shape if is_array(payload) else None

    sess = _obs.ACTIVE
    trace_phases = sess is not None and sess.spans
    obs_lane = f"rank{rank}"

    # --- reduce-scatter by recursive halving --------------------------------------
    # Round k exchanges across rank bit k (lowest bit first): the highest
    # bit — inter-site under contiguous placement — goes last, when only
    # 2/P of the vector remains in play.
    t_rs = comm.env.now
    owned = set(range(size))
    for k in range(steps):
        bit = 1 << k
        partner = rank ^ bit
        keep = {i for i in owned if (i & bit) == (rank & bit)}
        give = owned - keep
        send_bytes = sum(sizes[i] for i in give)
        send_payload = {i: segments[i] for i in give} if payload is not None else None
        send_req = comm._cisend(partner, send_bytes, send_payload, tag)
        other, _ = yield from comm._crecv(partner, tag)
        yield from send_req.wait()
        if payload is not None:
            for i, seg in other.items():
                segments[i] = op(segments[i], seg)
        owned = keep

    # Each rank now owns exactly its own reduced segment: owned == {rank}.
    if trace_phases:
        sess.complete(
            t_rs,
            comm.env.now - t_rs,
            "allreduce.rab.reduce_scatter",
            "mpi.collective.phase",
            obs_lane,
            {"bytes": nbytes},
        )

    # --- allgather by recursive doubling --------------------------------------------
    # Mirror order (highest bit first): the inter-site exchange happens
    # while each rank holds a single segment.
    t_ag = comm.env.now
    for k in reversed(range(steps)):
        bit = 1 << k
        partner = rank ^ bit
        send_bytes = sum(sizes[i] for i in owned)
        send_payload = {i: segments[i] for i in owned} if payload is not None else None
        send_req = comm._cisend(partner, send_bytes, send_payload, tag)
        other, _ = yield from comm._crecv(partner, tag)
        yield from send_req.wait()
        if payload is not None:
            segments.update(other)
            owned = owned | set(other)
        else:
            owned = owned | {i ^ bit for i in owned}
    if trace_phases:
        sess.complete(
            t_ag,
            comm.env.now - t_ag,
            "allreduce.rab.allgather",
            "mpi.collective.phase",
            obs_lane,
            {"bytes": nbytes},
        )

    if payload is None:
        return None
    return np.concatenate(
        [np.asarray(segments[i]).reshape(-1) for i in range(size)]
    ).reshape(shape)


def allreduce_reduce_bcast(comm, tag: int, nbytes: int, payload: Any, op):
    result = yield from reduce_binomial(comm, tag, 0, nbytes, payload, op)
    result = yield from bcast_binomial(comm, tag, 0, nbytes, result)
    return result


def allreduce_hierarchical(comm, tag: int, nbytes: int, payload: Any, op):
    """LAN combine -> symmetric leader exchange -> LAN broadcast."""
    layout = site_layout(comm, 0)
    if layout.single_site:
        result = yield from allreduce_recursive_doubling(comm, tag, nbytes, payload, op)
        return result
    rank = comm.rank

    # Phase 1 (LAN): combine within each site to its leader.
    t_lan = comm.env.now
    result = yield from local_reduce(comm, tag, layout, nbytes, payload, op)
    if len(layout.local) > 1:
        hier_span(comm, "allreduce", "lan", t_lan, nbytes, layout)

    # Phase 2 (WAN): every leader sends its partial to every other leader
    # and combines what it receives in leader-election order — the same
    # order on every leader, so all sites compute the identical total.
    # All transfers overlap: one WAN traversal, not a star's two.
    if layout.is_leader:
        t_wan = comm.env.now
        partials = {rank: result}
        requests = [
            comm._cisend(leader, nbytes, result, tag)
            for leader in layout.leaders
            if leader != rank
        ]
        for leader in layout.leaders:
            if leader != rank:
                other, _ = yield from comm._crecv(leader, tag)
                partials[leader] = other
        for request in requests:
            yield from request.wait()
        result = partials[layout.leaders[0]]
        for leader in layout.leaders[1:]:
            result = op(result, partials[leader])
        hier_span(comm, "allreduce", "wan", t_wan, nbytes, layout)

    # Phase 3 (LAN): leaders broadcast the total within their site.
    t_out = comm.env.now
    result = yield from local_bcast(comm, tag, layout, nbytes, result)
    if len(layout.local) > 1:
        hier_span(comm, "allreduce", "lan", t_out, nbytes, layout)
    return result
