"""All-to-all exchange: pairwise algorithm (P-1 balanced rounds).

Each round r exchanges with partner ``rank XOR r`` (power-of-two P) or the
rotation partner otherwise, keeping every NIC busy with exactly one send
and one receive — the standard large-message algorithm in MPICH.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.errors import MpiError


def _partners(size: int, rank: int):
    """Partner sequence for the pairwise exchange."""
    if size & (size - 1) == 0:  # power of two: XOR pairing
        for r in range(1, size):
            yield rank ^ r, rank ^ r
    else:  # rotation: send to rank+r, receive from rank-r
        for r in range(1, size):
            yield (rank + r) % size, (rank - r) % size


def alltoall_pairwise(comm, tag: int, nbytes_each: int, payloads: Optional[Sequence]):
    size, rank = comm.size, comm.rank
    if payloads is not None and len(payloads) != size:
        raise MpiError(f"alltoall needs {size} payloads, got {len(payloads)}")
    result: list[Any] = [None] * size
    result[rank] = payloads[rank] if payloads is not None else None
    for dst, src in _partners(size, rank):
        item = payloads[dst] if payloads is not None else None
        send_req = comm._cisend(dst, nbytes_each, item, tag)
        result[src], _ = yield from comm._crecv(src, tag)
        yield from send_req.wait()
    return result


def alltoallv_pairwise(
    comm,
    tag: int,
    send_sizes: Sequence[int],
    payloads: Optional[Sequence],
):
    size, rank = comm.size, comm.rank
    if len(send_sizes) != size:
        raise MpiError(f"alltoallv needs {size} sizes, got {len(send_sizes)}")
    if payloads is not None and len(payloads) != size:
        raise MpiError(f"alltoallv needs {size} payloads, got {len(payloads)}")
    result: list[Any] = [None] * size
    sizes_out: list[int] = [0] * size
    result[rank] = payloads[rank] if payloads is not None else None
    sizes_out[rank] = int(send_sizes[rank])
    for dst, src in _partners(size, rank):
        item = payloads[dst] if payloads is not None else None
        send_req = comm._cisend(dst, int(send_sizes[dst]), item, tag)
        result[src], status = yield from comm._crecv(src, tag)
        sizes_out[src] = status.nbytes
        yield from send_req.wait()
    return result, sizes_out
