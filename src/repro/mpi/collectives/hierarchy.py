"""Site-leader election and LAN-local building blocks.

The topology-aware collectives (MPICH-G2's multilevel scheme, the
paper's §5 future work) all share one structure: combine inside each
site over cheap LAN links, cross the WAN exactly once per site via an
elected *leader*, then distribute locally again.  This module holds the
pieces they share.

Leader-election invariants (tested in ``test_hierarchical_collectives``):

1. Election is a pure function of ``comm.cluster_of_ranks()`` (and the
   root, for rooted operations) — every rank computes the identical
   leader map with no communication.
2. Each site's leader is its lowest-numbered rank, except the root's
   site, which the root itself leads (the root never forwards through
   an intermediary on its own LAN).
3. Leaders depend only on site membership, never on rank contiguity:
   an interleaved placement elects the same leaders as a contiguous
   one.
4. A single-site communicator degrades to the flat default algorithm —
   the hierarchical dispatch adds no messages when there is no WAN.

Phase spans ``coll.<op>.hier.{lan,wan}`` ride the ambient telemetry
session (:mod:`repro.obs.runtime`) and cost nothing when it is off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.obs import runtime as _obs


@dataclass(frozen=True)
class SiteLayout:
    """One rank's view of the leader structure on one placement."""

    rank: int
    #: cluster name of every rank
    clusters: tuple[str, ...]
    #: one leader per site, in site first-appearance order (rank 0's
    #: site first) — the deterministic WAN iteration order
    leaders: tuple[int, ...]
    #: leader of this rank's site
    my_leader: int
    #: ranks sharing this rank's site, ascending
    local: tuple[int, ...]

    @property
    def single_site(self) -> bool:
        return len(self.leaders) == 1

    @property
    def is_leader(self) -> bool:
        return self.rank == self.my_leader


def site_layout(comm, root: int = 0) -> SiteLayout:
    """Elect one leader per site (see the module invariants).

    For rootless operations pass ``root=0``: rank 0 is trivially the
    lowest rank of its own site, so the override is a no-op and the
    election is the pure lowest-rank-per-site map.
    """
    clusters = comm.cluster_of_ranks()
    leaders: dict[str, int] = {}
    for r in range(comm.size):
        leaders.setdefault(clusters[r], r)
    leaders[clusters[root]] = root
    return SiteLayout(
        rank=comm.rank,
        clusters=tuple(clusters),
        leaders=tuple(leaders.values()),
        my_leader=leaders[clusters[comm.rank]],
        local=tuple(
            r for r in range(comm.size) if clusters[r] == clusters[comm.rank]
        ),
    )


def hier_span(
    comm, op: str, phase: str, t_start, nbytes: int, layout: SiteLayout
) -> None:
    """Record one ``coll.<op>.hier.<phase>`` span on this rank's lane.

    The ``sites`` arg (how many WAN endpoints the phase spans) lets the
    span-analytics layer relate hierarchical-phase cost to topology
    fan-out without re-deriving the election.
    """
    sess = _obs.ACTIVE
    if sess is None or not sess.spans:
        return
    sess.complete(
        t_start,
        comm.env.now - t_start,
        f"coll.{op}.hier.{phase}",
        "mpi.collective.phase",
        f"rank{comm.rank}",
        {"bytes": nbytes, "sites": len(layout.leaders)},
    )


# --- LAN-local building blocks ---------------------------------------------------
# All three walk a binomial tree over ``layout.local`` rooted at the site
# leader; only the list indices are virtual ranks, the wire carries the
# real global ranks.


def local_bcast(comm, tag: int, layout: SiteLayout, nbytes: int, payload: Any):
    """Leader -> every local rank (binomial); returns the payload."""
    local = layout.local
    lsize = len(local)
    if lsize == 1:
        return payload
    lroot = local.index(layout.my_leader)
    vrank = (local.index(comm.rank) - lroot) % lsize
    mask = 1
    while mask < lsize:
        if vrank & mask:
            src = local[(vrank - mask + lroot) % lsize]
            payload, _ = yield from comm._crecv(src, tag)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vrank + mask < lsize:
            dst = local[(vrank + mask + lroot) % lsize]
            yield from comm._csend(dst, nbytes, payload, tag)
        mask >>= 1
    return payload


def local_reduce(comm, tag: int, layout: SiteLayout, nbytes: int, payload: Any, op):
    """Every local rank -> leader (binomial combine); the leader returns
    the site partial, everyone else ``None``."""
    local = layout.local
    lsize = len(local)
    if lsize == 1:
        return payload
    lroot = local.index(layout.my_leader)
    vrank = (local.index(comm.rank) - lroot) % lsize
    result = payload
    mask = 1
    while mask < lsize:
        if vrank & mask:
            dst = local[(vrank - mask + lroot) % lsize]
            yield from comm._csend(dst, nbytes, result, tag)
            return None
        partner = vrank + mask
        if partner < lsize:
            other, _ = yield from comm._crecv(local[(partner + lroot) % lsize], tag)
            result = op(result, other)
        mask <<= 1
    return result


def local_gather(comm, tag: int, layout: SiteLayout, nbytes_each: int, payload: Any):
    """Every local rank -> leader; the leader returns a bundle keyed by
    *global* rank, everyone else ``None``."""
    local = layout.local
    lsize = len(local)
    if lsize == 1:
        return {comm.rank: payload}
    lroot = local.index(layout.my_leader)
    vrank = (local.index(comm.rank) - lroot) % lsize
    bundle: dict[int, Any] = {comm.rank: payload}
    mask = 1
    while mask < lsize:
        if vrank & mask:
            dst = local[(vrank - mask + lroot) % lsize]
            yield from comm._csend(dst, nbytes_each * len(bundle), bundle, tag)
            return None
        child = vrank + mask
        if child < lsize:
            received, _ = yield from comm._crecv(local[(child + lroot) % lsize], tag)
            bundle.update(received)
        mask <<= 1
    return bundle
