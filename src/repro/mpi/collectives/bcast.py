"""Broadcast algorithms.

``binomial``
    log2(P) rounds; each tree edge moves the full message.  On a grid
    split, several edges cross the WAN with the whole payload — the
    default that GridMPI improves on.
``linear``
    root sends to every rank in turn (baseline; serialises at the root
    NIC).
``van_de_geijn``
    scatter + ring allgather (GridMPI's large-message broadcast,
    after Matsuda et al. Cluster'06): every WAN crossing carries only a
    1/P segment, and the ring pipelines them.  Below
    ``SEGMENT_SWITCH_BYTES`` it falls back to binomial, as real
    implementations do.
``hierarchical``
    topology-aware (the paper's §5 future work): one leader per site
    receives over the WAN, then broadcasts locally with a binomial tree.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.obs import runtime as _obs
from repro.mpi.collectives.hierarchy import hier_span, local_bcast, site_layout
from repro.mpi.collectives.segutil import (
    chunk_sizes,
    is_array,
    join_array,
    payload_shape,
    split_array,
)

#: below this size the segment-based algorithms degrade to binomial
SEGMENT_SWITCH_BYTES = 16 * 1024


def bcast_binomial(comm, tag: int, root: int, nbytes: int, payload: Any):
    size, rank = comm.size, comm.rank
    vrank = (rank - root) % size
    mask = 1
    while mask < size:
        if vrank & mask:
            src = (vrank - mask + root) % size
            payload, _ = yield from comm._crecv(src, tag)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vrank + mask < size:
            dst = (vrank + mask + root) % size
            yield from comm._csend(dst, nbytes, payload, tag)
        mask >>= 1
    return payload


def bcast_linear(comm, tag: int, root: int, nbytes: int, payload: Any):
    if comm.rank == root:
        for dst in range(comm.size):
            if dst != root:
                yield from comm._csend(dst, nbytes, payload, tag)
        return payload
    payload, _ = yield from comm._crecv(root, tag)
    return payload


def bcast_van_de_geijn(comm, tag: int, root: int, nbytes: int, payload: Any):
    size, rank = comm.size, comm.rank
    if size == 1:
        return payload
    if nbytes < SEGMENT_SWITCH_BYTES:
        result = yield from bcast_binomial(comm, tag, root, nbytes, payload)
        return result

    vrank = (rank - root) % size
    sizes = chunk_sizes(nbytes, size)
    shape = payload_shape(payload)
    array = is_array(payload)
    if rank == root:
        segments: Optional[list] = (
            split_array(payload, size) if array else [payload] * size
        )
        if payload is None:
            segments = [None] * size
    else:
        segments = [None] * size

    sess = _obs.ACTIVE
    trace_phases = sess is not None and sess.spans
    obs_lane = f"rank{rank}"

    # --- binomial scatter of the segments -------------------------------------
    # Each rank tracks the vrank interval [lo, hi) it belongs to; the
    # interval owner (lo) forwards the upper half of its segments.
    t_scatter = comm.env.now
    lo, hi = 0, size
    meta = shape if rank == root else None
    while hi - lo > 1:
        mid = (lo + hi) // 2
        upper_bytes = sum(sizes[mid:hi])
        if vrank == lo:
            chunk = segments[mid:hi]
            yield from comm._csend(
                (mid + root) % size, upper_bytes, (meta, chunk), tag
            )
        elif vrank == mid:
            (meta, chunk), _ = yield from comm._crecv((lo + root) % size, tag)
            segments[mid:hi] = chunk
        if vrank < mid:
            hi = mid
        else:
            lo = mid
    shape = meta
    if trace_phases:
        sess.complete(
            t_scatter,
            comm.env.now - t_scatter,
            "bcast.vdg.scatter",
            "mpi.collective.phase",
            obs_lane,
            {"bytes": nbytes},
        )

    # --- ring allgather of the segments ----------------------------------------
    t_ring = comm.env.now
    right = (vrank + 1) % size
    left = (vrank - 1) % size
    for step in range(size - 1):
        send_idx = (vrank - step) % size
        recv_idx = (vrank - step - 1) % size
        send_req = comm._cisend(
            (right + root) % size, sizes[send_idx], (shape, segments[send_idx]), tag
        )
        (shape_in, seg), _ = yield from comm._crecv((left + root) % size, tag)
        segments[recv_idx] = seg
        if shape_in is not None:
            shape = shape_in
        yield from send_req.wait()
    if trace_phases:
        sess.complete(
            t_ring,
            comm.env.now - t_ring,
            "bcast.vdg.allgather",
            "mpi.collective.phase",
            obs_lane,
            {"bytes": nbytes},
        )

    if rank == root:
        return payload
    # Decide from what was received: arrays are reassembled, opaque
    # payloads were carried whole in every segment, None stays None.
    if segments and is_array(segments[0]):
        return join_array(segments, shape if shape is not None else (-1,))
    return segments[0]


def bcast_hierarchical(comm, tag: int, root: int, nbytes: int, payload: Any):
    """Topology-aware: WAN once per site, then local binomial trees."""
    layout = site_layout(comm, root)
    rank = comm.rank

    # Phase 1: root -> other leaders (WAN, leader-election order).
    t_wan = comm.env.now
    if rank == root:
        for leader in layout.leaders:
            if leader != root:
                yield from comm._csend(leader, nbytes, payload, tag)
    elif layout.is_leader:
        payload, _ = yield from comm._crecv(root, tag)
    if layout.is_leader:
        hier_span(comm, "bcast", "wan", t_wan, nbytes, layout)

    # Phase 2: leader -> local ranks (binomial within the cluster).
    t_lan = comm.env.now
    if len(layout.local) > 1:
        payload = yield from local_bcast(comm, tag, layout, nbytes, payload)
        hier_span(comm, "bcast", "lan", t_lan, nbytes, layout)
    return payload
