"""Barrier algorithms.

``dissemination``
    ceil(log2 P) rounds of 1-byte notifications; on a grid split every
    round sends across the WAN.
``hierarchical``
    topology-aware (§5 future work): local arrival gather to each site
    leader, one WAN round trip per non-coordinator site, local release
    broadcast — ``2(S-1)`` WAN notifications instead of one per rank
    per dissemination round.
"""

from __future__ import annotations

from repro.mpi.collectives.hierarchy import (
    hier_span,
    local_bcast,
    local_gather,
    site_layout,
)


def barrier_dissemination(comm, tag: int):
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    step = 1
    while step < size:
        dst = (rank + step) % size
        src = (rank - step) % size
        send_req = comm._cisend(dst, 1, None, tag)
        yield from comm._crecv(src, tag)
        yield from send_req.wait()
        step <<= 1


def barrier_hierarchical(comm, tag: int):
    """LAN arrival gather -> WAN leader round trip -> LAN release."""
    if comm.size == 1:
        return
    layout = site_layout(comm, 0)
    if layout.single_site:
        yield from barrier_dissemination(comm, tag)
        return
    rank = comm.rank
    coordinator = layout.leaders[0]

    # Phase 1 (LAN): every rank signals arrival up to its site leader.
    t_lan = comm.env.now
    yield from local_gather(comm, tag, layout, 1, None)
    if len(layout.local) > 1:
        hier_span(comm, "barrier", "lan", t_lan, 1, layout)

    # Phase 2 (WAN): leaders check in with the coordinator and wait for
    # the release — everyone has arrived once the coordinator has heard
    # from every site.
    if layout.is_leader:
        t_wan = comm.env.now
        if rank == coordinator:
            for leader in layout.leaders:
                if leader != coordinator:
                    yield from comm._crecv(leader, tag)
            for leader in layout.leaders:
                if leader != coordinator:
                    yield from comm._csend(leader, 1, None, tag)
        else:
            yield from comm._csend(coordinator, 1, None, tag)
            yield from comm._crecv(coordinator, tag)
        hier_span(comm, "barrier", "wan", t_wan, 1, layout)

    # Phase 3 (LAN): leaders release their site.
    t_out = comm.env.now
    yield from local_bcast(comm, tag, layout, 1, None)
    if len(layout.local) > 1:
        hier_span(comm, "barrier", "lan", t_out, 1, layout)
