"""Dissemination barrier: ceil(log2 P) rounds of 1-byte notifications."""

from __future__ import annotations


def barrier_dissemination(comm, tag: int):
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    step = 1
    while step < size:
        dst = (rank + step) % size
        src = (rank - step) % size
        send_req = comm._cisend(dst, 1, None, tag)
        yield from comm._crecv(src, tag)
        yield from send_req.wait()
        step <<= 1
