"""Collective algorithms and their registry.

Each algorithm is a generator function over the communicator's internal
point-to-point primitives, so its cost on a given topology emerges from
the messages it actually sends — the WAN-crossing pattern of a binomial
tree vs Van de Geijn's scatter+ring is what produces GridMPI's FT/IS wins
in Fig. 10, not a formula.

Registry keys are the strings stored in each implementation's
``collectives`` table (:mod:`repro.impls`):

===========  =====================================================
operation    algorithms
===========  =====================================================
bcast        ``binomial`` | ``linear`` | ``van_de_geijn`` |
             ``hierarchical`` | ``pipeline``
reduce       ``binomial`` | ``hierarchical``
allreduce    ``recursive_doubling`` | ``rabenseifner`` |
             ``reduce_bcast`` | ``hierarchical``
allgather    ``ring`` | ``recursive_doubling`` | ``bruck``
alltoall     ``pairwise`` | ``bruck``
gather       ``binomial`` | ``linear`` | ``hierarchical``
scatter      ``binomial`` | ``linear``
barrier      ``dissemination`` | ``hierarchical``
scan         ``linear``
===========  =====================================================

The ``hierarchical`` family (the paper's §5 future work, after
MPICH-G2's multilevel collectives) shares the site-leader election of
:mod:`repro.mpi.collectives.hierarchy`: LAN-local combine, one WAN
exchange among the elected leaders, LAN-local distribute.
"""

from repro.errors import MpiError
from repro.mpi.collectives.allgather import allgather_recursive_doubling, allgather_ring
from repro.mpi.collectives.allreduce import (
    allreduce_hierarchical,
    allreduce_rabenseifner,
    allreduce_recursive_doubling,
    allreduce_reduce_bcast,
)
from repro.mpi.collectives.alltoall import alltoall_pairwise, alltoallv_pairwise
from repro.mpi.collectives.barrier import barrier_dissemination, barrier_hierarchical
from repro.mpi.collectives.bcast import (
    bcast_binomial,
    bcast_hierarchical,
    bcast_linear,
    bcast_van_de_geijn,
)
from repro.mpi.collectives.bruck import allgather_bruck, alltoall_bruck
from repro.mpi.collectives.pipeline import bcast_pipeline, scan_linear
from repro.mpi.collectives.gather_scatter import (
    gather_binomial,
    gather_hierarchical,
    gather_linear,
    gatherv_linear,
    scatter_binomial,
    scatter_linear,
    scatterv_linear,
)
from repro.mpi.collectives.reduce import reduce_binomial, reduce_hierarchical

ALGORITHMS = {
    "bcast": {
        "binomial": bcast_binomial,
        "linear": bcast_linear,
        "van_de_geijn": bcast_van_de_geijn,
        "hierarchical": bcast_hierarchical,
        "pipeline": bcast_pipeline,
    },
    "reduce": {"binomial": reduce_binomial, "hierarchical": reduce_hierarchical},
    "allreduce": {
        "recursive_doubling": allreduce_recursive_doubling,
        "rabenseifner": allreduce_rabenseifner,
        "reduce_bcast": allreduce_reduce_bcast,
        "hierarchical": allreduce_hierarchical,
    },
    "allgather": {
        "ring": allgather_ring,
        "recursive_doubling": allgather_recursive_doubling,
        "bruck": allgather_bruck,
    },
    "alltoall": {"pairwise": alltoall_pairwise, "bruck": alltoall_bruck},
    "alltoallv": {"pairwise": alltoallv_pairwise},
    "scan": {"linear": scan_linear},
    "gather": {
        "binomial": gather_binomial,
        "linear": gather_linear,
        "hierarchical": gather_hierarchical,
    },
    "gatherv": {"linear": gatherv_linear},
    "scatter": {"binomial": scatter_binomial, "linear": scatter_linear},
    "scatterv": {"linear": scatterv_linear},
    "barrier": {
        "dissemination": barrier_dissemination,
        "hierarchical": barrier_hierarchical,
    },
}

#: algorithm used when an implementation does not pin one
DEFAULTS = {
    "bcast": "binomial",
    "reduce": "binomial",
    "allreduce": "recursive_doubling",
    "allgather": "ring",
    "alltoall": "pairwise",
    "alltoallv": "pairwise",
    "gather": "binomial",
    "gatherv": "linear",
    "scatter": "binomial",
    "scatterv": "linear",
    "barrier": "dissemination",
    "scan": "linear",
}


def resolve(operation: str, name: str):
    """Look up an algorithm; raises :class:`MpiError` for unknown names."""
    table = ALGORITHMS.get(operation)
    if table is None:
        raise MpiError(f"unknown collective operation {operation!r}")
    fn = table.get(name)
    if fn is None:
        raise MpiError(
            f"unknown {operation} algorithm {name!r}; have {sorted(table)}"
        )
    return fn
