"""Allgather algorithms (each rank contributes one block, all get all).

``ring``
    P-1 pipelined neighbour exchanges; bandwidth-optimal, the block
    crosses each WAN cut only once per position.
``recursive_doubling``
    log2(P) rounds with doubling block sizes (power-of-two only; falls
    back to ring otherwise).
"""

from __future__ import annotations

from typing import Any


def allgather_ring(comm, tag: int, nbytes_each: int, payload: Any):
    size, rank = comm.size, comm.rank
    blocks: list[Any] = [None] * size
    blocks[rank] = payload
    if size == 1:
        return blocks
    right = (rank + 1) % size
    left = (rank - 1) % size
    for step in range(size - 1):
        send_idx = (rank - step) % size
        recv_idx = (rank - step - 1) % size
        send_req = comm._cisend(right, nbytes_each, blocks[send_idx], tag)
        blocks[recv_idx], _ = yield from comm._crecv(left, tag)
        yield from send_req.wait()
    return blocks


def allgather_recursive_doubling(comm, tag: int, nbytes_each: int, payload: Any):
    size, rank = comm.size, comm.rank
    if size & (size - 1):
        blocks = yield from allgather_ring(comm, tag, nbytes_each, payload)
        return blocks
    blocks: list[Any] = [None] * size
    blocks[rank] = payload
    mask = 1
    while mask < size:
        partner = rank ^ mask
        base = (rank // (mask * 2)) * (mask * 2)
        if rank & mask:
            mine = range(base + mask, base + 2 * mask)
            theirs = range(base, base + mask)
        else:
            mine = range(base, base + mask)
            theirs = range(base + mask, base + 2 * mask)
        send_req = comm._cisend(
            partner, nbytes_each * mask, [blocks[i] for i in mine], tag
        )
        received, _ = yield from comm._crecv(partner, tag)
        yield from send_req.wait()
        for i, block in zip(theirs, received):
            blocks[i] = block
        mask <<= 1
    return blocks
