"""Gather and scatter (plus their v-variants).

Binomial versions aggregate/split along a tree (message sizes grow/shrink
with the subtree), matching MPICH defaults; linear versions are the
baseline (and the only option for the v-variants, as in MPICH-G2 where
Gatherv/Scatterv stayed topology-unaware).  ``hierarchical`` gather
(§5 future work) collects each site into its leader first, so only one
bundled message per non-root site crosses the WAN.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.errors import MpiError
from repro.mpi.collectives.hierarchy import hier_span, local_gather, site_layout


def gather_linear(comm, tag: int, root: int, nbytes_each: int, payload: Any):
    size, rank = comm.size, comm.rank
    if rank != root:
        yield from comm._csend(root, nbytes_each, payload, tag)
        return None
    blocks: list[Any] = [None] * size
    blocks[root] = payload
    for src in range(size):
        if src != root:
            blocks[src], _ = yield from comm._crecv(src, tag)
    return blocks


def gather_binomial(comm, tag: int, root: int, nbytes_each: int, payload: Any):
    size, rank = comm.size, comm.rank
    vrank = (rank - root) % size
    # Each rank accumulates the blocks of its binomial subtree, keyed by
    # vrank, then forwards the bundle to its parent.
    bundle: dict[int, Any] = {vrank: payload}
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = (vrank - mask + root) % size
            yield from comm._csend(parent, nbytes_each * len(bundle), bundle, tag)
            break
        child = vrank + mask
        if child < size:
            received, _ = yield from comm._crecv((child + root) % size, tag)
            bundle.update(received)
        mask <<= 1
    if rank != root:
        return None
    # bundle is keyed by vrank; emit in absolute rank order.
    return [bundle[(r - root) % size] for r in range(size)]


def gather_hierarchical(comm, tag: int, root: int, nbytes_each: int, payload: Any):
    """LAN-local gather to each site leader -> one WAN bundle per site."""
    layout = site_layout(comm, root)
    if layout.single_site:
        result = yield from gather_binomial(comm, tag, root, nbytes_each, payload)
        return result
    size, rank = comm.size, comm.rank

    # Phase 1 (LAN): each site bundles into its leader, keyed by global rank.
    t_lan = comm.env.now
    bundle = yield from local_gather(comm, tag, layout, nbytes_each, payload)
    if len(layout.local) > 1:
        hier_span(comm, "gather", "lan", t_lan, nbytes_each, layout)

    # Phase 2 (WAN): non-root leaders ship their whole site bundle to the
    # root (its own site's leader) in leader-election order.
    t_wan = comm.env.now
    if rank == root:
        for leader in layout.leaders:
            if leader != root:
                received, _ = yield from comm._crecv(leader, tag)
                bundle.update(received)
    elif layout.is_leader:
        yield from comm._csend(root, nbytes_each * len(bundle), bundle, tag)
    if layout.is_leader:
        hier_span(comm, "gather", "wan", t_wan, nbytes_each, layout)
    if rank != root:
        return None
    return [bundle[r] for r in range(size)]


def scatter_linear(comm, tag: int, root: int, nbytes_each: int, payloads: Optional[Sequence]):
    size, rank = comm.size, comm.rank
    if rank == root:
        if payloads is not None and len(payloads) != size:
            raise MpiError(f"scatter needs {size} payloads, got {len(payloads)}")
        for dst in range(size):
            if dst != root:
                item = payloads[dst] if payloads is not None else None
                yield from comm._csend(dst, nbytes_each, item, tag)
        return payloads[root] if payloads is not None else None
    item, _ = yield from comm._crecv(root, tag)
    return item


def scatter_binomial(comm, tag: int, root: int, nbytes_each: int, payloads: Optional[Sequence]):
    size, rank = comm.size, comm.rank
    if rank == root and payloads is not None and len(payloads) != size:
        raise MpiError(f"scatter needs {size} payloads, got {len(payloads)}")
    vrank = (rank - root) % size
    if rank == root:
        bundle = {
            v: (payloads[(v + root) % size] if payloads is not None else None)
            for v in range(size)
        }
    else:
        bundle = {}

    # Walk the interval containing vrank; owners forward the upper halves.
    lo, hi = 0, size
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if vrank == lo:
            upper = {v: bundle.pop(v) for v in range(mid, hi) if v in bundle}
            yield from comm._csend(
                (mid + root) % size, nbytes_each * (hi - mid), upper, tag
            )
        elif vrank == mid:
            upper, _ = yield from comm._crecv((lo + root) % size, tag)
            bundle.update(upper)
        if vrank < mid:
            hi = mid
        else:
            lo = mid
    return bundle.get(vrank)


def gatherv_linear(comm, tag: int, root: int, nbytes: int, payload: Any):
    """Gather with per-rank sizes (each rank passes its own ``nbytes``)."""
    size, rank = comm.size, comm.rank
    if rank != root:
        yield from comm._csend(root, nbytes, payload, tag)
        return None, None
    blocks: list[Any] = [None] * size
    sizes: list[int] = [0] * size
    blocks[root], sizes[root] = payload, nbytes
    for src in range(size):
        if src != root:
            blocks[src], status = yield from comm._crecv(src, tag)
            sizes[src] = status.nbytes
    return blocks, sizes


def scatterv_linear(
    comm, tag: int, root: int, nbytes_list: Optional[Sequence[int]], payloads: Optional[Sequence]
):
    size, rank = comm.size, comm.rank
    if rank == root:
        if nbytes_list is None or len(nbytes_list) != size:
            raise MpiError(f"scatterv needs {size} sizes")
        for dst in range(size):
            if dst != root:
                item = payloads[dst] if payloads is not None else None
                yield from comm._csend(dst, int(nbytes_list[dst]), item, tag)
        return payloads[root] if payloads is not None else None
    item, _ = yield from comm._crecv(root, tag)
    return item
