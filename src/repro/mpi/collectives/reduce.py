"""Reduction to a root: binomial tree (mirror image of the broadcast)."""

from __future__ import annotations

from typing import Any


def reduce_binomial(comm, tag: int, root: int, nbytes: int, payload: Any, op):
    size, rank = comm.size, comm.rank
    vrank = (rank - root) % size
    result = payload
    mask = 1
    while mask < size:
        if vrank & mask:
            dst = (vrank - mask + root) % size
            yield from comm._csend(dst, nbytes, result, tag)
            break
        partner = vrank + mask
        if partner < size:
            other, _ = yield from comm._crecv((partner + root) % size, tag)
            result = op(result, other)
        mask <<= 1
    return result if rank == root else None
