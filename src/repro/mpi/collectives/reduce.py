"""Reduction to a root.

``binomial``
    log2(P) rounds mirroring the broadcast tree; on a grid split several
    tree edges cross the WAN with the full vector.
``hierarchical``
    topology-aware (§5 future work): each site combines locally to its
    leader, then every non-root leader crosses the WAN exactly once with
    its site partial — ``S-1`` WAN messages instead of up to ``P/2``.
"""

from __future__ import annotations

from typing import Any

from repro.mpi.collectives.hierarchy import hier_span, local_reduce, site_layout


def reduce_binomial(comm, tag: int, root: int, nbytes: int, payload: Any, op):
    size, rank = comm.size, comm.rank
    vrank = (rank - root) % size
    result = payload
    mask = 1
    while mask < size:
        if vrank & mask:
            dst = (vrank - mask + root) % size
            yield from comm._csend(dst, nbytes, result, tag)
            break
        partner = vrank + mask
        if partner < size:
            other, _ = yield from comm._crecv((partner + root) % size, tag)
            result = op(result, other)
        mask <<= 1
    return result if rank == root else None


def reduce_hierarchical(comm, tag: int, root: int, nbytes: int, payload: Any, op):
    """LAN-local combine -> one WAN message per non-root site -> root."""
    layout = site_layout(comm, root)
    if layout.single_site:
        result = yield from reduce_binomial(comm, tag, root, nbytes, payload, op)
        return result
    rank = comm.rank

    # Phase 1 (LAN): combine within each site to its leader.
    t_lan = comm.env.now
    partial = yield from local_reduce(comm, tag, layout, nbytes, payload, op)
    if len(layout.local) > 1:
        hier_span(comm, "reduce", "lan", t_lan, nbytes, layout)

    # Phase 2 (WAN): non-root leaders hand their site partial to the root
    # (which leads its own site), combined in leader-election order.
    t_wan = comm.env.now
    if rank == root:
        for leader in layout.leaders:
            if leader != root:
                other, _ = yield from comm._crecv(leader, tag)
                partial = op(partial, other)
    elif layout.is_leader:
        yield from comm._csend(root, nbytes, partial, tag)
    if layout.is_leader:
        hier_span(comm, "reduce", "wan", t_wan, nbytes, layout)
    return partial if rank == root else None
