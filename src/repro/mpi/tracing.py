"""Message tracing: the instrumented-MPI view the paper used for Table 2.

The trace aggregates — it never stores per-message records — so tracing a
full NAS run (10^6 messages) costs O(distinct sizes) memory.  Counters are
kept separately for user point-to-point traffic and for the messages
generated inside collective algorithms, plus a counter of logical
collective calls per primitive, which is exactly the decomposition of the
paper's Table 2 ("P. to P." vs "Collective" benchmarks).
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass, field

from repro.mpi.constants import COLLECTIVE_CONTEXT, POINT_TO_POINT_CONTEXT
from repro.units import fmt_bytes


class EventTraceHasher:
    """Order-sensitive hash of an event schedule.

    Install with :func:`repro.sim.core.install_trace_sink`; every processed
    queue entry folds ``(time, priority, seq, event kind, event name)`` into
    a running blake2b digest.  Two runs of the same seeded experiment must
    produce the same digest — that is the determinism contract the
    sanitizer (``repro sanitize``) enforces.  Event identity is hashed by
    *type name and process name*, never ``repr`` (which contains ``id()``
    and would differ between runs by construction).
    """

    def __init__(self) -> None:
        self._hash = hashlib.blake2b(digest_size=16)
        #: number of events folded in (a cheap first-difference diagnostic)
        self.events = 0

    def __call__(self, time: float, priority: int, seq: int, event: object) -> None:
        name = getattr(event, "name", "") or ""
        line = f"{time!r}|{priority}|{seq}|{type(event).__name__}|{name}\n"
        self._hash.update(line.encode("utf-8"))
        self.events += 1

    def update_text(self, text: str) -> None:
        """Fold extra material (e.g. the rendered experiment result) into
        the digest so value-level divergence is caught too."""
        self._hash.update(text.encode("utf-8"))

    def hexdigest(self) -> str:
        return self._hash.hexdigest()

    @classmethod
    def combine(cls, named_digests: "dict[str, str]", text: str = "") -> str:
        """Canonical digest over per-shard digests.

        A sharded experiment produces one event-trace digest per shard; the
        experiment-level digest folds them in *sorted shard-key order* (never
        completion order) plus the merged rendered text, so the combined hash
        is independent of worker scheduling.  It is, by construction, a
        different value from the digest of an unsharded run — artifacts
        record which mode produced theirs.
        """
        hasher = cls()
        for key in sorted(named_digests):
            hasher.update_text(f"{key}|{named_digests[key]}\n")
        if text:
            hasher.update_text(text)
        return hasher.hexdigest()


@dataclass
class TrafficSummary:
    """Aggregated view of one context's traffic."""

    messages: int
    bytes: float
    min_size: int
    max_size: int

    @property
    def mean_size(self) -> float:
        return self.bytes / self.messages if self.messages else 0.0


class MessageTrace:
    """Aggregating message statistics for one MPI job."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        #: Counter[(context, nbytes)] -> message count
        self.size_counts: Counter = Counter()
        #: Counter[collective primitive name] -> call count (per rank calls)
        self.collective_calls: Counter = Counter()
        #: Counter[(src, dst)] -> messages (for placement diagnostics)
        self.pair_counts: Counter = Counter()
        #: messages crossing a WAN link, and the payload bytes they carry
        self.inter_site_messages: int = 0
        self.inter_site_bytes: int = 0

    # -- recording -------------------------------------------------------------
    def record_p2p(self, src: int, dst: int, tag: int, nbytes: int, context: str) -> None:
        if not self.enabled:
            return
        self.size_counts[(context, nbytes)] += 1
        self.pair_counts[(src, dst)] += 1

    def record_inter_site(self, nbytes: int) -> None:
        if self.enabled:
            self.inter_site_messages += 1
            self.inter_site_bytes += nbytes

    def record_collective(self, op: str) -> None:
        if self.enabled:
            self.collective_calls[op] += 1

    # -- queries ------------------------------------------------------------------
    def summary(self, context: str) -> TrafficSummary:
        sizes = {
            size: count
            for (ctx, size), count in self.size_counts.items()
            if ctx == context
        }
        if not sizes:
            return TrafficSummary(0, 0.0, 0, 0)
        messages = sum(sizes.values())
        total = sum(size * count for size, count in sizes.items())
        return TrafficSummary(messages, total, min(sizes), max(sizes))

    def p2p_summary(self) -> TrafficSummary:
        return self.summary(POINT_TO_POINT_CONTEXT)

    def collective_summary(self) -> TrafficSummary:
        return self.summary(COLLECTIVE_CONTEXT)

    @property
    def total_messages(self) -> int:
        return sum(self.size_counts.values())

    @property
    def total_bytes(self) -> float:
        return float(sum(size * count for (_, size), count in self.size_counts.items()))

    def size_histogram(self, context: str, bins: int = 8) -> list[tuple[int, int, int]]:
        """Messages per size band: list of ``(lo, hi, count)`` with
        power-of-two bands covering the observed sizes."""
        sizes = [
            (size, count)
            for (ctx, size), count in self.size_counts.items()
            if ctx == context and count
        ]
        if not sizes:
            return []
        bands: Counter = Counter()
        for size, count in sizes:
            lo = 1
            while lo * 2 <= max(size, 1):
                lo *= 2
            bands[lo] += count
        return [(lo, lo * 2 - 1, bands[lo]) for lo in sorted(bands)]

    def dominant_sizes(self, context: str, top: int = 4) -> list[tuple[int, int]]:
        """The ``top`` most frequent message sizes: ``[(nbytes, count)]`` —
        this is the paper's Table 2 notation ("126479 * 8 B + ...")."""
        sizes = Counter()
        for (ctx, size), count in self.size_counts.items():
            if ctx == context:
                sizes[size] += count
        return sizes.most_common(top)

    def describe(self, context: str = POINT_TO_POINT_CONTEXT) -> str:
        """Human-readable Table-2-style line."""
        parts = [
            f"{count} * {fmt_bytes(size)}"
            for size, count in sorted(self.dominant_sizes(context))
        ]
        return " + ".join(parts) if parts else "(no traffic)"
