"""The eager / rendezvous point-to-point protocol (paper §4.2.2, Fig. 4).

*Eager* — the payload is pushed immediately (with a small header).  The
send completes when the local socket drained; the receiver either matches
a posted receive at arrival (no copy) or parks the message in the
unexpected queue (a copy is charged when the receive shows up).

*Rendezvous* — a small ``MPI_Request`` control message announces the send;
when the receiver matches it, an acknowledgement travels back and only
then does the payload move, landing directly in the user buffer.  The
handshake costs one extra round trip — negligible at 58 µs in a cluster,
ruinous at 11.6 ms across the grid.  The eager→rendezvous threshold is
the per-implementation knob of Table 5.

The choice is made per message against ``impl.eager_threshold``; the
implementation also contributes its software latency overhead (Table 4)
and a per-byte staging cost (OpenMPI's lower large-message bandwidth in
Fig. 7).
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.errors import MpiError
from repro.mpi.matching import Mailbox
from repro.obs import runtime as _obs
from repro.mpi.message import Envelope, Status
from repro.mpi.request import Request
from repro.mpi.tracing import MessageTrace
from repro.mpi.transport import Transport
from repro.sim.core import Environment

#: wire size of the eager header prepended to the payload
EAGER_HEADER_BYTES = 40
#: wire size of the rendezvous request / acknowledgement control messages
RNDV_CONTROL_BYTES = 32


class Protocol:
    """Shared point-to-point engine of one MPI job."""

    def __init__(
        self,
        env: Environment,
        transport: Transport,
        impl: Any,
        mailboxes: list[Mailbox],
        trace: MessageTrace,
    ):
        self.env = env
        self.transport = transport
        self.impl = impl
        self.mailboxes = mailboxes
        self.trace = trace
        self._rndv_ids = itertools.count()
        self._rndv_pending: dict[int, Request] = {}
        self._seq: dict[tuple[int, int, str], int] = {}

    # -- helpers -------------------------------------------------------------------
    def _at(self, when: float, fn) -> None:
        """Run ``fn()`` at absolute simulation time ``when``."""
        delay = when - self.env.now
        if delay < 0:
            raise MpiError(f"delivery scheduled {delay}s in the past")

        def _deliver():
            # The leading underscore marks this as an engine-internal helper:
            # the schedule-perturbation sanitizer's trace projection skips
            # private processes, whose spawn count legitimately depends on
            # same-timestamp execution order.
            yield self.env.timeout(delay)
            fn()

        self.env.process(_deliver())

    def _next_seq(self, src: int, dst: int, context: str) -> int:
        key = (src, dst, context)
        seq = self._seq.get(key, 0)
        self._seq[key] = seq + 1
        return seq

    def _sites(self, src: int, dst: int) -> dict:
        """Site-pair args for a span between two ranks."""
        return {
            "src_site": self.transport.node_of(src).cluster.name,
            "dst_site": self.transport.node_of(dst).cluster.name,
        }

    # -- the send path ---------------------------------------------------------------
    def send(
        self,
        src: int,
        dst: int,
        tag: int,
        nbytes: int,
        payload: Any,
        context: str,
    ):
        """Generator: perform one MPI-level send.

        Completes with eager semantics (local buffering) below the
        threshold, rendezvous semantics (synchronising) above it.
        """
        if nbytes < 0:
            raise MpiError(f"cannot send {nbytes} bytes")
        if not (0 <= dst < self.transport.nprocs):
            raise MpiError(f"invalid destination rank {dst}")
        env = self.env
        impl = self.impl
        link = self.transport.link(src, dst)
        self.trace.record_p2p(src, dst, tag, nbytes, context)
        if link.inter_site:
            self.trace.record_inter_site(nbytes)

        sess = _obs.ACTIVE
        t_post = env.now
        lane = f"rank{src}->{dst}"
        if sess is not None and sess.spans:
            # Site-pair tags feed the WAN-time matrix (obs/aggregate.py);
            # resolved once per send, only while spans are recorded.
            sites = self._sites(src, dst)
        else:
            sites = None
        if sess is not None and sess.metrics:
            eager = nbytes <= impl.eager_threshold
            sess.count(
                "mpi.sends",
                impl=impl.name,
                proto="eager" if eager else "rndv",
                wan=link.inter_site,
                context=context,
            )
            sess.observe("mpi.message_bytes", nbytes, impl=impl.name, context=context)
            if link.inter_site:
                sess.count("mpi.wan_bytes", inc=float(nbytes), impl=impl.name)

        # Sender software overhead + per-byte staging cost.
        setup = impl.latency_overhead(link.inter_site) + nbytes * impl.per_byte_overhead
        if setup > 0:
            yield env.timeout(setup)

        envelope = Envelope(
            src=src,
            dst=dst,
            tag=tag,
            context=context,
            nbytes=nbytes,
            payload=payload,
            seq=self._next_seq(src, dst, context),
        )

        if nbytes <= impl.eager_threshold:
            arrival = yield from link.transmit(nbytes + EAGER_HEADER_BYTES)
            self._at(arrival, lambda: self.mailboxes[dst].deliver(envelope))
            if sess is not None and sess.spans:
                # Post -> receiver-side arrival of the (buffered) payload.
                sess.complete(
                    t_post,
                    arrival - t_post,
                    "mpi.send.eager",
                    "mpi.p2p",
                    lane,
                    {"bytes": nbytes, "tag": tag},
                )
            return

        # --- rendezvous ---
        rndv_id = next(self._rndv_ids)
        envelope.eager = False
        envelope.rndv_id = rndv_id
        ack = env.event()
        envelope.on_matched = lambda request: self._rndv_matched(
            envelope, request, ack
        )
        t_announce = env.now
        arrival = yield from link.transmit(RNDV_CONTROL_BYTES)
        self._at(arrival, lambda: self.mailboxes[dst].deliver(envelope))
        if sess is not None and sess.spans:
            sess.complete(
                t_announce,
                arrival - t_announce,
                "rndv.announce",
                "mpi.rndv",
                lane,
                {"bytes": nbytes, "tag": tag, **sites},
            )
        yield ack  # fires when the receiver's acknowledgement reaches us
        if sess is not None:
            if sess.spans:
                # The full eager->rendezvous handshake: send post to ack in
                # hand.  One extra round trip — 58 us in the cluster,
                # ruinous 11.6 ms across the grid (paper SS4.2.2).
                sess.complete(
                    t_post,
                    env.now - t_post,
                    "rndv.handshake",
                    "mpi.rndv",
                    lane,
                    {"bytes": nbytes, "tag": tag, **sites},
                )
            if sess.metrics:
                sess.count("mpi.rndv_handshakes", impl=impl.name, wan=link.inter_site)
                sess.count(
                    "mpi.rndv_handshake_seconds",
                    inc=env.now - t_post,
                    impl=impl.name,
                    wan=link.inter_site,
                )
        t_data = env.now
        data_arrival = yield from link.transmit(nbytes + EAGER_HEADER_BYTES)
        if sess is not None and sess.spans:
            sess.complete(
                t_data,
                data_arrival - t_data,
                "rndv.data",
                "mpi.rndv",
                lane,
                {"bytes": nbytes, "tag": tag, **sites},
            )

        def complete():
            request = self._rndv_pending.pop(rndv_id)
            request._finish((payload, Status(src, tag, nbytes)))

        self._at(data_arrival, complete)

    def _rndv_matched(self, envelope: Envelope, request: Request, ack) -> None:
        """The receiver matched a rendezvous announce: send the ack back."""
        self._rndv_pending[envelope.rndv_id] = request
        rlink = self.transport.link(envelope.dst, envelope.src)

        def responder():
            t_ack = self.env.now
            overhead = self.impl.latency_overhead(rlink.inter_site)
            if overhead > 0:
                yield self.env.timeout(overhead)
            ack_arrival = yield from rlink.transmit(RNDV_CONTROL_BYTES)
            self._at(ack_arrival, lambda: ack.succeed())
            sess = _obs.ACTIVE
            if sess is not None and sess.spans:
                sess.complete(
                    t_ack,
                    ack_arrival - t_ack,
                    "rndv.ack",
                    "mpi.rndv",
                    f"rank{envelope.dst}->{envelope.src}",
                    {"bytes": envelope.nbytes, **self._sites(envelope.dst, envelope.src)},
                )

        self.env.process(responder())
