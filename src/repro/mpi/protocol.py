"""The eager / rendezvous point-to-point protocol (paper §4.2.2, Fig. 4).

*Eager* — the payload is pushed immediately (with a small header).  The
send completes when the local socket drained; the receiver either matches
a posted receive at arrival (no copy) or parks the message in the
unexpected queue (a copy is charged when the receive shows up).

*Rendezvous* — a small ``MPI_Request`` control message announces the send;
when the receiver matches it, an acknowledgement travels back and only
then does the payload move, landing directly in the user buffer.  The
handshake costs one extra round trip — negligible at 58 µs in a cluster,
ruinous at 11.6 ms across the grid.  The eager→rendezvous threshold is
the per-implementation knob of Table 5.

The choice is made per message against ``impl.eager_threshold``; the
implementation also contributes its software latency overhead (Table 4)
and a per-byte staging cost (OpenMPI's lower large-message bandwidth in
Fig. 7).
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.errors import MpiError
from repro.mpi.matching import Mailbox
from repro.mpi.message import Envelope, Status
from repro.mpi.request import Request
from repro.mpi.tracing import MessageTrace
from repro.mpi.transport import Transport
from repro.sim.core import Environment

#: wire size of the eager header prepended to the payload
EAGER_HEADER_BYTES = 40
#: wire size of the rendezvous request / acknowledgement control messages
RNDV_CONTROL_BYTES = 32


class Protocol:
    """Shared point-to-point engine of one MPI job."""

    def __init__(
        self,
        env: Environment,
        transport: Transport,
        impl: Any,
        mailboxes: list[Mailbox],
        trace: MessageTrace,
    ):
        self.env = env
        self.transport = transport
        self.impl = impl
        self.mailboxes = mailboxes
        self.trace = trace
        self._rndv_ids = itertools.count()
        self._rndv_pending: dict[int, Request] = {}
        self._seq: dict[tuple[int, int, str], int] = {}

    # -- helpers -------------------------------------------------------------------
    def _at(self, when: float, fn) -> None:
        """Run ``fn()`` at absolute simulation time ``when``."""
        delay = when - self.env.now
        if delay < 0:
            raise MpiError(f"delivery scheduled {delay}s in the past")

        def runner():
            yield self.env.timeout(delay)
            fn()

        self.env.process(runner())

    def _next_seq(self, src: int, dst: int, context: str) -> int:
        key = (src, dst, context)
        seq = self._seq.get(key, 0)
        self._seq[key] = seq + 1
        return seq

    # -- the send path ---------------------------------------------------------------
    def send(
        self,
        src: int,
        dst: int,
        tag: int,
        nbytes: int,
        payload: Any,
        context: str,
    ):
        """Generator: perform one MPI-level send.

        Completes with eager semantics (local buffering) below the
        threshold, rendezvous semantics (synchronising) above it.
        """
        if nbytes < 0:
            raise MpiError(f"cannot send {nbytes} bytes")
        if not (0 <= dst < self.transport.nprocs):
            raise MpiError(f"invalid destination rank {dst}")
        env = self.env
        impl = self.impl
        link = self.transport.link(src, dst)
        self.trace.record_p2p(src, dst, tag, nbytes, context)

        # Sender software overhead + per-byte staging cost.
        setup = impl.latency_overhead(link.inter_site) + nbytes * impl.per_byte_overhead
        if setup > 0:
            yield env.timeout(setup)

        envelope = Envelope(
            src=src,
            dst=dst,
            tag=tag,
            context=context,
            nbytes=nbytes,
            payload=payload,
            seq=self._next_seq(src, dst, context),
        )

        if nbytes <= impl.eager_threshold:
            arrival = yield from link.transmit(nbytes + EAGER_HEADER_BYTES)
            self._at(arrival, lambda: self.mailboxes[dst].deliver(envelope))
            return

        # --- rendezvous ---
        rndv_id = next(self._rndv_ids)
        envelope.eager = False
        envelope.rndv_id = rndv_id
        ack = env.event()
        envelope.on_matched = lambda request: self._rndv_matched(
            envelope, request, ack
        )
        arrival = yield from link.transmit(RNDV_CONTROL_BYTES)
        self._at(arrival, lambda: self.mailboxes[dst].deliver(envelope))
        yield ack  # fires when the receiver's acknowledgement reaches us
        data_arrival = yield from link.transmit(nbytes + EAGER_HEADER_BYTES)

        def complete():
            request = self._rndv_pending.pop(rndv_id)
            request._finish((payload, Status(src, tag, nbytes)))

        self._at(data_arrival, complete)

    def _rndv_matched(self, envelope: Envelope, request: Request, ack) -> None:
        """The receiver matched a rendezvous announce: send the ack back."""
        self._rndv_pending[envelope.rndv_id] = request
        rlink = self.transport.link(envelope.dst, envelope.src)

        def responder():
            overhead = self.impl.latency_overhead(rlink.inter_site)
            if overhead > 0:
                yield self.env.timeout(overhead)
            ack_arrival = yield from rlink.transmit(RNDV_CONTROL_BYTES)
            self._at(ack_arrival, lambda: ack.succeed())

        self.env.process(responder())
