"""Minimal MPI datatype descriptors (size accounting only).

The simulator times messages by byte count; datatypes exist so workload
code can write ``count * DOUBLE.size`` instead of magic numbers and so the
tracing layer can report element counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MpiError


@dataclass(frozen=True)
class Datatype:
    """An elementary MPI datatype."""

    name: str
    size: int  # bytes per element

    def __post_init__(self):
        if self.size <= 0:
            raise MpiError(f"datatype {self.name!r}: size must be positive")

    def bytes_for(self, count: int) -> int:
        if count < 0:
            raise MpiError(f"negative element count {count}")
        return count * self.size


BYTE = Datatype("MPI_BYTE", 1)
CHAR = Datatype("MPI_CHAR", 1)
INT = Datatype("MPI_INT", 4)
LONG = Datatype("MPI_LONG", 8)
FLOAT = Datatype("MPI_FLOAT", 4)
DOUBLE = Datatype("MPI_DOUBLE", 8)
COMPLEX = Datatype("MPI_COMPLEX", 8)
DOUBLE_COMPLEX = Datatype("MPI_DOUBLE_COMPLEX", 16)
