"""Non-blocking operation handles (``MPI_Request`` equivalents)."""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import MpiError
from repro.mpi.message import Status
from repro.sim.core import Environment, Event


class Request:
    """Handle to an in-flight isend/irecv.

    ``yield request.wait()`` blocks until completion and returns
    ``(payload, status)`` for receives or ``None`` for sends.
    ``request.test()`` polls without blocking.
    """

    def __init__(self, env: Environment, kind: str):
        if kind not in ("send", "recv"):
            raise MpiError(f"unknown request kind {kind!r}")
        self.env = env
        self.kind = kind
        self.event: Event = env.event()

    @property
    def complete(self) -> bool:
        return self.event.triggered

    def test(self) -> bool:
        """Non-blocking completion check (``MPI_Test``)."""
        return self.complete

    def wait(self):
        """Generator: block until complete; returns the operation result."""
        result = yield self.event
        return result

    def result(self) -> Any:
        """The value of a completed request (raises if still pending)."""
        if not self.complete:
            raise MpiError("request not complete")
        return self.event.value

    def _finish(self, value: Any = None) -> None:
        self.event.succeed(value)

    def __repr__(self) -> str:
        state = "complete" if self.complete else "pending"
        return f"<Request {self.kind} {state}>"


def waitall(env: Environment, requests: list[Request]):
    """Generator: wait for every request; returns their results in order."""
    results = []
    for req in requests:
        results.append((yield from req.wait()))
    return results


def waitany(env: Environment, requests: list[Request]):
    """Generator: wait until at least one request completes; returns the
    index and result of the first completed one (by list order)."""
    from repro.sim.sync import AnyOf

    if not requests:
        raise MpiError("waitany of no requests")
    pending = [r for r in requests if not r.complete]
    if pending:
        yield AnyOf(env, [r.event for r in pending])
    for i, req in enumerate(requests):
        if req.complete:
            return i, req.event.value
    raise MpiError("waitany: AnyOf fired but nothing complete")
