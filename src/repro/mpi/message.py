"""Message envelopes and receive status."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass
class Envelope:
    """Everything the matching engine needs to know about a message."""

    src: int
    dst: int
    tag: int
    context: str  # POINT_TO_POINT_CONTEXT or COLLECTIVE_CONTEXT
    nbytes: int
    payload: Any = None
    #: per-(src, context) sequence number — debugging / ordering assertions
    seq: int = 0
    #: eager data is available on arrival; a rendezvous announce is not
    eager: bool = True
    #: rendezvous handshake id (None for eager)
    rndv_id: Optional[int] = None
    #: simulation time the envelope arrived at the receiver
    arrived_at: float = 0.0
    #: arrival instant in integer engine ticks — exact, so the matching
    #: engine can recognise an arrival tied with a same-instant post_recv
    arrived_at_ticks: int = 0
    #: rendezvous continuation, set by the protocol: called with the
    #: matched receive request (the announce carries no data)
    on_matched: Optional[Any] = None

    def matches(self, src: int, tag: int, context: str) -> bool:
        from repro.mpi.constants import ANY_SOURCE, ANY_TAG

        if context != self.context:
            return False
        if src != ANY_SOURCE and src != self.src:
            return False
        if tag != ANY_TAG and tag != self.tag:
            return False
        return True


@dataclass(frozen=True)
class Status:
    """Result metadata of a completed receive (mirrors ``MPI_Status``)."""

    source: int
    tag: int
    nbytes: int
