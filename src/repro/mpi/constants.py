"""MPI constants and reduction operations.

Reduction operations work on ``None`` (size-only timing runs), scalars and
numpy arrays alike, so the same collective code drives both the timing
skeletons and the numerical verification kernels.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

#: wildcard source for receives
ANY_SOURCE = -1
#: wildcard tag for receives
ANY_TAG = -1

#: tag namespace reserved for collective operations (user tags must be >= 0)
COLLECTIVE_CONTEXT = "coll"
POINT_TO_POINT_CONTEXT = "p2p"


class ReduceOp:
    """A named, associative, commutative reduction."""

    def __init__(self, name: str, fn: Callable[[Any, Any], Any]):
        self.name = name
        self._fn = fn

    def __call__(self, a: Any, b: Any) -> Any:
        if a is None:
            return None if b is None else b
        if b is None:
            return a
        return self._fn(a, b)

    def __repr__(self) -> str:
        return f"ReduceOp({self.name})"


def _pairwise(np_fn, py_fn):
    def fn(a, b):
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return np_fn(a, b)
        return py_fn(a, b)

    return fn


SUM = ReduceOp("sum", _pairwise(np.add, lambda a, b: a + b))
PROD = ReduceOp("prod", _pairwise(np.multiply, lambda a, b: a * b))
MAX = ReduceOp("max", _pairwise(np.maximum, max))
MIN = ReduceOp("min", _pairwise(np.minimum, min))
LAND = ReduceOp("land", _pairwise(np.logical_and, lambda a, b: bool(a) and bool(b)))
LOR = ReduceOp("lor", _pairwise(np.logical_or, lambda a, b: bool(a) or bool(b)))
BAND = ReduceOp("band", _pairwise(np.bitwise_and, lambda a, b: a & b))
BOR = ReduceOp("bor", _pairwise(np.bitwise_or, lambda a, b: a | b))
