"""The MPI runtime: places ranks on nodes, runs SPMD programs, collects results.

A *program* is a generator function ``program(ctx)`` where ``ctx`` is a
:class:`RankContext` giving access to the communicator, the rank's node
(for compute-time charging) and a per-rank deterministic random stream.
Every rank runs the same program (SPMD), starting at virtual time zero::

    def program(ctx):
        data = np.arange(4.0) * ctx.rank
        total = yield from ctx.comm.allreduce(data, nbytes=data.nbytes)
        yield from ctx.compute(flop=1e9)
        return float(total.sum())

    job = MpiJob(network, impl, placement)
    result = job.run(program)
    print(result.makespan, result.returns)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import MpiError
from repro.mpi.communicator import Communicator
from repro.mpi.matching import Mailbox
from repro.mpi.protocol import Protocol
from repro.mpi.tracing import MessageTrace
from repro.mpi.transport import Transport
from repro.net.topology import Network, Node
from repro.obs import runtime as _obs
from repro.sim.core import Environment
from repro.sim.rng import RngRegistry
from repro.sim.sync import AllOf, AnyOf
from repro.tcp.connection import Fabric
from repro.tcp.sysctl import DEFAULT_SYSCTLS, SysctlConfig


class RankContext:
    """Everything one rank's program can touch."""

    def __init__(self, job: "MpiJob", rank: int):
        self.job = job
        self.rank = rank
        self.comm: Communicator = job.comms[rank]
        self.node: Node = job.placement[rank]
        self.env: Environment = job.env
        #: deterministic per-rank random stream
        self.rng = job.rngs.stream(f"rank{rank}")

    @property
    def size(self) -> int:
        return self.job.nprocs

    def compute(self, flop: float):
        """Generator: charge ``flop`` floating-point operations of work at
        this node's effective speed."""
        if flop < 0:
            raise MpiError(f"negative flop count {flop}")
        yield self.env.timeout(self.node.compute_seconds(flop))

    def compute_time(self, seconds: float):
        """Generator: charge a fixed amount of local work."""
        if seconds < 0:
            raise MpiError(f"negative compute time {seconds}")
        yield self.env.timeout(seconds)

    def wtime(self) -> float:
        return self.env.now


@dataclass
class JobResult:
    """Outcome of one MPI job."""

    makespan: float
    rank_times: list[float]
    returns: list[Any]
    timed_out: bool
    trace: MessageTrace
    #: per-rank matching statistics
    mailbox_stats: list

    @property
    def nprocs(self) -> int:
        return len(self.rank_times)


class MpiJob:
    """One simulated ``mpirun``: an implementation, a placement, a fabric."""

    def __init__(
        self,
        network: Network,
        impl,
        placement: list[Node],
        sysctls: "SysctlConfig | dict[str, SysctlConfig] | None" = None,
        trace: bool = True,
        seed: int = 0,
    ):
        if not placement:
            raise MpiError("placement must name at least one node")
        self.network = network
        self.impl = impl
        self.placement = list(placement)
        self.nprocs = len(placement)
        self.env = Environment()
        self.rngs = RngRegistry(seed)

        if sysctls is None:
            self.fabric = Fabric(self.env, network, DEFAULT_SYSCTLS)
        elif isinstance(sysctls, SysctlConfig):
            self.fabric = Fabric(self.env, network, sysctls)
        else:
            self.fabric = Fabric(self.env, network, DEFAULT_SYSCTLS)
            for cluster, config in sysctls.items():
                self.fabric.set_sysctls(config, cluster=cluster)

        self.transport = Transport(
            self.fabric,
            self.placement,
            impl.tcp_options(),
            parallel_streams=getattr(impl, "parallel_streams", 1),
            stream_threshold=getattr(impl, "stream_threshold", 0),
            native_fabrics=getattr(impl, "native_fabrics", frozenset()),
        )
        self.mailboxes = [
            Mailbox(self.env, r, impl.copy_bandwidth) for r in range(self.nprocs)
        ]
        self.trace = MessageTrace(enabled=trace)
        self.protocol = Protocol(
            self.env, self.transport, impl, self.mailboxes, self.trace
        )
        self.comms = [Communicator(self, r) for r in range(self.nprocs)]
        self.contexts = [RankContext(self, r) for r in range(self.nprocs)]

    def run(
        self,
        program: Callable,
        timeout: Optional[float] = None,
    ) -> JobResult:
        """Run ``program`` on every rank until completion (or ``timeout``
        in virtual seconds, reported via ``result.timed_out``)."""
        env = self.env
        finish_times = [float("nan")] * self.nprocs
        returns: list[Any] = [None] * self.nprocs

        sess = _obs.ACTIVE
        if sess is not None and sess.spans:
            # Episode marker: every job restarts the virtual clock at zero,
            # so spans of consecutive jobs on one track overlap in time.
            # The aggregation layer (obs/aggregate.py) splits a track's
            # record stream at these instants and attributes each episode
            # to the implementation named here.
            sess.instant(
                0.0,
                "mpi.job.begin",
                "mpi",
                "job",
                {"impl": self.impl.name, "nprocs": self.nprocs},
            )

        def wrapper(rank: int):
            value = yield from program(self.contexts[rank])
            finish_times[rank] = env.now
            returns[rank] = value

        procs = [
            env.process(wrapper(r), name=f"rank{r}") for r in range(self.nprocs)
        ]
        done = AllOf(env, procs)
        if timeout is None:
            env.run(until=done)
            timed_out = False
        else:
            env.run(until=AnyOf(env, [done, env.timeout(timeout)]))
            timed_out = not done.triggered
            if timed_out:
                # Keep draining nothing further; report what finished.
                for r, proc in enumerate(procs):
                    if not proc.triggered:
                        finish_times[r] = float("inf")

        makespan = max(finish_times) if not timed_out else float("inf")
        sess = _obs.ACTIVE
        if sess is not None:
            if sess.spans and not timed_out:
                sess.complete(
                    0.0,
                    makespan,
                    "mpi.job",
                    "mpi",
                    "job",
                    {
                        "impl": self.impl.name,
                        "nprocs": self.nprocs,
                        "timed_out": timed_out,
                    },
                )
            if sess.metrics:
                sess.count("mpi.jobs", impl=self.impl.name)
                if not timed_out:
                    sess.gauge(
                        "mpi.job.makespan_s", makespan, impl=self.impl.name,
                        nprocs=self.nprocs,
                    )
        return JobResult(
            makespan=makespan,
            rank_times=finish_times,
            returns=returns,
            timed_out=timed_out,
            trace=self.trace,
            mailbox_stats=[m.stats for m in self.mailboxes],
        )
