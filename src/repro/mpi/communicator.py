"""The communicator: the MPI API surface used by rank programs.

All communication methods are generators (``yield from comm.send(...)``)
except the non-blocking ``isend``/``irecv`` which return
:class:`~repro.mpi.request.Request` handles immediately.

Collective operations dispatch to the algorithm selected by the MPI
implementation model (``impl.collectives``); every collective consumes one
internal tag from a per-communicator sequence, which is identical across
ranks because MPI requires all ranks to call collectives in the same
order.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.errors import MpiError
from repro.mpi import collectives as coll
from repro.mpi.constants import (
    ANY_SOURCE,
    ANY_TAG,
    COLLECTIVE_CONTEXT,
    POINT_TO_POINT_CONTEXT,
    SUM,
    ReduceOp,
)
from repro.mpi.request import Request, waitall, waitany
from repro.obs import runtime as _obs


class Communicator:
    """Per-rank facade over the shared job state (≈ ``MPI_COMM_WORLD``)."""

    def __init__(self, job, rank: int):
        self._job = job
        self.rank = rank
        self.size = job.nprocs
        self.env = job.env
        self._coll_seq = 0

    # ------------------------------------------------------------------ helpers
    def _check_rank(self, rank: int, what: str) -> None:
        if not (0 <= rank < self.size):
            raise MpiError(f"invalid {what} rank {rank} (size={self.size})")

    def _check_tag(self, tag: int) -> None:
        if tag < 0:
            raise MpiError(f"user tags must be >= 0, got {tag}")

    def cluster_of_ranks(self) -> list[str]:
        """Cluster name of every rank (used by topology-aware collectives)."""
        return [node.cluster.name for node in self._job.placement]

    # ------------------------------------------------------- point-to-point (blocking)
    def send(self, dst: int, nbytes: int = 0, tag: int = 0, payload: Any = None):
        """Generator: blocking send (eager: until buffered; rendezvous:
        until the payload is on its way after the handshake)."""
        self._check_rank(dst, "destination")
        self._check_tag(tag)
        yield from self._job.protocol.send(
            self.rank, dst, tag, nbytes, payload, POINT_TO_POINT_CONTEXT
        )

    def recv(
        self,
        src: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        max_bytes: Optional[int] = None,
    ):
        """Generator: blocking receive; returns ``(payload, Status)``."""
        request = self.irecv(src, tag, max_bytes)
        result = yield request.event
        return result

    def sendrecv(
        self,
        dst: int,
        nbytes: int,
        payload: Any = None,
        src: int = ANY_SOURCE,
        send_tag: int = 0,
        recv_tag: int = ANY_TAG,
    ):
        """Generator: simultaneous send and receive (deadlock-free)."""
        send_req = self.isend(dst, nbytes, send_tag, payload)
        result = yield from self.recv(src, recv_tag)
        yield from send_req.wait()
        return result

    # ------------------------------------------------------- point-to-point (non-blocking)
    def isend(
        self, dst: int, nbytes: int = 0, tag: int = 0, payload: Any = None
    ) -> Request:
        self._check_rank(dst, "destination")
        self._check_tag(tag)
        return self._start_send(dst, nbytes, tag, payload, POINT_TO_POINT_CONTEXT)

    def irecv(
        self,
        src: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        max_bytes: Optional[int] = None,
    ) -> Request:
        if src != ANY_SOURCE:
            self._check_rank(src, "source")
        if tag != ANY_TAG:
            self._check_tag(tag)
        return self._job.mailboxes[self.rank].post_recv(
            src, tag, POINT_TO_POINT_CONTEXT, max_bytes
        )

    def waitall(self, requests: list[Request]):
        """Generator: wait for every request (``MPI_Waitall``)."""
        results = yield from waitall(self.env, requests)
        return results

    def waitany(self, requests: list[Request]):
        """Generator: wait for one request; returns ``(index, result)``."""
        result = yield from waitany(self.env, requests)
        return result

    def _start_send(
        self, dst: int, nbytes: int, tag: int, payload: Any, context: str
    ) -> Request:
        request = Request(self.env, "send")

        def runner():
            yield from self._job.protocol.send(
                self.rank, dst, tag, nbytes, payload, context
            )
            request._finish(None)

        self.env.process(runner(), name=f"isend[{self.rank}->{dst}]")
        return request

    # ------------------------------------------------------- collective internals
    def _next_coll_tag(self) -> int:
        tag = self._coll_seq
        self._coll_seq += 1
        return tag

    def _csend(self, dst: int, nbytes: int, payload: Any, tag: int):
        yield from self._job.protocol.send(
            self.rank, dst, tag, nbytes, payload, COLLECTIVE_CONTEXT
        )

    def _cisend(self, dst: int, nbytes: int, payload: Any, tag: int) -> Request:
        return self._start_send(dst, nbytes, tag, payload, COLLECTIVE_CONTEXT)

    def _crecv(self, src: int, tag: int):
        request = self._job.mailboxes[self.rank].post_recv(
            src, tag, COLLECTIVE_CONTEXT, None
        )
        result = yield request.event
        return result

    def _algorithm(self, operation: str):
        name = self._job.impl.collectives.get(operation, coll.DEFAULTS[operation])
        algorithm = coll.resolve(operation, name)
        sess = _obs.ACTIVE
        if sess is None:
            return algorithm
        if sess.metrics:
            sess.count(
                "mpi.collective_calls",
                op=operation,
                algorithm=name,
                impl=self._job.impl.name,
            )
        if not sess.spans:
            return algorithm

        def traced(*args, **kwargs):
            # One span per rank per collective call: entry to local
            # completion, tagged with the algorithm the implementation
            # model selected (the per-primitive choice of Table 1).
            t_enter = self.env.now
            result = yield from algorithm(*args, **kwargs)
            sess.complete(
                t_enter,
                self.env.now - t_enter,
                f"coll.{operation}",
                "mpi.collective",
                f"rank{self.rank}",
                {"algorithm": name},
            )
            return result

        return traced

    # ------------------------------------------------------------- collectives
    def barrier(self):
        self._job.trace.record_collective("barrier")
        tag = self._next_coll_tag()
        yield from self._algorithm("barrier")(self, tag)

    def bcast(self, payload: Any = None, nbytes: int = 0, root: int = 0):
        self._check_rank(root, "root")
        self._job.trace.record_collective("bcast")
        tag = self._next_coll_tag()
        result = yield from self._algorithm("bcast")(self, tag, root, nbytes, payload)
        return result

    def reduce(
        self, payload: Any = None, nbytes: int = 0, op: ReduceOp = SUM, root: int = 0
    ):
        self._check_rank(root, "root")
        self._job.trace.record_collective("reduce")
        tag = self._next_coll_tag()
        result = yield from self._algorithm("reduce")(
            self, tag, root, nbytes, payload, op
        )
        return result

    def allreduce(self, payload: Any = None, nbytes: int = 0, op: ReduceOp = SUM):
        self._job.trace.record_collective("allreduce")
        tag = self._next_coll_tag()
        result = yield from self._algorithm("allreduce")(self, tag, nbytes, payload, op)
        return result

    def gather(self, payload: Any = None, nbytes_each: int = 0, root: int = 0):
        self._check_rank(root, "root")
        self._job.trace.record_collective("gather")
        tag = self._next_coll_tag()
        result = yield from self._algorithm("gather")(
            self, tag, root, nbytes_each, payload
        )
        return result

    def gatherv(self, payload: Any = None, nbytes: int = 0, root: int = 0):
        self._check_rank(root, "root")
        self._job.trace.record_collective("gatherv")
        tag = self._next_coll_tag()
        result = yield from self._algorithm("gatherv")(self, tag, root, nbytes, payload)
        return result

    def scatter(
        self,
        payloads: Optional[Sequence] = None,
        nbytes_each: int = 0,
        root: int = 0,
    ):
        self._check_rank(root, "root")
        self._job.trace.record_collective("scatter")
        tag = self._next_coll_tag()
        result = yield from self._algorithm("scatter")(
            self, tag, root, nbytes_each, payloads
        )
        return result

    def scatterv(
        self,
        nbytes_list: Optional[Sequence[int]] = None,
        payloads: Optional[Sequence] = None,
        root: int = 0,
    ):
        self._check_rank(root, "root")
        self._job.trace.record_collective("scatterv")
        tag = self._next_coll_tag()
        result = yield from self._algorithm("scatterv")(
            self, tag, root, nbytes_list, payloads
        )
        return result

    def scan(self, payload: Any = None, nbytes: int = 0, op: ReduceOp = SUM):
        """Inclusive prefix reduction (``MPI_Scan``)."""
        self._job.trace.record_collective("scan")
        tag = self._next_coll_tag()
        result = yield from self._algorithm("scan")(self, tag, nbytes, payload, op)
        return result

    def allgather(self, payload: Any = None, nbytes_each: int = 0):
        self._job.trace.record_collective("allgather")
        tag = self._next_coll_tag()
        result = yield from self._algorithm("allgather")(self, tag, nbytes_each, payload)
        return result

    def alltoall(self, payloads: Optional[Sequence] = None, nbytes_each: int = 0):
        self._job.trace.record_collective("alltoall")
        tag = self._next_coll_tag()
        result = yield from self._algorithm("alltoall")(self, tag, nbytes_each, payloads)
        return result

    def alltoallv(
        self,
        send_sizes: Sequence[int],
        payloads: Optional[Sequence] = None,
    ):
        self._job.trace.record_collective("alltoallv")
        tag = self._next_coll_tag()
        result = yield from self._algorithm("alltoallv")(self, tag, send_sizes, payloads)
        return result

    # -------------------------------------------------------------------- misc
    def wtime(self) -> float:
        """Current simulation time (``MPI_Wtime``)."""
        return self.env.now

    def abort(self, reason: str = ""):
        from repro.errors import MpiAbortError

        raise MpiAbortError(f"rank {self.rank} called abort: {reason}")

    def __repr__(self) -> str:
        return f"<Communicator rank={self.rank} size={self.size}>"
