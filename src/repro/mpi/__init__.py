"""A message-passing library running on the simulated grid.

Semantically this is a (subset of an) MPI implementation written from
scratch: tag/source matching with wildcards and the non-overtaking rule,
an eager/rendezvous point-to-point protocol over the TCP model, a suite of
collective algorithms (binomial, Van de Geijn, recursive doubling,
Rabenseifner, ring, Bruck, pairwise), and a runtime that places ranks on
nodes and runs SPMD generator programs to completion.

The behavioural differences between MPICH2, GridMPI, MPICH-Madeleine and
OpenMPI are *configuration* of this engine — see :mod:`repro.impls`.
"""

from repro.mpi.constants import (
    ANY_SOURCE,
    ANY_TAG,
    BAND,
    BOR,
    LAND,
    LOR,
    MAX,
    MIN,
    PROD,
    SUM,
)
from repro.mpi.datatypes import BYTE, DOUBLE, FLOAT, INT, Datatype
from repro.mpi.message import Envelope, Status
from repro.mpi.request import Request
from repro.mpi.runtime import JobResult, MpiJob, RankContext
from repro.mpi.tracing import MessageTrace, TrafficSummary

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "BAND",
    "BOR",
    "BYTE",
    "DOUBLE",
    "Datatype",
    "Envelope",
    "FLOAT",
    "INT",
    "JobResult",
    "LAND",
    "LOR",
    "MAX",
    "MIN",
    "MessageTrace",
    "MpiJob",
    "PROD",
    "RankContext",
    "Request",
    "SUM",
    "Status",
    "TrafficSummary",
]
