"""Rank-to-rank byte transport: TCP links between nodes, memcpy within one.

Every rank pair gets its own socket pair (as MPICH2/OpenMPI do per
process pair); connections are established eagerly at job start so the
measurements exclude connection setup, matching the paper's methodology
(minimum over 200 round trips / best of 5 runs).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import MpiError
from repro.net.topology import Node
from repro.sim.core import Environment
from repro.sim.queues import Resource
from repro.tcp.connection import Fabric, TcpConnection, TcpOptions

#: One-way latency and bandwidth of intra-node (shared-memory) transfers.
LOCAL_LATENCY = 1e-6
LOCAL_BANDWIDTH_BPS = 20e9  # 2.5 GB/s memcpy


class Link:
    """One direction of a rank-pair transport."""

    inter_site: bool

    def transmit(self, nbytes: int):
        """Generator: send ``nbytes``; returns the receiver arrival time."""
        raise NotImplementedError


class TcpLink(Link):
    def __init__(self, connection: TcpConnection, src_node: Node):
        self._direction = connection.direction(src_node)
        self.inter_site = self._direction.route.inter_site

    def transmit(self, nbytes: int):
        arrival = yield from self._direction.transmit(nbytes)
        return arrival


class MultiStreamLink(Link):
    """K parallel TCP connections for one rank pair (MPICH-G2 §2.1.5:
    "support for large messages using several TCP streams", the GridFTP
    technique).

    Messages at or above ``threshold`` are striped across all streams —
    each stream's congestion window ramps independently, so a
    window-limited WAN path delivers up to K times the single-stream
    throughput during slow start and after losses.  Smaller messages use
    stream 0 only (striping tiny messages would add per-stream latency).
    """

    def __init__(
        self,
        connections: list[TcpConnection],
        src_node: Node,
        threshold: int,
    ):
        if not connections:
            raise MpiError("multi-stream link needs at least one connection")
        self._directions = [c.direction(src_node) for c in connections]
        self.threshold = threshold
        self.inter_site = self._directions[0].route.inter_site

    def transmit(self, nbytes: int):
        if nbytes < self.threshold or len(self._directions) == 1:
            arrival = yield from self._directions[0].transmit(nbytes)
            return arrival
        env = self._directions[0].env
        k = len(self._directions)
        base, rem = divmod(int(nbytes), k)
        chunks = [base + (1 if i < rem else 0) for i in range(k)]

        def worker(direction, chunk):
            arrival = yield from direction.transmit(chunk)
            return arrival

        procs = [
            env.process(worker(d, chunk), name="stripe")
            for d, chunk in zip(self._directions, chunks)
            if chunk > 0
        ]
        from repro.sim.sync import AllOf

        results = yield AllOf(env, procs)
        return max(results.values())


class FabricLink(Link):
    """Intra-cluster link over the high-speed fabric (Myrinet/Infiniband).

    No TCP: hardware flow control, source routing — a fluid flow over the
    two fabric ports plus half the fabric's wire RTT and a small host
    overhead.  Used when the MPI implementation supports the fabric
    natively (MPICH-Madeleine's raison d'être, §2.1.2; exercised by the
    paper's §5 heterogeneity future work).
    """

    inter_site = False
    HOST_OVERHEAD = 3e-6  # one-way host/NIC processing

    def __init__(self, fluid, src_node: Node, dst_node: Node):
        if src_node.fabric_tx is None or dst_node.fabric_rx is None:
            raise MpiError(
                f"no high-speed fabric between {src_node.name} and {dst_node.name}"
            )
        self._fluid = fluid
        self._pipes = (src_node.fabric_tx, dst_node.fabric_rx)
        self._one_way = src_node.cluster.fabric_rtt / 2.0
        self._name = f"fabric:{src_node.name}->{dst_node.name}"
        self._lock = Resource(fluid.env, capacity=1)

    def transmit(self, nbytes: int):
        grant = self._lock.request()
        yield grant
        try:
            flow = self._fluid.start_flow(self._name, self._pipes, nbytes)
            yield flow.done
            return self._fluid.env.now + self._one_way + self.HOST_OVERHEAD
        finally:
            self._lock.release(grant)


class LocalLink(Link):
    """Two ranks on the same node: a serialised memcpy."""

    inter_site = False

    def __init__(self, env: Environment):
        self.env = env
        self._lock = Resource(env, capacity=1)

    def transmit(self, nbytes: int):
        grant = self._lock.request()
        yield grant
        try:
            yield self.env.timeout(LOCAL_LATENCY + nbytes * 8.0 / LOCAL_BANDWIDTH_BPS)
            return self.env.now
        finally:
            self._lock.release(grant)


class Transport:
    """Caches one transport link per ordered rank pair.

    ``parallel_streams``/``stream_threshold`` enable MPICH-G2-style
    striping of large inter-site messages over several sockets.
    """

    def __init__(
        self,
        fabric: Fabric,
        placement: list[Node],
        tcp_options: TcpOptions,
        parallel_streams: int = 1,
        stream_threshold: int = 0,
        native_fabrics: frozenset = frozenset(),
    ):
        if not placement:
            raise MpiError("empty placement")
        if parallel_streams < 1:
            raise MpiError("parallel_streams must be >= 1")
        self.fabric = fabric
        self.placement = placement
        self.tcp_options = tcp_options
        self.parallel_streams = parallel_streams
        self.stream_threshold = stream_threshold
        #: fabrics the implementation drives natively (intra-cluster)
        self.native_fabrics = frozenset(native_fabrics)
        self._connections: dict[frozenset, "TcpConnection | list[TcpConnection]"] = {}
        self._links: dict[tuple[int, int], Link] = {}

    @property
    def nprocs(self) -> int:
        return len(self.placement)

    def node_of(self, rank: int) -> Node:
        try:
            return self.placement[rank]
        except IndexError:
            raise MpiError(f"rank {rank} out of range (nprocs={self.nprocs})") from None

    def link(self, src_rank: int, dst_rank: int) -> Link:
        """The directional link from ``src_rank`` to ``dst_rank``."""
        if src_rank == dst_rank:
            raise MpiError(f"rank {src_rank} sending to itself through the transport")
        key = (src_rank, dst_rank)
        link = self._links.get(key)
        if link is not None:
            return link
        src, dst = self.node_of(src_rank), self.node_of(dst_rank)
        if src is dst:
            link = LocalLink(self.fabric.env)
        elif (
            src.cluster is dst.cluster
            and src.cluster.fabric in self.native_fabrics
            and src.fabric_tx is not None
        ):
            link = FabricLink(self.fabric.fluid, src, dst)
        else:
            pair = frozenset(key)
            conns = self._connections.get(pair)
            inter_site = src.cluster is not dst.cluster
            want_streams = self.parallel_streams if inter_site else 1
            if conns is None:
                conns = [
                    self.fabric.connect(src, dst, self.tcp_options)
                    for _ in range(want_streams)
                ]
                self._connections[pair] = conns
            if len(conns) > 1:
                link = MultiStreamLink(conns, src, self.stream_threshold)
            else:
                link = TcpLink(conns[0], src)
        self._links[key] = link
        return link
