"""MPICH2 1.0.5 — the paper's reference implementation (§2.1.1).

Not a grid implementation: no long-distance optimisation, no
heterogeneity management.  Sockets are plain (kernel auto-tuned), so the
sysctl tuning of §4.2.1 is sufficient.  Default eager/rendezvous
threshold 256 kB (Table 5); raised by editing
``mpidi_ch3_post.h:MPIDI_CH3_EAGER_MAX_MSG_SIZE``.
"""

from __future__ import annotations

from repro.impls.base import DEFAULT_COPY_BANDWIDTH, FeatureNotes, MpiImplementation
from repro.tcp.buffers import BufferPolicy
from repro.units import KB, usec

MPICH2 = MpiImplementation(
    name="mpich2",
    display_name="MPICH2",
    version="1.0.5",
    eager_threshold=256 * KB,
    overhead_lan=usec(5),   # Table 4: 46 - 41
    overhead_wan=usec(6),   # Table 4: 5818 - 5812
    per_byte_overhead=1e-10,
    copy_bandwidth=DEFAULT_COPY_BANDWIDTH,
    buffer_policy=BufferPolicy.autotune(),
    paced=False,
    ss_cap_divisor=2.0,
    probe_loss_rounds=18,
    collectives={},  # engine defaults: binomial / recursive doubling
    features=FeatureNotes(
        long_distance="None",
        heterogeneity="None",
        first_publication="2002 [Gropp, EuroPVM/MPI]",
        last_publication="2006 [Buntinas et al., ANL TR P1346]",
    ),
)
