"""Implementation lookup."""

from __future__ import annotations

from repro.errors import MpiError
from repro.impls.base import MpiImplementation
from repro.impls.gridmpi import GRIDMPI
from repro.impls.madeleine import MPICH_MADELEINE
from repro.impls.mpich2 import MPICH2
from repro.impls.mpichg2 import MPICH_G2
from repro.impls.mpichvmi import MPICH_VMI
from repro.impls.openmpi import OPENMPI

#: the paper's presentation order (MPICH2 is the reference)
IMPLEMENTATION_ORDER = ("mpich2", "gridmpi", "madeleine", "openmpi")

#: the four implementations the paper benchmarks
ALL_IMPLEMENTATIONS: dict[str, MpiImplementation] = {
    impl.name: impl for impl in (MPICH2, GRIDMPI, MPICH_MADELEINE, OPENMPI)
}

#: plus the two the paper only describes (§2.1.5-2.1.6) — modelled as
#: extensions, available to the benchmarks under benchmarks/test_extensions
EXTENDED_IMPLEMENTATIONS: dict[str, MpiImplementation] = {
    **ALL_IMPLEMENTATIONS,
    MPICH_G2.name: MPICH_G2,
    MPICH_VMI.name: MPICH_VMI,
}


def get_implementation(name: str) -> MpiImplementation:
    """Look an implementation up by name (case-insensitive, accepts a few
    aliases like ``mpich-madeleine``)."""
    key = name.strip().lower().replace("-", "").replace("_", "").replace(" ", "")
    aliases = {
        "mpich2": "mpich2",
        "mpich": "mpich2",
        "gridmpi": "gridmpi",
        "madeleine": "madeleine",
        "mpichmadeleine": "madeleine",
        "mpichmad": "madeleine",
        "openmpi": "openmpi",
        "ompi": "openmpi",
        "mpichg2": "mpichg2",
        "g2": "mpichg2",
        "mpichvmi": "mpichvmi",
        "vmi": "mpichvmi",
    }
    resolved = aliases.get(key)
    if resolved is None:
        raise MpiError(
            f"unknown MPI implementation {name!r}; have "
            f"{sorted(EXTENDED_IMPLEMENTATIONS)}"
        )
    return EXTENDED_IMPLEMENTATIONS[resolved]
