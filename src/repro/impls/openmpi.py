"""OpenMPI 1.1.4 — component architecture, no grid tuning (§2.1.3).

Its TCP BTL requests **fixed 128 kB socket buffers at socket creation**,
disabling kernel auto-tuning: the sysctl tuning of §4.2.1 alone does
nothing for it, the ``-mca btl_tcp_sndbuf/btl_tcp_rcvbuf 4194304``
parameters are required (and are themselves clamped by
``rmem_max``/``wmem_max``).  Default eager limit 64 kB, raised with
``-mca btl_tcp_eager_limit``.  Its staged/fragmented send pipeline costs
a little bandwidth on very large messages (visible in Fig. 7).
"""

from __future__ import annotations

from repro.impls.base import DEFAULT_COPY_BANDWIDTH, FeatureNotes, MpiImplementation
from repro.tcp.buffers import BufferPolicy
from repro.units import KB, MB, usec

OPENMPI = MpiImplementation(
    name="openmpi",
    display_name="OpenMPI",
    version="1.1.4",
    eager_threshold=64 * KB,
    overhead_lan=usec(5),   # Table 4: 46 - 41
    overhead_wan=usec(8),   # Table 4: 5820 - 5812
    per_byte_overhead=6e-10,
    copy_bandwidth=DEFAULT_COPY_BANDWIDTH,
    buffer_policy=BufferPolicy.fixed(128 * KB, 128 * KB),
    max_eager_threshold=32 * MB,
    native_fabrics=frozenset({"myrinet", "infiniband"}),
    paced=False,
    ss_cap_divisor=2.0,
    probe_loss_rounds=18,
    collectives={},
    features=FeatureNotes(
        long_distance="None",
        heterogeneity="Gateways between TCP, Myrinet MX/GM, Infiniband OpenIB/mVAPI",
        first_publication="2004 [Gabriel et al., EuroPVM/MPI]",
        last_publication="2007 [Kauhaus et al., KiCC'07]",
    ),
)
