"""MPICH-VMI — the VMI 2.0 middleware implementation (§2.1.6).

Also not benchmarked by the paper (it preferred the still-maintained
MPICH-Madeleine); modelled here as an extension.  §2.1.6's features:

* gateways between high-speed fabrics (TCP/IP, Myrinet GM, Infiniband) —
  heterogeneity support comparable to Madeleine's;
* collective operations optimised to avoid long-distance traffic —
  modelled as the hierarchical broadcast;
* the communication-pattern database for task placement was "not
  implemented yet" in 2007 and is not modelled.
"""

from __future__ import annotations

from repro.impls.base import DEFAULT_COPY_BANDWIDTH, FeatureNotes, MpiImplementation
from repro.tcp.buffers import BufferPolicy
from repro.units import KB, usec

MPICH_VMI = MpiImplementation(
    name="mpichvmi",
    display_name="MPICH-VMI",
    version="2.0 (modelled)",
    eager_threshold=128 * KB,
    overhead_lan=usec(12),
    overhead_wan=usec(12),
    per_byte_overhead=2e-10,
    copy_bandwidth=DEFAULT_COPY_BANDWIDTH,
    buffer_policy=BufferPolicy.autotune(),
    paced=False,
    ss_cap_divisor=2.0,
    probe_loss_rounds=18,
    collectives={"bcast": "hierarchical"},
    features=FeatureNotes(
        long_distance="Optim. of collective operations",
        heterogeneity="Gateways between TCP/IP, Myrinet GM, Infiniband VAPI/OpenIB/IBAL",
        first_publication="2002 [Pakin & Pant, HPCA-8]",
        last_publication="2004 [Pant & Jafri, Cluster Computing]",
    ),
)
