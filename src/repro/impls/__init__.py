"""Behavioural models of the four MPI implementations the paper compares.

Each model is a frozen configuration of the generic engine in
:mod:`repro.mpi`: latency overheads (Table 4), default eager/rendezvous
threshold (Table 5), socket buffer policy (§4.2.1), TCP pacing and
burstiness (Fig. 9), collective algorithm choices (§2.1) and known failure
modes (§4.3: MPICH-Madeleine times out on BT and SP).
"""

from repro.impls.base import MpiImplementation
from repro.impls.registry import (
    ALL_IMPLEMENTATIONS,
    EXTENDED_IMPLEMENTATIONS,
    IMPLEMENTATION_ORDER,
    get_implementation,
)

__all__ = [
    "ALL_IMPLEMENTATIONS",
    "EXTENDED_IMPLEMENTATIONS",
    "IMPLEMENTATION_ORDER",
    "MpiImplementation",
    "get_implementation",
]
