"""MPICH-Madeleine (svn 2006-12-06) — cluster-of-clusters (§2.1.2).

Built on the Madeleine multi-network communication library: gateways
between heterogeneous high-speed fabrics (TCP, SCI, VIA, Myrinet,
Quadrics); no long-distance optimisation.  Its threaded progress engine
costs extra latency in the cluster (Table 4: +21 µs, the largest
overhead) but interestingly less on the grid (+14 µs).  Sockets are
kernel auto-tuned.  The paper could not finish BT and SP with it on the
grid ("the application timeout") — encoded as a known failure.
"""

from __future__ import annotations

from repro.impls.base import DEFAULT_COPY_BANDWIDTH, FeatureNotes, MpiImplementation
from repro.tcp.buffers import BufferPolicy
from repro.units import KB, usec

MPICH_MADELEINE = MpiImplementation(
    name="madeleine",
    display_name="MPICH-Madeleine",
    version="svn 2006-12-06",
    eager_threshold=128 * KB,
    overhead_lan=usec(21),  # Table 4: 62 - 41
    overhead_wan=usec(14),  # Table 4: 5826 - 5812
    per_byte_overhead=1.5e-10,
    copy_bandwidth=DEFAULT_COPY_BANDWIDTH,
    buffer_policy=BufferPolicy.autotune(),
    paced=False,
    ss_cap_divisor=2.0,
    probe_loss_rounds=18,
    collectives={},
    known_failures=frozenset({"bt", "sp"}),
    native_fabrics=frozenset({"myrinet", "infiniband"}),  # SCI/VIA/Quadrics too
    features=FeatureNotes(
        long_distance="None",
        heterogeneity="Gateways between TCP, SCI, VIA, Myrinet MX/GM, Quadrics",
        first_publication="2003 [Aumage & Mercier, CCGrid'03]",
        last_publication="2007 [Aumage et al., CAC'07]",
    ),
)
