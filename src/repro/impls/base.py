"""The implementation model: every paper-relevant behavioural knob.

The four implementations differ *only* through instances of this
dataclass; the protocol, transport and collective engines are shared.
That mirrors the paper's method: it attributes every performance
difference to a small set of identifiable mechanisms, which are exactly
the fields below.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Mapping, Optional

from repro.errors import MpiError
from repro.faults.profile import FaultProfile
from repro.tcp.buffers import BufferPolicy
from repro.tcp.connection import TcpOptions
from repro.units import usec


@dataclass(frozen=True)
class FeatureNotes:
    """Table 1 row: qualitative feature description."""

    long_distance: str
    heterogeneity: str
    first_publication: str
    last_publication: str


@dataclass(frozen=True)
class MpiImplementation:
    """A configured MPI implementation."""

    name: str
    display_name: str
    version: str

    # --- point-to-point protocol (Table 4, Table 5, Fig. 4) -------------------
    #: eager -> rendezvous switch (bytes); ``inf`` = never use rendezvous
    eager_threshold: float
    #: one-way software latency overhead inside a cluster / across the WAN
    overhead_lan: float
    overhead_wan: float
    #: staging/fragmentation cost per payload byte (OpenMPI's large-message
    #: deficit in Fig. 7)
    per_byte_overhead: float
    #: memory bandwidth for the unexpected-message copy (Fig. 4, arrow 2)
    copy_bandwidth: float

    # --- TCP behaviour (§4.2.1, Fig. 9) ------------------------------------------
    buffer_policy: BufferPolicy
    paced: bool
    ss_cap_divisor: float
    probe_loss_rounds: int

    # --- collectives (§2.1) ---------------------------------------------------------
    #: operation -> algorithm name overrides (see repro.mpi.collectives)
    collectives: Mapping[str, str] = field(default_factory=dict)

    # --- bookkeeping -------------------------------------------------------------------
    #: NPB benchmarks this implementation cannot complete on the grid
    #: (§4.3: Madeleine times out on BT and SP)
    known_failures: frozenset = frozenset()
    features: Optional[FeatureNotes] = None
    #: the largest eager threshold the implementation supports (OpenMPI's
    #: TCP BTL caps its eager limit at 32 MB — hence Table 5's tuned value)
    max_eager_threshold: float = math.inf
    #: parallel TCP streams for large inter-site messages (MPICH-G2's
    #: GridFTP-style striping; 1 = single socket per pair)
    parallel_streams: int = 1
    #: stripe messages at or above this size (bytes)
    stream_threshold: int = 0
    #: high-speed fabrics driven natively for intra-cluster traffic
    #: (Table 1's heterogeneity column; empty = TCP everywhere)
    native_fabrics: frozenset = frozenset()
    #: deterministic WAN degradation applied to every connection this
    #: implementation opens (None = the paper's clean dedicated path)
    fault_profile: Optional[FaultProfile] = None

    def __post_init__(self):
        if self.eager_threshold < 0:
            raise MpiError("eager threshold must be >= 0 (use inf for never)")
        if self.overhead_lan < 0 or self.overhead_wan < 0:
            raise MpiError("latency overheads must be >= 0")
        if self.copy_bandwidth <= 0:
            raise MpiError("copy bandwidth must be positive")

    # --- engine hooks -------------------------------------------------------------
    def latency_overhead(self, inter_site: bool) -> float:
        return self.overhead_wan if inter_site else self.overhead_lan

    def tcp_options(self) -> TcpOptions:
        return TcpOptions(
            buffer_policy=self.buffer_policy,
            paced=self.paced,
            ss_cap_divisor=self.ss_cap_divisor,
            probe_loss_rounds=self.probe_loss_rounds,
            fault_profile=self.fault_profile,
        )

    # --- tuning (the paper's §4.2 recipes) ----------------------------------------------
    def with_eager_threshold(self, nbytes: float) -> "MpiImplementation":
        """§4.2.2: raise the eager/rendezvous threshold (clamped to the
        implementation's maximum)."""
        return replace(
            self, eager_threshold=min(float(nbytes), self.max_eager_threshold)
        )

    def with_socket_buffers(self, nbytes: int) -> "MpiImplementation":
        """§4.2.1, OpenMPI: request explicit socket buffers
        (``-mca btl_tcp_sndbuf/btl_tcp_rcvbuf``).  Only meaningful for
        fixed-buffer implementations; others follow the kernel."""
        if self.buffer_policy.mode != "fixed":
            return self
        return replace(self, buffer_policy=BufferPolicy.fixed(nbytes, nbytes))

    def with_fault_profile(
        self, profile: Optional[FaultProfile]
    ) -> "MpiImplementation":
        """Degrade (or clean, with ``None``) every connection this
        implementation opens — the fault-injection experiment hook."""
        return replace(self, fault_profile=profile)

    def with_collective(self, operation: str, algorithm: str) -> "MpiImplementation":
        """Override one collective algorithm (ablation experiments)."""
        table = dict(self.collectives)
        table[operation] = algorithm
        return replace(self, collectives=table)

    def __repr__(self) -> str:
        thr = "inf" if math.isinf(self.eager_threshold) else f"{int(self.eager_threshold)}B"
        return f"MpiImplementation({self.name!r}, eager<={thr})"


#: Memory copy bandwidth of the testbed's Opterons (DDR333, one channel in
#: practice): used for the unexpected-eager extra copy.
DEFAULT_COPY_BANDWIDTH = 1.5e9
