"""GridMPI 1.1 — designed for grids (§2.1.4).

Long-distance optimisations: software pacing of sends (removes the
slow-start burst penalty; the only TCP modification shipping at the time)
and grid-efficient collectives — a Van de Geijn broadcast and a
Rabenseifner allreduce (Matsuda et al., Cluster'06).  By default
``MPI_Send`` never uses rendezvous (Table 5: threshold ∞; the
``_YAMPI_RSIZE`` environment variable can lower it).  Its sockets keep
their initial size, so §4.2.1's *middle* sysctl value must be raised too.
"""

from __future__ import annotations

import math

from repro.impls.base import DEFAULT_COPY_BANDWIDTH, FeatureNotes, MpiImplementation
from repro.tcp.buffers import BufferPolicy
from repro.units import usec

GRIDMPI = MpiImplementation(
    name="gridmpi",
    display_name="GridMPI",
    version="1.1",
    eager_threshold=math.inf,
    overhead_lan=usec(5),   # Table 4: 46 - 41
    overhead_wan=usec(7),   # Table 4: 5819 - 5812
    per_byte_overhead=1e-10,
    copy_bandwidth=DEFAULT_COPY_BANDWIDTH,
    buffer_policy=BufferPolicy.initial(),
    paced=True,
    ss_cap_divisor=1.0,
    probe_loss_rounds=50,
    collectives={
        "bcast": "van_de_geijn",
        "allreduce": "rabenseifner",
    },
    features=FeatureNotes(
        long_distance="TCP pacing; optimised Bcast and Allreduce",
        heterogeneity="IMPI above VendorMPI (TCP only here); no low-latency nets",
        first_publication="2004 [Matsuda et al., Cluster'04]",
        last_publication="2006 [Matsuda et al., Cluster'06]",
    ),
)
