"""MPICH-G2 — the Globus-based grid implementation (§2.1.5).

The paper describes it but does not benchmark it ("heavy certificate
management... quite hard to install"; §5 lists it as future work), so
this model is an *extension*: the described mechanisms, calibrated like
the other four, ready for the comparison the authors postponed.

Modelled features, straight from §2.1.5:

* one bidirectional socket per process pair (as the engine does anyway);
* **several TCP streams for large messages** (the GridFTP technique):
  4 parallel sockets, striping messages >= 1 MB — each stream's window
  ramps independently, a large win while the path is window-limited;
* **topology-aware collective operations** (WAN < LAN < intra-machine):
  hierarchical broadcast (one WAN transfer per site, local binomial
  fan-out); Gatherv/Scatterv stay linear, as the paper notes;
* a Globus software stack between the application and the wire: the
  highest latency overhead of the set.
"""

from __future__ import annotations

from repro.impls.base import DEFAULT_COPY_BANDWIDTH, FeatureNotes, MpiImplementation
from repro.tcp.buffers import BufferPolicy
from repro.units import KB, MB, usec

MPICH_G2 = MpiImplementation(
    name="mpichg2",
    display_name="MPICH-G2",
    version="1.2.5 (modelled)",
    eager_threshold=128 * KB,
    overhead_lan=usec(30),
    overhead_wan=usec(30),
    per_byte_overhead=2e-10,
    copy_bandwidth=DEFAULT_COPY_BANDWIDTH,
    buffer_policy=BufferPolicy.autotune(),
    paced=False,
    ss_cap_divisor=2.0,
    probe_loss_rounds=18,
    collectives={"bcast": "hierarchical"},
    parallel_streams=4,
    stream_threshold=MB,
    features=FeatureNotes(
        long_distance="Optim. of collective operations; parallel streams for big messages",
        heterogeneity="TCP above VendorMPI (Globus-managed)",
        first_publication="2003 [Karonis, Toonen & Foster, JPDC]",
        last_publication="2003 [Karonis, Toonen & Foster, JPDC]",
    ),
)
