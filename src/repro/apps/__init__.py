"""Measurement applications: the pingpong microbenchmark and ray2mesh."""

from repro.apps.pingpong import (
    PingPongCurve,
    PingPongPoint,
    StreamSample,
    mpi_pingpong,
    mpi_stream,
    tcp_pingpong,
    tcp_stream,
)
from repro.apps.ray2mesh import Ray2MeshResult, run_ray2mesh
from repro.apps.simri import SimriResult, run_simri

__all__ = [
    "PingPongCurve",
    "PingPongPoint",
    "Ray2MeshResult",
    "SimriResult",
    "StreamSample",
    "mpi_pingpong",
    "mpi_stream",
    "run_ray2mesh",
    "run_simri",
    "tcp_pingpong",
    "tcp_stream",
]
