"""The paper's pingpong microbenchmark (§3.1), MPI and raw-TCP flavours.

One process ``MPI_Send``s messages of 1 B to 64 MB to a peer that
receives and echoes them; 200 round trips per size.  Following the paper,
the *minimum* round-trip per size gives the latency (Table 4) and the
*maximum* per-message goodput gives the bandwidth curves (Figs. 3, 5-7),
filtering out anything another Grid'5000 user might have perturbed.

Two bandwidth conventions appear in the paper and both are provided:

Bandwidth is ``size / (round_trip / 2)`` throughout: the 64 MB cluster
point lands at TCP's 940 Mbps goodput (Fig. 5) and the 1 MB stream of
Fig. 9 tops out near 570 Mbps on the 11.6 ms path, both as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.mpi.runtime import MpiJob
from repro.net.topology import Network, Node
from repro.sim.core import Environment
from repro.tcp.connection import Fabric, TcpOptions
from repro.units import MB, log2_sizes

#: the paper's message size sweep (1 kB..64 MB on the bandwidth figures)
DEFAULT_SIZES = tuple(log2_sizes(1024, 64 * MB))
DEFAULT_REPEATS = 200


@dataclass(frozen=True)
class PingPongPoint:
    """Measurements at one message size."""

    nbytes: int
    min_rtt: float
    max_bandwidth_mbps: float  # size / (min_rtt / 2), in Mbit/s
    #: mean round trip over the repeats; 0.0 when unknown (points rebuilt
    #: from shard payloads that only carry the paper's min/max metrics)
    mean_rtt: float = 0.0

    @property
    def one_way_latency(self) -> float:
        return self.min_rtt / 2.0

    @property
    def mean_bandwidth_mbps(self) -> float:
        """Mean goodput, ``size / (mean_rtt / 2)``.

        The paper's bandwidth figures use the *best* round trip to filter
        out perturbations; the fault-injection sweeps use the mean, since
        the perturbation is exactly what they measure.
        """
        if self.mean_rtt <= 0.0:
            return 0.0
        return self.nbytes * 8.0 / (self.mean_rtt / 2.0) / 1e6


@dataclass
class PingPongCurve:
    """A full size sweep between one node pair."""

    label: str
    points: list[PingPongPoint]

    def bandwidth_at(self, nbytes: int) -> float:
        for point in self.points:
            if point.nbytes == nbytes:
                return point.max_bandwidth_mbps
        raise KeyError(f"no pingpong point at {nbytes} bytes")

    @property
    def max_bandwidth_mbps(self) -> float:
        return max(p.max_bandwidth_mbps for p in self.points)

    @property
    def sizes(self) -> list[int]:
        return [p.nbytes for p in self.points]


@dataclass(frozen=True)
class StreamSample:
    """One message of a fixed-size stream (Fig. 9)."""

    index: int
    time: float  # completion time of the round trip
    bandwidth_mbps: float  # size / (round_trip / 2)


def _curve_from_rtts(label: str, rtts: dict[int, list[float]]) -> PingPongCurve:
    points = []
    for nbytes, samples in sorted(rtts.items()):
        min_rtt = min(samples)
        mean_rtt = sum(samples) / len(samples)
        bw = nbytes * 8.0 / (min_rtt / 2.0) / 1e6
        points.append(PingPongPoint(nbytes, min_rtt, bw, mean_rtt))
    return PingPongCurve(label, points)


# --- MPI pingpong -----------------------------------------------------------------
def mpi_pingpong(
    network: Network,
    impl,
    node_a: Node,
    node_b: Node,
    sizes: Sequence[int] = DEFAULT_SIZES,
    repeats: int = DEFAULT_REPEATS,
    sysctls=None,
) -> PingPongCurve:
    """Run the MPI pingpong between two nodes; returns the size sweep."""
    rtts: dict[int, list[float]] = {s: [] for s in sizes}

    def program(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            for nbytes in sizes:
                for _ in range(repeats):
                    t0 = ctx.wtime()
                    yield from comm.send(1, nbytes=nbytes)
                    yield from comm.recv(1)
                    rtts[nbytes].append(ctx.wtime() - t0)
        else:
            for nbytes in sizes:
                for _ in range(repeats):
                    yield from comm.recv(0)
                    yield from comm.send(0, nbytes=nbytes)

    job = MpiJob(network, impl, [node_a, node_b], sysctls=sysctls, trace=False)
    job.run(program)
    return _curve_from_rtts(impl.display_name, rtts)


def mpi_stream(
    network: Network,
    impl,
    node_a: Node,
    node_b: Node,
    nbytes: int = MB,
    count: int = 200,
    sysctls=None,
) -> list[StreamSample]:
    """Fig. 9: a stream of fixed-size round trips, per-message bandwidth."""
    samples: list[StreamSample] = []

    def program(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            for i in range(count):
                t0 = ctx.wtime()
                yield from comm.send(1, nbytes=nbytes)
                yield from comm.recv(1)
                rtt = ctx.wtime() - t0
                samples.append(
                    StreamSample(i, ctx.wtime(), nbytes * 8.0 / (rtt / 2.0) / 1e6)
                )
        else:
            for _ in range(count):
                yield from comm.recv(0)
                yield from comm.send(0, nbytes=nbytes)

    job = MpiJob(network, impl, [node_a, node_b], sysctls=sysctls, trace=False)
    job.run(program)
    return samples


# --- raw TCP pingpong ---------------------------------------------------------------
def tcp_pingpong(
    network: Network,
    node_a: Node,
    node_b: Node,
    sizes: Sequence[int] = DEFAULT_SIZES,
    repeats: int = DEFAULT_REPEATS,
    sysctls=None,
    options: Optional[TcpOptions] = None,
) -> PingPongCurve:
    """The TCP reference curve: no MPI layer at all."""
    env = Environment()
    fabric = Fabric(env, network)
    if sysctls is not None:
        fabric.set_sysctls(sysctls)
    conn = fabric.connect(node_a, node_b, options or TcpOptions())
    rtts: dict[int, list[float]] = {s: [] for s in sizes}

    def runner():
        yield from conn.connect()
        for nbytes in sizes:
            for _ in range(repeats):
                t0 = env.now
                arrival = yield from conn.transmit(node_a, nbytes)
                yield env.timeout(max(0.0, arrival - env.now))
                arrival = yield from conn.transmit(node_b, nbytes)
                yield env.timeout(max(0.0, arrival - env.now))
                rtts[nbytes].append(env.now - t0)

    env.process(runner())
    env.run()
    return _curve_from_rtts("TCP", rtts)


def tcp_stream(
    network: Network,
    node_a: Node,
    node_b: Node,
    nbytes: int = MB,
    count: int = 200,
    sysctls=None,
    options: Optional[TcpOptions] = None,
) -> list[StreamSample]:
    """Fig. 9a: the raw-TCP stream."""
    env = Environment()
    fabric = Fabric(env, network)
    if sysctls is not None:
        fabric.set_sysctls(sysctls)
    conn = fabric.connect(node_a, node_b, options or TcpOptions())
    samples: list[StreamSample] = []

    def runner():
        yield from conn.connect()
        for i in range(count):
            t0 = env.now
            arrival = yield from conn.transmit(node_a, nbytes)
            yield env.timeout(max(0.0, arrival - env.now))
            arrival = yield from conn.transmit(node_b, nbytes)
            yield env.timeout(max(0.0, arrival - env.now))
            rtt = env.now - t0
            samples.append(StreamSample(i, env.now, nbytes * 8.0 / (rtt / 2.0) / 1e6))

    env.process(runner())
    env.run()
    return samples
