"""ray2mesh — the paper's real application (§2.2.1, §4.4).

A master/worker seismic ray tracer: the master hands out sets of 1000
rays (69 kB per set) to 32 slaves spread over four clusters (Fig. 8);
a slave that finishes asks for the next set, so faster and nearer slaves
compute more rays (Table 6).  When the million rays are done, every node
merges the mesh cells of its submesh: ~235 MB of point-to-point
``MPI_Isend`` traffic per node plus the merge processing itself
(Table 7's merge phase).

Calibration (absolute scale only; the comparisons are structural):

* ``FLOP_PER_RAY`` puts the computing phase near the paper's ~185 s;
* ``MERGE_FLOP_PER_BYTE`` puts the merge phase near ~165 s (the merge is
  compute-bound: 235 MB/node would need only seconds of network time);
* constant init + result-writing time completes the total (~360 s).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.mpi.constants import ANY_SOURCE
from repro.mpi.runtime import MpiJob
from repro.net.grid5000 import build_ray2mesh_testbed
from repro.net.topology import Network
from repro.units import KB, MB

#: one set of rays (paper: 69 kB for 1000 rays)
BLOCK_BYTES = 69 * KB
RAYS_PER_BLOCK = 1000
TOTAL_RAYS = 1_000_000

#: work per ray (~6.6 Mflop: 1000-ray set ≈ 6 s on a 1.1 Gflop/s node)
FLOP_PER_RAY = 6.6e6

#: merge traffic per node (paper: "around 235 MB by node")
MERGE_BYTES_PER_NODE = 235 * MB
#: merge processing cost per received byte
MERGE_FLOP_PER_BYTE = 560.0

#: constant phases (init / mesh write)
INIT_TIME = 5.0
WRITE_TIME = 4.0

REQUEST_BYTES = 16
STOP = "stop"


@dataclass
class Ray2MeshResult:
    """One run: master placement, per-cluster ray counts, phase times."""

    master_site: str
    rays_per_cluster: dict[str, int]
    comp_time: float
    merge_time: float
    total_time: float

    @property
    def total_rays(self) -> int:
        return sum(self.rays_per_cluster.values())


def run_ray2mesh(
    impl,
    master_site: str = "nancy",
    network: Network = None,
    total_rays: int = TOTAL_RAYS,
    rays_per_block: int = RAYS_PER_BLOCK,
    sysctls=None,
    seed: int = 0,
) -> Ray2MeshResult:
    """Execute ray2mesh with the master on ``master_site`` (§4.4 setup:
    8 nodes in each of Nancy, Rennes, Sophia, Toulouse; the master shares
    the first node of its cluster with a slave)."""
    net = network or build_ray2mesh_testbed(nodes_per_site=8)
    if master_site not in net.clusters:
        raise WorkloadError(f"unknown master site {master_site!r}")
    if total_rays <= 0 or rays_per_block <= 0:
        raise WorkloadError("ray counts must be positive")

    slaves = []
    for site in sorted(net.clusters):
        slaves.extend(net.clusters[site].nodes)
    master_node = net.clusters[master_site].nodes[0]
    placement = [master_node] + slaves
    nslaves = len(slaves)
    nblocks = math.ceil(total_rays / rays_per_block)

    rays_done = {rank: 0 for rank in range(1, nslaves + 1)}
    phase_times = {}

    def master(ctx):
        comm = ctx.comm
        remaining = nblocks
        active = min(nslaves, remaining)
        for slave in range(1, active + 1):
            yield from comm.send(slave, BLOCK_BYTES, tag=1, payload=rays_per_block)
            remaining -= 1
        running = active
        while running:
            _, status = yield from comm.recv(ANY_SOURCE, 2)
            if remaining > 0:
                yield from comm.send(
                    status.source, BLOCK_BYTES, tag=1, payload=rays_per_block
                )
                remaining -= 1
            else:
                yield from comm.send(status.source, REQUEST_BYTES, tag=1, payload=STOP)
                running -= 1

    def slave(ctx):
        comm, rank = ctx.comm, ctx.rank
        while True:
            block, _ = yield from comm.recv(0, 1)
            if block == STOP:
                break
            yield from ctx.compute(block * FLOP_PER_RAY)
            rays_done[rank] += block
            yield from comm.send(0, REQUEST_BYTES, tag=2)

    def merge(ctx):
        comm, rank = ctx.comm, ctx.rank
        peers = [r for r in range(1, nslaves + 1) if r != rank]
        per_peer = MERGE_BYTES_PER_NODE // len(peers)
        reqs = [comm.isend(peer, per_peer, tag=3) for peer in peers]
        received = 0
        for _ in peers:
            _, status = yield from comm.recv(ANY_SOURCE, 3)
            received += status.nbytes
        yield from comm.waitall(reqs)
        yield from ctx.compute(received * MERGE_FLOP_PER_BYTE)

    def real_program(ctx):
        comm, rank = ctx.comm, ctx.rank
        yield from ctx.compute_time(INIT_TIME)
        if rank == 0:
            yield from master(ctx)
        else:
            yield from slave(ctx)
        yield from comm.barrier()
        if rank == 0:
            phase_times["comp_end"] = ctx.wtime()
        if rank != 0:
            yield from merge(ctx)
        yield from comm.barrier()
        if rank == 0:
            phase_times["merge_end"] = ctx.wtime()
        yield from ctx.compute_time(WRITE_TIME)

    job = MpiJob(net, impl, placement, sysctls=sysctls, trace=False, seed=seed)
    result = job.run(real_program)

    rays_per_cluster: dict[str, int] = {}
    for rank, node in enumerate(placement):
        if rank == 0:
            continue
        site = node.cluster.name
        rays_per_cluster[site] = rays_per_cluster.get(site, 0) + rays_done[rank]

    comp_time = phase_times["comp_end"] - INIT_TIME
    merge_time = phase_times["merge_end"] - phase_times["comp_end"]
    return Ray2MeshResult(
        master_site=master_site,
        rays_per_cluster=rays_per_cluster,
        comp_time=comp_time,
        merge_time=merge_time,
        total_time=result.makespan,
    )
