"""Simri — the paper's second example application (§2.2.2).

A 3D MRI simulator parallelised master/slave: the master divides the
virtual object into vectors of magnetisation to evolve, sends a set to
each slave, collects the results, and assembles the RF signal.  The
paper's reference experiment: an 8-node cluster of Pentium III machines,
MPICH-G2 — synchronisation and communication take only ~1.5 % of the
total time once the object is at least 256x256, and the 7 computing
slaves yield an efficiency near 100 % (the master does not compute).

The model: an object of ``n^2`` vectors, ``VECTOR_BYTES`` each on the
wire, ``FLOP_PER_VECTOR`` of magnetisation evolution per vector, dealt
in one round (the real code uses static decomposition).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.mpi.constants import ANY_SOURCE
from repro.mpi.runtime import MpiJob
from repro.net.topology import Network, Node

#: bytes per magnetisation vector on the wire (3 doubles + bookkeeping)
VECTOR_BYTES = 32
#: magnetisation evolution cost per vector over the whole sequence
FLOP_PER_VECTOR = 2.0e5
#: MRI sequence steps: each ends with a master/slave synchronisation
#: exchange — the fixed cost that dominates small objects (the paper:
#: comm drops to ~1.5 % only once the object reaches 256x256)
SEQUENCE_STEPS = 16
CONTROL_BYTES = 256


@dataclass
class SimriResult:
    """Outcome of one simulated MRI acquisition."""

    object_size: int
    nslaves: int
    total_time: float
    compute_time: float
    comm_fraction: float
    efficiency: float  # vs a single computing node


def run_simri(
    impl,
    network: Network,
    placement: list[Node],
    object_size: int = 256,
    sysctls=None,
) -> SimriResult:
    """Run Simri with rank 0 as the (non-computing) master."""
    if len(placement) < 2:
        raise WorkloadError("simri needs a master and at least one slave")
    if object_size < 8:
        raise WorkloadError("object size too small")
    nslaves = len(placement) - 1
    vectors = object_size * object_size
    base, rem = divmod(vectors, nslaves)
    shares = [base + (1 if i < rem else 0) for i in range(nslaves)]
    phases = {}

    def program(ctx):
        comm, rank = ctx.comm, ctx.rank
        if rank == 0:
            # deal the vector sets
            for slave in range(1, nslaves + 1):
                yield from comm.send(
                    slave, shares[slave - 1] * VECTOR_BYTES, tag=1,
                    payload=shares[slave - 1],
                )
            # one synchronisation exchange per sequence step
            for _step in range(SEQUENCE_STEPS):
                for _ in range(nslaves):
                    _, status = yield from comm.recv(ANY_SOURCE, 2)
                    yield from comm.send(status.source, CONTROL_BYTES, tag=3)
            # collect the evolved magnetisation
            for _ in range(nslaves):
                yield from comm.recv(ANY_SOURCE, 4)
            phases["collect_done_at"] = ctx.wtime()
            # assemble the RF signal (cheap FFT on the master)
            yield from ctx.compute(vectors * 50.0)
        else:
            share, _ = yield from comm.recv(0, 1)
            t0 = ctx.wtime()
            compute_spent = 0.0
            for _step in range(SEQUENCE_STEPS):
                c0 = ctx.wtime()
                yield from ctx.compute(share * FLOP_PER_VECTOR / SEQUENCE_STEPS)
                compute_spent += ctx.wtime() - c0
                yield from comm.send(0, CONTROL_BYTES, tag=2)
                yield from comm.recv(0, 3)
            phases[f"slave_compute_{rank}"] = compute_spent
            yield from comm.send(0, share * VECTOR_BYTES, tag=4)

    job = MpiJob(network, impl, placement, sysctls=sysctls, trace=True)
    result = job.run(program)

    compute_time = max(v for k, v in phases.items() if k.startswith("slave_compute_"))
    total = result.makespan
    comm_fraction = max(0.0, 1.0 - compute_time / total)
    # efficiency: one slave would need sum(all shares) of work
    serial_time = vectors * FLOP_PER_VECTOR / placement[1].flops
    efficiency = serial_time / (total * nslaves)
    return SimriResult(
        object_size=object_size,
        nslaves=nslaves,
        total_time=total,
        compute_time=compute_time,
        comm_fraction=comm_fraction,
        efficiency=efficiency,
    )
