"""The concrete Grid'5000 testbed of the paper, as data + builders.

Encodes:

* Table 3 (host specifications of the Rennes and Nancy clusters),
* Figure 8 (inter-site RTTs used for the ray2mesh runs),
* Figure 1/2 (1 Gbps NICs, RENATER 1/10 Gbps backbone, two clusters of up
  to 16 nodes for the pingpong/NPB experiments).

The RTT between Rennes and Nancy is 11.6 ms (paper §3.2).  Figure 8 labels
six RTTs between the four ray2mesh sites: 11.6, 14.5, 17.2, 17.8, 19.2 and
19.9 ms; the figure does not spell out every pairing, so the assignment
below follows the paper's text ("about 19 ms for the link Rennes–Sophia")
and geography for the rest.  Only the *spread* of these values matters for
the reproduced results.

Effective compute rates are calibrated, not measured: a 2007 Opteron at
2.0–2.2 GHz sustains roughly half a flop per cycle on the NAS kernels, so
``gflops = 0.5 * clock_GHz``.  Sophia's cluster is modelled faster (the
paper orders clusters Nancy < Rennes, Toulouse < Sophia and Sophia computes
~24 % more rays in Table 6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NetworkConfigError
from repro.net.topology import Cluster, Network, Node
from repro.units import Gbps, msec, usec


@dataclass(frozen=True)
class HostSpec:
    """One row of the paper's Table 3 (plus the calibrated compute rate)."""

    site: str
    processor: str
    clock_ghz: float
    motherboard: str
    memory_gb: int
    nic: str
    os: str
    kernel: str
    tcp: str
    gflops: float


#: Table 3 of the paper, extended with Sophia/Toulouse (used in §4.4) whose
#: hardware the paper does not detail; their clock rates are chosen to match
#: the cluster ordering and the Table 6 ray ratios.
HOST_SPECS: dict[str, HostSpec] = {
    "rennes": HostSpec(
        site="rennes",
        processor="AMD Opteron 248",
        clock_ghz=2.2,
        motherboard="Sun Fire V20z",
        memory_gb=2,
        nic="1Gbps Eth",
        os="Debian",
        kernel="2.6.18",
        tcp="BIC + Sack",
        gflops=1.10,
    ),
    "nancy": HostSpec(
        site="nancy",
        processor="AMD Opteron 246",
        clock_ghz=2.0,
        motherboard="HP ProLiant DL145G2",
        memory_gb=2,
        nic="1Gbps Eth",
        os="Debian",
        kernel="2.6.18",
        tcp="BIC + Sack",
        gflops=1.00,
    ),
    "toulouse": HostSpec(
        site="toulouse",
        processor="AMD Opteron (ray2mesh site)",
        clock_ghz=2.2,
        motherboard="unspecified",
        memory_gb=2,
        nic="1Gbps Eth",
        os="Debian",
        kernel="2.6.18",
        tcp="BIC + Sack",
        gflops=1.06,
    ),
    "sophia": HostSpec(
        site="sophia",
        processor="AMD Opteron (ray2mesh site)",
        clock_ghz=2.6,
        motherboard="unspecified",
        memory_gb=2,
        nic="1Gbps Eth",
        os="Debian",
        kernel="2.6.18",
        tcp="BIC + Sack",
        gflops=1.30,
    ),
}

#: Inter-site RTTs in milliseconds (Fig. 8 values; see module docstring for
#: the pairing rationale).
GRID5000_RTT_MS: dict[frozenset, float] = {
    frozenset(("rennes", "nancy")): 11.6,
    frozenset(("rennes", "sophia")): 19.2,
    frozenset(("rennes", "toulouse")): 17.2,
    frozenset(("nancy", "sophia")): 19.9,
    frozenset(("nancy", "toulouse")): 17.8,
    frozenset(("toulouse", "sophia")): 14.5,
}

#: The nine Grid'5000 sites (Fig. 1).
ALL_SITES = (
    "bordeaux",
    "grenoble",
    "lille",
    "lyon",
    "nancy",
    "orsay",
    "rennes",
    "sophia",
    "toulouse",
)

#: Intra-cluster *wire* RTT.  The paper's Table 4 measures 41 us of one-way
#: raw-TCP latency inside the Rennes cluster; with the calibrated 12 us
#: one-way TCP stack crossing (see :mod:`repro.tcp.connection`) that leaves
#: 29 us of one-way wire latency, i.e. a 58 us wire RTT.
INTRA_CLUSTER_RTT = usec(58)


def _add_site(net: Network, site: str, nodes: int, wan_access_bps: float) -> Cluster:
    spec = HOST_SPECS.get(site)
    gflops = spec.gflops if spec else 1.0
    cluster = net.add_cluster(
        site, wan_access_bps=wan_access_bps, intra_rtt=INTRA_CLUSTER_RTT
    )
    cluster.add_nodes(nodes, nic_bps=Gbps(1), gflops=gflops)
    return cluster


def build_pair_testbed(
    nodes_per_site: int = 8,
    sites: tuple[str, str] = ("rennes", "nancy"),
    wan_access_bps: float = Gbps(1),
) -> Network:
    """The two-cluster testbed of Fig. 2 (pingpong and NPB experiments).

    By default: ``nodes_per_site`` hosts in Rennes and Nancy, 1 Gbps NICs,
    RTT 11.6 ms across the WAN.  Note the paper also runs 16-node
    single-cluster references; ask for ``nodes_per_site=16`` and place all
    ranks in one cluster for that.
    """
    if nodes_per_site < 1:
        raise NetworkConfigError("need at least one node per site")
    a, b = sites
    net = Network("grid5000-pair")
    _add_site(net, a, nodes_per_site, wan_access_bps)
    _add_site(net, b, nodes_per_site, wan_access_bps)
    key = frozenset(sites)
    rtt_ms = GRID5000_RTT_MS.get(key)
    if rtt_ms is None:
        raise NetworkConfigError(f"no RTT known between {a!r} and {b!r}")
    net.set_rtt(a, b, msec(rtt_ms))
    return net


def build_ray2mesh_testbed(nodes_per_site: int = 8) -> Network:
    """The four-cluster testbed of Fig. 8 (ray2mesh experiments)."""
    net = Network("grid5000-ray2mesh")
    sites = ("rennes", "nancy", "sophia", "toulouse")
    for site in sites:
        _add_site(net, site, nodes_per_site, Gbps(1))
    for pair, rtt_ms in GRID5000_RTT_MS.items():
        a, b = sorted(pair)
        net.set_rtt(a, b, msec(rtt_ms))
    return net


def build_grid5000(nodes_per_site: int = 2) -> Network:
    """All nine Grid'5000 sites (Fig. 1), for exploratory use.

    RTTs not given by the paper are synthesised from the known ones: the
    mean measured inter-site RTT (~16.7 ms) is used for every pair the
    paper does not document.
    """
    net = Network("grid5000")
    for site in ALL_SITES:
        _add_site(net, site, nodes_per_site, Gbps(1))
    mean_rtt = sum(GRID5000_RTT_MS.values()) / len(GRID5000_RTT_MS)
    for i, a in enumerate(ALL_SITES):
        for b in ALL_SITES[i + 1 :]:
            rtt_ms = GRID5000_RTT_MS.get(frozenset((a, b)), mean_rtt)
            net.set_rtt(a, b, msec(rtt_ms))
    # The paper quotes Toulouse-Lille explicitly (§3.2).
    net.set_rtt("toulouse", "lille", msec(18.2))
    return net


def node_names(net: Network, site: str, count: int) -> list[Node]:
    """First ``count`` nodes of ``site`` (placement helper)."""
    cluster = net.clusters.get(site)
    if cluster is None:
        raise NetworkConfigError(f"unknown site {site!r}")
    if count > len(cluster.nodes):
        raise NetworkConfigError(
            f"site {site!r} has {len(cluster.nodes)} nodes, asked for {count}"
        )
    return cluster.nodes[:count]
