"""Network substrate: fluid bandwidth sharing, topology, the Grid'5000 model.

The network is modelled at *flow level* (no packets): a transfer is a fluid
flow across a sequence of capacity pipes (sender NIC, site uplink, site
downlink, receiver NIC); concurrent flows share pipe capacity max-min
fairly.  Propagation latency is a property of the route and is applied by
the transport layer on top (see :mod:`repro.tcp`).

This level of abstraction is exactly what the paper's phenomena live on:
throughput limited by ``min(window/RTT, bottleneck share)``, NIC
serialisation at collective roots, and WAN sharing between concurrent
inter-site flows.
"""

from repro.net.fluid import Flow, FluidNetwork, Pipe
from repro.net.topology import Cluster, Network, Node, Route
from repro.net.grid5000 import (
    GRID5000_RTT_MS,
    HOST_SPECS,
    build_grid5000,
    build_pair_testbed,
    build_ray2mesh_testbed,
)

__all__ = [
    "Cluster",
    "Flow",
    "FluidNetwork",
    "GRID5000_RTT_MS",
    "HOST_SPECS",
    "Network",
    "Node",
    "Pipe",
    "Route",
    "build_grid5000",
    "build_pair_testbed",
    "build_ray2mesh_testbed",
]
