"""Flow-level ("fluid") bandwidth sharing.

A :class:`Pipe` is a capacity constraint (a NIC direction, a site uplink...).
A :class:`Flow` is a byte transfer across an ordered set of pipes with an
optional sender rate cap (used by TCP to impose its congestion window:
``cap = cwnd / RTT``).

Rates are allocated by **progressive filling** (max-min fairness with per-flow
caps): all unfrozen flows grow at the same rate until a pipe saturates (its
flows freeze) or a flow hits its cap (it freezes); repeat.  This is the
standard fluid model of long-lived TCP flows sharing a network.

Incremental allocation
----------------------
The max-min allocation decomposes over connected components of the
shares-a-pipe relation, so it can be repaired locally instead of recomputed
globally.  Every mutation (flow arrival, completion, abort, rate cap
change, pipe capacity change) seeds a *dirty-pipe worklist*; the worklist
is closed transitively (a dirtied pipe pulls in its flows, those flows
their other pipes, and so on) and exactly that component is re-solved —
flows outside it share no constraint with the mutation and provably keep
their rates.  The component solve itself maintains per-pipe active-flow
counts incrementally, replacing the old per-iteration membership scans
over every pipe's whole population.  Completion timers are re-armed only
for flows whose rate materially changed (version tokens make stale timers
inert), so an arrival or departure leaves the timers of unaffected flows
untouched.

The pre-rewrite full-network solver is kept verbatim as the oracle: set
``REPRO_FLUID=legacy`` to route every recomputation through it (the
differential property test in ``tests/test_net_fluid.py`` drives both
engines over randomized workloads).
"""

from __future__ import annotations

import heapq
import math
import os
from typing import Iterable, Optional

from repro.errors import NetworkConfigError
from repro.sim.core import Environment, Event
from repro.units import Rate

_EPS = 1e-12
#: Residues below one bit are float noise from ``(t + eta) - t`` round-trips,
#: not real payload; clamping them avoids infinite zero-delay reschedules.
_RESIDUE_BITS = 1.0
#: Never schedule a completion closer than this (guards clock stagnation).
_MIN_ETA = 1e-12


def _use_legacy_allocator() -> bool:
    return os.environ.get("REPRO_FLUID", "") == "legacy"


class Pipe:
    """A single capacity constraint, in bits per second."""

    __slots__ = ("name", "capacity_bps", "flows")

    def __init__(self, name: str, capacity_bps: "Rate | float"):
        if capacity_bps <= 0:
            raise NetworkConfigError(f"pipe {name!r}: capacity must be positive")
        self.name = name
        self.capacity_bps = float(capacity_bps)
        #: insertion-ordered membership: flows register in creation (uid)
        #: order and dicts preserve it, so iterating ``pipe.flows`` is
        #: deterministic without per-recompute sorting (used as a set; the
        #: values are always None).
        self.flows: dict["Flow", None] = {}

    def __repr__(self) -> str:
        return f"Pipe({self.name!r}, {self.capacity_bps / 1e9:.3g} Gbps, {len(self.flows)} flows)"


class Flow:
    """An in-flight fluid transfer."""

    __slots__ = (
        "name",
        "uid",
        "pipes",
        "remaining_bits",
        "rate_cap_bps",
        "rate_bps",
        "done",
        "_last_update",
        "_version",
        "started_at",
    )

    def __init__(
        self,
        name: str,
        pipes: tuple[Pipe, ...],
        nbytes: float,
        done: Event,
        rate_cap_bps: float = math.inf,
        uid: int = 0,
    ):
        self.name = name
        #: creation order within the owning FluidNetwork; the deterministic
        #: iteration key (sets of flows order by id(), which is not stable
        #: run-to-run — see DET006 in repro.analysis)
        self.uid = uid
        self.pipes = pipes
        self.remaining_bits = float(nbytes) * 8.0
        self.rate_cap_bps = float(rate_cap_bps)
        self.rate_bps = 0.0
        self.done = done
        self._last_update = 0.0
        self._version = 0
        self.started_at = 0.0

    def __repr__(self) -> str:
        return (
            f"Flow({self.name!r}, remaining={self.remaining_bits / 8:.0f}B, "
            f"rate={self.rate_bps / 1e6:.1f}Mbps)"
        )


class _ComponentPlan:
    """Indexed view of one shares-a-pipe component, cached between solves.

    Rate caps and capacities may change freely between solves (the solve
    re-reads them); membership changes are patched in place — an arriving
    flow whose route stays inside the component is appended (its uid is
    the largest yet, so ``flows`` stays uid sorted), a departing flow is
    dead-marked and skipped, and only an arrival that would *merge* two
    components marks the plan stale.  ``flows`` is uid sorted, ``pipes``
    in first-touch order over that flow order — both deterministic.
    """

    __slots__ = (
        "flows",
        "pipes",
        "pipe_index",
        "flow_index",
        "flow_pipes",
        "members",
        "live_count",
        "dead",
        "n_dead",
        "stale",
    )

    def __init__(
        self,
        flows: "list[Flow]",
        pipes: "list[Pipe]",
        pipe_index: "dict[Pipe, int]",
        flow_pipes: "list[list[int]]",
        members: "list[list[int]]",
    ):
        self.flows = flows
        self.pipes = pipes
        #: pipe -> index into ``pipes`` (also the component's pipe set)
        self.pipe_index = pipe_index
        #: flow -> index into ``flows``, live flows only
        self.flow_index = {flow: fidx for fidx, flow in enumerate(flows)}
        #: per flow index, the pipe indices on its route
        self.flow_pipes = flow_pipes
        #: per pipe index, the flow indices crossing it (may include dead)
        self.members = members
        #: per pipe index, the number of *live* flows crossing it; patched
        #: on every extend/drop so each solve starts from a plain copy
        self.live_count = [len(m) for m in members]
        self.dead = bytearray(len(flows))
        self.n_dead = 0
        self.stale = False

    def try_extend(self, flow: Flow) -> None:
        """Patch ``flow`` into the component if its route allows it.

        A route entirely outside the component leaves the plan untouched
        (the flow lives in another component).  A route pipe that is
        outside the component but already carries other flows would merge
        two components — that is the one structural change we cannot
        patch, so the plan goes stale.  Otherwise the flow (and any brand
        new pipes it brings) is appended in place.
        """
        pipe_index = self.pipe_index
        inside = 0
        for pipe in flow.pipes:
            if pipe in pipe_index:
                inside += 1
            elif len(pipe.flows) > 1:
                self.stale = True
                return
        if inside == 0:
            return
        fidx = len(self.flows)
        self.flows.append(flow)
        self.dead.append(0)
        self.flow_index[flow] = fidx
        indices: list[int] = []
        for pipe in flow.pipes:
            pidx = pipe_index.get(pipe)
            if pidx is None:
                pidx = pipe_index[pipe] = len(self.pipes)
                self.pipes.append(pipe)
                self.members.append([])
                self.live_count.append(0)
            indices.append(pidx)
            self.members[pidx].append(fidx)
            self.live_count[pidx] += 1
        self.flow_pipes.append(indices)

    def drop(self, flow: Flow) -> None:
        """Dead-mark a departing flow (no-op if it is another component's)."""
        fidx = self.flow_index.pop(flow, None)
        if fidx is not None:
            self.dead[fidx] = 1
            self.n_dead += 1
            for pidx in self.flow_pipes[fidx]:
                self.live_count[pidx] -= 1

    def compact(self) -> None:
        """Rebuild the index arrays without the dead slots.

        Filtering preserves the uid order of the surviving flows.  Called
        by the owner once dead entries outnumber live ones, so the per
        solve scan stays proportional to the live population.
        """
        live = [fidx for fidx in range(len(self.flows)) if not self.dead[fidx]]
        flows = [self.flows[fidx] for fidx in live]
        old_flow_pipes = self.flow_pipes
        flow_pipes = [old_flow_pipes[fidx] for fidx in live]
        members: list[list[int]] = [[] for _ in self.pipes]
        for new_fidx, indices in enumerate(flow_pipes):
            for pidx in indices:
                members[pidx].append(new_fidx)
        self.flows = flows
        self.flow_pipes = flow_pipes
        self.members = members
        self.live_count = [len(m) for m in members]
        self.flow_index = {flow: fidx for fidx, flow in enumerate(flows)}
        self.dead = bytearray(len(flows))
        self.n_dead = 0


class FluidNetwork:
    """Tracks active flows and allocates max-min fair rates."""

    def __init__(self, env: Environment):
        self.env = env
        self.flows: set[Flow] = set()
        #: number of rate recomputations, exposed for performance tests
        self.recomputations = 0
        #: number of component solves actually run across all recomputations;
        #: with the legacy allocator this equals ``recomputations``
        self.solve_rounds = 0
        self._flow_counter = 0
        self._legacy = _use_legacy_allocator()
        #: cached component plan, patched in place across membership
        #: changes and rebuilt only when a mutation falls outside it
        self._plan: Optional[_ComponentPlan] = None

    # -- public API -------------------------------------------------------------
    def start_flow(
        self,
        name: str,
        pipes: Iterable[Pipe],
        nbytes: float,
        rate_cap_bps: "Rate | float" = math.inf,
    ) -> Flow:
        """Begin transferring ``nbytes`` across ``pipes``.

        Returns the :class:`Flow`; its ``done`` event triggers when the last
        byte leaves the last pipe.  ``rate_cap_bps`` bounds the flow's rate
        (TCP window cap); it may be changed later with :meth:`set_rate_cap`.
        """
        route = tuple(pipes)
        if not route:
            raise NetworkConfigError(f"flow {name!r}: needs at least one pipe")
        if nbytes < 0:
            raise NetworkConfigError(f"flow {name!r}: negative size")
        if rate_cap_bps <= 0:
            raise NetworkConfigError(f"flow {name!r}: rate cap must be positive")
        self._flow_counter += 1
        flow = Flow(
            name, route, nbytes, self.env.event(), rate_cap_bps, uid=self._flow_counter
        )
        flow._last_update = self.env.now
        flow.started_at = self.env.now
        if nbytes == 0:
            flow.done.succeed(flow)
            return flow
        self.flows.add(flow)
        for pipe in route:
            pipe.flows[flow] = None
        plan = self._plan
        if plan is not None and not plan.stale and not self._legacy:
            plan.try_extend(flow)
        self._recompute(route)
        return flow

    def set_rate_cap(self, flow: Flow, rate_cap_bps: float) -> None:
        """Change a flow's rate cap (e.g. the congestion window grew)."""
        if rate_cap_bps <= 0:
            raise NetworkConfigError(f"flow {flow.name!r}: rate cap must be positive")
        if flow not in self.flows:
            return  # already finished; harmless race with the cap updater
        old_cap = flow.rate_cap_bps
        if abs(rate_cap_bps - old_cap) < _EPS:
            return
        flow.rate_cap_bps = float(rate_cap_bps)
        # A cap move cannot change any allocation when the flow was not
        # cap-limited before (its pipes limit it) and the new cap still
        # sits above its current rate.  Skipping the recompute here is what
        # keeps thousand-flow phases (ray2mesh's merge) tractable.
        rate = flow.rate_bps
        was_cap_limited = rate >= old_cap * (1.0 - 1e-9)
        if not was_cap_limited and rate_cap_bps >= rate - _EPS:
            return
        self._recompute(flow.pipes)

    def set_pipe_capacity(self, pipe: Pipe, capacity_bps: "Rate | float") -> None:
        """Change a pipe's capacity mid-simulation (fault injection: link
        flaps / degradation) and re-allocate every affected flow."""
        if capacity_bps <= 0:
            raise NetworkConfigError(
                f"pipe {pipe.name!r}: capacity must be positive"
            )
        if abs(float(capacity_bps) - pipe.capacity_bps) < _EPS:
            return
        pipe.capacity_bps = float(capacity_bps)
        self._recompute((pipe,))

    def abort_flow(self, flow: Flow, exc: BaseException) -> None:
        """Fail a flow's completion event and release its capacity."""
        if flow not in self.flows:
            return
        self._settle(flow)
        self._detach(flow)
        flow.done.fail(exc)
        self._recompute(flow.pipes)

    # -- internals ------------------------------------------------------------------
    def _settle(self, flow: Flow) -> None:
        """Account bytes sent at the current rate since the last update."""
        elapsed = self.env.now - flow._last_update
        if elapsed > 0:
            flow.remaining_bits -= flow.rate_bps * elapsed
            if flow.remaining_bits < _RESIDUE_BITS:
                flow.remaining_bits = 0.0
        flow._last_update = self.env.now

    def _detach(self, flow: Flow) -> None:
        self.flows.discard(flow)
        for pipe in flow.pipes:
            pipe.flows.pop(flow, None)
        plan = self._plan
        if plan is not None and not plan.stale:
            plan.drop(flow)

    def _recompute(self, dirty_pipes: Iterable[Pipe]) -> None:
        """Repair the allocation after a mutation touching ``dirty_pipes``.

        The re-solved scope is the transitive closure of the dirtied pipes
        over the shares-a-pipe relation: a flow outside the closure shares
        no constraint (directly or through intermediaries) with any flow
        inside it, so its max-min rate provably cannot change.  Solving the
        closed component from scratch therefore reproduces the global
        allocation exactly — no fixpoint iteration, and completion timers
        are re-armed at most once per mutation.
        """
        self.recomputations += 1
        if self._legacy:
            self.solve_rounds += 1
            self._recompute_legacy()
            return

        plan = self._plan
        if plan is None or plan.stale or not all(
            pipe in plan.pipe_index for pipe in dirty_pipes
        ):
            plan = self._build_plan(dirty_pipes)
            if plan is None:
                return
            self._plan = plan
        elif plan.n_dead > 64 and plan.n_dead * 2 > len(plan.flows):
            plan.compact()
        self._solve_component(plan)

    def _build_plan(self, dirty_pipes: Iterable[Pipe]) -> "Optional[_ComponentPlan]":
        """Close ``dirty_pipes`` transitively and index the component."""
        scope: dict[Flow, None] = {}
        seen: set[Pipe] = set(dirty_pipes)
        worklist: list[Pipe] = list(seen)
        while worklist:
            pipe = worklist.pop()
            for flow in pipe.flows:
                if flow not in scope:
                    scope[flow] = None
                    for other in flow.pipes:
                        if other not in seen:
                            seen.add(other)
                            worklist.append(other)
        if not scope:
            return None
        flows = sorted(scope, key=lambda f: f.uid)
        pipe_index: dict[Pipe, int] = {}
        pipes: list[Pipe] = []
        flow_pipes: list[list[int]] = []
        for flow in flows:
            indices = []
            for pipe in flow.pipes:
                idx = pipe_index.get(pipe)
                if idx is None:
                    idx = pipe_index[pipe] = len(pipes)
                    pipes.append(pipe)
                indices.append(idx)
            flow_pipes.append(indices)
        members: list[list[int]] = [[] for _ in pipes]
        for fidx, indices in enumerate(flow_pipes):
            for pidx in indices:
                members[pidx].append(fidx)
        return _ComponentPlan(
            flows=flows,
            pipes=pipes,
            pipe_index=pipe_index,
            flow_pipes=flow_pipes,
            members=members,
        )

    def _solve_component(self, plan: "_ComponentPlan") -> None:
        """Progressive filling over one closed component, in uid order.

        Every flow sharing a pipe with the component is itself in it, so
        pipe capacities need no adjustment for external traffic.  The solve
        is event-driven: while a pipe's active count is stable its
        predicted saturation level ``fill + remaining/count`` is invariant,
        so a lazy heap of saturation predictions replaces the classic
        per-increment scan over every pipe (entries are invalidated by
        count changes and re-pushed).  All bookkeeping runs over the plan's
        integer indices; freezes at a saturating pipe are batched so each
        affected pipe gets one heap push per event, not one per flow.
        """
        self.solve_rounds += 1
        env_now = self.env.now
        flows = plan.flows
        flow_pipes = plan.flow_pipes
        members = plan.members
        dead = plan.dead
        n_flows = len(flows)
        live = [fidx for fidx in range(n_flows) if not dead[fidx]]
        for fidx in live:
            flow = flows[fidx]
            # Rates are about to be reassigned: account traffic sent at the
            # old rate first.  Out-of-component flows keep their rate, so
            # their byte accounting stays linear and needs no settling.
            elapsed = env_now - flow._last_update
            if elapsed > 0.0:
                rb = flow.remaining_bits - flow.rate_bps * elapsed
                flow.remaining_bits = rb if rb >= _RESIDUE_BITS else 0.0
                flow._last_update = env_now

        # Per-pipe state: residual capacity as of fill level ``fillstamp``.
        remaining = [pipe.capacity_bps for pipe in plan.pipes]
        n_pipes = len(remaining)
        fillstamp = [0.0] * n_pipes
        count = plan.live_count[:]
        #: heap of (saturation level, pipe index, count stamp); an entry is
        #: live iff its stamp equals the pipe's current count.  Ties break
        #: on the pipe index — first-touch order, deterministic.
        pipe_events = [
            (remaining[i] / count[i], i, count[i])
            for i in range(n_pipes)
            if count[i]
        ]
        heapq.heapify(pipe_events)
        # Cap events sorted once: flows freeze at their cap in cap order
        # ((cap, flow index) matches the legacy (cap, uid) order because
        # ``flows`` is uid-sorted).
        _inf = math.inf
        capped = [
            (cap, fidx)
            for fidx in live
            if (cap := flows[fidx].rate_cap_bps) != _inf
        ]
        capped.sort()
        cap_idx = 0
        n_caps = len(capped)
        # Dead slots start out frozen so both event loops skip them.
        frozen = bytearray(dead)
        rates = [0.0] * n_flows
        n_active = len(live)
        fill = 0.0
        heappush = heapq.heappush
        heappop = heapq.heappop

        while n_active:
            while pipe_events and pipe_events[0][2] != count[pipe_events[0][1]]:
                heappop(pipe_events)
            pipe_level = pipe_events[0][0] if pipe_events else math.inf
            while cap_idx < n_caps and frozen[capped[cap_idx][1]]:
                cap_idx += 1
            if cap_idx < n_caps and capped[cap_idx][0] < pipe_level:
                # Freezing a flow at its cap only *raises* the saturation
                # prediction of every pipe it crosses, so every cap event
                # strictly below the next pipe event can be frozen in one
                # batch; each touched pipe is then settled and re-predicted
                # once (per-flow heap churn was the old solver's hot spot).
                removed: dict[int, int] = {}
                capsum: dict[int, float] = {}
                while cap_idx < n_caps and capped[cap_idx][0] < pipe_level:
                    cap, fidx = capped[cap_idx]
                    cap_idx += 1
                    if frozen[fidx]:
                        continue
                    frozen[fidx] = 1
                    rates[fidx] = cap
                    n_active -= 1
                    if cap > fill:
                        fill = cap
                    for q in flow_pipes[fidx]:
                        if q in removed:
                            removed[q] += 1
                            capsum[q] += cap
                        else:
                            removed[q] = 1
                            capsum[q] = cap
                for q, rm in removed.items():
                    c = count[q]
                    # Account everyone up to ``fill``, then hand back what
                    # the batch's flows did not consume past their caps.
                    remaining[q] -= (fill - fillstamp[q]) * c
                    remaining[q] += rm * fill - capsum[q]
                    fillstamp[q] = fill
                    c -= rm
                    count[q] = c
                    if c > 0:
                        heappush(pipe_events, (fill + remaining[q] / c, q, c))
            else:
                if pipe_level == math.inf:
                    # Only uncapped flows on unconstrained pipes — impossible,
                    # every flow crosses at least one finite pipe.
                    raise NetworkConfigError("progressive filling diverged")
                level, pidx, _ = heappop(pipe_events)
                if level > fill:
                    fill = level
                # Batch-freeze every still-active flow on the saturated
                # pipe, accumulating per-pipe count deltas so each other
                # pipe is settled and re-predicted once.
                deltas: dict[int, int] = {}
                for fidx in members[pidx]:
                    if frozen[fidx]:
                        continue
                    frozen[fidx] = 1
                    rates[fidx] = fill
                    n_active -= 1
                    for q in flow_pipes[fidx]:
                        deltas[q] = deltas.get(q, 0) + 1
                for q, rm in deltas.items():
                    c = count[q]
                    remaining[q] -= (fill - fillstamp[q]) * c
                    fillstamp[q] = fill
                    c -= rm
                    count[q] = c
                    if c > 0:
                        heappush(pipe_events, (fill + remaining[q] / c, q, c))

        for fidx in live:
            flow = flows[fidx]
            rate = rates[fidx]
            # Re-arm only flows whose rate actually moved: a completion
            # elsewhere in the network usually leaves most flows untouched,
            # and their pending completion timers stay valid.  (The spelled
            # out abs/max keep this hot loop free of function calls; the
            # tolerance is abs(rate - old) <= _EPS * max(rate, old, 1.0).)
            old = flow.rate_bps
            if rate == old:
                continue
            hi = rate if rate > old else old
            diff = rate - old if rate > old else old - rate
            if diff <= _EPS * (hi if hi > 1.0 else 1.0):
                continue
            flow.rate_bps = rate
            flow._version += 1
            if rate <= _EPS:
                # Fully capped out or starved; cannot finish until the next
                # recomputation changes its rate.
                continue
            eta = flow.remaining_bits / rate
            self._schedule_completion(flow, eta, flow._version)

    def _schedule_completion(self, flow: Flow, eta: float, version: int) -> None:
        def on_timer(_event: Event, flow: Flow = flow, version: int = version) -> None:
            if version != flow._version or flow not in self.flows:
                return  # superseded by a later recomputation
            self._settle(flow)
            if flow.remaining_bits > 0.0:
                # A rate change between scheduling and firing left real
                # payload; reschedule the tail (never with a zero delay).
                flow._version += 1
                eta = max(flow.remaining_bits / flow.rate_bps, _MIN_ETA)
                self._schedule_completion(flow, eta, flow._version)
                return
            self._detach(flow)
            flow.done.succeed(flow)
            self._recompute(flow.pipes)

        timer = self.env.timeout(eta)
        timer.callbacks.append(on_timer)

    # -- the pre-rewrite global solver (the differential oracle) ---------------------
    def _recompute_legacy(self) -> None:
        """Re-allocate rates for all active flows and reschedule completions.

        Flows are visited in creation (uid) order: iterating the raw set
        would schedule completion timers in id()-dependent order, giving
        same-time events different queue sequence numbers from run to run.
        """
        ordered = sorted(self.flows, key=lambda f: f.uid)
        for flow in ordered:
            self._settle(flow)

        rates = self._progressive_filling(ordered)

        for flow, rate in rates.items():
            if abs(rate - flow.rate_bps) <= _EPS * max(rate, flow.rate_bps, 1.0):
                continue
            flow.rate_bps = rate
            flow._version += 1
            if rate <= _EPS:
                continue
            eta = flow.remaining_bits / rate
            self._schedule_completion(flow, eta, flow._version)

    @staticmethod
    def _progressive_filling(flows: "list[Flow]") -> dict[Flow, float]:
        """Max-min fair allocation with per-flow rate caps (global solve).

        ``flows`` arrives in uid order and the returned dict preserves it,
        so callers iterate deterministically.  The sets used internally
        only feed order-independent arithmetic (min/sum/membership).
        """
        if not flows:
            return {}
        level: dict[Flow, float] = {f: 0.0 for f in flows}
        active: set[Flow] = set(flows)
        pipes: set[Pipe] = {p for f in flows for p in f.pipes}
        remaining: dict[Pipe, float] = {p: p.capacity_bps for p in pipes}

        while active:
            # Equal-increment step: how much can every active flow still grow?
            increment = math.inf
            for pipe in pipes:
                n_active = sum(1 for f in pipe.flows if f in active)
                if n_active:
                    increment = min(increment, remaining[pipe] / n_active)
            for flow in active:
                increment = min(increment, flow.rate_cap_bps - level[flow])
            if not math.isfinite(increment):
                # Only uncapped flows on unconstrained pipes — impossible,
                # every flow crosses at least one finite pipe.
                raise NetworkConfigError("progressive filling diverged")

            for flow in active:
                level[flow] += increment
            for pipe in pipes:
                n_active = sum(1 for f in pipe.flows if f in active)
                remaining[pipe] -= increment * n_active

            # Freeze flows that hit their cap or sit on a saturated pipe.
            # The cap test is relative, like the pipe test: ``level +=
            # (cap - level)`` can undershoot the cap by an ulp of the cap
            # (~1e-7 at Gbps scale), and an absolute 1e-12 tolerance would
            # miss that, dropping into the freeze-everything corner below
            # and pinning unrelated flows at this level.  (inf caps stay
            # unfreezable: ``inf * (1 - eps) - eps`` is still inf.)
            saturated = {p for p in pipes if remaining[p] <= _EPS * p.capacity_bps + _EPS}
            newly_frozen = {
                f
                for f in active
                if level[f] >= f.rate_cap_bps * (1.0 - _EPS) - _EPS
                or any(p in saturated for p in f.pipes)
            }
            if not newly_frozen:
                # Numerical corner: freeze everything to guarantee progress.
                break
            active -= newly_frozen
        return level
