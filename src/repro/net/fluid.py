"""Flow-level ("fluid") bandwidth sharing.

A :class:`Pipe` is a capacity constraint (a NIC direction, a site uplink...).
A :class:`Flow` is a byte transfer across an ordered set of pipes with an
optional sender rate cap (used by TCP to impose its congestion window:
``cap = cwnd / RTT``).

Rates are allocated by **progressive filling** (max-min fairness with per-flow
caps): all unfrozen flows grow at the same rate until a pipe saturates (its
flows freeze) or a flow hits its cap (it freezes); repeat.  This is the
standard fluid model of long-lived TCP flows sharing a network.

The allocation is recomputed on every flow arrival, departure and cap change.
Completion events are rescheduled lazily with a version token, so a
recomputation never leaks stale events.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

from repro.errors import NetworkConfigError
from repro.sim.core import Environment, Event
from repro.units import Rate

_EPS = 1e-12
#: Residues below one bit are float noise from ``(t + eta) - t`` round-trips,
#: not real payload; clamping them avoids infinite zero-delay reschedules.
_RESIDUE_BITS = 1.0
#: Never schedule a completion closer than this (guards clock stagnation).
_MIN_ETA = 1e-12


class Pipe:
    """A single capacity constraint, in bits per second."""

    __slots__ = ("name", "capacity_bps", "flows")

    def __init__(self, name: str, capacity_bps: "Rate | float"):
        if capacity_bps <= 0:
            raise NetworkConfigError(f"pipe {name!r}: capacity must be positive")
        self.name = name
        self.capacity_bps = float(capacity_bps)
        self.flows: set["Flow"] = set()

    def __repr__(self) -> str:
        return f"Pipe({self.name!r}, {self.capacity_bps / 1e9:.3g} Gbps, {len(self.flows)} flows)"


class Flow:
    """An in-flight fluid transfer."""

    __slots__ = (
        "name",
        "uid",
        "pipes",
        "remaining_bits",
        "rate_cap_bps",
        "rate_bps",
        "done",
        "_last_update",
        "_version",
        "started_at",
    )

    def __init__(
        self,
        name: str,
        pipes: tuple[Pipe, ...],
        nbytes: float,
        done: Event,
        rate_cap_bps: float = math.inf,
        uid: int = 0,
    ):
        self.name = name
        #: creation order within the owning FluidNetwork; the deterministic
        #: iteration key (sets of flows order by id(), which is not stable
        #: run-to-run — see DET006 in repro.analysis)
        self.uid = uid
        self.pipes = pipes
        self.remaining_bits = float(nbytes) * 8.0
        self.rate_cap_bps = float(rate_cap_bps)
        self.rate_bps = 0.0
        self.done = done
        self._last_update = 0.0
        self._version = 0
        self.started_at = 0.0

    def __repr__(self) -> str:
        return (
            f"Flow({self.name!r}, remaining={self.remaining_bits / 8:.0f}B, "
            f"rate={self.rate_bps / 1e6:.1f}Mbps)"
        )


class FluidNetwork:
    """Tracks active flows and allocates max-min fair rates."""

    def __init__(self, env: Environment):
        self.env = env
        self.flows: set[Flow] = set()
        #: number of rate recomputations, exposed for performance tests
        self.recomputations = 0
        self._flow_counter = 0

    # -- public API -------------------------------------------------------------
    def start_flow(
        self,
        name: str,
        pipes: Iterable[Pipe],
        nbytes: float,
        rate_cap_bps: "Rate | float" = math.inf,
    ) -> Flow:
        """Begin transferring ``nbytes`` across ``pipes``.

        Returns the :class:`Flow`; its ``done`` event triggers when the last
        byte leaves the last pipe.  ``rate_cap_bps`` bounds the flow's rate
        (TCP window cap); it may be changed later with :meth:`set_rate_cap`.
        """
        route = tuple(pipes)
        if not route:
            raise NetworkConfigError(f"flow {name!r}: needs at least one pipe")
        if nbytes < 0:
            raise NetworkConfigError(f"flow {name!r}: negative size")
        if rate_cap_bps <= 0:
            raise NetworkConfigError(f"flow {name!r}: rate cap must be positive")
        self._flow_counter += 1
        flow = Flow(
            name, route, nbytes, self.env.event(), rate_cap_bps, uid=self._flow_counter
        )
        flow._last_update = self.env.now
        flow.started_at = self.env.now
        if nbytes == 0:
            flow.done.succeed(flow)
            return flow
        self.flows.add(flow)
        for pipe in route:
            pipe.flows.add(flow)
        self._recompute()
        return flow

    def set_rate_cap(self, flow: Flow, rate_cap_bps: float) -> None:
        """Change a flow's rate cap (e.g. the congestion window grew)."""
        if rate_cap_bps <= 0:
            raise NetworkConfigError(f"flow {flow.name!r}: rate cap must be positive")
        if flow not in self.flows:
            return  # already finished; harmless race with the cap updater
        old_cap = flow.rate_cap_bps
        if abs(rate_cap_bps - old_cap) < _EPS:
            return
        flow.rate_cap_bps = float(rate_cap_bps)
        # A cap move cannot change any allocation when the flow was not
        # cap-limited before (its pipes limit it) and the new cap still
        # sits above its current rate.  Skipping the global recompute here
        # is what keeps thousand-flow phases (ray2mesh's merge) tractable.
        rate = flow.rate_bps
        was_cap_limited = rate >= old_cap * (1.0 - 1e-9)
        if not was_cap_limited and rate_cap_bps >= rate - _EPS:
            return
        self._recompute()

    def set_pipe_capacity(self, pipe: Pipe, capacity_bps: "Rate | float") -> None:
        """Change a pipe's capacity mid-simulation (fault injection: link
        flaps / degradation) and re-allocate every affected flow."""
        if capacity_bps <= 0:
            raise NetworkConfigError(
                f"pipe {pipe.name!r}: capacity must be positive"
            )
        if abs(float(capacity_bps) - pipe.capacity_bps) < _EPS:
            return
        pipe.capacity_bps = float(capacity_bps)
        self._recompute()

    def abort_flow(self, flow: Flow, exc: BaseException) -> None:
        """Fail a flow's completion event and release its capacity."""
        if flow not in self.flows:
            return
        self._settle(flow)
        self._detach(flow)
        flow.done.fail(exc)
        self._recompute()

    # -- internals ------------------------------------------------------------------
    def _settle(self, flow: Flow) -> None:
        """Account bytes sent at the current rate since the last update."""
        elapsed = self.env.now - flow._last_update
        if elapsed > 0:
            flow.remaining_bits -= flow.rate_bps * elapsed
            if flow.remaining_bits < _RESIDUE_BITS:
                flow.remaining_bits = 0.0
        flow._last_update = self.env.now

    def _detach(self, flow: Flow) -> None:
        self.flows.discard(flow)
        for pipe in flow.pipes:
            pipe.flows.discard(flow)

    def _recompute(self) -> None:
        """Re-allocate rates for all active flows and reschedule completions.

        Flows are visited in creation (uid) order: iterating the raw set
        would schedule completion timers in id()-dependent order, giving
        same-time events different queue sequence numbers from run to run.
        """
        self.recomputations += 1
        ordered = sorted(self.flows, key=lambda f: f.uid)
        for flow in ordered:
            self._settle(flow)

        rates = self._progressive_filling(ordered)

        for flow, rate in rates.items():
            # Reschedule only flows whose rate actually moved: a completion
            # elsewhere in the network usually leaves most flows untouched,
            # and their pending completion timers stay valid.
            if abs(rate - flow.rate_bps) <= _EPS * max(rate, flow.rate_bps, 1.0):
                continue
            flow.rate_bps = rate
            flow._version += 1
            if rate <= _EPS:
                # Fully capped out or starved; cannot finish until the next
                # recomputation changes its rate.
                continue
            eta = flow.remaining_bits / rate
            self._schedule_completion(flow, eta, flow._version)

    def _schedule_completion(self, flow: Flow, eta: float, version: int) -> None:
        def on_timer(_event: Event, flow: Flow = flow, version: int = version) -> None:
            if version != flow._version or flow not in self.flows:
                return  # superseded by a later recomputation
            self._settle(flow)
            if flow.remaining_bits > 0.0:
                # A rate change between scheduling and firing left real
                # payload; reschedule the tail (never with a zero delay).
                flow._version += 1
                eta = max(flow.remaining_bits / flow.rate_bps, _MIN_ETA)
                self._schedule_completion(flow, eta, flow._version)
                return
            self._detach(flow)
            flow.done.succeed(flow)
            self._recompute()

        timer = self.env.timeout(eta)
        timer.callbacks.append(on_timer)

    @staticmethod
    def _progressive_filling(flows: "list[Flow]") -> dict[Flow, float]:
        """Max-min fair allocation with per-flow rate caps.

        ``flows`` arrives in uid order and the returned dict preserves it,
        so callers iterate deterministically.  The sets used internally
        only feed order-independent arithmetic (min/sum/membership).
        """
        if not flows:
            return {}
        level: dict[Flow, float] = {f: 0.0 for f in flows}
        active: set[Flow] = set(flows)
        pipes: set[Pipe] = {p for f in flows for p in f.pipes}
        remaining: dict[Pipe, float] = {p: p.capacity_bps for p in pipes}

        while active:
            # Equal-increment step: how much can every active flow still grow?
            increment = math.inf
            for pipe in pipes:
                n_active = sum(1 for f in pipe.flows if f in active)
                if n_active:
                    increment = min(increment, remaining[pipe] / n_active)
            for flow in active:
                increment = min(increment, flow.rate_cap_bps - level[flow])
            if not math.isfinite(increment):
                # Only uncapped flows on unconstrained pipes — impossible,
                # every flow crosses at least one finite pipe.
                raise NetworkConfigError("progressive filling diverged")

            for flow in active:
                level[flow] += increment
            for pipe in pipes:
                n_active = sum(1 for f in pipe.flows if f in active)
                remaining[pipe] -= increment * n_active

            # Freeze flows that hit their cap or sit on a saturated pipe.
            saturated = {p for p in pipes if remaining[p] <= _EPS * p.capacity_bps + _EPS}
            newly_frozen = {
                f
                for f in active
                if level[f] >= f.rate_cap_bps - _EPS or any(p in saturated for p in f.pipes)
            }
            if not newly_frozen:
                # Numerical corner: freeze everything to guarantee progress.
                break
            active -= newly_frozen
        return level
