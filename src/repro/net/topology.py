"""Topology: nodes, clusters (sites) and the inter-site WAN.

The model mirrors the paper's testbed (Fig. 2): each node has a full-duplex
NIC (two pipes: tx and rx); each cluster hangs off a non-blocking switch
with a full-duplex WAN access link; sites are joined by a core treated as
non-blocking (RENATER was a dedicated 1/10 Gbps backbone).  A route is the
ordered pipe list a flow crosses plus the one-way propagation delay.

Intra-cluster routes cross only the two NICs (non-blocking switch);
inter-site routes add the two site access pipes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import NetworkConfigError
from repro.net.fluid import Pipe
from repro.units import Gbps, usec


@dataclass(frozen=True)
class Route:
    """The path a flow takes: capacity pipes + one-way propagation delay."""

    pipes: tuple[Pipe, ...]
    one_way_delay: float
    inter_site: bool

    @property
    def rtt(self) -> float:
        return 2.0 * self.one_way_delay

    @property
    def bottleneck_bps(self) -> float:
        return min(p.capacity_bps for p in self.pipes)


class Node:
    """A compute host: CPU speed plus a full-duplex NIC (and, on clusters
    with a high-speed fabric, a second pair of fabric ports)."""

    def __init__(
        self,
        name: str,
        cluster: "Cluster",
        nic_bps: float = Gbps(1),
        gflops: float = 1.0,
    ):
        if gflops <= 0:
            raise NetworkConfigError(f"node {name!r}: gflops must be positive")
        self.name = name
        self.cluster = cluster
        self.nic_bps = float(nic_bps)
        #: effective application-visible compute rate (not peak), used by the
        #: workload cost models.
        self.gflops = float(gflops)
        self.nic_tx = Pipe(f"{name}.tx", nic_bps)
        self.nic_rx = Pipe(f"{name}.rx", nic_bps)
        #: high-speed fabric ports (Myrinet/Infiniband), present when the
        #: cluster declares one (paper §5: heterogeneity future work)
        self.fabric_tx: Optional[Pipe] = None
        self.fabric_rx: Optional[Pipe] = None
        if cluster.fabric != "ethernet":
            self.fabric_tx = Pipe(f"{name}.{cluster.fabric}.tx", cluster.fabric_bps)
            self.fabric_rx = Pipe(f"{name}.{cluster.fabric}.rx", cluster.fabric_bps)

    @property
    def flops(self) -> float:
        return self.gflops * 1e9

    def compute_seconds(self, flop: float) -> float:
        """Virtual time needed to execute ``flop`` floating point operations."""
        return flop / self.flops

    def __repr__(self) -> str:
        return f"Node({self.name!r}, {self.gflops:.2f} Gflop/s)"


class Cluster:
    """A site: a set of nodes behind a non-blocking switch + WAN access.

    ``fabric`` may name a high-speed interconnect ("myrinet",
    "infiniband") available *in addition* to Ethernet; implementations
    that support it natively (MPICH-Madeleine, OpenMPI) then use it for
    intra-cluster traffic.
    """

    def __init__(
        self,
        name: str,
        wan_access_bps: float = Gbps(1),
        intra_rtt: float = usec(41),
        fabric: str = "ethernet",
        fabric_bps: float = Gbps(2),
        fabric_rtt: float = usec(16),
    ):
        if fabric not in ("ethernet", "myrinet", "infiniband"):
            raise NetworkConfigError(f"unknown fabric {fabric!r}")
        self.name = name
        self.nodes: list[Node] = []
        self.uplink = Pipe(f"{name}.uplink", wan_access_bps)
        self.downlink = Pipe(f"{name}.downlink", wan_access_bps)
        #: round-trip time between two nodes of this cluster (the paper
        #: measures 41 us for raw TCP on GbE).
        self.intra_rtt = float(intra_rtt)
        self.fabric = fabric
        self.fabric_bps = float(fabric_bps)
        #: wire round-trip of the high-speed fabric (Myrinet 2000: a few us
        #: of MPI latency)
        self.fabric_rtt = float(fabric_rtt)

    def add_nodes(
        self, count: int, nic_bps: float = Gbps(1), gflops: float = 1.0
    ) -> list[Node]:
        start = len(self.nodes)
        created = [
            Node(f"{self.name}-{start + i}", self, nic_bps=nic_bps, gflops=gflops)
            for i in range(count)
        ]
        self.nodes.extend(created)
        return created

    def __repr__(self) -> str:
        return f"Cluster({self.name!r}, {len(self.nodes)} nodes)"


class Network:
    """A set of clusters plus the inter-site RTT matrix."""

    def __init__(self, name: str = "net"):
        self.name = name
        self.clusters: dict[str, Cluster] = {}
        self._rtt: dict[frozenset[str], float] = {}
        self._route_cache: dict[tuple[str, str], Route] = {}

    # -- construction ----------------------------------------------------------
    def add_cluster(
        self,
        name: str,
        wan_access_bps: float = Gbps(1),
        intra_rtt: float = usec(41),
        **cluster_kwargs,
    ) -> Cluster:
        if name in self.clusters:
            raise NetworkConfigError(f"duplicate cluster {name!r}")
        cluster = Cluster(
            name, wan_access_bps=wan_access_bps, intra_rtt=intra_rtt, **cluster_kwargs
        )
        self.clusters[name] = cluster
        return cluster

    def set_rtt(self, a: str, b: str, rtt_seconds: float) -> None:
        """Declare the WAN round-trip time between sites ``a`` and ``b``."""
        if a not in self.clusters or b not in self.clusters:
            raise NetworkConfigError(f"unknown cluster in RTT pair ({a!r}, {b!r})")
        if rtt_seconds <= 0:
            raise NetworkConfigError("RTT must be positive")
        self._rtt[frozenset((a, b))] = float(rtt_seconds)
        self._route_cache.clear()

    # -- queries ----------------------------------------------------------------
    @property
    def nodes(self) -> list[Node]:
        return list(itertools.chain.from_iterable(c.nodes for c in self.clusters.values()))

    def wan_pipes(self) -> "list[Pipe]":
        """Every site access pipe (uplink then downlink), in sorted cluster
        order — the deterministic target list for WAN fault injection."""
        pipes: list[Pipe] = []
        for name in sorted(self.clusters):
            cluster = self.clusters[name]
            pipes.append(cluster.uplink)
            pipes.append(cluster.downlink)
        return pipes

    def node(self, name: str) -> Node:
        for cluster in self.clusters.values():
            for node in cluster.nodes:
                if node.name == name:
                    return node
        raise NetworkConfigError(f"unknown node {name!r}")

    def rtt(self, a: "Node | str", b: "Node | str") -> float:
        """Round-trip time between two nodes (or between two sites by name)."""
        ca = a.cluster.name if isinstance(a, Node) else a
        cb = b.cluster.name if isinstance(b, Node) else b
        if ca == cb:
            return self.clusters[ca].intra_rtt
        key = frozenset((ca, cb))
        if key not in self._rtt:
            raise NetworkConfigError(f"no RTT declared between {ca!r} and {cb!r}")
        return self._rtt[key]

    def route(self, src: Node, dst: Node) -> Route:
        """The pipe path and one-way delay from ``src`` to ``dst``."""
        if src is dst:
            raise NetworkConfigError(f"route from {src.name!r} to itself")
        key = (src.name, dst.name)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        if src.cluster is dst.cluster:
            route = Route(
                pipes=(src.nic_tx, dst.nic_rx),
                one_way_delay=src.cluster.intra_rtt / 2.0,
                inter_site=False,
            )
        else:
            rtt = self.rtt(src, dst)
            route = Route(
                pipes=(src.nic_tx, src.cluster.uplink, dst.cluster.downlink, dst.nic_rx),
                one_way_delay=rtt / 2.0,
                inter_site=True,
            )
        self._route_cache[key] = route
        return route

    def __repr__(self) -> str:
        return f"Network({self.name!r}, clusters={sorted(self.clusters)})"
