"""Table 5 — ideal eager/rendezvous threshold per implementation.

The sweep measures, per message size, whether eager beats rendezvous
(receive pre-posted, as the paper assumes); the ideal threshold is then
"anything above the largest message" — 65 MB, or OpenMPI's 32 MB cap.
"""

from __future__ import annotations

import math

from repro.experiments.base import ExperimentResult
from repro.experiments.environments import get_environment, pingpong_pair
from repro.impls import ALL_IMPLEMENTATIONS, IMPLEMENTATION_ORDER
from repro.report import Table
from repro.tuning.sweep import measure_ideal_threshold
from repro.units import KB, MB, fmt_bytes

#: the paper's Table 5
PAPER = {
    "mpich2": ("256k", "65M", "65M"),
    "gridmpi": ("inf", "-", "-"),
    "madeleine": ("128k", "65M", "65M"),
    "openmpi": ("64k", "32M", "32M"),
}

SWEEP_SIZES_FAST = (256 * KB, MB)
SWEEP_SIZES_FULL = (128 * KB, 256 * KB, 512 * KB, MB, 4 * MB, 16 * MB)


def run(fast: bool = False) -> ExperimentResult:
    env = get_environment("tcp_tuned")
    sizes = SWEEP_SIZES_FAST if fast else SWEEP_SIZES_FULL
    repeats = 4 if fast else 20

    table = Table(
        [
            "implementation",
            "original threshold",
            "measured ideal (cluster)",
            "measured ideal (grid)",
            "paper (cluster / grid)",
        ],
        title="Table 5: ideal eager/rendezvous threshold",
    )
    rows = []
    for name in IMPLEMENTATION_ORDER:
        impl = env.impl(name)
        original = ALL_IMPLEMENTATIONS[name].eager_threshold
        original_text = "inf" if math.isinf(original) else fmt_bytes(original)
        if math.isinf(original):
            # GridMPI never uses rendezvous: nothing to tune.
            cluster = grid = None
        else:
            results = {}
            for where in ("cluster", "grid"):
                net, a, b = pingpong_pair(where)
                results[where] = measure_ideal_threshold(
                    impl, net, a, b, sizes=sizes, repeats=repeats, sysctls=env.sysctls
                )
            cluster, grid = results["cluster"], results["grid"]
        paper_c, paper_g = PAPER[name][1], PAPER[name][2]
        table.add_row(
            [
                impl.display_name,
                original_text,
                fmt_bytes(cluster) if cluster else "-",
                fmt_bytes(grid) if grid else "-",
                f"{paper_c} / {paper_g}",
            ]
        )
        rows.append(
            {
                "implementation": name,
                "original": original,
                "measured_cluster": cluster,
                "measured_grid": grid,
                "paper_cluster": paper_c,
                "paper_grid": paper_g,
            }
        )
    return ExperimentResult(
        "table5",
        "Table 5: ideal eager/rendezvous thresholds",
        "Table 5, §4.2.2",
        rows,
        table.render(),
    )
