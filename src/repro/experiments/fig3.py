"""Figure 3 — grid bandwidth with default parameters (the collapse)."""

from __future__ import annotations

from repro.experiments.pingpong_common import PingPongFigure

PAPER_NOTE = (
    "none of the implementations nor direct TCP exceeds 120 Mbps on the "
    "1 Gbps Rennes-Nancy path with default parameters"
)

FIGURE = PingPongFigure(
    experiment_id="fig3",
    title="Fig. 3: MPI bandwidth on the grid, default parameters",
    paper_ref="Figure 3, §4.1",
    where="grid",
    env_name="default",
    paper_note=PAPER_NOTE,
)

run = FIGURE.run
shards = FIGURE.shards
merge = FIGURE.merge
