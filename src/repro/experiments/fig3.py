"""Figure 3 — grid bandwidth with default parameters (the collapse)."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.pingpong_common import (
    FAST_SIZES,
    FULL_SIZES,
    bandwidth_curves,
    figure_result,
)

PAPER_NOTE = (
    "none of the implementations nor direct TCP exceeds 120 Mbps on the "
    "1 Gbps Rennes-Nancy path with default parameters"
)


def run(fast: bool = False) -> ExperimentResult:
    curves = bandwidth_curves(
        where="grid",
        env_name="default",
        sizes=FAST_SIZES if fast else FULL_SIZES,
        repeats=20 if fast else 100,
    )
    return figure_result(
        "fig3",
        "Fig. 3: MPI bandwidth on the grid, default parameters",
        "Figure 3, §4.1",
        curves,
        PAPER_NOTE,
    )
