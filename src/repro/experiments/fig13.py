"""Figure 13 — 16 grid nodes vs 4 cluster nodes: is the grid worth it?

Speedup = time(4 nodes, one cluster) / time(8+8 across the WAN); the
ideal is 4.  The paper: LU and BT come close to 4, FT and SP reach at
least 3, CG and MG barely gain — yet *every* benchmark gains, which is
the paper's core argument for running MPI applications on the grid.
"""

from __future__ import annotations

import math

from repro.experiments.base import ExperimentResult, ShardSpec
from repro.experiments.npb_runs import (
    NPB_ORDER,
    bench_times,
    npb_fast_config,
    npb_point_shards,
    shard_times,
)
from repro.impls import ALL_IMPLEMENTATIONS, IMPLEMENTATION_ORDER
from repro.report import Table


def _result_from_times(
    small_times: dict[str, dict[str, float]],
    grid_times: dict[str, dict[str, float]],
    fast: bool = False,
) -> ExperimentResult:
    cls, _sample = npb_fast_config(fast)
    table = Table(
        ["NAS"] + [ALL_IMPLEMENTATIONS[n].display_name for n in IMPLEMENTATION_ORDER],
        title=(
            f"Fig. 13: speedup of 8+8 grid nodes over 4 cluster nodes "
            f"(class {cls}; ideal 4, 0 = DNF)"
        ),
    )
    rows = []
    for bench in NPB_ORDER:
        cells = [bench.upper()]
        row = {"bench": bench}
        for name in IMPLEMENTATION_ORDER:
            t_small = small_times[bench][name]
            t_grid = grid_times[bench][name]
            speedup = 0.0 if math.isinf(t_grid) else t_small / t_grid
            cells.append(speedup)
            row[name] = speedup
        table.add_row(cells)
        rows.append(row)
    return ExperimentResult(
        "fig13",
        "Fig. 13: grid speedup over a 4-node cluster",
        "Figure 13, §4.3",
        rows,
        table.render(),
    )


def run(fast: bool = False) -> ExperimentResult:
    small_times = {b: bench_times(b, "cluster4", fast) for b in NPB_ORDER}
    grid_times = {b: bench_times(b, "grid16", fast) for b in NPB_ORDER}
    return _result_from_times(small_times, grid_times, fast)


def shards(fast: bool = False) -> list[ShardSpec]:
    # grid16 shards are shared (same task_ids) with figs 10 and 12.
    return npb_point_shards(("cluster4", "grid16"))


def merge(payloads: dict[str, dict], fast: bool = False) -> ExperimentResult:
    small_times = {b: shard_times(payloads, "cluster4", b) for b in NPB_ORDER}
    grid_times = {b: shard_times(payloads, "grid16", b) for b in NPB_ORDER}
    return _result_from_times(small_times, grid_times, fast)
