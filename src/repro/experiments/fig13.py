"""Figure 13 — 16 grid nodes vs 4 cluster nodes: is the grid worth it?

Speedup = time(4 nodes, one cluster) / time(8+8 across the WAN); the
ideal is 4.  The paper: LU and BT come close to 4, FT and SP reach at
least 3, CG and MG barely gain — yet *every* benchmark gains, which is
the paper's core argument for running MPI applications on the grid.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.npb_runs import NPB_ORDER, npb_time
from repro.impls import ALL_IMPLEMENTATIONS, IMPLEMENTATION_ORDER
from repro.report import Table


def run(fast: bool = False) -> ExperimentResult:
    cls = "A" if fast else "B"
    sample = 4 if fast else "default"
    table = Table(
        ["NAS"] + [ALL_IMPLEMENTATIONS[n].display_name for n in IMPLEMENTATION_ORDER],
        title=(
            f"Fig. 13: speedup of 8+8 grid nodes over 4 cluster nodes "
            f"(class {cls}; ideal 4, 0 = DNF)"
        ),
    )
    rows = []
    for bench in NPB_ORDER:
        cells = [bench.upper()]
        row = {"bench": bench}
        for name in IMPLEMENTATION_ORDER:
            t_small = npb_time(bench, name, "cluster4", cls=cls, sample_iters=sample)
            t_grid = npb_time(bench, name, "grid16", cls=cls, sample_iters=sample)
            speedup = 0.0 if t_grid == float("inf") else t_small / t_grid
            cells.append(speedup)
            row[name] = speedup
        table.add_row(cells)
        rows.append(row)
    return ExperimentResult(
        "fig13",
        "Fig. 13: grid speedup over a 4-node cluster",
        "Figure 13, §4.3",
        rows,
        table.render(),
    )
