"""coll_hier — hierarchical vs flat collectives on the 8+8 grid.

The paper's §2.1 credits MPICH-G2's topology-aware (site-hierarchical)
collectives; the model generalises that bcast-only hierarchy to reduce,
allreduce and gather (:mod:`repro.mpi.collectives.hierarchy`).  This
experiment quantifies the payoff: each collective runs on the 16-process
8+8 grid placement with MPICH2's flat default algorithm and again with
the ``hierarchical`` variant, across message sizes, timing one call and
counting the messages (and bytes) that cross the WAN.

The hierarchy's contract: per collective call only the site leaders talk
across the WAN — O(sites) crossings instead of the flat algorithms'
O(P) — so the win grows with message size, where each avoided crossing
carries a full payload over the 11.6 ms path.

Ranks are placed *cyclically* across the two sites (rank i on site
i mod 2), the order a site-unaware ``mpirun`` machine file typically
produces.  Under the contiguous block placement a binomial tree rooted
at rank 0 happens to be site-aligned (exactly one WAN edge), so flat and
hierarchical coincide; the cyclic placement is the general case the
hierarchy exists for — its leader election depends on site membership
only, never on rank contiguity, while every flat tree edge between
neighbouring ranks becomes a WAN crossing.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, ShardSpec
from repro.experiments.environments import get_environment, grid_placement
from repro.mpi.runtime import MpiJob
from repro.obs import runtime as _obs
from repro.report import Table
from repro.units import KB, MB, fmt_bytes

#: the collectives gaining a hierarchical variant in this model
OPS = ("reduce", "allreduce", "gather")

#: the flat baseline each one is compared against (the engine defaults
#: MPICH2 uses; see ``repro.mpi.collectives.DEFAULTS``)
FLAT = {
    "reduce": "binomial",
    "allreduce": "recursive_doubling",
    "gather": "binomial",
}
HIERARCHICAL = "hierarchical"

_ENV = "fully_tuned"
_PLACEMENT = "grid16"
_IMPL = "mpich2"


def coll_sizes(fast: bool) -> tuple[int, ...]:
    """Message sizes swept per collective (bytes per rank for gather)."""
    if fast:
        return (KB, 64 * KB, MB)
    return (KB, 16 * KB, 256 * KB, MB, 4 * MB, 16 * MB)


def _task_id(op: str, algorithm: str) -> str:
    return f"coll_hier/{_PLACEMENT}/{op}/{algorithm}"


def cyclic_placement(nprocs: int):
    """Grid placement with ranks alternating sites (rank i on site i mod 2)."""
    network, block = grid_placement(nprocs)
    half = nprocs // 2
    return network, [block[(i % 2) * half + i // 2] for i in range(nprocs)]


def _call(comm, op: str, nbytes: int):
    if op == "reduce":
        yield from comm.reduce(None, nbytes=nbytes)
    elif op == "allreduce":
        yield from comm.allreduce(None, nbytes=nbytes)
    else:
        yield from comm.gather(None, nbytes_each=nbytes)


def run_coll_shard(op: str, algorithm: str, fast: bool = False) -> dict:
    """Worker-side shard: one (collective, algorithm) size sweep.

    Two fresh jobs per size.  The *timing* job runs a warmup call (TCP
    establishment and slow start happen there), a barrier to resynchronise
    the ranks, then the timed call — rank 0's entry-to-completion time is
    the point.  The *counting* job runs the collective exactly once with
    tracing on, so the WAN-crossing counters see that call's messages and
    nothing else (no warmup, no barrier traffic).
    """
    env = get_environment(_ENV)
    network, placement = cyclic_placement(16)
    impl = env.impl(_IMPL).with_collective(op, algorithm)
    points: dict[str, dict] = {}
    with _obs.track(_task_id(op, algorithm)):
        for nbytes in coll_sizes(fast):

            def timing_program(ctx, nbytes=nbytes):
                comm = ctx.comm
                yield from _call(comm, op, nbytes)
                yield from comm.barrier()
                t0 = ctx.wtime()
                yield from _call(comm, op, nbytes)
                return ctx.wtime() - t0

            def counting_program(ctx, nbytes=nbytes):
                yield from _call(ctx.comm, op, nbytes)

            timing = MpiJob(
                network, impl, placement, sysctls=env.sysctls, trace=False
            ).run(timing_program)
            counting = MpiJob(
                network, impl, placement, sysctls=env.sysctls, trace=True
            ).run(counting_program)
            points[str(nbytes)] = {
                "seconds": timing.returns[0],
                "wan_msgs": counting.trace.inter_site_messages,
                "wan_bytes": counting.trace.inter_site_bytes,
            }
    return {"points": points}


def _result(data: dict, fast: bool) -> ExperimentResult:
    """Render from ``{op: {algorithm: {size: point}}}`` (shared by the
    serial path and the shard merge, so both produce byte-identical
    reports from equal inputs)."""
    table = Table(
        ["collective", "size", "flat s", "hier s", "speedup", "WAN msgs", "hier WAN"],
        title=(
            "coll_hier: hierarchical vs flat collectives "
            f"({_IMPL}, {_PLACEMENT} 8+8; WAN msgs per call, flat vs hier)"
        ),
    )
    rows = []
    for op in OPS:
        flat_pts = data[op][FLAT[op]]
        hier_pts = data[op][HIERARCHICAL]
        for key in sorted(flat_pts, key=int):
            nbytes = int(key)
            flat = flat_pts[key]
            hier = hier_pts[key]
            speedup = flat["seconds"] / hier["seconds"]
            table.add_row(
                [
                    f"{op} ({FLAT[op]})",
                    fmt_bytes(nbytes),
                    flat["seconds"],
                    hier["seconds"],
                    f"x{speedup:.2f}",
                    int(flat["wan_msgs"]),
                    int(hier["wan_msgs"]),
                ]
            )
            rows.append(
                {
                    "op": op,
                    "nbytes": nbytes,
                    "flat_algorithm": FLAT[op],
                    "flat_seconds": flat["seconds"],
                    "hier_seconds": hier["seconds"],
                    "speedup": speedup,
                    "wan_msgs_flat": flat["wan_msgs"],
                    "wan_msgs_hier": hier["wan_msgs"],
                    "wan_bytes_flat": flat["wan_bytes"],
                    "wan_bytes_hier": hier["wan_bytes"],
                }
            )
    note = (
        "extension of §2.1's topology-aware bcast to reduce/allreduce/"
        "gather: only site leaders cross the WAN, so crossings drop from "
        "O(P) to O(sites) per call. For the reducible ops the hierarchy "
        "also cuts WAN *bytes* (partials combine before crossing) and "
        "wins at large sizes; gather's volume is irreducible, so its "
        "single aggregated transfer loses to the flat tree's parallel "
        "leaf sends once bandwidth dominates — the classic wide-area "
        "collectives trade-off (MagPIe, MPICH-G2)"
    )
    text = "\n".join([table.render(), "", f"paper: {note}"])
    return ExperimentResult(
        experiment_id="coll_hier",
        title="Hierarchical vs flat collectives on the grid (8+8)",
        paper_ref="extension of §2.1 (MPICH-G2 multilevel collectives)",
        rows=rows,
        text=text,
        extra={"points": data},
    )


def _algorithms(op: str) -> tuple[str, str]:
    return (FLAT[op], HIERARCHICAL)


def run(fast: bool = False) -> ExperimentResult:
    data = {
        op: {
            algorithm: run_coll_shard(op, algorithm, fast=fast)["points"]
            for algorithm in _algorithms(op)
        }
        for op in OPS
    }
    return _result(data, fast)


def shards(fast: bool = False) -> list[ShardSpec]:
    return [
        ShardSpec(
            task_id=_task_id(op, algorithm),
            runner="repro.experiments.coll_hier:run_coll_shard",
            params={"op": op, "algorithm": algorithm},
        )
        for op in OPS
        for algorithm in _algorithms(op)
    ]


def merge(payloads: dict[str, dict], fast: bool = False) -> ExperimentResult:
    data = {
        op: {
            algorithm: payloads[_task_id(op, algorithm)]["points"]
            for algorithm in _algorithms(op)
        }
        for op in OPS
    }
    return _result(data, fast)
