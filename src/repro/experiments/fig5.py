"""Figure 5 — cluster bandwidth with default parameters."""

from __future__ import annotations

from repro.experiments.pingpong_common import PingPongFigure

PAPER_NOTE = (
    "all implementations reach 940 Mbps (the TCP goodput of GbE); every "
    "curve but GridMPI dips at its eager/rendezvous threshold (~128 kB)"
)

FIGURE = PingPongFigure(
    experiment_id="fig5",
    title="Fig. 5: MPI bandwidth in the Rennes cluster, default parameters",
    paper_ref="Figure 5, §4.1",
    where="cluster",
    env_name="default",
    paper_note=PAPER_NOTE,
)

run = FIGURE.run
shards = FIGURE.shards
merge = FIGURE.merge
