"""Figure 5 — cluster bandwidth with default parameters."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.pingpong_common import (
    FAST_SIZES,
    FULL_SIZES,
    bandwidth_curves,
    figure_result,
)

PAPER_NOTE = (
    "all implementations reach 940 Mbps (the TCP goodput of GbE); every "
    "curve but GridMPI dips at its eager/rendezvous threshold (~128 kB)"
)


def run(fast: bool = False) -> ExperimentResult:
    curves = bandwidth_curves(
        where="cluster",
        env_name="default",
        sizes=FAST_SIZES if fast else FULL_SIZES,
        repeats=20 if fast else 100,
    )
    return figure_result(
        "fig5",
        "Fig. 5: MPI bandwidth in the Rennes cluster, default parameters",
        "Figure 5, §4.1",
        curves,
        PAPER_NOTE,
    )
