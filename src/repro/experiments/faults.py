"""Degradation experiments: the paper's headline measurements under faults.

The paper benchmarks a *dedicated* 1 Gbps Grid'5000 path; this family asks
how its conclusions erode when the WAN is not clean.  Two sweeps, both
driven by :mod:`repro.faults` profiles seeded with :data:`FAULTS_SEED`:

``faults_pingpong``
    Extends Fig. 6 (grid pair, ``tcp_tuned``): mean goodput of a large
    pingpong as the per-round injected WAN loss probability grows.  The
    zero-loss column is the clean simulation — byte-identical inputs to
    the committed Fig. 6 goldens.

``faults_cg``
    Extends Fig. 11 (NPB on the 2+2 grid): CG — the kernel the paper
    singles out as dominated by tightly-coupled small exchanges — under
    one-way WAN delay jitter, per implementation, with slowdown relative
    to the clean run.

Both experiments shard for the parallel runner (one shard per curve /
per (implementation, jitter) cell) and merge back byte-identically to a
serial run, like every other experiment in the registry.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Optional

from repro.apps.pingpong import mpi_pingpong, tcp_pingpong
from repro.experiments.base import ExperimentResult, ShardSpec
from repro.experiments.environments import (
    get_environment,
    grid_placement,
    pingpong_pair,
)
from repro.experiments.npb_runs import npb_fast_config
from repro.faults import FaultProfile
from repro.impls import IMPLEMENTATION_ORDER, get_implementation
from repro.npb import run_npb
from repro.obs import runtime as _obs
from repro.report import Table, line_chart
from repro.tcp.connection import TcpOptions
from repro.units import MB, fmt_bytes

#: fixed seed of every fault profile used by these experiments (arbitrary
#: but stable: changing it changes the committed goldens)
FAULTS_SEED = 20071126

#: injected loss probability per window-limited RTT round (faults_pingpong)
LOSS_RATES = (0.0, 0.01, 0.02, 0.05, 0.1)
#: one-way delay jitter fractions (faults_cg)
JITTER_FRACS = (0.0, 0.1, 0.25, 0.5)

_PINGPONG_WHERE = "grid"
_PINGPONG_ENV = "tcp_tuned"
_CG_PLACEMENT = "grid4"
_CG_ENV = "fully_tuned"
_TCP = "tcp"


def _loss_profile(loss_prob: float) -> Optional[FaultProfile]:
    if loss_prob == 0.0:
        return None  # the clean path, bit-identical to no faults module
    return FaultProfile(seed=FAULTS_SEED, loss_prob=loss_prob)


def _jitter_profile(jitter_frac: float) -> Optional[FaultProfile]:
    if jitter_frac == 0.0:
        return None
    return FaultProfile(seed=FAULTS_SEED, jitter_frac=jitter_frac)


# --- faults_pingpong: goodput vs injected WAN loss ---------------------------------
def _pingpong_probe(fast: bool) -> tuple[int, int]:
    """(message size, repeats): one large message, averaged over repeats.

    The probe must span many window-limited rounds, or per-round loss
    injection quantises too coarsely to separate the low loss rates.
    """
    return (32 * MB, 10) if fast else (64 * MB, 20)


def run_loss_curve_shard(curve: str, fast: bool = False) -> dict:
    """Worker-side shard: one goodput-vs-loss curve (``"tcp"`` or an
    implementation registry name).

    Each loss rate runs in its own simulation ``Environment`` with an
    explicit :class:`FaultProfile`, so the points are independent and the
    shard reproduces bit-identically in any process (same argument as
    :func:`repro.experiments.pingpong_common.run_curve_shard`).
    """
    size, repeats = _pingpong_probe(fast)
    goodput: dict[str, float] = {}
    # Telemetry track named after the shard task_id, so the serial sweep
    # records into the same tracks a sharded campaign merges back.
    with _obs.track(_pingpong_task_id(curve)):
        for loss in LOSS_RATES:
            profile = _loss_profile(loss)
            env = get_environment(_PINGPONG_ENV)
            net, a, b = pingpong_pair(_PINGPONG_WHERE)
            if curve == _TCP:
                result = tcp_pingpong(
                    net,
                    a,
                    b,
                    sizes=(size,),
                    repeats=repeats,
                    sysctls=env.sysctls,
                    options=TcpOptions(fault_profile=profile),
                )
            else:
                impl = env.impl(curve)
                if profile is not None:
                    impl = impl.with_fault_profile(profile)
                result = mpi_pingpong(
                    net, impl, a, b, sizes=(size,), repeats=repeats, sysctls=env.sysctls
                )
            goodput[f"{loss:g}"] = result.points[0].mean_bandwidth_mbps
    return {"goodput": goodput}


def _pingpong_labels() -> list[tuple[str, str]]:
    """(shard label, legend label) pairs in the figures' legend order."""
    return [(_TCP, "TCP")] + [
        (name, get_implementation(name).display_name) for name in IMPLEMENTATION_ORDER
    ]


def _pingpong_result(curves: dict[str, dict[str, float]], fast: bool) -> ExperimentResult:
    size, repeats = _pingpong_probe(fast)
    title = "Pingpong goodput vs injected WAN loss"
    table = Table(
        ["loss/round"] + list(curves),
        title=f"{title} — {fmt_bytes(size)} x {repeats}, mean goodput (Mbps)",
    )
    rows = []
    for loss in LOSS_RATES:
        key = f"{loss:g}"
        cells: list = [key]
        row: dict = {"loss_prob": loss}
        for label, goodput in curves.items():
            cells.append(goodput[key])
            row[label] = goodput[key]
        table.add_row(cells)
        rows.append(row)
    chart = line_chart(
        {
            label: [(loss, goodput[f"{loss:g}"]) for loss in LOSS_RATES]
            for label, goodput in curves.items()
        },
        title=title,
        x_labels=[f"{loss:g}" for loss in LOSS_RATES],
        y_label="Mbps",
    )
    note = (
        "degradation sweep beyond the paper: its dedicated path saw no loss "
        "(Fig. 6 shows ~900 Mbps); injected WAN drops cut the congestion "
        "window and goodput collapses with the loss rate. The 0-loss column "
        "is the clean simulation."
    )
    text = "\n".join([table.render(), "", chart, "", f"paper: {note}"])
    return ExperimentResult(
        experiment_id="faults_pingpong",
        title=title,
        paper_ref="fault-injection extension of Figure 6, §4.2.1",
        rows=rows,
        text=text,
        extra={"curves": curves},
    )


def _pingpong_task_id(label: str) -> str:
    return f"faults/pingpong/{_PINGPONG_WHERE}/{_PINGPONG_ENV}/{label}"


def _run_pingpong(fast: bool = False) -> ExperimentResult:
    curves = {
        legend: run_loss_curve_shard(label, fast=fast)["goodput"]
        for label, legend in _pingpong_labels()
    }
    return _pingpong_result(curves, fast)


def _pingpong_shards(fast: bool = False) -> list[ShardSpec]:
    return [
        ShardSpec(
            task_id=_pingpong_task_id(label),
            runner="repro.experiments.faults:run_loss_curve_shard",
            params={"curve": label},
        )
        for label, _ in _pingpong_labels()
    ]


def _merge_pingpong(payloads: dict[str, dict], fast: bool = False) -> ExperimentResult:
    curves = {
        legend: payloads[_pingpong_task_id(label)]["goodput"]
        for label, legend in _pingpong_labels()
    }
    return _pingpong_result(curves, fast)


# --- faults_cg: NPB CG under WAN delay jitter --------------------------------------
def run_cg_jitter_shard(impl_name: str, jitter: float, fast: bool = False) -> dict:
    """Worker-side shard: one (implementation, jitter) CG execution."""
    cls, sample = npb_fast_config(fast)
    env = get_environment(_CG_ENV)
    network, placement = grid_placement(4)
    impl = env.impl(impl_name)
    profile = _jitter_profile(jitter)
    if profile is not None:
        impl = impl.with_fault_profile(profile)
    with _obs.track(_cg_task_id(impl_name, jitter)):
        result = run_npb(
            "cg", cls, network, impl, placement, sysctls=env.sysctls, sample_iters=sample
        )
    return {"time": result.time}


def _cg_task_id(impl_name: str, jitter: float) -> str:
    return f"faults/cg/{_CG_PLACEMENT}/{impl_name}/jitter-{jitter:g}"


def _cg_result(times: dict[str, dict[str, float]], fast: bool) -> ExperimentResult:
    cls, _ = npb_fast_config(fast)
    title = "NPB CG under WAN delay jitter"
    table = Table(
        ["jitter"]
        + [get_implementation(name).display_name for name in IMPLEMENTATION_ORDER],
        title=f"{title} — class {cls}, 2+2 grid, time in s (slowdown vs clean)",
    )
    rows = []
    for jitter in JITTER_FRACS:
        key = f"{jitter:g}"
        cells: list = ["clean" if jitter == 0.0 else f"+{jitter:.0%}"]
        row: dict = {"jitter_frac": jitter, "times": {}, "slowdown": {}}
        for name in IMPLEMENTATION_ORDER:
            t = times[name][key]
            clean = times[name][f"{JITTER_FRACS[0]:g}"]
            row["times"][name] = t
            if jitter == 0.0:
                cells.append(f"{t:.4g}")
            else:
                slowdown = t / clean if clean > 0 else float("inf")
                row["slowdown"][name] = slowdown
                cells.append(f"{t:.4g} (x{slowdown:.2f})")
        table.add_row(cells)
        rows.append(row)
    note = (
        "degradation sweep beyond the paper: §4.3 finds CG the most "
        "latency-bound kernel (tight halo exchanges), so uniform one-way "
        "delay jitter on the WAN slows it roughly in proportion to the "
        "mean added delay, for every implementation. The clean row matches "
        "Fig. 11's CG column."
    )
    text = "\n".join([table.render(), "", f"paper: {note}"])
    return ExperimentResult(
        experiment_id="faults_cg",
        title=title,
        paper_ref="fault-injection extension of Figure 11, §4.3",
        rows=rows,
        text=text,
        extra={"times": times},
    )


def _run_cg(fast: bool = False) -> ExperimentResult:
    times = {
        name: {
            f"{jitter:g}": run_cg_jitter_shard(name, jitter, fast=fast)["time"]
            for jitter in JITTER_FRACS
        }
        for name in IMPLEMENTATION_ORDER
    }
    return _cg_result(times, fast)


def _cg_shards(fast: bool = False) -> list[ShardSpec]:
    return [
        ShardSpec(
            task_id=_cg_task_id(name, jitter),
            runner="repro.experiments.faults:run_cg_jitter_shard",
            params={"impl_name": name, "jitter": jitter},
        )
        for name in IMPLEMENTATION_ORDER
        for jitter in JITTER_FRACS
    ]


def _merge_cg(payloads: dict[str, dict], fast: bool = False) -> ExperimentResult:
    times = {
        name: {
            f"{jitter:g}": payloads[_cg_task_id(name, jitter)]["time"]
            for jitter in JITTER_FRACS
        }
        for name in IMPLEMENTATION_ORDER
    }
    return _cg_result(times, fast)


# The registry consumes ``run``/``shards``/``merge`` attributes per
# experiment id; these namespaces let one module host both sweeps.
faults_pingpong = SimpleNamespace(
    run=_run_pingpong, shards=_pingpong_shards, merge=_merge_pingpong
)
faults_cg = SimpleNamespace(run=_run_cg, shards=_cg_shards, merge=_merge_cg)
