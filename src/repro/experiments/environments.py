"""The three tuning states of the paper and the standard placements.

===============  =================================================
environment      meaning
===============  =================================================
``default``      out-of-the-box sysctls, stock implementations
                 (Fig. 3, Fig. 5)
``tcp_tuned``    §4.2.1: 4 MB buffers via sysctls (max *and* middle,
                 for GridMPI) and OpenMPI's mca buffer parameters
                 (Fig. 6)
``fully_tuned``  + §4.2.2: eager thresholds raised per Table 5
                 (Fig. 7 and all NPB/ray2mesh runs)
===============  =================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ExperimentError
from repro.impls import ALL_IMPLEMENTATIONS, get_implementation
from repro.impls.base import MpiImplementation
from repro.net import build_pair_testbed
from repro.net.topology import Network, Node
from repro.tcp.sysctl import DEFAULT_SYSCTLS, SysctlConfig, TUNED_SYSCTLS
from repro.tuning.advisor import GRID_EAGER_THRESHOLD
from repro.units import MB


@dataclass(frozen=True)
class GridEnvironment:
    """A named tuning state."""

    name: str
    sysctls: SysctlConfig
    _impl_transform: Callable[[MpiImplementation], MpiImplementation]

    def impl(self, name: str) -> MpiImplementation:
        return self._impl_transform(get_implementation(name))

    def impls(self) -> dict[str, MpiImplementation]:
        return {name: self.impl(name) for name in ALL_IMPLEMENTATIONS}


def default_environment() -> GridEnvironment:
    return GridEnvironment("default", DEFAULT_SYSCTLS, lambda impl: impl)


def tcp_tuned_environment(buffer_bytes: int = 4 * MB) -> GridEnvironment:
    return GridEnvironment(
        "tcp_tuned",
        TUNED_SYSCTLS,
        lambda impl: impl.with_socket_buffers(buffer_bytes),
    )


def fully_tuned_environment(buffer_bytes: int = 4 * MB) -> GridEnvironment:
    return GridEnvironment(
        "fully_tuned",
        TUNED_SYSCTLS,
        lambda impl: impl.with_socket_buffers(buffer_bytes).with_eager_threshold(
            GRID_EAGER_THRESHOLD
        ),
    )


ENVIRONMENTS = {
    "default": default_environment,
    "tcp_tuned": tcp_tuned_environment,
    "fully_tuned": fully_tuned_environment,
}


def get_environment(name: str) -> GridEnvironment:
    try:
        return ENVIRONMENTS[name]()
    except KeyError:
        raise ExperimentError(
            f"unknown environment {name!r}; have {sorted(ENVIRONMENTS)}"
        ) from None


# --- standard placements (Fig. 2) -----------------------------------------------------
def grid_placement(nprocs: int) -> tuple[Network, list[Node]]:
    """nprocs ranks split evenly between Rennes and Nancy."""
    if nprocs % 2:
        raise ExperimentError("grid placement needs an even rank count")
    half = nprocs // 2
    net = build_pair_testbed(nodes_per_site=half)
    return net, net.clusters["rennes"].nodes[:half] + net.clusters["nancy"].nodes[:half]


def cluster_placement(nprocs: int) -> tuple[Network, list[Node]]:
    """nprocs ranks inside the Rennes cluster."""
    net = build_pair_testbed(nodes_per_site=nprocs)
    return net, net.clusters["rennes"].nodes[:nprocs]


def pingpong_pair(where: str) -> tuple[Network, Node, Node]:
    """The two measurement nodes: PR1/PR2 (cluster) or PR1/PN1 (grid)."""
    net = build_pair_testbed(nodes_per_site=2)
    if where == "cluster":
        return net, net.clusters["rennes"].nodes[0], net.clusters["rennes"].nodes[1]
    if where == "grid":
        return net, net.clusters["rennes"].nodes[0], net.clusters["nancy"].nodes[0]
    raise ExperimentError(f"unknown pingpong location {where!r}")
