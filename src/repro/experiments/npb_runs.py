"""Shared, cached NPB executions for the Figure 10-13 experiments.

Figures 10, 12 and 13 all consume the same grid-8+8 class-B runs, so the
results are memoised per (benchmark, class, implementation, placement,
environment, sampling) within one process.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.experiments.environments import (
    GridEnvironment,
    cluster_placement,
    get_environment,
    grid_placement,
)
from repro.npb import run_npb
from repro.npb.common import BENCHMARK_NAMES
from repro.obs import runtime as _obs

#: paper order of the NPB bars (Figs. 10-13)
NPB_ORDER = ("ep", "cg", "mg", "lu", "sp", "bt", "is", "ft")

_cache: dict[tuple, float] = {}


def clear_cache() -> None:
    _cache.clear()


def npb_time(
    bench: str,
    impl_name: str,
    placement_kind: str,
    cls: str = "B",
    env_name: str = "fully_tuned",
    sample_iters: "int | None | str" = "default",
    timeout: Optional[float] = None,
) -> float:
    """Execution time (virtual seconds; ``inf`` for a known failure).

    ``placement_kind``: ``grid16`` (8+8), ``grid4`` (2+2), ``cluster16``,
    ``cluster4``.
    """
    key = (bench, impl_name, placement_kind, cls, env_name, sample_iters)
    # A memo hit replays no simulation, so it would record no telemetry:
    # with a session active, always recompute (determinism makes the rerun
    # byte-identical), keeping serial campaigns' exports equal to parallel
    # ones where fresh worker processes never hit this cache.
    if key in _cache and _obs.ACTIVE is None:
        return _cache[key]

    env: GridEnvironment = get_environment(env_name)
    if placement_kind.startswith("grid"):
        nprocs = int(placement_kind.removeprefix("grid"))
        network, placement = grid_placement(nprocs)
    elif placement_kind.startswith("cluster"):
        nprocs = int(placement_kind.removeprefix("cluster"))
        network, placement = cluster_placement(nprocs)
    else:
        raise ValueError(f"unknown placement kind {placement_kind!r}")

    result = run_npb(
        bench,
        cls,
        network,
        env.impl(impl_name),
        placement,
        sysctls=env.sysctls,
        sample_iters=sample_iters,
        timeout=timeout,
    )
    _cache[key] = result.time
    return result.time


# --- sharding (see repro.experiments.base) ---------------------------------------
def npb_fast_config(fast: bool) -> tuple[str, "int | str"]:
    """The (class, sample_iters) pair figs 10-13 use for one fast flag."""
    return ("A", 4) if fast else ("B", "default")


def bench_times(bench: str, placement_kind: str, fast: bool = False) -> dict[str, float]:
    """Times for every implementation on one (benchmark, placement) point."""
    cls, sample = npb_fast_config(fast)
    from repro.impls import IMPLEMENTATION_ORDER

    # Telemetry track named after the shard task_id, so a serial figure run
    # records into the same tracks a sharded campaign merges back.
    with _obs.track(f"npb/{placement_kind}/{bench}"):
        return {
            name: npb_time(bench, name, placement_kind, cls=cls, sample_iters=sample)
            for name in IMPLEMENTATION_ORDER
        }


def run_npb_point_shard(bench: str, placement_kind: str, fast: bool = False) -> dict:
    """Worker-side shard: one NPB benchmark on one placement, all impls.

    The task_id namespace ``npb/<placement>/<bench>`` is shared between
    figs 10-13, so a campaign computes each point exactly once even though
    three figures consume the grid16 column.
    """
    return {"times": bench_times(bench, placement_kind, fast)}


def npb_point_shards(placement_kinds: "tuple[str, ...]") -> list:
    """Shard specs covering ``NPB_ORDER`` × the given placements."""
    from repro.experiments.base import ShardSpec

    return [
        ShardSpec(
            task_id=f"npb/{placement_kind}/{bench}",
            runner="repro.experiments.npb_runs:run_npb_point_shard",
            params={"bench": bench, "placement_kind": placement_kind},
        )
        for placement_kind in placement_kinds
        for bench in NPB_ORDER
    ]


def shard_times(payloads: dict, placement_kind: str, bench: str) -> dict[str, float]:
    """Extract one point's per-impl times from merged shard payloads."""
    return payloads[f"npb/{placement_kind}/{bench}"]["times"]


def relative_to_mpich2(
    bench: str, impl_name: str, placement_kind: str, cls: str = "B", **kw
) -> float:
    """Figs. 10/11: time(MPICH2) / time(impl); > 1 means faster than the
    reference, ``0`` when the implementation did not finish."""
    ref = npb_time(bench, "mpich2", placement_kind, cls, **kw)
    t = npb_time(bench, impl_name, placement_kind, cls, **kw)
    if math.isinf(t):
        return 0.0
    return ref / t
