"""Table 3 — host specifications of the testbed (static data)."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.net.grid5000 import HOST_SPECS
from repro.report import Table


def run(fast: bool = False) -> ExperimentResult:
    table = Table(
        ["", "Rennes", "Nancy"],
        title="Table 3: host specifications",
    )
    rennes, nancy = HOST_SPECS["rennes"], HOST_SPECS["nancy"]
    fields = [
        ("Processor", f"{rennes.processor} {rennes.clock_ghz} GHz",
         f"{nancy.processor} {nancy.clock_ghz} GHz"),
        ("Motherboard", rennes.motherboard, nancy.motherboard),
        ("Memory", f"{rennes.memory_gb} GB", f"{nancy.memory_gb} GB"),
        ("NIC", rennes.nic, nancy.nic),
        ("OS", rennes.os, nancy.os),
        ("Kernel", rennes.kernel, nancy.kernel),
        ("TCP version", rennes.tcp, nancy.tcp),
        ("Calibrated rate", f"{rennes.gflops} Gflop/s", f"{nancy.gflops} Gflop/s"),
    ]
    rows = []
    for label, r, n in fields:
        table.add_row([label, r, n])
        rows.append({"field": label, "rennes": r, "nancy": n})
    return ExperimentResult(
        "table3", "Table 3: host specifications", "Table 3, §3.2", rows, table.render()
    )
