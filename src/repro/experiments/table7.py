"""Table 7 — ray2mesh phase times vs master placement."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, ShardSpec
from repro.experiments.table6 import (
    SITES,
    Ray2MeshSummary,
    ray2mesh_results,
    ray2mesh_shards,
    results_from_payloads,
)
from repro.report import Table

#: paper's Table 7 (seconds): comp / merge / total per master site
PAPER = {
    "nancy": (185.11, 168.85, 361.52),
    "rennes": (185.16, 162.59, 355.14),
    "sophia": (186.03, 168.38, 361.72),
    "toulouse": (186.97, 165.99, 360.24),
}


def _result_from_runs(results: "dict[str, Ray2MeshSummary]") -> ExperimentResult:
    table = Table(
        ["master", "comp (s)", "merge (s)", "total (s)", "paper comp/merge/total"],
        title="Table 7: ray2mesh phase times vs master location",
    )
    rows = []
    for site in SITES:
        r = results[site]
        p = PAPER[site]
        table.add_row(
            [site, r.comp_time, r.merge_time, r.total_time,
             f"{p[0]:.0f} / {p[1]:.0f} / {p[2]:.0f}"]
        )
        rows.append(
            {
                "master": site,
                "comp_s": r.comp_time,
                "merge_s": r.merge_time,
                "total_s": r.total_time,
                "paper": p,
            }
        )
    totals = [r.total_time for r in results.values()]
    spread = max(totals) / min(totals)
    note = (
        f"total-time spread across master placements: {spread:.3f}x "
        "(paper: placement does not matter — spread 1.02x)"
    )
    return ExperimentResult(
        "table7",
        "Table 7: ray2mesh time results",
        "Table 7, §4.4",
        rows,
        "\n".join([table.render(), note]),
    )


def run(fast: bool = False) -> ExperimentResult:
    return _result_from_runs(ray2mesh_results(fast))


def shards(fast: bool = False) -> list[ShardSpec]:
    # Identical task_ids to table6's shards: the runner executes the four
    # ray2mesh runs once and feeds both tables.
    return ray2mesh_shards()


def merge(payloads: dict[str, dict], fast: bool = False) -> ExperimentResult:
    return _result_from_runs(results_from_payloads(payloads))
