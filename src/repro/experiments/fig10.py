"""Figure 10 — NPB on 8+8 grid nodes, every implementation vs MPICH2."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.npb_runs import NPB_ORDER, npb_time, relative_to_mpich2
from repro.impls import ALL_IMPLEMENTATIONS, IMPLEMENTATION_ORDER
from repro.report import Table

PAPER_NOTE = (
    "GridMPI wins big on the collective benchmarks (FT, IS); MPICH2 is "
    "best on LU; BT/SP slightly favour GridMPI; MPICH-Madeleine times "
    "out on BT and SP (bars absent in the paper)"
)


def run(fast: bool = False, placement_kind: str = "grid16") -> ExperimentResult:
    cls = "A" if fast else "B"
    sample = 4 if fast else "default"
    table = Table(
        ["NAS"] + [ALL_IMPLEMENTATIONS[n].display_name for n in IMPLEMENTATION_ORDER],
        title=(
            f"Fig. 10: relative performance vs MPICH2 (class {cls}, "
            f"{placement_kind}; >1 = faster, 0 = DNF)"
        ),
    )
    rows = []
    for bench in NPB_ORDER:
        cells = [bench.upper()]
        row = {"bench": bench}
        for name in IMPLEMENTATION_ORDER:
            rel = relative_to_mpich2(
                bench, name, placement_kind, cls=cls, sample_iters=sample
            )
            cells.append(rel)
            row[name] = rel
        table.add_row(cells)
        rows.append(row)
    times = {
        (bench, name): npb_time(
            bench, name, placement_kind, cls=cls, sample_iters=sample
        )
        for bench in NPB_ORDER
        for name in IMPLEMENTATION_ORDER
    }
    return ExperimentResult(
        "fig10",
        "Fig. 10: NPB relative to MPICH2 on the grid (8+8)",
        "Figure 10, §4.3",
        rows,
        "\n".join([table.render(), "", f"paper: {PAPER_NOTE}"]),
        extra={"times": times},
    )
