"""Figure 10 — NPB on 8+8 grid nodes, every implementation vs MPICH2."""

from __future__ import annotations

import math

from repro.experiments.base import ExperimentResult, ShardSpec
from repro.experiments.npb_runs import (
    NPB_ORDER,
    bench_times,
    npb_fast_config,
    npb_point_shards,
    shard_times,
)
from repro.impls import ALL_IMPLEMENTATIONS, IMPLEMENTATION_ORDER
from repro.report import Table

PAPER_NOTE = (
    "GridMPI wins big on the collective benchmarks (FT, IS); MPICH2 is "
    "best on LU; BT/SP slightly favour GridMPI; MPICH-Madeleine times "
    "out on BT and SP (bars absent in the paper)"
)


def result_from_times(
    times_by_bench: dict[str, dict[str, float]],
    fast: bool = False,
    placement_kind: str = "grid16",
) -> ExperimentResult:
    """Render Fig. 10 from a ``{bench: {impl: time}}`` matrix.

    Shared by the serial path and the shard merge, so both produce
    byte-identical reports from equal inputs.
    """
    cls, _sample = npb_fast_config(fast)
    table = Table(
        ["NAS"] + [ALL_IMPLEMENTATIONS[n].display_name for n in IMPLEMENTATION_ORDER],
        title=(
            f"Fig. 10: relative performance vs MPICH2 (class {cls}, "
            f"{placement_kind}; >1 = faster, 0 = DNF)"
        ),
    )
    rows = []
    for bench in NPB_ORDER:
        cells = [bench.upper()]
        row = {"bench": bench}
        ref = times_by_bench[bench]["mpich2"]
        for name in IMPLEMENTATION_ORDER:
            t = times_by_bench[bench][name]
            rel = 0.0 if math.isinf(t) else ref / t
            cells.append(rel)
            row[name] = rel
        table.add_row(cells)
        rows.append(row)
    times = {
        (bench, name): times_by_bench[bench][name]
        for bench in NPB_ORDER
        for name in IMPLEMENTATION_ORDER
    }
    return ExperimentResult(
        "fig10",
        "Fig. 10: NPB relative to MPICH2 on the grid (8+8)",
        "Figure 10, §4.3",
        rows,
        "\n".join([table.render(), "", f"paper: {PAPER_NOTE}"]),
        extra={"times": times},
    )


def run(fast: bool = False, placement_kind: str = "grid16") -> ExperimentResult:
    times_by_bench = {
        bench: bench_times(bench, placement_kind, fast) for bench in NPB_ORDER
    }
    return result_from_times(times_by_bench, fast, placement_kind)


def shards(fast: bool = False, placement_kind: str = "grid16") -> list[ShardSpec]:
    return npb_point_shards((placement_kind,))


def merge(
    payloads: dict[str, dict], fast: bool = False, placement_kind: str = "grid16"
) -> ExperimentResult:
    times_by_bench = {
        bench: shard_times(payloads, placement_kind, bench) for bench in NPB_ORDER
    }
    return result_from_times(times_by_bench, fast, placement_kind)
