"""Figure 9 — impact of TCP slow start on a stream of 1 MB messages.

200 round trips of 1 MB between Rennes and Nancy on the tuned stack; the
per-message bandwidth ramps over seconds.  The paper's markers: the
stream tops out near 570 Mbps; raw TCP and paced GridMPI pass 500 Mbps
around 2 s while the unpaced implementations need about 4 s.
"""

from __future__ import annotations

from repro.apps.pingpong import mpi_stream, tcp_stream
from repro.experiments.base import ExperimentResult
from repro.experiments.environments import get_environment, pingpong_pair
from repro.impls import IMPLEMENTATION_ORDER
from repro.report import Table, line_chart
from repro.units import MB

PAPER_T500 = {"TCP": 2.0, "MPICH2": 4.0, "GridMPI": 2.0,
              "MPICH-Madeleine": 4.0, "OpenMPI": 4.0}


def run(fast: bool = False) -> ExperimentResult:
    env = get_environment("fully_tuned")
    net, a, b = pingpong_pair("grid")
    count = 80 if fast else 250

    streams = {"TCP": tcp_stream(net, a, b, nbytes=MB, count=count, sysctls=env.sysctls)}
    for name in IMPLEMENTATION_ORDER:
        impl = env.impl(name)
        streams[impl.display_name] = mpi_stream(
            net, impl, a, b, nbytes=MB, count=count, sysctls=env.sysctls
        )

    def time_to(samples, mbps):
        for s in samples:
            if s.bandwidth_mbps >= mbps:
                return s.time
        return float("inf")

    table = Table(
        ["stack", "peak (Mbps)", "time to 500 Mbps (s)", "paper (s)"],
        title="Fig. 9: slow-start ramp of a 1 MB message stream (grid)",
    )
    rows = []
    for label, samples in streams.items():
        peak = max(s.bandwidth_mbps for s in samples)
        t500 = time_to(samples, 500)
        table.add_row([label, peak, t500, PAPER_T500[label]])
        rows.append(
            {"stack": label, "peak_mbps": peak, "t500_s": t500,
             "paper_t500_s": PAPER_T500[label]}
        )

    chart = line_chart(
        {
            label: [(s.time, s.bandwidth_mbps) for s in samples[:: max(1, count // 60)]]
            for label, samples in streams.items()
        },
        title="per-message bandwidth vs time",
        y_label="Mbps",
    )
    return ExperimentResult(
        "fig9",
        "Fig. 9: slow-start impact on the grid",
        "Figure 9, §4.2.3",
        rows,
        "\n".join([table.render(), "", chart]),
        extra={"streams": streams},
    )
