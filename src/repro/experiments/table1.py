"""Table 1 — feature comparison of the MPI implementations (static data)."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.impls import EXTENDED_IMPLEMENTATIONS
from repro.report import Table

#: the paper's Table 1 row order (it lists all six)
TABLE1_ORDER = ("mpich2", "gridmpi", "madeleine", "openmpi", "mpichg2", "mpichvmi")


def run(fast: bool = False) -> ExperimentResult:
    table = Table(
        ["implementation", "long-distance optimisations", "heterogeneity", "first / last publication"],
        title="Table 1: MPI implementation features",
    )
    rows = []
    for name in TABLE1_ORDER:
        impl = EXTENDED_IMPLEMENTATIONS[name]
        feats = impl.features
        pubs = f"{feats.first_publication} / {feats.last_publication}"
        table.add_row([impl.display_name, feats.long_distance, feats.heterogeneity, pubs])
        rows.append(
            {
                "implementation": impl.display_name,
                "long_distance": feats.long_distance,
                "heterogeneity": feats.heterogeneity,
                "publications": pubs,
            }
        )
    return ExperimentResult(
        "table1",
        "Table 1: implementation feature matrix",
        "Table 1, §2.1.7",
        rows,
        table.render(),
    )
