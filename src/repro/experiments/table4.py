"""Table 4 — one-byte latency, cluster vs grid, TCP + four implementations."""

from __future__ import annotations

from repro.apps.pingpong import mpi_pingpong, tcp_pingpong
from repro.experiments.base import ExperimentResult
from repro.experiments.environments import get_environment, pingpong_pair
from repro.impls import IMPLEMENTATION_ORDER
from repro.report import Table
from repro.units import to_usec

#: the paper's measured values (us, one way)
PAPER = {
    "TCP": (41, 5812),
    "MPICH2": (46, 5818),
    "GridMPI": (46, 5819),
    "MPICH-Madeleine": (62, 5826),
    "OpenMPI": (46, 5820),
}


def run(fast: bool = False) -> ExperimentResult:
    env = get_environment("fully_tuned")
    repeats = 5 if fast else 200
    measured: dict[str, tuple[float, float]] = {}

    latencies = {}
    for where in ("cluster", "grid"):
        net, a, b = pingpong_pair(where)
        curve = tcp_pingpong(net, a, b, sizes=[1], repeats=repeats, sysctls=env.sysctls)
        latencies[("TCP", where)] = to_usec(curve.points[0].one_way_latency)
        for name in IMPLEMENTATION_ORDER:
            impl = env.impl(name)
            curve = mpi_pingpong(
                net, impl, a, b, sizes=[1], repeats=repeats, sysctls=env.sysctls
            )
            latencies[(impl.display_name, where)] = to_usec(
                curve.points[0].one_way_latency
            )

    table = Table(
        ["stack", "cluster (us)", "paper", "grid (us)", "paper"],
        title="Table 4: one-byte latency, Rennes cluster vs Rennes-Nancy grid",
    )
    rows = []
    for label in PAPER:
        cluster = latencies[(label, "cluster")]
        grid = latencies[(label, "grid")]
        p_cluster, p_grid = PAPER[label]
        table.add_row([label, cluster, p_cluster, grid, p_grid])
        rows.append(
            {
                "stack": label,
                "cluster_us": cluster,
                "grid_us": grid,
                "paper_cluster_us": p_cluster,
                "paper_grid_us": p_grid,
            }
        )
    return ExperimentResult(
        "table4", "Table 4: latency comparison", "Table 4, §4.1", rows, table.render()
    )
