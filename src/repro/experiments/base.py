"""Experiment result container and the sharding protocol.

Every experiment module exposes ``run(fast=False) -> ExperimentResult``.
Sweep-style experiments additionally expose the *shard hooks* consumed by
the parallel runner (:mod:`repro.runner`):

``shards(fast=False) -> list[ShardSpec]``
    Decompose the experiment into independent units of work.  Each shard
    must be reproducible in a fresh process from its picklable ``params``
    alone, and the decomposition must be *result-preserving*: merging the
    shard payloads has to rebuild the exact ``ExperimentResult.text`` a
    plain ``run()`` produces (the runner's tests assert byte-identity).

``merge(payloads, fast=False) -> ExperimentResult``
    Reassemble the result from ``{shard task_id: payload}``.  Runs in the
    orchestrating process; it must be cheap (table rendering, no
    simulation).

Shard ``task_id``s are global, not per-experiment: two experiments that
declare a shard with the same ``task_id`` (e.g. table6/table7 both needing
the ray2mesh run for one master site, or figs 10/12/13 sharing the grid16
NPB points) are deduplicated by the runner — the shard executes once and
both merges see its payload.  Payloads must be JSON-serialisable so they
can live in the on-disk result cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class ExperimentResult:
    """Structured + rendered outcome of one reproduced table/figure."""

    experiment_id: str
    title: str
    paper_ref: str
    #: structured data (list of dicts; schema is experiment-specific)
    rows: list[dict]
    #: rendered, human-readable report
    text: str
    #: free-form extras (series, curves...)
    extra: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return self.text


@dataclass(frozen=True)
class ShardSpec:
    """One independent, cacheable unit of a sharded experiment.

    ``runner`` is a ``"package.module:function"`` reference resolved inside
    the worker process; the function is called as ``fn(fast=fast, **params)``
    and must return a JSON-serialisable payload.
    """

    #: global cache/dedup key, e.g. ``"npb/grid16/ft"`` — identical task_ids
    #: across experiments are executed once per campaign
    task_id: str
    #: dotted reference to the worker-side function
    runner: str
    #: picklable, JSON-serialisable keyword arguments
    params: dict[str, Any] = field(default_factory=dict)

    @property
    def module(self) -> str:
        """Module of the worker-side runner — the cache's dependency root:
        the shard's result can only depend on code reachable from here."""
        return self.runner.partition(":")[0]

    def cache_spec(self) -> str:
        """Digest of (runner, params) folded into the shard's cache key, so
        two shards that ever shared a ``task_id`` with different work could
        never replay each other's payloads."""
        from repro.runner.cache import spec_material

        return spec_material(self.runner, self.params)
