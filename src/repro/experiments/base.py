"""Experiment result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class ExperimentResult:
    """Structured + rendered outcome of one reproduced table/figure."""

    experiment_id: str
    title: str
    paper_ref: str
    #: structured data (list of dicts; schema is experiment-specific)
    rows: list[dict]
    #: rendered, human-readable report
    text: str
    #: free-form extras (series, curves...)
    extra: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return self.text
