"""Figure 7 — grid bandwidth after TCP *and* MPI (threshold) tuning."""

from __future__ import annotations

from repro.experiments.pingpong_common import PingPongFigure

PAPER_NOTE = (
    "all implementations match TCP (the threshold dip is gone); OpenMPI "
    "alone stays a little lower for big messages"
)

FIGURE = PingPongFigure(
    experiment_id="fig7",
    title="Fig. 7: MPI bandwidth on the grid after TCP + MPI tuning",
    paper_ref="Figure 7, §4.2.2",
    where="grid",
    env_name="fully_tuned",
    paper_note=PAPER_NOTE,
)

run = FIGURE.run
shards = FIGURE.shards
merge = FIGURE.merge
