"""Figure 7 — grid bandwidth after TCP *and* MPI (threshold) tuning."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.pingpong_common import (
    FAST_SIZES,
    FULL_SIZES,
    bandwidth_curves,
    figure_result,
)

PAPER_NOTE = (
    "all implementations match TCP (the threshold dip is gone); OpenMPI "
    "alone stays a little lower for big messages"
)


def run(fast: bool = False) -> ExperimentResult:
    curves = bandwidth_curves(
        where="grid",
        env_name="fully_tuned",
        sizes=FAST_SIZES if fast else FULL_SIZES,
        repeats=20 if fast else 100,
    )
    return figure_result(
        "fig7",
        "Fig. 7: MPI bandwidth on the grid after TCP + MPI tuning",
        "Figure 7, §4.2.2",
        curves,
        PAPER_NOTE,
    )
