"""Figure 12 — grid (8+8) vs one cluster (16 nodes), per implementation.

Relative performance = time(16 in one cluster) / time(8+8 across the
WAN); 1 means the grid costs nothing.  The paper's reading: EP ≈ 1,
LU/SP/BT hold up (big messages), CG/MG collapse (small messages), FT
benefits from GridMPI's broadcast while IS stays poor.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.npb_runs import NPB_ORDER, npb_time
from repro.impls import ALL_IMPLEMENTATIONS, IMPLEMENTATION_ORDER
from repro.report import Table


def run(fast: bool = False) -> ExperimentResult:
    cls = "A" if fast else "B"
    sample = 4 if fast else "default"
    table = Table(
        ["NAS"] + [ALL_IMPLEMENTATIONS[n].display_name for n in IMPLEMENTATION_ORDER],
        title=(
            f"Fig. 12: relative performance of 8+8 grid nodes vs 16 cluster "
            f"nodes (class {cls}; 1 = no grid penalty, 0 = DNF)"
        ),
    )
    rows = []
    for bench in NPB_ORDER:
        cells = [bench.upper()]
        row = {"bench": bench}
        for name in IMPLEMENTATION_ORDER:
            t_cluster = npb_time(bench, name, "cluster16", cls=cls, sample_iters=sample)
            t_grid = npb_time(bench, name, "grid16", cls=cls, sample_iters=sample)
            rel = 0.0 if t_grid == float("inf") else t_cluster / t_grid
            cells.append(rel)
            row[name] = rel
        table.add_row(cells)
        rows.append(row)
    return ExperimentResult(
        "fig12",
        "Fig. 12: grid vs cluster at equal node count",
        "Figure 12, §4.3",
        rows,
        table.render(),
    )
