"""Figure 12 — grid (8+8) vs one cluster (16 nodes), per implementation.

Relative performance = time(16 in one cluster) / time(8+8 across the
WAN); 1 means the grid costs nothing.  The paper's reading: EP ≈ 1,
LU/SP/BT hold up (big messages), CG/MG collapse (small messages), FT
benefits from GridMPI's broadcast while IS stays poor.
"""

from __future__ import annotations

import math

from repro.experiments.base import ExperimentResult, ShardSpec
from repro.experiments.npb_runs import (
    NPB_ORDER,
    bench_times,
    npb_fast_config,
    npb_point_shards,
    shard_times,
)
from repro.impls import ALL_IMPLEMENTATIONS, IMPLEMENTATION_ORDER
from repro.report import Table


def _result_from_times(
    cluster_times: dict[str, dict[str, float]],
    grid_times: dict[str, dict[str, float]],
    fast: bool = False,
) -> ExperimentResult:
    cls, _sample = npb_fast_config(fast)
    table = Table(
        ["NAS"] + [ALL_IMPLEMENTATIONS[n].display_name for n in IMPLEMENTATION_ORDER],
        title=(
            f"Fig. 12: relative performance of 8+8 grid nodes vs 16 cluster "
            f"nodes (class {cls}; 1 = no grid penalty, 0 = DNF)"
        ),
    )
    rows = []
    for bench in NPB_ORDER:
        cells = [bench.upper()]
        row = {"bench": bench}
        for name in IMPLEMENTATION_ORDER:
            t_cluster = cluster_times[bench][name]
            t_grid = grid_times[bench][name]
            rel = 0.0 if math.isinf(t_grid) else t_cluster / t_grid
            cells.append(rel)
            row[name] = rel
        table.add_row(cells)
        rows.append(row)
    return ExperimentResult(
        "fig12",
        "Fig. 12: grid vs cluster at equal node count",
        "Figure 12, §4.3",
        rows,
        table.render(),
    )


def run(fast: bool = False) -> ExperimentResult:
    cluster_times = {b: bench_times(b, "cluster16", fast) for b in NPB_ORDER}
    grid_times = {b: bench_times(b, "grid16", fast) for b in NPB_ORDER}
    return _result_from_times(cluster_times, grid_times, fast)


def shards(fast: bool = False) -> list[ShardSpec]:
    # grid16 shards are shared (same task_ids) with figs 10 and 13.
    return npb_point_shards(("cluster16", "grid16"))


def merge(payloads: dict[str, dict], fast: bool = False) -> ExperimentResult:
    cluster_times = {b: shard_times(payloads, "cluster16", b) for b in NPB_ORDER}
    grid_times = {b: shard_times(payloads, "grid16", b) for b in NPB_ORDER}
    return _result_from_times(cluster_times, grid_times, fast)
