"""Shared machinery of the four pingpong bandwidth figures (3, 5, 6, 7)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.apps.pingpong import PingPongCurve, PingPongPoint, mpi_pingpong, tcp_pingpong
from repro.experiments.base import ExperimentResult, ShardSpec
from repro.experiments.environments import get_environment, pingpong_pair
from repro.impls import IMPLEMENTATION_ORDER
from repro.obs import runtime as _obs
from repro.report import Table, line_chart
from repro.units import KB, MB, fmt_bytes, log2_sizes

#: the paper's full x axis
FULL_SIZES = tuple(log2_sizes(KB, 64 * MB))
#: CI subset: one point per decade-ish, keeping the 128 kB dip region
FAST_SIZES = (KB, 16 * KB, 128 * KB, 256 * KB, MB, 8 * MB, 64 * MB)


def bandwidth_curves(
    where: str,
    env_name: str,
    sizes: Sequence[int],
    repeats: int,
) -> dict[str, PingPongCurve]:
    """TCP + the four implementations, in the paper's legend order."""
    env = get_environment(env_name)
    net, a, b = pingpong_pair(where)
    # Each curve records telemetry into the track named after its shard
    # task_id, so a serial run and a sharded ``--jobs N`` run export
    # byte-identical telemetry (tracks are the merge unit; see repro.obs).
    with _obs.track(f"pingpong/{where}/{env_name}/{TCP_SHARD}"):
        curves: dict[str, PingPongCurve] = {
            "TCP": tcp_pingpong(
                net, a, b, sizes=sizes, repeats=repeats, sysctls=env.sysctls
            )
        }
    for name in IMPLEMENTATION_ORDER:
        impl = env.impl(name)
        with _obs.track(f"pingpong/{where}/{env_name}/{name}"):
            curves[impl.display_name] = mpi_pingpong(
                net, impl, a, b, sizes=sizes, repeats=repeats, sysctls=env.sysctls
            )
    return curves


def figure_result(
    experiment_id: str,
    title: str,
    paper_ref: str,
    curves: dict[str, PingPongCurve],
    paper_note: str,
) -> ExperimentResult:
    sizes = next(iter(curves.values())).sizes
    table = Table(
        ["size"] + list(curves), title=f"{title} — MPI bandwidth (Mbps)"
    )
    rows = []
    for nbytes in sizes:
        cells = [fmt_bytes(nbytes)]
        row = {"nbytes": nbytes}
        for label, curve in curves.items():
            bw = curve.bandwidth_at(nbytes)
            cells.append(bw)
            row[label] = bw
        table.add_row(cells)
        rows.append(row)
    chart = line_chart(
        {
            label: [(p.nbytes, p.max_bandwidth_mbps) for p in curve.points]
            for label, curve in curves.items()
        },
        title=title,
        x_labels=[fmt_bytes(s) for s in sizes],
        y_label="Mbps",
    )
    text = "\n".join([table.render(), "", chart, "", f"paper: {paper_note}"])
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        paper_ref=paper_ref,
        rows=rows,
        text=text,
        extra={"curves": curves},
    )


# --- sharding (see repro.experiments.base) ---------------------------------------
#: shard identity of the reference TCP curve
TCP_SHARD = "tcp"


def run_curve_shard(
    where: str,
    env_name: str,
    curve: str,
    fast: bool = False,
) -> dict:
    """Worker-side shard: one bandwidth curve (``curve`` is ``"tcp"`` or an
    implementation registry name).

    Every curve already runs in its own simulation ``Environment`` inside
    :func:`bandwidth_curves` — the network topology built by
    ``pingpong_pair`` is immutable measurement scaffolding — so computing a
    single curve in a fresh process yields bit-identical points to the
    serial loop (asserted by ``tests/test_runner.py``).
    """
    sizes = FAST_SIZES if fast else FULL_SIZES
    repeats = 20 if fast else 100
    env = get_environment(env_name)
    net, a, b = pingpong_pair(where)
    # Same track name the serial path uses (redundant under the runner,
    # whose shard session already defaults to this track; load-bearing for
    # a direct call).
    with _obs.track(f"pingpong/{where}/{env_name}/{curve}"):
        if curve == TCP_SHARD:
            result = tcp_pingpong(
                net, a, b, sizes=sizes, repeats=repeats, sysctls=env.sysctls
            )
        else:
            impl = env.impl(curve)
            result = mpi_pingpong(
                net, impl, a, b, sizes=sizes, repeats=repeats, sysctls=env.sysctls
            )
    return {
        "label": result.label,
        "points": [[p.nbytes, p.min_rtt, p.max_bandwidth_mbps] for p in result.points],
    }


def curve_from_payload(payload: dict) -> PingPongCurve:
    return PingPongCurve(
        payload["label"],
        [PingPongPoint(int(n), rtt, bw) for n, rtt, bw in payload["points"]],
    )


@dataclass(frozen=True)
class PingPongFigure:
    """Descriptor backing one bandwidth figure: serial run + shard hooks."""

    experiment_id: str
    title: str
    paper_ref: str
    where: str
    env_name: str
    paper_note: str

    def run(self, fast: bool = False) -> ExperimentResult:
        curves = bandwidth_curves(
            where=self.where,
            env_name=self.env_name,
            sizes=FAST_SIZES if fast else FULL_SIZES,
            repeats=20 if fast else 100,
        )
        return figure_result(
            self.experiment_id, self.title, self.paper_ref, curves, self.paper_note
        )

    def shards(self, fast: bool = False) -> list[ShardSpec]:
        labels = (TCP_SHARD, *IMPLEMENTATION_ORDER)
        return [
            ShardSpec(
                task_id=f"pingpong/{self.where}/{self.env_name}/{label}",
                runner="repro.experiments.pingpong_common:run_curve_shard",
                params={"where": self.where, "env_name": self.env_name, "curve": label},
            )
            for label in labels
        ]

    def merge(self, payloads: dict[str, dict], fast: bool = False) -> ExperimentResult:
        # Legend order must match bandwidth_curves: TCP first, then the
        # implementations in paper order.
        curves: dict[str, PingPongCurve] = {}
        for label in (TCP_SHARD, *IMPLEMENTATION_ORDER):
            task_id = f"pingpong/{self.where}/{self.env_name}/{label}"
            curve = curve_from_payload(payloads[task_id])
            curves[curve.label] = curve
        return figure_result(
            self.experiment_id, self.title, self.paper_ref, curves, self.paper_note
        )
