"""Shared machinery of the four pingpong bandwidth figures (3, 5, 6, 7)."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.apps.pingpong import PingPongCurve, mpi_pingpong, tcp_pingpong
from repro.experiments.base import ExperimentResult
from repro.experiments.environments import get_environment, pingpong_pair
from repro.impls import IMPLEMENTATION_ORDER
from repro.report import Table, line_chart
from repro.units import KB, MB, fmt_bytes, log2_sizes

#: the paper's full x axis
FULL_SIZES = tuple(log2_sizes(KB, 64 * MB))
#: CI subset: one point per decade-ish, keeping the 128 kB dip region
FAST_SIZES = (KB, 16 * KB, 128 * KB, 256 * KB, MB, 8 * MB, 64 * MB)


def bandwidth_curves(
    where: str,
    env_name: str,
    sizes: Sequence[int],
    repeats: int,
) -> dict[str, PingPongCurve]:
    """TCP + the four implementations, in the paper's legend order."""
    env = get_environment(env_name)
    net, a, b = pingpong_pair(where)
    curves: dict[str, PingPongCurve] = {
        "TCP": tcp_pingpong(net, a, b, sizes=sizes, repeats=repeats, sysctls=env.sysctls)
    }
    for name in IMPLEMENTATION_ORDER:
        impl = env.impl(name)
        curves[impl.display_name] = mpi_pingpong(
            net, impl, a, b, sizes=sizes, repeats=repeats, sysctls=env.sysctls
        )
    return curves


def figure_result(
    experiment_id: str,
    title: str,
    paper_ref: str,
    curves: dict[str, PingPongCurve],
    paper_note: str,
) -> ExperimentResult:
    sizes = next(iter(curves.values())).sizes
    table = Table(
        ["size"] + list(curves), title=f"{title} — MPI bandwidth (Mbps)"
    )
    rows = []
    for nbytes in sizes:
        cells = [fmt_bytes(nbytes)]
        row = {"nbytes": nbytes}
        for label, curve in curves.items():
            bw = curve.bandwidth_at(nbytes)
            cells.append(bw)
            row[label] = bw
        table.add_row(cells)
        rows.append(row)
    chart = line_chart(
        {
            label: [(p.nbytes, p.max_bandwidth_mbps) for p in curve.points]
            for label, curve in curves.items()
        },
        title=title,
        x_labels=[fmt_bytes(s) for s in sizes],
        y_label="Mbps",
    )
    text = "\n".join([table.render(), "", chart, "", f"paper: {paper_note}"])
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        paper_ref=paper_ref,
        rows=rows,
        text=text,
        extra={"curves": curves},
    )
