"""Figure 6 — grid bandwidth after the TCP tuning of §4.2.1."""

from __future__ import annotations

from repro.experiments.pingpong_common import PingPongFigure

PAPER_NOTE = (
    "~900 Mbps maximum on the grid (940 in the cluster); half bandwidth "
    "only around 1 MB; the eager/rendezvous dip (~128 kB) persists for "
    "all but GridMPI"
)

FIGURE = PingPongFigure(
    experiment_id="fig6",
    title="Fig. 6: MPI bandwidth on the grid after TCP tuning",
    paper_ref="Figure 6, §4.2.1",
    where="grid",
    env_name="tcp_tuned",
    paper_note=PAPER_NOTE,
)

run = FIGURE.run
shards = FIGURE.shards
merge = FIGURE.merge
