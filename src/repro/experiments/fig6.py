"""Figure 6 — grid bandwidth after the TCP tuning of §4.2.1."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.pingpong_common import (
    FAST_SIZES,
    FULL_SIZES,
    bandwidth_curves,
    figure_result,
)

PAPER_NOTE = (
    "~900 Mbps maximum on the grid (940 in the cluster); half bandwidth "
    "only around 1 MB; the eager/rendezvous dip (~128 kB) persists for "
    "all but GridMPI"
)


def run(fast: bool = False) -> ExperimentResult:
    curves = bandwidth_curves(
        where="grid",
        env_name="tcp_tuned",
        sizes=FAST_SIZES if fast else FULL_SIZES,
        repeats=20 if fast else 100,
    )
    return figure_result(
        "fig6",
        "Fig. 6: MPI bandwidth on the grid after TCP tuning",
        "Figure 6, §4.2.1",
        curves,
        PAPER_NOTE,
    )
