"""Table 2 — communication features of the NAS Parallel Benchmarks.

The paper ran each NAS under an instrumented MPI implementation to count
messages; we do the same with the tracing layer.  Counts from sampled
iterations are scaled to the full iteration count.  The paper's values
(from Faraj & Yuan's class-A/16-node counts and the paper's own runs) are
printed alongside; exact totals differ where the accounting granularity
did (notably FT/IS), the magnitudes and the point-to-point/collective
split are the comparison targets.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.environments import get_environment, grid_placement
from repro.mpi.constants import COLLECTIVE_CONTEXT, POINT_TO_POINT_CONTEXT
from repro.npb import COMM_TYPE, run_npb
from repro.npb.common import DEFAULT_SAMPLE_ITERS, PROBLEM
from repro.report import Table
from repro.units import fmt_bytes

#: the paper's Table 2 (class B except where its source used class A)
PAPER = {
    "ep": "192 * 8 B + 68 * 80 B",
    "cg": "126479 * 8 B + 86944 * 147 kB",
    "mg": "50809 * various sizes from 4 B to 130 kB",
    "lu": "1200000 * 960 B<msg<1040 B",
    "sp": "57744 * 45-54 kB + 96336 * 100-160 kB",
    "bt": "28944 * 26 kB + 48336 * 146-156 kB",
    "is": "176 * 1 kB + 176 * 30 MB",
    "ft": "320 * 1 B + 352 * 128 kB",
}

#: iterations represented by one sampled iteration (scales trace counts)
def _scale_factor(bench: str, cls: str, sample) -> float:
    total = {
        "ep": 1,
        "cg": PROBLEM["cg"][cls]["niter"],
        "mg": PROBLEM["mg"][cls]["nit"],
        "lu": PROBLEM["lu"][cls]["itmax"],
        "sp": PROBLEM["sp"][cls]["niter"],
        "bt": PROBLEM["bt"][cls]["niter"],
        "is": PROBLEM["is"][cls]["niter"],
        "ft": PROBLEM["ft"][cls]["niter"],
    }[bench]
    if sample is None:
        return 1.0
    return total / min(sample, total)


def run(fast: bool = False) -> ExperimentResult:
    env = get_environment("fully_tuned")
    cls = "A" if fast else "B"
    network, placement = grid_placement(16)

    table = Table(
        ["NAS", "type", "measured (scaled message counts)", "paper (Table 2)"],
        title=f"Table 2: NPB communication features (class {cls}, 16 ranks)",
    )
    rows = []
    for bench in ("ep", "cg", "mg", "lu", "sp", "bt", "is", "ft"):
        sample = 2 if fast else DEFAULT_SAMPLE_ITERS[bench]
        result = run_npb(
            bench, cls, network, env.impl("gridmpi"), placement,
            sysctls=env.sysctls, sample_iters=sample, trace=True,
            honor_known_failures=False,
        )
        scale = _scale_factor(bench, cls, sample)
        context = (
            COLLECTIVE_CONTEXT if COMM_TYPE[bench] == "Collective"
            else POINT_TO_POINT_CONTEXT
        )
        dominant = result.trace.dominant_sizes(context, top=3)
        if not dominant:
            # EP's only traffic is its final allreduces; the paper's source
            # counted their point-to-point decomposition, so do the same.
            dominant = result.trace.dominant_sizes(COLLECTIVE_CONTEXT, top=3)
        measured = " + ".join(
            f"{int(count * scale)} * {fmt_bytes(size)}"
            for size, count in sorted(dominant)
        )
        table.add_row([bench.upper(), COMM_TYPE[bench], measured, PAPER[bench]])
        rows.append(
            {
                "bench": bench,
                "type": COMM_TYPE[bench],
                "dominant_sizes": [(s, int(c * scale)) for s, c in dominant],
                "paper": PAPER[bench],
            }
        )
    return ExperimentResult(
        "table2",
        "Table 2: NPB communication features",
        "Table 2, §3.1",
        rows,
        table.render(),
    )
