"""One experiment per table/figure of the paper's evaluation.

Every experiment is a callable ``run(fast=False)`` returning an
:class:`~repro.experiments.base.ExperimentResult` with structured rows
and a rendered text report that prints the reproduced numbers next to
the paper's.  ``fast=True`` shrinks repeats/problem classes for CI; the
benchmarks under ``benchmarks/`` run the full configurations.
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = ["EXPERIMENTS", "ExperimentResult", "get_experiment", "run_experiment"]
