"""Figure 11 — same comparison as Fig. 10 on 2+2 nodes."""

from __future__ import annotations

from repro.experiments import fig10
from repro.experiments.base import ExperimentResult, ShardSpec

PLACEMENT = "grid4"


def _rebrand(result: ExperimentResult) -> ExperimentResult:
    return ExperimentResult(
        "fig11",
        "Fig. 11: NPB relative to MPICH2 on the grid (2+2)",
        "Figure 11, §4.3",
        result.rows,
        result.text.replace("Fig. 10", "Fig. 11"),
        extra=result.extra,
    )


def run(fast: bool = False) -> ExperimentResult:
    return _rebrand(fig10.run(fast=fast, placement_kind=PLACEMENT))


def shards(fast: bool = False) -> list[ShardSpec]:
    return fig10.shards(fast=fast, placement_kind=PLACEMENT)


def merge(payloads: dict[str, dict], fast: bool = False) -> ExperimentResult:
    return _rebrand(fig10.merge(payloads, fast=fast, placement_kind=PLACEMENT))
