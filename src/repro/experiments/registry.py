"""Experiment registry: id -> runner, plus the shard-plan lookup."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import ExperimentError
from repro.experiments import (
    coll_hier,
    faults,
    fig3,
    fig5,
    fig6,
    fig7,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
)
from repro.experiments.base import ExperimentResult, ShardSpec

#: id -> defining module (or module-like namespace: ``experiments.faults``
#: hosts two experiments); the entry's ``run`` is the experiment, and its
#: optional ``shards``/``merge`` hooks are the sharding protocol
MODULES: dict[str, Any] = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "table6": table6,
    "table7": table7,
    "fig3": fig3,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "faults_pingpong": faults.faults_pingpong,
    "faults_cg": faults.faults_cg,
    "coll_hier": coll_hier,
}

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    experiment_id: module.run for experiment_id, module in MODULES.items()
}


def experiment_module(experiment_id: str) -> Optional[str]:
    """Dotted module defining ``experiment_id`` — the dependency root for
    its cache key — or ``None`` for ids injected directly into
    :data:`EXPERIMENTS` (tests), which fall back to whole-tree digests.

    Works for both real modules (``fig3``) and module-like namespaces
    (``experiments.faults`` hosts two experiments whose ``run`` functions
    carry the defining module).
    """
    entry = MODULES.get(experiment_id.lower())
    if entry is None:
        return None
    name = getattr(entry, "__name__", None)
    if isinstance(name, str) and "." in name:
        return name
    run = getattr(entry, "run", None)
    return getattr(run, "__module__", None)


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    try:
        return EXPERIMENTS[experiment_id.lower()]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; have {sorted(EXPERIMENTS)}"
        ) from None


def run_experiment(experiment_id: str, fast: bool = False) -> ExperimentResult:
    return get_experiment(experiment_id)(fast=fast)


def clear_memos() -> None:
    """Drop every experiment module's in-process memo (``clear_memo`` hook).

    The sanitizers call this before each instrumented run: a warm memo
    replays no simulation, so a trace or schedule projection captured over
    a memo hit would be vacuously empty and diverge from a cold run's
    (see ``table6.ray2mesh_results``).  Campaign runners never call this —
    serial table7 reusing table6's memo is intentional.
    """
    for module in MODULES.values():
        clear = getattr(module, "clear_memo", None)
        if clear is not None:
            clear()


@dataclass(frozen=True)
class ShardPlan:
    """Shard decomposition of one experiment (see repro.experiments.base)."""

    experiment_id: str
    shards: tuple[ShardSpec, ...]
    #: ``merge(payloads, fast=...) -> ExperimentResult``; runs in the parent
    merge: Callable[..., ExperimentResult]


def get_shard_plan(experiment_id: str, fast: bool = False) -> Optional[ShardPlan]:
    """The experiment's shard decomposition, or ``None`` if it only runs whole.

    An experiment opts in by defining module-level ``shards``/``merge``
    hooks next to its ``run`` (see :mod:`repro.experiments.base`).
    Experiments registered directly in :data:`EXPERIMENTS` (tests do this)
    have no module entry and run whole.
    """
    get_experiment(experiment_id)  # raise ExperimentError for unknown ids
    module = MODULES.get(experiment_id.lower())
    shards = getattr(module, "shards", None)
    merge = getattr(module, "merge", None)
    if shards is None or merge is None:
        return None
    return ShardPlan(
        experiment_id=experiment_id.lower(),
        shards=tuple(shards(fast=fast)),
        merge=merge,
    )
