"""Experiment registry: id -> runner."""

from __future__ import annotations

from typing import Callable

from repro.errors import ExperimentError
from repro.experiments import (
    fig3,
    fig5,
    fig6,
    fig7,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
)
from repro.experiments.base import ExperimentResult

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "table6": table6.run,
    "table7": table7.run,
    "fig3": fig3.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
}


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    try:
        return EXPERIMENTS[experiment_id.lower()]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; have {sorted(EXPERIMENTS)}"
        ) from None


def run_experiment(experiment_id: str, fast: bool = False) -> ExperimentResult:
    return get_experiment(experiment_id)(fast=fast)
