"""Table 6 — ray2mesh: rays computed per cluster vs master placement."""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import run_ray2mesh
from repro.experiments.base import ExperimentResult, ShardSpec
from repro.experiments.environments import get_environment
from repro.obs import runtime as _obs
from repro.report import Table

SITES = ("nancy", "rennes", "sophia", "toulouse")

#: paper's Table 6 (rays per cluster, averaged over runs)
PAPER = {
    "nancy": (29650, 27938, 29344, 28781),
    "rennes": (30225, 30625, 29438, 29469),
    "sophia": (35375, 36562, 37344, 36438),
    "toulouse": (29750, 29875, 28875, 30312),
}

_cache: dict[tuple, object] = {}


def clear_memo() -> None:
    """Sanitizer hook (see ``registry.clear_memos``): force cold site runs."""
    _cache.clear()


@dataclass(frozen=True)
class Ray2MeshSummary:
    """The slice of a ray2mesh run that Tables 6 and 7 consume."""

    rays_per_cluster: dict[str, int]
    comp_time: float
    merge_time: float
    total_time: float


def _summarise(result) -> Ray2MeshSummary:
    return Ray2MeshSummary(
        rays_per_cluster=dict(result.rays_per_cluster),
        comp_time=result.comp_time,
        merge_time=result.merge_time,
        total_time=result.total_time,
    )


def ray2mesh_results(fast: bool = False) -> dict[str, Ray2MeshSummary]:
    """One run per master site (memoised; Table 7 reuses them).

    With a telemetry session active the memo is bypassed: a hit replays no
    simulation and would record nothing, whereas recomputation is
    deterministic and keeps serial exports byte-identical to a sharded
    campaign's (whose fresh workers never see a warm memo).
    """
    key = ("ray2mesh", fast)
    if key not in _cache or _obs.ACTIVE is not None:
        _cache[key] = {site: _run_site(site, fast) for site in SITES}
    return _cache[key]  # type: ignore[return-value]


def _run_site(site: str, fast: bool) -> Ray2MeshSummary:
    env = get_environment("fully_tuned")
    total_rays = 100_000 if fast else 1_000_000
    # Track named after the shard task_id (see ray2mesh_shards), aligning
    # serial table runs with the sharded campaign's merged payloads.
    with _obs.track(f"ray2mesh/{site}"):
        return _summarise(
            run_ray2mesh(
                env.impl("mpich2"),
                master_site=site,
                total_rays=total_rays,
                sysctls=env.sysctls,
            )
        )


# --- sharding (see repro.experiments.base) ---------------------------------------
def run_ray2mesh_shard(site: str, fast: bool = False) -> dict:
    """Worker-side shard: the full ray2mesh run for one master site.

    Shared (same task_ids) with Table 7, so a campaign runs ray2mesh once
    per site even though both tables consume every run.
    """
    summary = _run_site(site, fast)
    return {
        "rays_per_cluster": summary.rays_per_cluster,
        "comp_time": summary.comp_time,
        "merge_time": summary.merge_time,
        "total_time": summary.total_time,
    }


def ray2mesh_shards() -> list[ShardSpec]:
    return [
        ShardSpec(
            task_id=f"ray2mesh/{site}",
            runner="repro.experiments.table6:run_ray2mesh_shard",
            params={"site": site},
        )
        for site in SITES
    ]


def results_from_payloads(payloads: dict[str, dict]) -> dict[str, Ray2MeshSummary]:
    return {
        site: Ray2MeshSummary(
            rays_per_cluster=dict(payloads[f"ray2mesh/{site}"]["rays_per_cluster"]),
            comp_time=payloads[f"ray2mesh/{site}"]["comp_time"],
            merge_time=payloads[f"ray2mesh/{site}"]["merge_time"],
            total_time=payloads[f"ray2mesh/{site}"]["total_time"],
        )
        for site in SITES
    }


def _result_from_runs(results: dict[str, Ray2MeshSummary]) -> ExperimentResult:
    per_node = 8  # nodes per cluster; the paper reports per-cluster means

    table = Table(
        ["cluster"] + [f"master={s}" for s in SITES] + ["paper (master=nancy..toulouse)"],
        title="Table 6: rays computed per node of each cluster vs master location",
    )
    rows = []
    for cluster in SITES:
        cells = [cluster]
        row = {"cluster": cluster}
        for master in SITES:
            rays = results[master].rays_per_cluster[cluster] / per_node
            cells.append(rays)
            row[f"master_{master}"] = rays
        cells.append(" / ".join(str(v) for v in PAPER[cluster]))
        row["paper"] = PAPER[cluster]
        table.add_row(cells)
        rows.append(row)
    note = (
        "paper scale: 1 M rays; fast mode scales counts down 10x. "
        "Sophia (fastest CPUs) leads everywhere, as in the paper."
    )
    return ExperimentResult(
        "table6",
        "Table 6: ray2mesh ray distribution",
        "Table 6, §4.4",
        rows,
        "\n".join([table.render(), note]),
    )


def run(fast: bool = False) -> ExperimentResult:
    return _result_from_runs(ray2mesh_results(fast))


def shards(fast: bool = False) -> list[ShardSpec]:
    return ray2mesh_shards()


def merge(payloads: dict[str, dict], fast: bool = False) -> ExperimentResult:
    return _result_from_runs(results_from_payloads(payloads))
