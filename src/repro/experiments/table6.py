"""Table 6 — ray2mesh: rays computed per cluster vs master placement."""

from __future__ import annotations

from repro.apps import run_ray2mesh
from repro.experiments.base import ExperimentResult
from repro.experiments.environments import get_environment
from repro.report import Table

SITES = ("nancy", "rennes", "sophia", "toulouse")

#: paper's Table 6 (rays per cluster, averaged over runs)
PAPER = {
    "nancy": (29650, 27938, 29344, 28781),
    "rennes": (30225, 30625, 29438, 29469),
    "sophia": (35375, 36562, 37344, 36438),
    "toulouse": (29750, 29875, 28875, 30312),
}

_cache: dict[tuple, object] = {}


def ray2mesh_results(fast: bool = False):
    """One run per master site (memoised; Table 7 reuses them)."""
    key = ("ray2mesh", fast)
    if key not in _cache:
        env = get_environment("fully_tuned")
        total_rays = 100_000 if fast else 1_000_000
        _cache[key] = {
            site: run_ray2mesh(
                env.impl("mpich2"),
                master_site=site,
                total_rays=total_rays,
                sysctls=env.sysctls,
            )
            for site in SITES
        }
    return _cache[key]


def run(fast: bool = False) -> ExperimentResult:
    results = ray2mesh_results(fast)
    per_node = 8  # nodes per cluster; the paper reports per-cluster means

    table = Table(
        ["cluster"] + [f"master={s}" for s in SITES] + ["paper (master=nancy..toulouse)"],
        title="Table 6: rays computed per node of each cluster vs master location",
    )
    rows = []
    for cluster in SITES:
        cells = [cluster]
        row = {"cluster": cluster}
        for master in SITES:
            rays = results[master].rays_per_cluster[cluster] / per_node
            cells.append(rays)
            row[f"master_{master}"] = rays
        cells.append(" / ".join(str(v) for v in PAPER[cluster]))
        row["paper"] = PAPER[cluster]
        table.add_row(cells)
        rows.append(row)
    note = (
        "paper scale: 1 M rays; fast mode scales counts down 10x. "
        "Sophia (fastest CPUs) leads everywhere, as in the paper."
    )
    return ExperimentResult(
        "table6",
        "Table 6: ray2mesh ray distribution",
        "Table 6, §4.4",
        rows,
        "\n".join([table.render(), note]),
    )
