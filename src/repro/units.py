"""Unit helpers used across the library.

The simulator works internally in **seconds** (float), **bytes** (int) and
**bits per second** (float).  The paper mixes µs, ms, kB, MB, Mbps and Gbps;
these helpers keep the conversions explicit and readable at call sites:

>>> from repro.units import MB, Mbps, usec
>>> 4 * MB
4194304
>>> Mbps(940)
940000000.0
>>> usec(41)
4.1e-05
"""

from __future__ import annotations

import math
from typing import NewType

#: A byte count (binary units: kB = 1024 B).  ``Size`` is a ``NewType`` over
#: ``int``: passing a ``Size`` anywhere an ``int`` is expected is fine, but
#: annotating a parameter as ``Size`` documents — and lets mypy plus the
#: UNIT lint rules check — that a *byte count*, never a bit rate, belongs
#: there.
Size = NewType("Size", int)

#: A link/transfer rate in bits per second (decimal units: Mbps = 1e6 bit/s).
#: Disjoint from :data:`Size` under mypy, which is the point: the paper's
#: TCP-buffer arithmetic (buffer >= rate x RTT / 8) is where the two mix.
Rate = NewType("Rate", float)

# --- byte sizes (binary, as used by socket buffers and MPI thresholds) -----
KB: Size = Size(1024)
MB: Size = Size(1024 * 1024)
GB: Size = Size(1024 * 1024 * 1024)


def kb(n: float) -> Size:
    """``n`` kibibytes as an integer byte count."""
    return Size(int(n * KB))


def mb(n: float) -> Size:
    """``n`` mebibytes as an integer byte count."""
    return Size(int(n * MB))


# --- bit rates (decimal, as used for link speeds) ---------------------------
def bps(n: float) -> Rate:
    return Rate(float(n))


def Kbps(n: float) -> Rate:
    return Rate(n * 1e3)


def Mbps(n: float) -> Rate:
    return Rate(n * 1e6)


def Gbps(n: float) -> Rate:
    return Rate(n * 1e9)


# --- times -------------------------------------------------------------------
def usec(n: float) -> float:
    """``n`` microseconds in seconds."""
    return n * 1e-6


def msec(n: float) -> float:
    """``n`` milliseconds in seconds."""
    return n * 1e-3


def to_usec(seconds: float) -> float:
    return seconds * 1e6


def to_msec(seconds: float) -> float:
    return seconds * 1e3


# --- engine ticks ------------------------------------------------------------
#: The discrete-event engine keeps virtual time as an integer count of
#: nanosecond ticks (`sim/core.py`); floats only appear at the public
#: second-valued boundary (``Environment.now`` / ``timeout`` / ``run``).
TICKS_PER_SECOND = 1_000_000_000

#: Relative guards for the float-seconds -> integer-ticks conversions.  A
#: product like ``delay * 1e9`` lands within 1 ulp of the true value, so
#: nudging it down (up) by one part in 2**50 — far more than 1 ulp, far
#: less than half a tick for any simulated duration — makes ``ceil``
#: (``floor``) exact for every tick-representable duration instead of
#: overshooting (undershooting) on values whose product rounded up (down).
_TICK_GUARD_DOWN = 1.0 - 2.0**-50
_TICK_GUARD_UP = 1.0 + 2.0**-50


def delay_to_ticks(seconds: float) -> int:
    """Convert a non-negative delay in seconds to integer engine ticks.

    Rounds *up* (an event must never fire early), except that the guard
    factor first cancels the upward rounding error of ``seconds * 1e9``
    so tick-representable delays convert exactly.  Any positive delay
    maps to at least one tick, so repeated tiny timeouts cannot stall
    the virtual clock.

    >>> delay_to_ticks(41.54e-6)
    41540
    >>> delay_to_ticks(1e-15)
    1
    """
    return math.ceil(seconds * TICKS_PER_SECOND * _TICK_GUARD_DOWN)


def horizon_to_ticks(seconds: float) -> int:
    """Convert a run-until horizon in seconds to integer engine ticks.

    Rounds *down* (events strictly beyond the horizon must not run), with
    the guard factor cancelling the downward rounding error of
    ``seconds * 1e9`` so tick-representable horizons convert exactly.
    """
    return math.floor(seconds * TICKS_PER_SECOND * _TICK_GUARD_UP)


def ticks_to_seconds(ticks: int) -> float:
    """Engine ticks back to float seconds (correctly rounded: int/int
    true division, so e.g. ``3_500_000_000`` ticks is exactly ``3.5``)."""
    return ticks / TICKS_PER_SECOND


# --- conversions -------------------------------------------------------------
def bytes_per_second(bits_per_second: Rate | float) -> float:
    return bits_per_second / 8.0


def bits_per_second(byte_rate: float) -> Rate:
    return Rate(byte_rate * 8.0)


def transfer_seconds(nbytes: float, rate_bps: Rate | float) -> float:
    """Serialisation time of ``nbytes`` at ``rate_bps`` bits/second."""
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    return nbytes * 8.0 / rate_bps


def goodput_mbps(nbytes: float, seconds: float) -> float:
    """Observed application-level throughput in Mbit/s."""
    if seconds <= 0:
        return math.inf
    return nbytes * 8.0 / seconds / 1e6


# --- pretty-printing ----------------------------------------------------------
_SIZE_SUFFIXES = [(GB, "GB"), (MB, "MB"), (KB, "kB")]


def fmt_bytes(nbytes: float) -> str:
    """Human-readable byte count, matching the paper's axis labels.

    >>> fmt_bytes(131072)
    '128k'
    >>> fmt_bytes(4194304)
    '4M'
    """
    for factor, suffix in ((GB, "G"), (MB, "M"), (KB, "k")):
        if nbytes >= factor:
            value = nbytes / factor
            if value == int(value):
                return f"{int(value)}{suffix}"
            return f"{value:.1f}{suffix}"
    return f"{int(nbytes)}"


def fmt_rate(rate_bps: Rate | float) -> str:
    """Human-readable bit rate.

    >>> fmt_rate(940e6)
    '940.0 Mbps'
    """
    if rate_bps >= 1e9:
        return f"{rate_bps / 1e9:.2f} Gbps"
    if rate_bps >= 1e6:
        return f"{rate_bps / 1e6:.1f} Mbps"
    if rate_bps >= 1e3:
        return f"{rate_bps / 1e3:.1f} kbps"
    return f"{rate_bps:.1f} bps"


def fmt_time(seconds: float) -> str:
    """Human-readable duration.

    >>> fmt_time(5.8e-3)
    '5.800 ms'
    >>> fmt_time(4.1e-05)
    '41.0 us'
    """
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.1f} us"
    return f"{seconds * 1e9:.1f} ns"


def parse_size(text: str) -> Size:
    """Parse a size like ``'128k'``, ``'4MB'``, ``'64M'`` or ``'512'`` to bytes.

    >>> parse_size('128k')
    131072
    >>> parse_size('4MB')
    4194304
    """
    s = text.strip().lower().removesuffix("b")
    factor = 1
    if s and s[-1] in "kmg":
        factor = {"k": KB, "m": MB, "g": GB}[s[-1]]
        s = s[:-1]
    try:
        return Size(int(float(s) * factor))
    except ValueError as exc:
        raise ValueError(f"cannot parse size {text!r}") from exc


def log2_sizes(lo: int, hi: int) -> list[int]:
    """Power-of-two sizes from ``lo`` to ``hi`` inclusive (paper's x axes).

    >>> [fmt_bytes(s) for s in log2_sizes(1024, 8192)]
    ['1k', '2k', '4k', '8k']
    """
    if lo <= 0 or hi < lo:
        raise ValueError(f"invalid size range [{lo}, {hi}]")
    sizes = []
    s = lo
    while s <= hi:
        sizes.append(s)
        s *= 2
    return sizes
