"""Core of the discrete-event engine: events, processes, the environment.

Design notes
------------
* Virtual time is an **integer count of nanosecond ticks**
  (:data:`repro.units.TICKS_PER_SECOND`).  Integers compare exactly, so
  "same timestamp" is a well-defined notion (two paths computing the same
  instant always collide, never land 1 ulp apart) and long simulations
  cannot lose precision to float accumulation.  Floats appear only at the
  public second-valued boundary: ``now``/``peek`` divide ticks back to
  seconds (correctly rounded), ``timeout``/``run`` convert seconds to
  ticks with guarded rounding (``units.delay_to_ticks`` — never early,
  exact for tick-representable values).
* The event queue is a binary heap of ``(ticks, priority, sequence, event)``
  tuples.  The monotonically increasing sequence number makes scheduling
  FIFO-stable, which in turn makes every simulation in this library fully
  deterministic (asserted by tests).
* Process resumptions are scheduled at priority :data:`URGENT` so that a
  process continues before same-time timeouts of other processes fire,
  matching the intuition that a coroutine runs until it blocks.
* A failed event whose exception nobody consumed is re-raised by
  :meth:`Environment.step` — silent failures in rank programs would
  otherwise corrupt experiment results.
"""

from __future__ import annotations

import heapq
from collections.abc import Generator
from contextlib import contextmanager
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.obs import runtime as _obs
from repro.units import TICKS_PER_SECOND, delay_to_ticks, horizon_to_ticks

URGENT = 0
NORMAL = 1

PENDING = object()  # sentinel: event value not yet decided

#: Active trace sinks: callables ``(time_ticks, priority, seq, event)``
#: invoked for every popped queue entry; the time is the engine's integer
#: tick count (exact, so projections can group by equality).  Installed
#: globally (not per-Environment) so the determinism sanitizer can observe
#: experiments that build their own Environments internally.  Empty in
#: normal operation — ``step()`` pays one truthiness check.
_TRACE_SINKS: list[Callable[[int, int, int, "Event"], None]] = []

#: Optional tie ranker: maps the monotonically increasing sequence number to
#: the tie-breaking key actually pushed onto the heap.  ``None`` in normal
#: operation (FIFO among same-``(time, priority)`` events).  The schedule-
#: perturbation sanitizer (``repro.analysis.perturb``) installs a seeded
#: pseudo-random ranker here to prove results do not depend on the incidental
#: insertion order of same-timestamp events.
_TIE_RANKER: Optional[Callable[[int], int]] = None


@contextmanager
def tie_ranker(ranker: Optional[Callable[[int], int]]) -> Any:
    """Install ``ranker`` as the same-timestamp tie-breaker for the block.

    Environments created *and* driven inside the block order equal
    ``(time, priority)`` events by ``ranker(seq)`` instead of the FIFO
    sequence number.  Always restores the previous ranker, even when the
    perturbed experiment raises.
    """
    global _TIE_RANKER
    previous = _TIE_RANKER
    _TIE_RANKER = ranker
    try:
        yield ranker
    finally:
        _TIE_RANKER = previous


def install_trace_sink(sink: Callable[[int, int, int, "Event"], None]) -> None:
    """Register ``sink`` to observe every scheduled event as it is processed."""
    _TRACE_SINKS.append(sink)


def remove_trace_sink(sink: Callable[[int, int, int, "Event"], None]) -> None:
    """Unregister a sink previously installed (no-op if absent)."""
    try:
        _TRACE_SINKS.remove(sink)
    except ValueError:
        pass


@contextmanager
def trace_capture(hasher: Optional[Any] = None) -> Any:
    """Observe every processed event through an ``EventTraceHasher``.

    Installs the hasher as a trace sink for the duration of the block and
    always removes it, even when the traced experiment raises.  This is the
    one entry point shared by the determinism sanitizer and the parallel
    experiment runner, so both derive their trace hashes from the same
    event stream::

        with trace_capture() as hasher:
            result = run_experiment("fig3", fast=True)
        digest = hasher.hexdigest()
    """
    if hasher is None:
        from repro.mpi.tracing import EventTraceHasher

        hasher = EventTraceHasher()
    install_trace_sink(hasher)
    try:
        yield hasher
    finally:
        remove_trace_sink(hasher)


class Interrupt(Exception):
    """Thrown inside a process that another process interrupted.

    The optional *cause* is available as ``exc.cause``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A happening the simulation can wait on.

    An event goes through three states: *pending* (created), *triggered*
    (given a value and scheduled), *processed* (callbacks have run).
    Processes wait on an event by ``yield``-ing it.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        #: callables invoked with this event when it is processed; ``None``
        #: once processed.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state ----------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -----------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._value = value
        self.env._schedule(self, NORMAL, 0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.env._schedule(self, NORMAL, 0.0)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another event (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            event._defused = True
            self.fail(event._value)

    def __repr__(self) -> str:
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` units of virtual time after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        # Event.__init__ inlined: timeouts are the engine's hottest
        # allocation (one per transfer window round), and the super()
        # dispatch plus the double ``_value`` write are measurable there.
        self.env = env
        self.callbacks = []
        self._ok = True
        self._defused = False
        self.delay = delay
        self._value = value
        env._schedule(self, NORMAL, delay)


class Initialize(Event):
    """Immediately-scheduled event used to start a new process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._value = None
        self.callbacks.append(process._resume)
        env._schedule(self, URGENT, 0.0)


class Process(Event):
    """A running simulation coroutine.

    A process is itself an event that triggers when the coroutine returns
    (successfully, with the generator's return value) or raises (failed,
    with the exception).  Processes can therefore wait on each other simply
    by yielding the other process.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        if not hasattr(generator, "throw"):
            raise SimulationError(f"process target must be a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: the event this process is currently waiting on (None if running
        #: or terminated)
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead {self!r}")
        if self.env._active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._resume)
        self.env._schedule(event, URGENT, 0.0)

    # -- coroutine driving ------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Resume the generator with the value (or exception) of ``event``."""
        env = self.env
        if not self.is_alive:  # interrupted after termination already raced
            return
        # Stale wake-up: an interrupt arrived while we waited on _target; the
        # target may still fire later and must not resume us twice.
        if event is not self._target and self._target is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except (ValueError, AttributeError):
                pass
        env._active_process = self
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                event._defused = True
                next_event = self._generator.throw(event._value)
        except StopIteration as stop:
            self._target = None
            env._active_process = None
            self._value = stop.value
            env._schedule(self, NORMAL, 0.0)
            return
        except BaseException as exc:
            self._target = None
            env._active_process = None
            self._ok = False
            self._value = exc
            env._schedule(self, NORMAL, 0.0)
            return
        env._active_process = None

        if not isinstance(next_event, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {next_event!r}; processes must yield Events"
            )
        if next_event.env is not env:
            raise SimulationError("cannot wait on an event from another Environment")
        if next_event.callbacks is None:
            # Already processed: resume immediately (urgently) with its value.
            self._target = None
            proxy = Event(env)
            proxy._ok = next_event._ok
            proxy._value = next_event._value
            if not next_event._ok:
                next_event._defused = True
                proxy._defused = True
            proxy.callbacks.append(self._resume)
            env._schedule(proxy, URGENT, 0.0)
        else:
            self._target = next_event
            next_event.callbacks.append(self._resume)


class Environment:
    """Holds the clock and the event queue, and drives the simulation.

    The clock is an integer nanosecond tick count (``_now``); the public
    :attr:`now` / :meth:`peek` express it in float seconds (int/int true
    division — correctly rounded, and exact whenever the instant is
    representable, e.g. every whole microsecond below ~104 days).
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = round(float(initial_time) * TICKS_PER_SECOND)
        self._now_s = self._now / TICKS_PER_SECOND
        self._queue: list[tuple[int, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now_s

    @property
    def now_ticks(self) -> int:
        """Current virtual time in integer engine ticks (nanoseconds)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- factories ---------------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register ``generator`` as a new process starting now."""
        return Process(self, generator, name=name)

    # -- scheduling ----------------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        if delay == 0.0:
            tick = self._now
        elif delay > 0.0:
            # Guarded ceil: never early, at least one tick, exact for
            # tick-representable delays (see units.delay_to_ticks).
            tick = self._now + delay_to_ticks(delay)
        else:
            # A negative delay would fire the event in the past: heappop
            # would hand out a time below ``now``, silently rewinding the
            # clock for every later observer.  Timeout already rejects
            # negative delays at its own layer; this guards every other
            # scheduling path (succeed/fail/interrupt forward 0.0 here).
            raise ValueError(
                f"cannot schedule {event!r} with negative delay {delay!r} "
                f"(now={self._now_s!r}); events cannot fire in the past"
            )
        self._seq += 1
        seq = self._seq if _TIE_RANKER is None else _TIE_RANKER(self._seq)
        heapq.heappush(self._queue, (tick, priority, seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event in seconds (``inf`` if none)."""
        return self._queue[0][0] / TICKS_PER_SECOND if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event."""
        try:
            tick, priority, seq, event = heapq.heappop(self._queue)
        except IndexError:
            raise SimulationError("step() on an empty schedule") from None
        if tick != self._now:  # repro: noqa=UNIT003 -- integer ticks compare exactly
            self._now = tick
            self._now_s = tick / TICKS_PER_SECOND
        if _TRACE_SINKS:
            for sink in tuple(_TRACE_SINKS):
                sink(tick, priority, seq, event)
        sess = _obs.ACTIVE
        if sess is not None and sess.spans:
            # Sparse queue-depth sampling; records only, never schedules,
            # so telemetry cannot perturb the event stream it observes.
            sess.sim_step(self._now_s, len(self._queue))
        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            raise SimulationError(f"{event!r} processed twice")
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # Nobody waited on this failure: surface it loudly.
            raise event._value

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run until the queue drains, a time is reached, or an event fires.

        Returns the value of ``until`` when it is an event; ``None``
        otherwise.
        """
        if isinstance(until, Event):
            stop = until
            if stop.callbacks is None:  # already processed
                if not stop._ok:
                    stop._defused = True
                    raise stop._value
                return stop._value
            done = []
            stop.callbacks.append(lambda ev: done.append(ev))
            while not done:
                if not self._queue:
                    raise SimulationError(
                        f"simulation deadlock: queue empty but {stop!r} never triggered"
                    )
                self.step()
            if not stop._ok:
                stop._defused = True
                raise stop._value
            return stop._value

        if until is None:
            while self._queue:
                self.step()
            return None

        # Guarded floor: events strictly beyond the horizon must not run,
        # but a tick-representable horizon includes its own instant exactly.
        horizon = horizon_to_ticks(float(until))
        if horizon < self._now:
            raise SimulationError(
                f"run(until={until}) is in the past (now={self._now_s})"
            )
        queue = self._queue
        while queue and queue[0][0] <= horizon:
            self.step()
        if horizon > self._now:
            self._now = horizon
            self._now_s = horizon / TICKS_PER_SECOND
        return None
