"""Event combinators: wait for *all* or *any* of a set of events.

``yield AllOf(env, events)`` resumes once every child triggered; its value is
a dict mapping each child event to its value (insertion-ordered, so
``list(result.values())`` matches the order the events were passed in).

``yield AnyOf(env, events)`` resumes as soon as one child triggers; its value
is a dict of the children that have triggered so far.

A failing child fails the combinator with the child's exception.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import SimulationError
from repro.sim.core import Event


class Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("_events", "_done")

    def __init__(self, env, events: Iterable[Event]):
        super().__init__(env)
        self._events: tuple[Event, ...] = tuple(events)
        self._done: set[Event] = set()
        for event in self._events:
            if event.env is not env:
                raise SimulationError("all events of a condition must share one Environment")
        # Attach after validation so a raised error leaves no dangling callbacks.
        for event in self._events:
            if event.callbacks is None:  # already processed
                self._check(event)
            else:
                event.callbacks.append(self._check)
        if not self._events and not self.triggered:
            self.succeed({})

    def _satisfied(self, count: int, total: int) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._done.add(event)
        if self._satisfied(len(self._done), len(self._events)):
            self.succeed(self._collect())

    def _collect(self) -> dict[Event, Any]:
        # Insertion-ordered by the original event tuple, restricted to the
        # children that have actually completed.
        return {ev: ev._value for ev in self._events if ev in self._done}


class AllOf(Condition):
    """Triggers when every child event has triggered."""

    __slots__ = ()

    def _satisfied(self, count: int, total: int) -> bool:
        return count == total


class AnyOf(Condition):
    """Triggers when the first child event triggers."""

    __slots__ = ()

    def __init__(self, env, events: Iterable[Event]):
        events = tuple(events)
        if not events:
            raise SimulationError("AnyOf of no events would never trigger")
        super().__init__(env, events)

    def _satisfied(self, count: int, total: int) -> bool:
        return count >= 1


def wait_all(env, events: Iterable[Event]) -> AllOf:
    """Convenience alias: ``yield wait_all(env, [a, b, c])``."""
    return AllOf(env, events)


def wait_any(env, events: Iterable[Event]) -> AnyOf:
    """Convenience alias: ``yield wait_any(env, [a, b])``."""
    return AnyOf(env, events)
