"""Named deterministic random streams.

Experiments must be reproducible run-to-run and insensitive to the *order*
in which unrelated components draw random numbers.  Each component therefore
gets its own stream, derived from a master seed and a stable name:

>>> rngs = RngRegistry(seed=42)
>>> a = rngs.stream("ray2mesh.master")
>>> b = rngs.stream("npb.ep.rank3")
>>> a is rngs.stream("ray2mesh.master")
True

Streams are :class:`numpy.random.Generator` instances seeded with
``SeedSequence(master_seed).spawn`` keyed by the hash of the name, so adding
a new consumer never perturbs existing ones.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngRegistry:
    """Factory and cache of named random streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the stream for ``name``, creating it deterministically."""
        gen = self._streams.get(name)
        if gen is None:
            # crc32 gives a stable 32-bit key for the name; combined with the
            # master seed it yields an independent, reproducible child seed.
            key = zlib.crc32(name.encode("utf-8"))
            # This registry is the one sanctioned RNG construction site; all
            # other modules must come through stream().
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(key,))  # lint: disable=DET005
            gen = np.random.default_rng(seq)  # lint: disable=DET005
            self._streams[name] = gen
        return gen

    def reset(self) -> None:
        """Drop all cached streams (they will be re-created from scratch)."""
        self._streams.clear()

    def __repr__(self) -> str:
        return f"RngRegistry(seed={self.seed}, streams={len(self._streams)})"
