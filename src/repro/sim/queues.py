"""Waitable queues and resources for the discrete-event engine.

:class:`Store`
    An unbounded (or bounded) FIFO of items; ``put`` and ``get`` return
    events.  This is the building block of NIC queues and MPI match queues.
:class:`PriorityStore`
    A store whose ``get`` returns the smallest item first.
:class:`Channel`
    A Store plus a convenience non-blocking ``put_nowait`` used for
    signalling between protocol engines.
:class:`Resource`
    Counting semaphore with FIFO fairness (used e.g. to model a NIC that
    serialises one frame at a time).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Generic, TypeVar

from repro.errors import SimulationError
from repro.sim.core import Environment, Event

T = TypeVar("T")


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._put_waiters.append(self)
        store._dispatch()


class StoreGet(Event):
    __slots__ = ()

    def __init__(self, store: "Store"):
        super().__init__(store.env)
        store._get_waiters.append(self)
        store._dispatch()


class Store(Generic[T]):
    """FIFO store of items with optional capacity."""

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError(f"store capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: deque[T] = deque()
        self._put_waiters: deque[StorePut] = deque()
        self._get_waiters: deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: T) -> StorePut:
        """Event that triggers once ``item`` has been accepted."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Event that triggers with the next item."""
        return StoreGet(self)

    # -- internals -------------------------------------------------------------
    def _do_put(self, item: T) -> None:
        self.items.append(item)

    def _do_get(self) -> T:
        return self.items.popleft()

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._put_waiters and len(self.items) < self.capacity:
                put = self._put_waiters.popleft()
                self._do_put(put.item)
                put.succeed()
                progress = True
            while self._get_waiters and self.items:
                get = self._get_waiters.popleft()
                get.succeed(self._do_get())
                progress = True


class PriorityStore(Store[T]):
    """Store whose :meth:`get` yields the smallest item first."""

    def __init__(self, env: Environment, capacity: float = float("inf")):
        super().__init__(env, capacity)
        self._heap: list[T] = []

    def __len__(self) -> int:
        return len(self._heap)

    def _do_put(self, item: T) -> None:
        heapq.heappush(self._heap, item)

    def _do_get(self) -> T:
        return heapq.heappop(self._heap)

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._put_waiters and len(self._heap) < self.capacity:
                put = self._put_waiters.popleft()
                self._do_put(put.item)
                put.succeed()
                progress = True
            while self._get_waiters and self._heap:
                get = self._get_waiters.popleft()
                get.succeed(self._do_get())
                progress = True


class Channel(Store[T]):
    """Unbounded store with a non-waiting put (always succeeds immediately)."""

    def put_nowait(self, item: T) -> None:
        StorePut(self, item)

    @property
    def pending(self) -> int:
        """Number of queued items not yet consumed."""
        return len(self.items)


class ResourceRequest(Event):
    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._waiters.append(self)
        resource._dispatch()

    def release(self) -> None:
        self.resource.release(self)


class Resource:
    """Counting semaphore with FIFO granting."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: set[ResourceRequest] = set()
        self._waiters: deque[ResourceRequest] = deque()

    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self._users)

    def request(self) -> ResourceRequest:
        return ResourceRequest(self)

    def release(self, request: ResourceRequest) -> None:
        if request not in self._users:
            raise SimulationError("releasing a request that does not hold the resource")
        self._users.discard(request)
        self._dispatch()

    def _dispatch(self) -> None:
        while self._waiters and len(self._users) < self.capacity:
            req = self._waiters.popleft()
            self._users.add(req)
            req.succeed(req)
