"""A small, deterministic discrete-event simulation engine.

The engine follows the classic generator-coroutine design (as popularised by
SimPy, reimplemented here from scratch): simulation *processes* are Python
generators that ``yield`` :class:`~repro.sim.core.Event` objects and are
resumed when those events trigger.  Virtual time only advances between
events, so arbitrarily fine-grained timing (microsecond MPI overheads next to
multi-second NAS phases) costs nothing.

Public surface:

- :class:`Environment` — event queue and clock; ``env.process(gen)``,
  ``env.timeout(delay)``, ``env.run(until=...)``.
- :class:`Process` — a running coroutine; also an event (its termination).
- :class:`Event`, :class:`Timeout`, :class:`AllOf`, :class:`AnyOf`,
  :class:`Interrupt`.
- :class:`Store` / :class:`Channel` / :class:`Resource` — waitable queues.
- :class:`RngRegistry` — named deterministic random streams.
"""

from repro.sim.core import Environment, Event, Interrupt, Process, Timeout
from repro.sim.queues import Channel, PriorityStore, Resource, Store
from repro.sim.rng import RngRegistry
from repro.sim.sync import AllOf, AnyOf

__all__ = [
    "AllOf",
    "AnyOf",
    "Channel",
    "Environment",
    "Event",
    "Interrupt",
    "PriorityStore",
    "Process",
    "Resource",
    "RngRegistry",
    "Store",
    "Timeout",
]
