"""UNIT rules: bytes-vs-bits/s discipline and float time comparisons.

``units.py`` keeps byte counts (binary: kB = 1024 B) and link rates
(decimal: Mbps = 1e6 bit/s) in separate helper families.  The paper's
TCP-buffer analysis (buffer >= BDP = rate x RTT / 8) mixes both in one
formula, which is exactly where a `Mbps` value slipped into a byte slot —
or a bare magic number slipped into a rate slot — corrupts every figure
downstream.  The pass tags the helpers' return values (a lightweight,
purely syntactic inference) and checks call-site keyword positions.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.analysis.passes.base import LintPass, ModuleContext, Violation

#: helpers whose return value is a decimal bit rate (units.Rate)
_RATE_HELPERS = {
    "repro.units.bps",
    "repro.units.Kbps",
    "repro.units.Mbps",
    "repro.units.Gbps",
    "repro.units.bits_per_second",
}

#: helpers whose return value is a binary byte count (units.Size)
_SIZE_HELPERS = {"repro.units.kb", "repro.units.mb", "repro.units.parse_size"}

#: parameter names that expect a bit rate
_RATE_PARAM = re.compile(r"(^|_)(bps|rate|bandwidth|capacity|goodput)($|_)")

#: parameter names that expect a byte count
_SIZE_PARAM = re.compile(
    r"(^|_)(nbytes|bytes|sndbuf|rcvbuf|wmem|rmem|bufsize|chunk|segment)($|_)"
    r"|(^|_)n?bytes_each$"
)

#: expression spellings that denote the current simulation time
_TIME_ATTRS = {"now"}
_TIME_CALLS = {"wtime"}
_TIME_NAME = re.compile(r"(^|_)(time|now|deadline|makespan|eta)$")


class UnitSafetyPass(LintPass):
    rules = {
        "UNIT001": "bare numeric literal >= 1024 passed to a rate-typed parameter",
        "UNIT002": "rate-valued expression (units.Mbps/Gbps/...) passed to a byte-count parameter",
        "UNIT003": "float equality comparison on simulation time",
    }

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, ast.Compare):
                yield from self._check_compare(ctx, node)

    # -- call-site keyword positions -------------------------------------------
    def _check_call(self, ctx: ModuleContext, node: ast.Call) -> Iterator[Violation]:
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            name = keyword.arg
            if _RATE_PARAM.search(name):
                literal = _bare_numeric_literal(keyword.value)
                if literal is not None and literal >= 1024:
                    yield Violation(
                        ctx.path,
                        keyword.value.lineno,
                        "UNIT001",
                        f"raw literal {literal!r} passed as rate parameter `{name}`",
                        "spell the unit: units.Mbps(...) / units.Gbps(...)",
                    )
                tag = _value_tag(ctx, keyword.value)
                if tag == "size":
                    yield Violation(
                        ctx.path,
                        keyword.value.lineno,
                        "UNIT002",
                        f"byte-count expression passed as rate parameter `{name}`",
                        "rates are bits/s; convert with units.bits_per_second(...)",
                    )
            elif _SIZE_PARAM.search(name):
                tag = _value_tag(ctx, keyword.value)
                if tag == "rate":
                    yield Violation(
                        ctx.path,
                        keyword.value.lineno,
                        "UNIT002",
                        f"rate expression (bits/s) passed as byte-count parameter `{name}`",
                        "byte counts use units.kb/mb or plain ints; rates never are byte counts",
                    )

    # -- float equality on simulation time -------------------------------------
    def _check_compare(self, ctx: ModuleContext, node: ast.Compare) -> Iterator[Violation]:
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        operands = [node.left, *node.comparators]
        if any(_is_time_expression(expr) for expr in operands):
            # integer-literal comparisons against 0 are fine (t == 0 start check)
            others = [e for e in operands if not _is_time_expression(e)]
            if all(
                isinstance(e, ast.Constant) and e.value == 0 for e in others
            ) and others:
                return
            yield Violation(
                ctx.path,
                node.lineno,
                "UNIT003",
                "float `==`/`!=` on simulation time",
                "use math.isclose(...) or compare integer ticks",
            )


def _bare_numeric_literal(node: ast.expr) -> Optional[float]:
    """The numeric value if ``node`` is a plain or negated numeric constant."""
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return None
        return float(node.value)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _bare_numeric_literal(node.operand)
        return -inner if inner is not None else None
    return None


def _value_tag(ctx: ModuleContext, node: ast.expr) -> Optional[str]:
    """'rate' / 'size' when the expression's unit is syntactically known."""
    if isinstance(node, ast.Call):
        name = ctx.resolve(node.func)
        if name in _RATE_HELPERS or name.rsplit(".", 1)[-1] in ("Kbps", "Mbps", "Gbps"):
            return "rate"
        if name in _SIZE_HELPERS:
            return "size"
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Mult, ast.Add, ast.Sub)):
        left = _value_tag(ctx, node.left)
        right = _value_tag(ctx, node.right)
        return left or right
    return None


def _is_time_expression(node: ast.expr) -> bool:
    if isinstance(node, ast.Attribute) and node.attr in _TIME_ATTRS:
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _TIME_CALLS
    ):
        return True
    if isinstance(node, ast.Name) and _TIME_NAME.search(node.id):
        return True
    if isinstance(node, ast.Attribute) and _TIME_NAME.search(node.attr):
        return True
    return False
