"""DIM rules: unit-dimension conflicts found by abstract interpretation.

Built on :mod:`repro.analysis.dataflow`.  Where the UNIT rules of PR 1
pattern-match single call sites, these rules *propagate* dimensions
through assignments and arithmetic, so ``t = usec(58); total = t + size``
is caught even though neither statement is suspicious on its own.

The paper's tables mix µs RTTs, kB thresholds and Mbps/Gbps rates; the
planned integer-µs event-core rewrite (ROADMAP) turns every silent
seconds↔µs or bytes↔bits mix into corrupted goldens.  These rules are the
pre-flight check for that migration.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator

from repro.analysis.dataflow import DimFinding, DimInterpreter
from repro.analysis.passes.base import LintPass, ModuleContext, Violation

#: finding kind (from the interpreter) -> rule id
_KIND_RULES: Dict[str, str] = {
    "mix": "DIM001",
    "time-scale": "DIM002",
    "data-scale": "DIM003",
    "ambiguous-return": "DIM004",
    "negative-delay": "DIM005",
}

_HINTS: Dict[str, str] = {
    "DIM001": "convert one operand so both sides share a dimension",
    "DIM002": "convert with units.usec()/units.to_usec() before combining",
    "DIM003": "convert with *8 (bytes->bits) or units.bytes_per_second() first",
    "DIM004": "pick one dimension per function; convert at the call sites",
    "DIM005": "delays must be >= 0; Environment._schedule raises ValueError",
}


class DimDataflowPass(LintPass):
    rules = {
        "DIM001": "arithmetic mixes two unrelated dimensions (e.g. seconds + bytes)",
        "DIM002": "seconds and microseconds mixed without an explicit conversion",
        "DIM003": "bytes and bits (or bits/s and bytes/s) mixed without *8 conversion",
        "DIM004": "function returns different dimensions on different paths",
        "DIM005": "literal negative delay passed to timeout()/schedule()",
    }

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        try:
            findings = DimInterpreter(ctx).analyze()
        except RecursionError:  # pathological nesting: skip, don't crash the driver
            return
        for finding in findings:
            yield self._violation(ctx, finding)

    def _violation(self, ctx: ModuleContext, finding: DimFinding) -> Violation:
        rule = _KIND_RULES[finding.kind]
        return Violation(
            ctx.path,
            finding.line,
            rule,
            finding.message,
            _HINTS[rule],
        )


__all__ = ["DimDataflowPass"]
