"""Lint pass registry: one module per rule family."""

from __future__ import annotations

from repro.analysis.passes.base import LintPass, ModuleContext, Violation
from repro.analysis.passes.det import DeterminismPass
from repro.analysis.passes.sim import SimContractPass
from repro.analysis.passes.unit import UnitSafetyPass

#: all pass classes, in reporting order
ALL_PASSES: tuple[type[LintPass], ...] = (
    DeterminismPass,
    UnitSafetyPass,
    SimContractPass,
)

#: rule id -> one-line description, the complete catalog
RULE_CATALOG: dict[str, str] = {
    rule: text for cls in ALL_PASSES for rule, text in cls.rules.items()
}

__all__ = [
    "ALL_PASSES",
    "RULE_CATALOG",
    "DeterminismPass",
    "LintPass",
    "ModuleContext",
    "SimContractPass",
    "UnitSafetyPass",
    "Violation",
]
