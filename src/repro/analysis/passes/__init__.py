"""Lint pass registry: one module per rule family."""

from __future__ import annotations

from repro.analysis.passes.base import LintPass, ModuleContext, Violation
from repro.analysis.passes.det import DeterminismPass
from repro.analysis.passes.dim import DimDataflowPass
from repro.analysis.passes.sched import SchedulePass
from repro.analysis.passes.sim import SimContractPass
from repro.analysis.passes.unit import UnitSafetyPass

#: all pass classes, in reporting order
ALL_PASSES: tuple[type[LintPass], ...] = (
    DeterminismPass,
    UnitSafetyPass,
    SimContractPass,
    DimDataflowPass,
    SchedulePass,
)

#: rule id -> one-line description, the complete pass catalog (the driver
#: adds its own NOQA rule; see ``repro.analysis.linter.RULE_CATALOG``)
RULE_CATALOG: dict[str, str] = {
    rule: text for cls in ALL_PASSES for rule, text in cls.rules.items()
}

__all__ = [
    "ALL_PASSES",
    "RULE_CATALOG",
    "DeterminismPass",
    "DimDataflowPass",
    "LintPass",
    "ModuleContext",
    "SchedulePass",
    "SimContractPass",
    "UnitSafetyPass",
    "Violation",
]
