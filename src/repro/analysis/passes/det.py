"""DET rules: sources of run-to-run nondeterminism.

The simulator's results are only meaningful if two runs with the same seed
produce bit-identical event schedules (see ``sim/core.py``).  Anything that
reads wall-clock time, OS entropy, or an unseeded/unregistered RNG breaks
that contract silently; so does iterating a ``set`` while scheduling events,
because set order depends on object ids.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.passes.base import LintPass, ModuleContext, Violation

#: wall-clock reads (virtual time lives on ``env.now``)
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
}

#: calendar-time reads
_CALENDAR = {
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "datetime.now",
    "datetime.utcnow",
    "date.today",
}

#: OS entropy sources
_ENTROPY = {"os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4"}

#: numpy RNG constructors / global-state mutation that bypass RngRegistry
_NUMPY_RNG = {
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.Generator",
    "numpy.random.seed",
    "numpy.random.PCG64",
    "numpy.random.Philox",
    "numpy.random.SFC64",
    "numpy.random.MT19937",
}

#: method names whose invocation inside a loop body means the loop is
#: feeding the event queue
_SCHEDULING_ATTRS = {"timeout", "process", "succeed", "fail", "_schedule", "interrupt"}


class DeterminismPass(LintPass):
    rules = {
        "DET001": "call into the stdlib `random` module (unseeded global state)",
        "DET002": "wall-clock read (time.time/perf_counter/monotonic) in simulation code",
        "DET003": "calendar-time read (datetime.now/date.today) in simulation code",
        "DET004": "OS entropy source (os.urandom, uuid.uuid4, secrets.*)",
        "DET005": "numpy RNG constructed outside sim/rng.py (bypasses RngRegistry)",
        "DET006": "iteration over a set while scheduling events (order is id-dependent)",
    }

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, ast.For):
                yield from self._check_loop(ctx, node)

    # -- calls ---------------------------------------------------------------
    def _check_call(self, ctx: ModuleContext, node: ast.Call) -> Iterator[Violation]:
        name = ctx.resolve(node.func)
        if not name:
            return
        if name.startswith("random.") or name == "random.random":
            yield Violation(
                ctx.path,
                node.lineno,
                "DET001",
                f"`{name}()` draws from the process-global RNG",
                "draw from a named RngRegistry stream instead",
            )
        elif name in _WALL_CLOCK:
            yield Violation(
                ctx.path,
                node.lineno,
                "DET002",
                f"`{name}()` reads the wall clock",
                "simulation time is `env.now` / `ctx.wtime()`",
            )
        elif name in _CALENDAR:
            yield Violation(
                ctx.path,
                node.lineno,
                "DET003",
                f"`{name}()` reads calendar time",
                "pass timestamps in explicitly if one is needed",
            )
        elif name in _ENTROPY or name.startswith("secrets."):
            yield Violation(
                ctx.path,
                node.lineno,
                "DET004",
                f"`{name}()` reads OS entropy",
                "derive ids/keys from the experiment seed",
            )
        elif name in _NUMPY_RNG or name.startswith("numpy.random."):
            yield Violation(
                ctx.path,
                node.lineno,
                "DET005",
                f"`{name}(...)` constructs an RNG outside RngRegistry",
                "use RngRegistry(seed).stream(name) so streams stay named and stable",
            )

    # -- set iteration feeding the scheduler ----------------------------------
    def _check_loop(self, ctx: ModuleContext, node: ast.For) -> Iterator[Violation]:
        if not _is_set_expression(ctx, node.iter):
            return
        if not _body_schedules(node):
            return
        yield Violation(
            ctx.path,
            node.lineno,
            "DET006",
            "loop over a set schedules events; set order depends on object ids",
            "iterate a sorted() view or a list kept in insertion order",
        )


def _is_set_expression(ctx: ModuleContext, node: ast.expr) -> bool:
    """Syntactically a set: a literal, a comprehension, or set()/frozenset()."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return ctx.resolve(node.func) in ("set", "frozenset")
    return False


def _body_schedules(loop: ast.For) -> bool:
    for stmt in loop.body:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SCHEDULING_ATTRS
            ):
                return True
    return False
