"""SIM rules: misuse of the discrete-event engine.

These target the three engine-contract mistakes that do not crash but
corrupt results: a process `return`-ing a pending event instead of
yielding it (the event is silently dropped), triggering the same event
twice in straight-line code (raises at runtime, but only on the path
that hits it), and bare `except:` handlers that swallow
:class:`repro.sim.core.Interrupt`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.passes.base import (
    LintPass,
    ModuleContext,
    Violation,
    functions_of,
    is_generator,
)

#: factory methods whose result is a pending Event
_EVENT_FACTORIES = {"timeout", "event", "process"}
_EVENT_CLASSES = {"Event", "Timeout", "Process", "Initialize", "AllOf", "AnyOf"}
_TRIGGER_METHODS = {"succeed", "fail"}


class SimContractPass(LintPass):
    rules = {
        "SIM001": "generator process returns a pending Event instead of yielding it",
        "SIM002": "event triggered twice in straight-line code",
        "SIM003": "bare `except:` swallows Interrupt",
    }

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for func in functions_of(ctx.tree):
            if is_generator(func):
                yield from self._check_returns(ctx, func)
            yield from self._check_double_trigger(ctx, func)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield Violation(
                    ctx.path,
                    node.lineno,
                    "SIM003",
                    "bare `except:` also catches Interrupt (and KeyboardInterrupt)",
                    "catch the specific exception, or re-raise Interrupt explicitly",
                )

    # -- SIM001 -----------------------------------------------------------------
    def _check_returns(self, ctx: ModuleContext, func) -> Iterator[Violation]:
        for node in ast.walk(func):
            if not (isinstance(node, ast.Return) and isinstance(node.value, ast.Call)):
                continue
            call = node.value
            pending = False
            if isinstance(call.func, ast.Attribute) and call.func.attr in _EVENT_FACTORIES:
                pending = True
            elif isinstance(call.func, ast.Name) and call.func.id in _EVENT_CLASSES:
                pending = True
            if pending:
                yield Violation(
                    ctx.path,
                    node.lineno,
                    "SIM001",
                    "process returns a pending Event; the caller's `yield from` gets "
                    "the Event object, not its value",
                    "yield the event (or `return (yield event)`)",
                )

    # -- SIM002 -----------------------------------------------------------------
    def _check_double_trigger(self, ctx: ModuleContext, func) -> Iterator[Violation]:
        """Two .succeed()/.fail() on the same target in one statement list.

        Only straight-line siblings are flagged — an if/else that triggers
        on both branches is the normal pattern and stays silent.
        """
        for body in _statement_lists(func):
            seen: dict[str, int] = {}
            for stmt in body:
                if not isinstance(stmt, ast.Expr):
                    continue
                call = stmt.value
                if not (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)
                    and call.func.attr in _TRIGGER_METHODS
                ):
                    continue
                try:
                    target = ast.unparse(call.func.value)
                except Exception:  # pragma: no cover - unparse is total on exprs
                    continue
                if target in seen:
                    yield Violation(
                        ctx.path,
                        stmt.lineno,
                        "SIM002",
                        f"`{target}` is triggered twice (first at line {seen[target]}); "
                        "the second trigger raises SimulationError at runtime",
                        "an Event can only be succeeded/failed once",
                    )
                else:
                    seen[target] = stmt.lineno
        return


def _statement_lists(func) -> Iterator[list[ast.stmt]]:
    """Every straight-line statement list in ``func`` (bodies of the function,
    loops, with-blocks, if/else branches — each branch separately)."""
    for node in ast.walk(func):
        for field in ("body", "orelse", "finalbody"):
            body = getattr(node, field, None)
            if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
                yield body
