"""Shared infrastructure for lint passes.

A pass receives a fully-parsed :class:`ModuleContext` — the AST, the raw
source lines, the resolved import aliases and the per-line pragma table —
and yields :class:`Violation` records.  Pragma suppression is applied by
the driver, not by the passes, so a pass never needs to know about
``# lint: disable=...`` comments.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator

#: ``# repro: noqa=<RULE>`` (canonical) or the legacy spelling
#: ``# lint: disable=<RULE>``; both accept comma lists (``=<RULE>,<RULE>``)
_PRAGMA = re.compile(r"#\s*(?:repro:\s*noqa|lint:\s*disable)=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Violation:
    """One rule hit: where, what, and how to fix it."""

    path: str
    line: int
    rule: str
    message: str
    hint: str = ""
    #: stripped source text of the violating line; excluded from equality so
    #: dedup/sorting ignore it.  Filled by the driver, used for baseline
    #: matching (entries survive line-number drift) and SARIF snippets.
    snippet: str = field(default="", compare=False)

    def render(self) -> str:
        text = f"{self.path}:{self.line}: {self.rule} {self.message}"
        if self.hint:
            text += f"  [hint: {self.hint}]"
        return text


@dataclass
class ModuleContext:
    """Everything a pass needs to know about one source module."""

    path: str
    source: str
    tree: ast.Module
    module_name: str = ""
    #: line number -> set of rule ids disabled on that line
    pragmas: dict[int, frozenset[str]] = field(default_factory=dict)
    #: (start, end, rules, anchor): function-scope pragmas — a pragma on a
    #: ``def`` or decorator line suppresses its rules for the whole body
    pragma_ranges: list[tuple[int, int, frozenset[str], int]] = field(default_factory=list)
    #: local alias -> fully dotted module/object path ("np" -> "numpy")
    aliases: dict[str, str] = field(default_factory=dict)

    @classmethod
    def parse(cls, source: str, path: str = "<string>", module_name: str = "") -> "ModuleContext":
        tree = ast.parse(source, filename=path)
        ctx = cls(path=path, source=source, tree=tree, module_name=module_name)
        ctx.pragmas = _collect_pragmas(source)
        ctx.pragma_ranges = _collect_pragma_ranges(tree, ctx.pragmas)
        ctx.aliases = _collect_aliases(tree)
        return ctx

    # -- name resolution -------------------------------------------------------
    def resolve(self, node: ast.AST) -> str:
        """Dotted path of a Name/Attribute chain with import aliases expanded.

        ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
        when the module did ``import numpy as np``; unresolvable heads
        (locals, attributes of objects) keep their surface spelling.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(self.aliases.get(node.id, node.id))
        else:
            return ""
        return ".".join(reversed(parts))

    def suppressed(self, line: int, rule: str) -> bool:
        return self.suppressor(line, rule) is not None

    def suppressor(self, line: int, rule: str) -> "int | None":
        """Anchor line of the pragma suppressing ``rule`` at ``line``, if any.

        The anchor is where the pragma comment lives — the violation line
        itself for same-line pragmas, a ``def``/decorator line for
        function-scope pragmas.  The driver uses it to detect pragmas that
        no longer suppress anything (NOQA001).
        """
        if rule in self.pragmas.get(line, frozenset()):
            return line
        for start, end, rules, anchor in self.pragma_ranges:
            if start <= line <= end and rule in rules:
                return anchor
        return None


def _collect_pragmas(source: str) -> dict[int, frozenset[str]]:
    pragmas: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(text)
        if match:
            rules = frozenset(
                part.strip().upper() for part in match.group(1).split(",") if part.strip()
            )
            if rules:
                pragmas[lineno] = rules
    return pragmas


def _collect_pragma_ranges(
    tree: ast.Module, pragmas: dict[int, frozenset[str]]
) -> list[tuple[int, int, frozenset[str], int]]:
    """Widen pragmas on ``def``/decorator lines to cover the whole function."""
    ranges: list[tuple[int, int, frozenset[str], int]] = []
    for func in functions_of(tree):
        header_lines = {func.lineno}
        header_lines.update(dec.lineno for dec in func.decorator_list)
        end = func.end_lineno or func.lineno
        for anchor in sorted(header_lines):
            rules = pragmas.get(anchor)
            if rules:
                ranges.append((min(header_lines), end, rules, anchor))
    return ranges


def _collect_aliases(tree: ast.Module) -> dict[str, str]:
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


class LintPass:
    """Base class: a family of related rules sharing one AST walk."""

    #: rule id -> one-line description (the rule catalog)
    rules: dict[str, str] = {}

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        raise NotImplementedError


def is_generator(func: "ast.FunctionDef | ast.AsyncFunctionDef") -> bool:
    """True when ``func`` contains a yield that belongs to it (not to a
    nested function)."""
    for node in ast.walk(func):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            owner = _owning_function(func, node)
            if owner is func:
                return True
    return False


def _owning_function(root: ast.AST, target: ast.AST):
    """Innermost function of ``root``'s tree containing ``target``."""
    owner = None
    stack = [(root, root if isinstance(root, (ast.FunctionDef, ast.AsyncFunctionDef)) else None)]
    while stack:
        node, current = stack.pop()
        if node is target:
            return current
        for child in ast.iter_child_nodes(node):
            child_owner = (
                child
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                else current
            )
            stack.append((child, child_owner))
    return owner


def functions_of(tree: ast.Module) -> Iterator["ast.FunctionDef | ast.AsyncFunctionDef"]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
