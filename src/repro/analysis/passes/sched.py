"""SCHED rules: dependence on same-timestamp heap tie-breaking.

The event queue orders entries ``(time, priority, seq, event)``; two events
at the same timestamp with the same priority fire in *insertion* order
(``seq``).  Code is schedule-sensitive when its observable behaviour
changes if that tie-break changes — exactly what the incremental
max-min allocator rewrite (ROADMAP) will perturb.  The runtime
counterpart to these static rules is ``repro sanitize --perturb``
(:mod:`repro.analysis.perturb`), which re-runs a scenario under permuted
tie-breaking and checks byte-identity.

* SCHED001 — chains of zero-delay ``timeout(0)`` / ``schedule(..., 0)``
  calls with no explicit priority: which chain runs first is decided by
  ``seq`` alone.
* SCHED002 — iterating a *set-typed variable* (tracked by dataflow, so a
  ``set()`` built three statements earlier is caught) while scheduling
  events or feeding a trace hasher.  Complements DET006, which only
  matches literal set expressions in the ``for`` header.
* SCHED003 — hand-built priority-queue entries ``(time, payload)`` with no
  sequence tie-breaker: equal-time entries compare on the payload (a
  crash or an id-dependent order).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional

from repro.analysis.dataflow import ForwardAnalysis, functions_of, target_key
from repro.analysis.passes.base import LintPass, ModuleContext, Violation
from repro.analysis.passes.det import _SCHEDULING_ATTRS

#: set-returning builtins / methods
_SET_CALLS = frozenset({"set", "frozenset"})
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)
#: element spelling that marks a queue entry as carrying its own tie-breaker
_SEQ_LIKE = re.compile(r"(seq|sequence|counter|count|uid|serial|order|tick)")
#: first-element spelling that marks a queue entry as time-ordered
_TIME_LIKE = re.compile(r"(^|_)(time|now|when|deadline|at|t)(_|$)|\bnow\b")
#: receiver spelling that marks a ``.update(...)`` call as a trace hasher
_HASHER_LIKE = re.compile(r"(hash|hasher|digest|trace)")


class _SetTracker(ForwardAnalysis):
    """Dataflow over one function: which variables hold sets.

    The abstract value is the string ``"set"`` or unknown.  Set-ness
    survives assignment, ``|``/``&``/``-`` on two sets, the non-mutating
    set methods, and conditional joins where both branches agree;
    ``sorted(s)`` and ``list(s)`` correctly drop it.
    """

    def __init__(self, ctx: ModuleContext, pass_: "SchedulePass"):
        super().__init__(ctx)
        self.pass_ = pass_

    def _eval_Set(self, node: ast.Set, env: Dict[str, Optional[str]]) -> Optional[str]:
        for elt in node.elts:
            self.eval(elt, env)
        return "set"

    def _eval_SetComp(self, node: ast.SetComp, env: Dict[str, Optional[str]]) -> Optional[str]:
        return "set"

    def _eval_Call(self, node: ast.Call, env: Dict[str, Optional[str]]) -> Optional[str]:
        for arg in node.args:
            self.eval(arg, env)
        for kw in node.keywords:
            self.eval(kw.value, env)
        if self.ctx.resolve(node.func) in _SET_CALLS:
            return "set"
        if isinstance(node.func, ast.Attribute):
            receiver = self.eval(node.func.value, env)
            if receiver == "set" and node.func.attr in _SET_METHODS:
                return "set"
        return None

    def _eval_Name(self, node: ast.Name, env: Dict[str, Optional[str]]) -> Optional[str]:
        return env.get(node.id)

    def _eval_Attribute(self, node: ast.Attribute, env: Dict[str, Optional[str]]) -> Optional[str]:
        key = target_key(node)
        if key is not None:
            return env.get(key)
        self.eval(node.value, env)
        return None

    def _eval_BinOp(self, node: ast.BinOp, env: Dict[str, Optional[str]]) -> Optional[str]:
        left = self.eval(node.left, env)
        right = self.eval(node.right, env)
        if (
            isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor))
            and left == "set"
            and right == "set"
        ):
            return "set"
        return None

    def on_for(
        self, stmt: "ast.For | ast.AsyncFor", iter_value: Optional[str],
        env: Dict[str, Optional[str]],
    ) -> None:
        # Literal sets in the header are DET006's beat; only tracked
        # *variables* (the cases DET006 cannot see) are reported here.
        if iter_value != "set" or not isinstance(stmt.iter, (ast.Name, ast.Attribute)):
            return
        if _body_feeds_schedule_or_hash(stmt):
            self.pass_.sched002_lines.append(stmt.lineno)


def _body_feeds_schedule_or_hash(loop: "ast.For | ast.AsyncFor") -> bool:
    for stmt in loop.body:
        for node in ast.walk(stmt):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            attr = node.func.attr
            if attr in _SCHEDULING_ATTRS or attr == "update_text":
                return True
            if attr == "update":
                receiver = node.func.value
                spelling = ""
                if isinstance(receiver, ast.Name):
                    spelling = receiver.id
                elif isinstance(receiver, ast.Attribute):
                    spelling = receiver.attr
                if _HASHER_LIKE.search(spelling.lower()):
                    return True
    return False


class SchedulePass(LintPass):
    rules = {
        "SCHED001": "zero-delay schedule chain relies on insertion-order tie-breaking",
        "SCHED002": "iteration over a set-typed variable feeds the scheduler or a trace hash",
        "SCHED003": "heap entry `(time, payload)` lacks a sequence tie-breaker",
    }

    def __init__(self) -> None:
        self.sched002_lines: List[int] = []

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        self.sched002_lines = []
        tracker = _SetTracker(ctx, self)
        module_env = tracker.analyze_module_body()
        for func in functions_of(ctx.tree):
            tracker.analyze_function(func, base_env=module_env)
            yield from self._check_zero_delay_chain(ctx, func)
        for line in sorted(set(self.sched002_lines)):
            yield Violation(
                ctx.path,
                line,
                "SCHED002",
                "loop over a set-typed variable schedules events or feeds a trace hash",
                "iterate sorted(...) or keep the collection as an insertion-ordered list",
            )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_heap_entry(ctx, node)

    # -- SCHED001 -------------------------------------------------------------
    def _check_zero_delay_chain(
        self, ctx: ModuleContext, func: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> Iterator[Violation]:
        plain_hits: List[int] = []
        looped_hits: List[int] = []
        for node in ast.walk(func):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not func:
                continue
            if isinstance(node, ast.Call) and _is_zero_delay_schedule(node):
                if _inside_loop(func, node):
                    looped_hits.append(node.lineno)
                else:
                    plain_hits.append(node.lineno)
        if looped_hits:
            yield Violation(
                ctx.path,
                min(looped_hits),
                "SCHED001",
                "zero-delay schedule inside a loop: same-timestamp firing order "
                "is decided by heap insertion order alone",
                "pass an explicit priority, or a strictly positive delay",
            )
        elif len(plain_hits) >= 2:
            yield Violation(
                ctx.path,
                min(plain_hits),
                "SCHED001",
                f"{len(plain_hits)} zero-delay schedules in one function "
                f"(lines {', '.join(map(str, sorted(plain_hits)))}) race on "
                "insertion-order tie-breaking",
                "pass an explicit priority, or a strictly positive delay",
            )

    # -- SCHED003 -------------------------------------------------------------
    def _check_heap_entry(self, ctx: ModuleContext, node: ast.Call) -> Iterator[Violation]:
        name = ctx.resolve(node.func)
        if name not in ("heapq.heappush", "heapq.heappushpop", "heapq.heapreplace"):
            return
        if len(node.args) < 2 or not isinstance(node.args[1], ast.Tuple):
            return
        entry = node.args[1]
        if len(entry.elts) < 2:
            return
        if not _looks_time_like(entry.elts[0]):
            return
        if any(_carries_sequence(elt) for elt in entry.elts[1:]):
            return
        yield Violation(
            ctx.path,
            node.lineno,
            "SCHED003",
            "heap entry orders by time but has no sequence tie-breaker; "
            "equal-time entries compare on the payload",
            "insert a monotonically increasing counter between time and payload",
        )


def _is_zero_delay_schedule(node: ast.Call) -> bool:
    """``.timeout(0)`` or ``schedule(..., 0)`` with no explicit priority."""
    if not isinstance(node.func, ast.Attribute):
        return False
    attr = node.func.attr
    if attr == "timeout":
        delay = node.args[0] if node.args else _keyword(node, "delay")
    elif attr == "schedule":
        if any(kw.arg == "priority" for kw in node.keywords):
            return False
        delay = node.args[1] if len(node.args) > 1 else _keyword(node, "delay")
    elif attr == "_schedule":
        return False  # signature carries an explicit priority argument
    else:
        return False
    return (
        delay is not None
        and isinstance(delay, ast.Constant)
        and isinstance(delay.value, (int, float))
        and not isinstance(delay.value, bool)
        and delay.value == 0
    )


def _keyword(node: ast.Call, name: str) -> Optional[ast.expr]:
    for kw in node.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _inside_loop(func: ast.AST, target: ast.AST) -> bool:
    """True when ``target`` sits inside a for/while loop of ``func``."""
    found = [False]

    def visit(node: ast.AST, in_loop: bool) -> None:
        if node is target:
            found[0] = found[0] or in_loop
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)) and child is not func:
                continue
            visit(child, in_loop or isinstance(node, (ast.For, ast.AsyncFor, ast.While)))

    visit(func, False)
    return found[0]


def _looks_time_like(node: ast.expr) -> bool:
    for sub in ast.walk(node):
        spelling = ""
        if isinstance(sub, ast.Name):
            spelling = sub.id
        elif isinstance(sub, ast.Attribute):
            spelling = sub.attr
        if spelling and _TIME_LIKE.search(spelling.lower()):
            return True
    return False


def _carries_sequence(node: ast.expr) -> bool:
    for sub in ast.walk(node):
        spelling = ""
        if isinstance(sub, ast.Name):
            spelling = sub.id
        elif isinstance(sub, ast.Attribute):
            spelling = sub.attr
        if spelling and _SEQ_LIKE.search(spelling.strip("_").lower()):
            return True
    return False


__all__ = ["SchedulePass"]
