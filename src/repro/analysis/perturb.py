"""Schedule-perturbation sanitizer: adversarial same-timestamp reordering.

The event queue breaks ``(time, priority)`` ties by insertion order
(``seq``).  Code flagged by the SCHED rules *might* depend on that
tie-break; this module settles the question empirically.  A scenario is
re-run with :func:`repro.sim.core.tie_ranker` installing a seeded,
deterministic permutation of the tie-break key, so same-timestamp events
fire in an adversarially different (but reproducible) order.  The run
must still produce

* a byte-identical rendered result, and
* an identical *schedule projection* digest.

The projection folds, per timestamp, the sorted multiset of completed
public ``Process`` events (names not starting with ``_``).  Engine-internal
helper processes — e.g. ``Protocol._at``'s ``_deliver`` — are excluded
because *how many* of them exist at a timestamp legitimately depends on
execution order (a message delivered by helper A may let helper B be
spawned one event earlier or later), while the observable computation must
not.  The raw order-sensitive :class:`EventTraceHasher` digest is expected
to differ under perturbation; byte-identical *results* with a stable
projection are the contract the goldens rely on.

Exposed as ``repro sanitize --perturb``; the CI smoke runs it on ``fig7``
and ``faults_pingpong`` and diffs the emitted result text against the
tracked goldens.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.errors import ExperimentError
from repro.analysis.sanitizer import _resolve_runner
from repro.sim.core import tie_ranker, trace_capture

__all__ = [
    "PerturbReport",
    "PerturbRun",
    "ScheduleProjection",
    "perturbation_ranker",
    "perturb",
]

_MASK64 = 0xFFFFFFFFFFFFFFFF


class _Lcg:
    """Deterministic 64-bit LCG (Knuth MMIX constants), host-independent."""

    def __init__(self, seed: int):
        self.state = ((seed ^ 0x9E3779B97F4A7C15) & _MASK64) or 1

    def next32(self) -> int:
        self.state = (self.state * 6364136223846793005 + 1442695040888963407) & _MASK64
        return self.state >> 32


def perturbation_ranker(seed: int) -> Callable[[int], int]:
    """A tie-break key permutation for :func:`repro.sim.core.tie_ranker`.

    Each scheduled event gets a pseudo-random 32-bit rank in the high
    word, so same-``(time, priority)`` events pop in seeded-random order;
    the original sequence number stays in the low word as a final
    deterministic tie-break, keeping the whole run reproducible.
    """
    lcg = _Lcg(seed)

    def rank(seq: int) -> int:
        return (lcg.next32() << 32) | (seq & 0xFFFFFFFF)

    return rank


class ScheduleProjection:
    """Order-insensitive-within-timestamp digest of the public schedule.

    Installable as a trace sink (same signature as ``EventTraceHasher``).
    Events are grouped by timestamp; each group contributes its sorted
    ``{time!r}|{name}`` lines to a running blake2b digest, so reordering
    *within* a timestamp cannot change the digest but dropping, adding or
    time-shifting a public process completion does.
    """

    def __init__(self) -> None:
        self._hash = hashlib.blake2b(digest_size=16)
        self._group_time: Optional[float] = None
        self._group: List[str] = []
        #: public process completions folded in
        self.events = 0

    def __call__(self, time: float, priority: int, seq: int, event: object) -> None:
        if type(event).__name__ != "Process":
            return
        name = getattr(event, "name", "") or ""
        if not name or name.startswith("_"):
            return
        # Exact inequality is correct here: grouping is by *identical* heap
        # keys (same-timestamp ties), not by approximate simulation time.
        if self._group_time is not None and time != self._group_time:  # repro: noqa=UNIT003
            self._flush()
        self._group_time = time
        self._group.append(f"{time!r}|{name}\n")
        self.events += 1

    def _flush(self) -> None:
        for line in sorted(self._group):
            self._hash.update(line.encode("utf-8"))
        self._group.clear()

    def hexdigest(self) -> str:
        self._flush()
        return self._hash.hexdigest()


@dataclass
class PerturbRun:
    """One perturbed re-run."""

    seed: int
    projection: str
    events: int
    result_identical: bool

    @property
    def passed(self) -> bool:
        return self.result_identical


@dataclass
class PerturbReport:
    """Outcome of a perturbation-sanitizer session."""

    experiment_id: str
    fast: bool
    baseline_projection: str = ""
    baseline_events: int = 0
    result_text: str = ""
    #: when False, only rendered-result byte-identity is required; the
    #: schedule projection is reported but not gating.  For experiments
    #: whose *timing tail* legitimately depends on same-timestamp order
    #: (table6/table7's merge phase: whether a recv posted at the same
    #: instant an eager envelope arrives beats it decides an unexpected-
    #: queue copy) while every rendered number stays byte-stable.
    require_projection: bool = True
    runs: List[PerturbRun] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(
            run.result_identical
            and (
                not self.require_projection
                or run.projection == self.baseline_projection
            )
            for run in self.runs
        )

    def render(self) -> str:
        lines = [
            f"perturb {self.experiment_id} (fast={self.fast}): "
            f"baseline projection {self.baseline_projection} "
            f"({self.baseline_events} public events)"
        ]
        for run in self.runs:
            schedule_ok = run.projection == self.baseline_projection
            gating_ok = run.result_identical and (
                schedule_ok or not self.require_projection
            )
            verdict = "ok" if gating_ok else "DIVERGED"
            detail = []
            if not schedule_ok:
                detail.append(
                    f"projection {run.projection}"
                    + ("" if self.require_projection else " (not gating)")
                )
            if not run.result_identical:
                detail.append("result text differs")
            suffix = f" ({'; '.join(detail)})" if detail else ""
            lines.append(
                f"  seed {run.seed}: {run.events} public events, {verdict}{suffix}"
            )
        contract = (
            "results byte-identical under adversarial tie-breaking"
            if not self.require_projection
            else "results byte-identical under adversarial tie-breaking, "
            "schedule projection stable"
        )
        lines.append(
            f"PASS (schedule-insensitive: {contract})"
            if self.passed
            else "FAIL (behaviour depends on same-timestamp event ordering)"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "experiment_id": self.experiment_id,
            "fast": self.fast,
            "baseline_projection": self.baseline_projection,
            "baseline_events": self.baseline_events,
            "require_projection": self.require_projection,
            "passed": self.passed,
            "runs": [
                {
                    "seed": run.seed,
                    "projection": run.projection,
                    "events": run.events,
                    "result_identical": run.result_identical,
                }
                for run in self.runs
            ],
        }


def _run_projected(
    runner: Callable, fast: bool, ranker: Optional[Callable[[int], int]]
) -> "tuple[str, int, str]":
    # A warm experiment memo (table6/table7's shared ray2mesh runs) would
    # satisfy the perturbed run without replaying the simulation, leaving an
    # empty projection that "diverges" from the cold baseline.  Every
    # projected run starts cold so the perturbation actually executes.
    from repro.experiments.registry import clear_memos

    clear_memos()
    projection = ScheduleProjection()
    with trace_capture(hasher=projection), tie_ranker(ranker):
        result = runner(fast=fast)
    text = getattr(result, "text", repr(result))
    return projection.hexdigest(), projection.events, text


def perturb(
    experiment: "str | Callable",
    fast: bool = True,
    seeds: Sequence[int] = (1, 2, 3),
    require_projection: bool = True,
) -> PerturbReport:
    """Run ``experiment`` unperturbed, then once per seed with permuted
    same-timestamp ordering; compare projections and rendered results.

    ``require_projection=False`` relaxes the gate to rendered-result
    byte-identity only (see :attr:`PerturbReport.require_projection`).
    """
    if not seeds:
        raise ExperimentError("perturb needs at least one seed")
    experiment_id, runner = _resolve_runner(experiment)
    report = PerturbReport(
        experiment_id=experiment_id, fast=fast, require_projection=require_projection
    )
    report.baseline_projection, report.baseline_events, report.result_text = (
        _run_projected(runner, fast, None)
    )
    for seed in seeds:
        projection, events, text = _run_projected(
            runner, fast, perturbation_ranker(seed)
        )
        report.runs.append(
            PerturbRun(
                seed=seed,
                projection=projection,
                events=events,
                result_identical=(text == report.result_text),
            )
        )
    return report
