"""The suppression baseline: accepted findings CI will not fail on.

``analysis/baseline.json`` records violations that are understood and
deliberately tolerated, each with a mandatory human-written justification.
The pytest gate and ``repro lint`` subtract baseline-matched findings, so
CI fails only on *new* violations — and on baseline entries that no longer
match anything (a stale entry means the finding was fixed: delete it).

Entries match on ``(path, rule, snippet)``, where ``path`` is canonical
(relative to the ``repro`` package) and ``snippet`` is the stripped source
text of the violating line.  Matching on text rather than line numbers
keeps the baseline stable across unrelated edits; the recorded line is
advisory.  The production tree aims for an *empty* entry list — targeted
``# repro: noqa=<RULE>`` pragmas with an adjacent comment are preferred
because they live next to the code they excuse.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.passes.base import Violation

__all__ = [
    "BaselineEntry",
    "BaselineError",
    "canonical_path",
    "default_baseline_path",
    "load_baseline",
    "partition",
    "write_baseline",
]

_SCHEMA = 1


class BaselineError(ValueError):
    """The baseline file is malformed or under-justified."""


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding."""

    path: str  # canonical, e.g. "repro/sim/core.py"
    rule: str
    line: int  # advisory; matching uses the snippet
    snippet: str
    justification: str

    def matches(self, violation: Violation) -> bool:
        if self.rule != violation.rule or self.path != canonical_path(violation.path):
            return False
        if self.snippet:
            return self.snippet == violation.snippet
        return self.line == violation.line


def canonical_path(path: str) -> str:
    """Path relative to the ``repro`` package, with forward slashes.

    ``/anything/src/repro/sim/core.py`` -> ``repro/sim/core.py``; paths
    without a ``repro`` segment are returned slash-normalised as-is, so
    test fixtures with synthetic paths still round-trip.
    """
    parts = Path(path).parts
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    return "/".join(parts)


def default_baseline_path() -> Path:
    return Path(__file__).resolve().parent / "baseline.json"


def load_baseline(path: "str | Path | None" = None) -> list[BaselineEntry]:
    """Parse and validate the baseline file (missing file = empty baseline)."""
    file = Path(path) if path is not None else default_baseline_path()
    if not file.exists():
        return []
    try:
        payload = json.loads(file.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BaselineError(f"{file}: not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("schema") != _SCHEMA:
        raise BaselineError(f"{file}: expected an object with schema={_SCHEMA}")
    raw_entries = payload.get("entries", [])
    if not isinstance(raw_entries, list):
        raise BaselineError(f"{file}: 'entries' must be a list")
    entries: list[BaselineEntry] = []
    for index, raw in enumerate(raw_entries):
        if not isinstance(raw, dict):
            raise BaselineError(f"{file}: entries[{index}] is not an object")
        missing = {"path", "rule", "justification"} - raw.keys()
        if missing:
            raise BaselineError(
                f"{file}: entries[{index}] missing {sorted(missing)}"
            )
        justification = str(raw["justification"]).strip()
        if not justification:
            raise BaselineError(
                f"{file}: entries[{index}] ({raw['rule']} at {raw['path']}) "
                "has an empty justification; every accepted finding needs one"
            )
        entries.append(
            BaselineEntry(
                path=str(raw["path"]),
                rule=str(raw["rule"]).upper(),
                line=int(raw.get("line", 0)),
                snippet=str(raw.get("snippet", "")).strip(),
                justification=justification,
            )
        )
    return entries


def partition(
    violations: Sequence[Violation], entries: Sequence[BaselineEntry]
) -> "tuple[list[Violation], list[tuple[Violation, BaselineEntry]], list[BaselineEntry]]":
    """Split findings into (new, baseline-matched, stale-entries).

    An entry may match several violations (the same accepted pattern on
    adjacent lines); an entry matching none is stale and should be deleted
    from the baseline.
    """
    fresh: list[Violation] = []
    matched: list[tuple[Violation, BaselineEntry]] = []
    used: set[int] = set()
    for violation in violations:
        entry = next((e for e in entries if e.matches(violation)), None)
        if entry is None:
            fresh.append(violation)
        else:
            matched.append((violation, entry))
            used.add(id(entry))
    stale = [e for e in entries if id(e) not in used]
    return fresh, matched, stale


def write_baseline(
    violations: Sequence[Violation],
    path: "str | Path | None" = None,
    justification: Optional[str] = None,
) -> Path:
    """Serialise ``violations`` as a fresh baseline file.

    Each entry gets the placeholder justification unless one is supplied;
    the placeholder deliberately fails :func:`load_baseline`'s non-empty
    check only if blanked, so writers must still review each line.
    """
    file = Path(path) if path is not None else default_baseline_path()
    entries = [
        {
            "path": canonical_path(v.path),
            "rule": v.rule,
            "line": v.line,
            "snippet": v.snippet,
            "justification": justification or "TODO: justify or fix",
        }
        for v in sorted(set(violations), key=lambda v: (v.path, v.line, v.rule, v.message))
    ]
    payload = {"schema": _SCHEMA, "entries": entries}
    file.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return file
