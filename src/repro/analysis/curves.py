"""Metrics over pingpong curves — the quantities the paper reads off its
figures ("half bandwidth is only reached around 1 MB", "the threshold
around 128 kB", "~900 Mbps maximum")."""

from __future__ import annotations

from typing import Optional

from repro.apps.pingpong import PingPongCurve
from repro.errors import ReproError


def plateau_bandwidth(curve: PingPongCurve, tail_points: int = 3) -> float:
    """The curve's plateau: mean bandwidth over its largest sizes."""
    if not curve.points:
        raise ReproError("empty curve")
    tail = curve.points[-tail_points:]
    return sum(p.max_bandwidth_mbps for p in tail) / len(tail)


def half_bandwidth_size(curve: PingPongCurve) -> Optional[int]:
    """The smallest message size reaching half the plateau (the paper's
    'half bandwidth around 1 MB' observation for the tuned grid); None if
    never reached."""
    target = plateau_bandwidth(curve) / 2.0
    for point in curve.points:
        if point.max_bandwidth_mbps >= target:
            return point.nbytes
    return None


def crossover_size(a: PingPongCurve, b: PingPongCurve) -> Optional[int]:
    """The smallest common size where curve ``a`` stops beating curve
    ``b`` (None if it never crosses)."""
    bw_b = {p.nbytes: p.max_bandwidth_mbps for p in b.points}
    started_ahead = False
    for point in a.points:
        other = bw_b.get(point.nbytes)
        if other is None:
            continue
        if point.max_bandwidth_mbps > other:
            started_ahead = True
        elif started_ahead:
            return point.nbytes
    return None


def relative_series(
    times: dict[str, float], reference: str
) -> dict[str, float]:
    """The paper's Fig. 10 transform: time(reference)/time(x) per key;
    0.0 marks a DNF (infinite time)."""
    if reference not in times:
        raise ReproError(f"reference {reference!r} missing from times")
    ref = times[reference]
    out = {}
    for key, value in times.items():
        if value != value or value == float("inf") or value <= 0:
            out[key] = 0.0
        else:
            out[key] = ref / value
    return out
