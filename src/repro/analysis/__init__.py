"""Analysis tooling: result post-processing, static lint, runtime sanitizer.

Two halves live here:

* **result analysis** — curve metrics (:mod:`repro.analysis.curves`) and
  exports (:mod:`repro.analysis.export`) over finished experiments;
* **correctness tooling** — the determinism/unit-safety linter
  (:mod:`repro.analysis.linter` + :mod:`repro.analysis.passes`) and the
  runtime determinism sanitizer (:mod:`repro.analysis.sanitizer`), surfaced
  as ``repro lint`` / ``repro sanitize`` and as the pytest session gate
  (:mod:`repro.analysis.pytest_plugin`).
"""

from repro.analysis.curves import (
    crossover_size,
    half_bandwidth_size,
    plateau_bandwidth,
    relative_series,
)
from repro.analysis.export import experiment_to_dict, experiment_to_json
from repro.analysis.linter import (
    RULE_CATALOG,
    Linter,
    Violation,
    lint_paths,
    lint_source,
)
from repro.analysis.sanitizer import SanitizeReport, sanitize, trace_experiment

__all__ = [
    "Linter",
    "RULE_CATALOG",
    "SanitizeReport",
    "Violation",
    "crossover_size",
    "experiment_to_dict",
    "experiment_to_json",
    "half_bandwidth_size",
    "lint_paths",
    "lint_source",
    "plateau_bandwidth",
    "relative_series",
    "sanitize",
    "trace_experiment",
]
