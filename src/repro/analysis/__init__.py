"""Analysis tooling: result post-processing, static lint, runtime sanitizer.

Two halves live here:

* **result analysis** — curve metrics (:mod:`repro.analysis.curves`) and
  exports (:mod:`repro.analysis.export`) over finished experiments;
* **correctness tooling** — the determinism/unit-safety/dataflow linter
  (:mod:`repro.analysis.linter` + :mod:`repro.analysis.passes`, with SARIF
  export in :mod:`repro.analysis.export` and the suppression baseline in
  :mod:`repro.analysis.baseline`), the runtime determinism sanitizer
  (:mod:`repro.analysis.sanitizer`) and its schedule-perturbation
  counterpart (:mod:`repro.analysis.perturb`), surfaced as ``repro lint``
  / ``repro sanitize [--perturb]`` and as the pytest session gate
  (:mod:`repro.analysis.pytest_plugin`).
"""

from repro.analysis.baseline import (
    BaselineEntry,
    BaselineError,
    load_baseline,
    partition,
    write_baseline,
)
from repro.analysis.curves import (
    crossover_size,
    half_bandwidth_size,
    plateau_bandwidth,
    relative_series,
)
from repro.analysis.export import (
    experiment_to_dict,
    experiment_to_json,
    render_sarif,
    sarif_report,
    validate_sarif,
)
from repro.analysis.linter import (
    RULE_CATALOG,
    Linter,
    Violation,
    lint_paths,
    lint_source,
)
from repro.analysis.perturb import PerturbReport, perturb, perturbation_ranker
from repro.analysis.sanitizer import SanitizeReport, sanitize, trace_experiment

__all__ = [
    "BaselineEntry",
    "BaselineError",
    "Linter",
    "PerturbReport",
    "RULE_CATALOG",
    "SanitizeReport",
    "Violation",
    "crossover_size",
    "experiment_to_dict",
    "experiment_to_json",
    "half_bandwidth_size",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "partition",
    "perturb",
    "perturbation_ranker",
    "plateau_bandwidth",
    "relative_series",
    "render_sarif",
    "sanitize",
    "sarif_report",
    "trace_experiment",
    "validate_sarif",
    "write_baseline",
]
