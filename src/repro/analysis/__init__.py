"""Post-processing of experiment results: curve metrics and exports."""

from repro.analysis.curves import (
    crossover_size,
    half_bandwidth_size,
    plateau_bandwidth,
    relative_series,
)
from repro.analysis.export import experiment_to_dict, experiment_to_json

__all__ = [
    "crossover_size",
    "experiment_to_dict",
    "experiment_to_json",
    "half_bandwidth_size",
    "plateau_bandwidth",
    "relative_series",
]
