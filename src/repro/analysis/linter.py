"""Determinism & unit-safety linter over ``src/repro/**``.

The driver parses each module once, hands the :class:`ModuleContext` to
every registered pass, applies ``# lint: disable=<rule>`` pragmas, and
returns sorted, de-duplicated :class:`Violation` records.

Used three ways:

* ``repro lint [paths...]`` (CLI, exit 1 on violations),
* the pytest session gate (``repro.analysis.pytest_plugin``),
* programmatically: ``lint_source(...)`` in the rule unit tests.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.analysis.passes import ALL_PASSES, RULE_CATALOG, LintPass
from repro.analysis.passes.base import ModuleContext, Violation

__all__ = ["Linter", "RULE_CATALOG", "Violation", "lint_paths", "lint_source", "source_root"]


class Linter:
    """Configurable driver: which passes run, which rules are selected."""

    def __init__(
        self,
        passes: Optional[Sequence[type[LintPass]]] = None,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
    ):
        self.passes: list[LintPass] = [cls() for cls in (passes or ALL_PASSES)]
        self.select = frozenset(r.upper() for r in select) if select else None
        self.ignore = frozenset(r.upper() for r in ignore) if ignore else frozenset()

    # -- single module -----------------------------------------------------------
    def lint_source(
        self, source: str, path: str = "<string>", module_name: str = ""
    ) -> list[Violation]:
        try:
            ctx = ModuleContext.parse(source, path=path, module_name=module_name)
        except SyntaxError as exc:
            return [
                Violation(
                    path,
                    exc.lineno or 1,
                    "PARSE",
                    f"syntax error: {exc.msg}",
                    "file must parse before it can be linted",
                )
            ]
        found: set[Violation] = set()
        for lint_pass in self.passes:
            for violation in lint_pass.check(ctx):
                if self.select is not None and violation.rule not in self.select:
                    continue
                if violation.rule in self.ignore:
                    continue
                if ctx.suppressed(violation.line, violation.rule):
                    continue
                found.add(violation)
        return sorted(found, key=lambda v: (v.path, v.line, v.rule, v.message))

    def lint_file(self, path: "str | Path") -> list[Violation]:
        path = Path(path)
        return self.lint_source(
            path.read_text(encoding="utf-8"),
            path=str(path),
            module_name=_module_name_for(path),
        )

    def lint_paths(self, paths: Iterable["str | Path"]) -> list[Violation]:
        violations: list[Violation] = []
        for path in paths:
            path = Path(path)
            if path.is_dir():
                for file in sorted(path.rglob("*.py")):
                    violations.extend(self.lint_file(file))
            elif path.suffix == ".py":
                violations.extend(self.lint_file(path))
        return violations


def _module_name_for(path: Path) -> str:
    """Best-effort dotted module name ('.../src/repro/sim/rng.py' -> 'repro.sim.rng')."""
    parts = list(path.with_suffix("").parts)
    for anchor in ("repro",):
        if anchor in parts:
            return ".".join(parts[parts.index(anchor):])
    return path.stem


def source_root() -> Path:
    """The installed ``repro`` package directory (default lint target)."""
    import repro

    return Path(repro.__file__).resolve().parent


def lint_paths(
    paths: Optional[Iterable["str | Path"]] = None,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> list[Violation]:
    """Lint ``paths`` (default: the repro package itself)."""
    linter = Linter(select=select, ignore=ignore)
    return linter.lint_paths(paths if paths is not None else [source_root()])


def lint_source(source: str, path: str = "<string>", **kwargs) -> list[Violation]:
    return Linter(**kwargs).lint_source(source, path=path)


def render_report(violations: Sequence[Violation]) -> str:
    """The CLI / pytest-gate report: one line per hit plus a summary."""
    if not violations:
        return "repro lint: clean"
    lines = [v.render() for v in violations]
    by_rule: dict[str, int] = {}
    for v in violations:
        by_rule[v.rule] = by_rule.get(v.rule, 0) + 1
    summary = ", ".join(f"{rule} x{count}" for rule, count in sorted(by_rule.items()))
    lines.append(f"repro lint: {len(violations)} violation(s) ({summary})")
    return "\n".join(lines)
