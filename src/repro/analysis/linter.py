"""Determinism & unit-safety linter over ``src/repro/**``.

The driver parses each module once, hands the :class:`ModuleContext` to
every registered pass, applies ``# repro: noqa=<rule>`` pragmas (legacy
spelling ``# lint: disable=``), reports pragmas that no longer suppress
anything (NOQA001), and returns sorted, de-duplicated :class:`Violation`
records with the violating source line attached as a snippet.

Used three ways:

* ``repro lint [paths...]`` (CLI, exit 1 on violations),
* the pytest session gate (``repro.analysis.pytest_plugin``),
* programmatically: ``lint_source(...)`` in the rule unit tests.

Suppression baselines (``analysis/baseline.json``) are applied by the
callers above via :func:`repro.analysis.baseline.partition`, not here —
the driver always reports the full truth.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.analysis.passes import ALL_PASSES, LintPass
from repro.analysis.passes import RULE_CATALOG as _PASS_CATALOG
from repro.analysis.passes.base import ModuleContext, Violation

__all__ = [
    "DRIVER_RULES",
    "Linter",
    "RULE_CATALOG",
    "Violation",
    "lint_paths",
    "lint_source",
    "source_root",
]

#: rules emitted by the driver itself, not by any pass
DRIVER_RULES: dict[str, str] = {
    "NOQA001": "pragma suppresses a rule that does not fire here (stale) or does not exist",
}

#: rule id -> one-line description, the complete catalog (passes + driver)
RULE_CATALOG: dict[str, str] = {**_PASS_CATALOG, **DRIVER_RULES}


class Linter:
    """Configurable driver: which passes run, which rules are selected."""

    def __init__(
        self,
        passes: Optional[Sequence[type[LintPass]]] = None,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
        check_pragmas: bool = True,
    ):
        self.passes: list[LintPass] = [cls() for cls in (passes or ALL_PASSES)]
        self.select = frozenset(r.upper() for r in select) if select else None
        self.ignore = frozenset(r.upper() for r in ignore) if ignore else frozenset()
        self.check_pragmas = check_pragmas

    # -- single module -----------------------------------------------------------
    def lint_source(
        self, source: str, path: str = "<string>", module_name: str = ""
    ) -> list[Violation]:
        try:
            ctx = ModuleContext.parse(source, path=path, module_name=module_name)
        except SyntaxError as exc:
            return [
                Violation(
                    path,
                    exc.lineno or 1,
                    "PARSE",
                    f"syntax error: {exc.msg}",
                    "file must parse before it can be linted",
                )
            ]
        lines = source.splitlines()

        def snippet(lineno: int) -> str:
            return lines[lineno - 1].strip() if 0 < lineno <= len(lines) else ""

        # Suppression usage is tracked on the *unfiltered* stream so a
        # pragma for a deselected rule still counts as used when the rule
        # fires — select/ignore narrow the report, not the analysis.
        found: set[Violation] = set()
        used: set[tuple[int, str]] = set()
        for lint_pass in self.passes:
            for violation in lint_pass.check(ctx):
                anchor = ctx.suppressor(violation.line, violation.rule)
                if anchor is not None:
                    used.add((anchor, violation.rule))
                    continue
                found.add(dataclasses.replace(violation, snippet=snippet(violation.line)))

        if self.check_pragmas:
            for violation in self._stale_pragmas(ctx, used):
                found.add(dataclasses.replace(violation, snippet=snippet(violation.line)))

        selected = [
            v
            for v in found
            if (self.select is None or v.rule in self.select) and v.rule not in self.ignore
        ]
        return sorted(selected, key=lambda v: (v.path, v.line, v.rule, v.message))

    def _stale_pragmas(
        self, ctx: ModuleContext, used: set[tuple[int, str]]
    ) -> Iterable[Violation]:
        """NOQA001: pragma rules that suppressed nothing this run.

        Staleness is only judged for rules whose pass actually ran — a
        custom pass selection must not flag pragmas it cannot evaluate.
        Unknown rule ids (in no catalog at all) are always reported.
        """
        judged = {rule for lint_pass in self.passes for rule in lint_pass.rules}
        for anchor in sorted(ctx.pragmas):
            for rule in sorted(ctx.pragmas[anchor]):
                if (anchor, rule) in used or rule == "NOQA001":
                    continue
                if rule not in RULE_CATALOG:
                    message = f"pragma references unknown rule `{rule}`"
                    hint = "check the rule id against `repro explain --rules`"
                elif rule in judged:
                    message = f"pragma suppresses `{rule}`, which does not fire here"
                    hint = "the finding was fixed; delete the stale pragma"
                else:
                    continue
                if ctx.suppressed(anchor, "NOQA001"):
                    continue
                yield Violation(ctx.path, anchor, "NOQA001", message, hint)

    def lint_file(self, path: "str | Path") -> list[Violation]:
        path = Path(path)
        return self.lint_source(
            path.read_text(encoding="utf-8"),
            path=str(path),
            module_name=_module_name_for(path),
        )

    def lint_paths(self, paths: Iterable["str | Path"]) -> list[Violation]:
        # One globally sorted, de-duplicated worklist (not per-directory)
        # so the report is byte-stable regardless of argument order or
        # filesystem enumeration quirks.
        files: set[Path] = set()
        for path in paths:
            path = Path(path)
            if path.is_dir():
                files.update(path.rglob("*.py"))
            elif path.suffix == ".py":
                files.add(path)
        violations: list[Violation] = []
        for file in sorted(files, key=str):
            violations.extend(self.lint_file(file))
        return violations


def _module_name_for(path: Path) -> str:
    """Best-effort dotted module name ('.../src/repro/sim/rng.py' -> 'repro.sim.rng')."""
    parts = list(path.with_suffix("").parts)
    for anchor in ("repro",):
        if anchor in parts:
            return ".".join(parts[parts.index(anchor):])
    return path.stem


def source_root() -> Path:
    """The installed ``repro`` package directory (default lint target)."""
    import repro

    return Path(repro.__file__).resolve().parent


def lint_paths(
    paths: Optional[Iterable["str | Path"]] = None,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> list[Violation]:
    """Lint ``paths`` (default: the repro package itself)."""
    linter = Linter(select=select, ignore=ignore)
    return linter.lint_paths(paths if paths is not None else [source_root()])


def lint_source(source: str, path: str = "<string>", **kwargs) -> list[Violation]:
    return Linter(**kwargs).lint_source(source, path=path)


def render_report(violations: Sequence[Violation]) -> str:
    """The CLI / pytest-gate report: one line per hit plus a summary."""
    if not violations:
        return "repro lint: clean"
    lines = [v.render() for v in violations]
    by_rule: dict[str, int] = {}
    for v in violations:
        by_rule[v.rule] = by_rule.get(v.rule, 0) + 1
    summary = ", ".join(f"{rule} x{count}" for rule, count in sorted(by_rule.items()))
    lines.append(f"repro lint: {len(violations)} violation(s) ({summary})")
    return "\n".join(lines)
