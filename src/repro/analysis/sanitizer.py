"""Runtime determinism sanitizer: run twice, hash the event trace, compare.

The static linter (``repro.analysis.linter``) catches *sources* of
nondeterminism it can see syntactically; this module catches the ones it
cannot (set-ordered scheduling, unseeded library internals, hidden global
state) by construction: an experiment is run ``runs`` times with identical
configuration, every processed event is folded into an
:class:`~repro.mpi.tracing.EventTraceHasher` via the
:func:`repro.sim.core.install_trace_sink` hook, and the digests must be
bit-identical.  The rendered result is folded in as well, so value-level
divergence (same schedule, different numbers) also fails.

Exposed as ``repro sanitize <experiment>`` and used by the tier-1 suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ExperimentError
from repro.sim.core import trace_capture

__all__ = ["SanitizeReport", "sanitize", "trace_experiment"]


@dataclass
class SanitizeReport:
    """Outcome of one sanitizer run."""

    experiment_id: str
    hashes: list[str] = field(default_factory=list)
    event_counts: list[int] = field(default_factory=list)

    @property
    def deterministic(self) -> bool:
        return len(set(self.hashes)) <= 1

    def render(self) -> str:
        lines = [f"sanitize {self.experiment_id}: {len(self.hashes)} run(s)"]
        for i, (digest, count) in enumerate(zip(self.hashes, self.event_counts), start=1):
            lines.append(f"  run {i}: {count} events, trace hash {digest}")
        verdict = "PASS (trace hashes identical)" if self.deterministic else (
            "FAIL (trace hashes diverge: the experiment is not deterministic)"
        )
        lines.append(verdict)
        return "\n".join(lines)


def _resolve_runner(experiment: "str | Callable") -> tuple[str, Callable]:
    if callable(experiment):
        return getattr(experiment, "__name__", "<callable>"), experiment
    from repro.experiments import get_experiment

    return experiment, get_experiment(experiment)


def trace_experiment(
    experiment: "str | Callable", fast: bool = True
) -> tuple[str, int, object]:
    """One instrumented run: ``(trace hash, event count, result)``."""
    experiment_id, runner = _resolve_runner(experiment)
    # Memoised experiments (table6/table7's shared ray2mesh runs) replay no
    # simulation on a hit, which would make every run after the first hash
    # an empty trace — vacuously "deterministic".  Start cold.
    from repro.experiments.registry import clear_memos

    clear_memos()
    with trace_capture() as hasher:
        result = runner(fast=fast)
    # Fold the rendered output in: same schedule + different values is
    # still a determinism failure.
    hasher.update_text(getattr(result, "text", repr(result)))
    return hasher.hexdigest(), hasher.events, result


def sanitize(
    experiment: "str | Callable",
    fast: bool = True,
    runs: int = 2,
) -> SanitizeReport:
    """Run ``experiment`` ``runs`` times and compare trace hashes."""
    if runs < 2:
        raise ExperimentError(f"sanitize needs at least 2 runs, got {runs}")
    experiment_id, _ = _resolve_runner(experiment)
    report = SanitizeReport(experiment_id=experiment_id)
    for _ in range(runs):
        digest, events, _result = trace_experiment(experiment, fast=fast)
        report.hashes.append(digest)
        report.event_counts.append(events)
    return report
