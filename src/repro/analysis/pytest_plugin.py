"""Pytest gate: fail the session up front if ``src/repro`` does not lint.

Registered by ``tests/conftest.py`` (hook delegation), so the tier-1
command — plain ``pytest`` — exercises the determinism/unit-safety lint
pass before any test runs.  The whole-tree walk is a few hundred
milliseconds of ``ast.parse``; a violation aborts the session with the
standard ``file:line: RULE message`` report.

Disable for a local run with ``--no-repro-lint``.
"""

from __future__ import annotations

import pytest

_SESSION_FLAG = "_repro_lint_ran"


def pytest_addoption(parser) -> None:
    group = parser.getgroup("repro")
    group.addoption(
        "--no-repro-lint",
        action="store_true",
        default=False,
        help="skip the repro determinism/unit-safety lint gate",
    )


def pytest_sessionstart(session) -> None:
    config = session.config
    if config.getoption("--no-repro-lint", default=False):
        return
    # Guard against double registration (conftest delegation plus -p).
    if getattr(config, _SESSION_FLAG, False):
        return
    setattr(config, _SESSION_FLAG, True)

    from repro.analysis.baseline import load_baseline, partition
    from repro.analysis.linter import render_report, lint_paths

    fresh, _matched, stale = partition(lint_paths(), load_baseline())
    problems = []
    if fresh:
        problems.append(render_report(fresh))
    if stale:
        problems.append(
            "stale baseline entries (finding fixed -> delete the entry):\n"
            + "\n".join(f"  {e.path}:{e.line}: {e.rule} {e.snippet}" for e in stale)
        )
    if problems:
        raise pytest.UsageError(
            "repro lint gate failed (run `repro lint` to reproduce, "
            "`--no-repro-lint` to bypass):\n" + "\n".join(problems)
        )
