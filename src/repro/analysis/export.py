"""Structured export: experiment results (JSON) and lint findings (SARIF).

The SARIF half serialises :class:`~repro.analysis.passes.base.Violation`
records as a SARIF 2.1.0 log so CI can upload them as a code-scanning
artifact.  Baseline-matched findings are included with an ``external``
suppression carrying the baseline justification, matching how SARIF
consumers expect triaged results to round-trip.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Optional, Sequence

from repro import __version__ as _VERSION
from repro.experiments.base import ExperimentResult


def _sanitise(value: Any) -> Any:
    """JSON-safe copy: inf/nan become strings, numpy scalars become floats."""
    if isinstance(value, dict):
        return {str(k): _sanitise(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitise(v) for v in value]
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if math.isnan(value):
            return "nan"
        return value
    if hasattr(value, "item"):  # numpy scalar
        return _sanitise(value.item())
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    return str(value)


def experiment_to_dict(result: ExperimentResult) -> dict:
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "paper_ref": result.paper_ref,
        "rows": _sanitise(result.rows),
    }


def experiment_to_json(result: ExperimentResult, indent: int = 2) -> str:
    return json.dumps(experiment_to_dict(result), indent=indent)


# --- SARIF 2.1.0 -------------------------------------------------------------
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def sarif_report(
    violations: Sequence[Any],
    baseline_matches: Sequence[tuple[Any, Any]] = (),
    catalog: Optional[dict[str, str]] = None,
) -> dict:
    """A SARIF 2.1.0 log for lint findings.

    ``violations`` are fresh findings; ``baseline_matches`` are
    ``(violation, BaselineEntry)`` pairs included with an ``external``
    suppression so triaged results stay visible to SARIF consumers
    without failing the run.
    """
    from repro.analysis.baseline import canonical_path

    if catalog is None:
        from repro.analysis.linter import RULE_CATALOG

        catalog = RULE_CATALOG
    rule_ids = sorted(catalog)
    rule_index = {rule: i for i, rule in enumerate(rule_ids)}

    def result_for(violation: Any, entry: Any = None) -> dict:
        message = violation.message
        if violation.hint:
            message += f" ({violation.hint})"
        region: dict[str, Any] = {"startLine": max(1, violation.line)}
        if violation.snippet:
            region["snippet"] = {"text": violation.snippet}
        result: dict[str, Any] = {
            "ruleId": violation.rule,
            "level": "error",
            "message": {"text": message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": canonical_path(violation.path),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": region,
                    }
                }
            ],
        }
        if violation.rule in rule_index:
            result["ruleIndex"] = rule_index[violation.rule]
        if entry is not None:
            result["suppressions"] = [
                {"kind": "external", "justification": entry.justification}
            ]
        return result

    results = [result_for(v) for v in violations]
    results.extend(result_for(v, entry) for v, entry in baseline_matches)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": _VERSION,
                        "informationUri": "https://example.invalid/repro",
                        "rules": [
                            {
                                "id": rule,
                                "shortDescription": {"text": catalog[rule]},
                            }
                            for rule in rule_ids
                        ],
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }


def render_sarif(report: dict, indent: int = 2) -> str:
    return json.dumps(report, indent=indent, sort_keys=False) + "\n"


def write_sarif(report: dict, path: "str | Path") -> Path:
    path = Path(path)
    path.write_text(render_sarif(report), encoding="utf-8")
    return path


def validate_sarif(report: Any) -> list[str]:
    """Structural validation against the SARIF 2.1.0 shape.

    Checks the invariants consumers rely on (version, runs, tool.driver
    with name and rules, result ruleIds resolving through ruleIndex,
    physical locations with positive startLine).  Returns a list of
    problems; empty means valid.  This is a vendored subset of the OASIS
    JSON schema — full-schema validation needs the 1.3 MB upstream file,
    which is not bundled.
    """
    problems: list[str] = []
    if not isinstance(report, dict):
        return ["document is not an object"]
    if report.get("version") != SARIF_VERSION:
        problems.append(f"version must be {SARIF_VERSION!r}")
    runs = report.get("runs")
    if not isinstance(runs, list) or not runs:
        return problems + ["runs must be a non-empty array"]
    for run_no, run in enumerate(runs):
        where = f"runs[{run_no}]"
        if not isinstance(run, dict):
            problems.append(f"{where} is not an object")
            continue
        driver = run.get("tool", {}).get("driver") if isinstance(run.get("tool"), dict) else None
        rules: list = []
        if not isinstance(driver, dict) or not driver.get("name"):
            problems.append(f"{where}.tool.driver.name is required")
        else:
            rules = driver.get("rules", [])
            if not isinstance(rules, list):
                problems.append(f"{where}.tool.driver.rules must be an array")
                rules = []
            for rule_no, rule in enumerate(rules):
                if not isinstance(rule, dict) or not rule.get("id"):
                    problems.append(f"{where}.tool.driver.rules[{rule_no}].id is required")
        results = run.get("results", [])
        if not isinstance(results, list):
            problems.append(f"{where}.results must be an array")
            continue
        for res_no, result in enumerate(results):
            rwhere = f"{where}.results[{res_no}]"
            if not isinstance(result, dict):
                problems.append(f"{rwhere} is not an object")
                continue
            if not isinstance(result.get("message"), dict) or "text" not in result["message"]:
                problems.append(f"{rwhere}.message.text is required")
            index = result.get("ruleIndex")
            if index is not None:
                if not isinstance(index, int) or not (0 <= index < len(rules)):
                    problems.append(f"{rwhere}.ruleIndex {index!r} out of range")
                elif rules and rules[index].get("id") != result.get("ruleId"):
                    problems.append(
                        f"{rwhere}.ruleIndex does not resolve to ruleId "
                        f"{result.get('ruleId')!r}"
                    )
            for loc_no, loc in enumerate(result.get("locations", [])):
                physical = loc.get("physicalLocation", {}) if isinstance(loc, dict) else {}
                region = physical.get("region", {})
                start = region.get("startLine")
                if start is not None and (not isinstance(start, int) or start < 1):
                    problems.append(
                        f"{rwhere}.locations[{loc_no}].region.startLine must be >= 1"
                    )
            for sup_no, sup in enumerate(result.get("suppressions", [])):
                if not isinstance(sup, dict) or sup.get("kind") not in (
                    "inSource",
                    "external",
                ):
                    problems.append(
                        f"{rwhere}.suppressions[{sup_no}].kind must be "
                        "'inSource' or 'external'"
                    )
    return problems
