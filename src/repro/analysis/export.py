"""Structured export of experiment results (JSON for downstream tooling)."""

from __future__ import annotations

import json
import math
from typing import Any

from repro.experiments.base import ExperimentResult


def _sanitise(value: Any) -> Any:
    """JSON-safe copy: inf/nan become strings, numpy scalars become floats."""
    if isinstance(value, dict):
        return {str(k): _sanitise(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitise(v) for v in value]
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if math.isnan(value):
            return "nan"
        return value
    if hasattr(value, "item"):  # numpy scalar
        return _sanitise(value.item())
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    return str(value)


def experiment_to_dict(result: ExperimentResult) -> dict:
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "paper_ref": result.paper_ref,
        "rows": _sanitise(result.rows),
    }


def experiment_to_json(result: ExperimentResult, indent: int = 2) -> str:
    return json.dumps(experiment_to_dict(result), indent=indent)
